//! Facade crate re-exporting the PACK/UNPACK reproduction workspace.
//!
//! See [`hpf_core`] for the paper's contribution (parallel PACK/UNPACK with
//! distributed ranking), [`hpf_distarray`] for the block-cyclic distributed
//! array substrate, [`hpf_machine`] for the simulated coarse-grained
//! parallel machine, [`hpf_intrinsics`] for the companion F90/HPF
//! transformational intrinsics, [`hpf_apps`] for mini-applications
//! built on the runtime, and [`hpf_analysis`] for offline trace analysis
//! (critical paths, cost-model conformance, perf regression diffing).
pub use hpf_analysis as analysis;
pub use hpf_apps as apps;
pub use hpf_core as core;
pub use hpf_distarray as distarray;
pub use hpf_intrinsics as intrinsics;
pub use hpf_machine as machine;
