//! End-to-end PACK integration tests across the full stack: machine +
//! distarray + core, verified against the sequential Fortran 90 oracle.

use hpf_packunpack::core::seq::pack_seq;
use hpf_packunpack::core::{pack, MaskPattern, PackOptions, PackScheme};
use hpf_packunpack::distarray::{ArrayDesc, Dist, GlobalArray};
use hpf_packunpack::machine::{CostModel, Machine, ProcGrid};

/// Run PACK on the machine and reassemble the result vector.
fn run_pack(
    shape: &[usize],
    grid_dims: &[usize],
    dists: &[Dist],
    pattern: MaskPattern,
    opts: PackOptions,
) -> (Vec<i32>, Vec<i32>) {
    let grid = ProcGrid::new(grid_dims);
    let desc = ArrayDesc::new(shape, &grid, dists).unwrap();
    let a = GlobalArray::from_fn(shape, |idx| {
        idx.iter()
            .fold(7i32, |acc, &x| acc.wrapping_mul(131).wrapping_add(x as i32))
    });
    let m = pattern.global(shape);
    let want = pack_seq(&a, &m, None);
    let a_parts = a.partition(&desc);
    let m_parts = m.partition(&desc);
    let machine = Machine::new(grid, CostModel::cm5());
    let (d, ap, mp) = (&desc, &a_parts, &m_parts);
    let out =
        machine.run(move |proc| pack(proc, d, &ap[proc.id()], &mp[proc.id()], &opts).unwrap());
    let size = out.results[0].size;
    let mut got = vec![0i32; size];
    if let Some(layout) = out.results[0].v_layout {
        for (p, r) in out.results.iter().enumerate() {
            for (l, &x) in r.local_v.iter().enumerate() {
                got[layout.global_of(p, l)] = x;
            }
        }
    }
    (got, want)
}

#[test]
fn schemes_agree_with_oracle_and_each_other() {
    let pattern = MaskPattern::Random {
        density: 0.5,
        seed: 99,
    };
    let mut results = Vec::new();
    for scheme in PackScheme::ALL {
        let (got, want) = run_pack(
            &[64, 16],
            &[2, 2],
            &[Dist::BlockCyclic(4), Dist::BlockCyclic(2)],
            pattern,
            PackOptions::new(scheme),
        );
        assert_eq!(got, want, "{scheme:?} vs oracle");
        results.push(got);
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
}

#[test]
fn paper_experiment_configurations_smoke() {
    // Small-scale versions of the Section 7 setups.
    for (shape, grid_dims) in [(vec![4096usize], vec![16usize]), (vec![64, 64], vec![4, 4])] {
        let dists: Vec<Dist> = shape.iter().map(|_| Dist::BlockCyclic(2)).collect();
        for density in MaskPattern::DENSITIES {
            let (got, want) = run_pack(
                &shape,
                &grid_dims,
                &dists,
                MaskPattern::Random { density, seed: 1 },
                PackOptions::default(),
            );
            assert_eq!(got, want, "shape {shape:?} density {density}");
        }
    }
}

#[test]
fn structured_masks_end_to_end() {
    let (got, want) = run_pack(
        &[1024],
        &[8],
        &[Dist::BlockCyclic(16)],
        MaskPattern::FirstHalf,
        PackOptions::default(),
    );
    assert_eq!(got, want);
    let (got, want) = run_pack(
        &[32, 32],
        &[4, 2],
        &[Dist::BlockCyclic(4), Dist::BlockCyclic(2)],
        MaskPattern::LowerTriangular,
        PackOptions::default(),
    );
    assert_eq!(got, want);
}

#[test]
fn full_and_empty_masks() {
    for pattern in [MaskPattern::Full, MaskPattern::Empty] {
        for scheme in PackScheme::ALL {
            let (got, want) = run_pack(
                &[128],
                &[4],
                &[Dist::Cyclic],
                pattern,
                PackOptions::new(scheme),
            );
            assert_eq!(got, want, "{pattern:?} {scheme:?}");
        }
    }
}

#[test]
fn single_element_blocks_and_single_proc() {
    let (got, want) = run_pack(
        &[64],
        &[1],
        &[Dist::Block],
        MaskPattern::Random {
            density: 0.3,
            seed: 5,
        },
        PackOptions::default(),
    );
    assert_eq!(got, want);
}

#[test]
fn four_dimensional_pack() {
    // Rank 4, mixed distributions, uneven grid: the ranking algorithm's
    // dimension recursion in full.
    for scheme in PackScheme::ALL {
        let (got, want) = run_pack(
            &[4, 6, 4, 4],
            &[2, 3, 1, 2],
            &[
                Dist::BlockCyclic(2),
                Dist::Cyclic,
                Dist::Block,
                Dist::BlockCyclic(2),
            ],
            MaskPattern::Random {
                density: 0.45,
                seed: 91,
            },
            PackOptions::new(scheme),
        );
        assert_eq!(got, want, "{scheme:?}");
    }
}

/// Two-word elements (f64/i64) double the charged wire volume but change
/// nothing about correctness.
#[test]
fn wide_elements_pack_correctly_and_charge_double_volume() {
    let grid = ProcGrid::line(4);
    let desc = ArrayDesc::new(&[64], &grid, &[Dist::Cyclic]).unwrap();
    let pattern = MaskPattern::Random {
        density: 0.5,
        seed: 14,
    };
    let machine = Machine::new(grid, CostModel::cm5());
    let d = &desc;

    let narrow = machine.run(move |proc| {
        let a = hpf_packunpack::distarray::local_from_fn(d, proc.id(), |g| g[0] as i32);
        let m = pattern.local(d, proc.id());
        pack(proc, d, &a, &m, &PackOptions::new(PackScheme::Simple))
            .unwrap()
            .size
    });
    let wide = machine.run(move |proc| {
        let a = hpf_packunpack::distarray::local_from_fn(d, proc.id(), |g| g[0] as f64 * 0.5);
        let m = pattern.local(d, proc.id());
        let out = pack(proc, d, &a, &m, &PackOptions::new(PackScheme::Simple)).unwrap();
        // Spot-check values survive as floats.
        assert!(out
            .local_v
            .iter()
            .all(|v| v.fract() == 0.0 || v.fract() == 0.5));
        out.size
    });
    assert_eq!(narrow.results[0], wide.results[0]);
    // Same ranking traffic; redistribution pairs are (u32, T): 1+1 words vs
    // 1+2 words, so the wide run sends exactly E_remote more words, where
    // E_remote is the number of off-processor packed elements.
    let extra = wide.total_words_sent() - narrow.total_words_sent();
    assert!(extra > 0);
    // Each remote pair grew by exactly one word: extra == remote pair count,
    // which also equals (narrow redistribution words) / 2. Isolate the
    // redistribution words by subtracting the identical ranking traffic.
    let zero_mask_words = {
        let out = machine.run(move |proc| {
            let a = hpf_packunpack::distarray::local_from_fn(d, proc.id(), |g| g[0] as i32);
            let m = vec![false; d.local_len(proc.id())];
            pack(proc, d, &a, &m, &PackOptions::new(PackScheme::Simple)).unwrap();
        });
        out.total_words_sent()
    };
    let narrow_redist = narrow.total_words_sent() - zero_mask_words;
    assert_eq!(extra, narrow_redist / 2, "one extra word per remote pair");
}

#[test]
fn sparse_single_selected_element() {
    // Exactly one element selected: exercises the degenerate message paths.
    let grid = ProcGrid::line(4);
    let desc = ArrayDesc::new(&[32], &grid, &[Dist::BlockCyclic(2)]).unwrap();
    let machine = Machine::new(grid, CostModel::cm5());
    for scheme in PackScheme::ALL {
        let d = &desc;
        let out = machine.run(move |proc| {
            let a = hpf_packunpack::distarray::local_from_fn(d, proc.id(), |g| g[0] as i32);
            let m = hpf_packunpack::distarray::local_from_fn(d, proc.id(), |g| g[0] == 17);
            pack(proc, d, &a, &m, &PackOptions::new(scheme)).unwrap()
        });
        assert_eq!(out.results[0].size, 1);
        let total: Vec<i32> = out
            .results
            .iter()
            .flat_map(|r| r.local_v.iter().copied())
            .collect();
        assert_eq!(total, vec![17], "{scheme:?}");
    }
}
