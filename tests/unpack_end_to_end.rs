//! End-to-end UNPACK integration tests against the sequential oracle.

use hpf_packunpack::core::seq::{count_seq, unpack_seq};
use hpf_packunpack::core::{unpack, MaskPattern, UnpackOptions, UnpackScheme};
use hpf_packunpack::distarray::{ArrayDesc, DimLayout, Dist, GlobalArray};
use hpf_packunpack::machine::{Category, CostModel, Machine, ProcGrid};

fn run_unpack(
    shape: &[usize],
    grid_dims: &[usize],
    dists: &[Dist],
    pattern: MaskPattern,
    scheme: UnpackScheme,
    w_prime: usize,
) -> (GlobalArray<i32>, GlobalArray<i32>) {
    let grid = ProcGrid::new(grid_dims);
    let desc = ArrayDesc::new(shape, &grid, dists).unwrap();
    let m = pattern.global(shape);
    let f = GlobalArray::from_fn(shape, |idx| -(idx.iter().sum::<usize>() as i32) - 1);
    let size = count_seq(&m).max(1);
    let v: Vec<i32> = (0..size as i32).map(|i| 5000 + i).collect();
    let want = unpack_seq(&v, &m, &f);

    let v_layout = DimLayout::new_general(size, grid.nprocs(), w_prime).unwrap();
    let v_locals: Vec<Vec<i32>> = (0..grid.nprocs())
        .map(|p| {
            (0..v_layout.local_len(p))
                .map(|l| v[v_layout.global_of(p, l)])
                .collect()
        })
        .collect();
    let m_parts = m.partition(&desc);
    let f_parts = f.partition(&desc);
    let machine = Machine::new(grid, CostModel::cm5());
    let (d, mp, fp, vp, vl) = (&desc, &m_parts, &f_parts, &v_locals, &v_layout);
    let opts = UnpackOptions::new(scheme);
    let out = machine.run(move |proc| {
        unpack(
            proc,
            d,
            &mp[proc.id()],
            &fp[proc.id()],
            &vp[proc.id()],
            vl,
            &opts,
        )
        .unwrap()
    });
    (GlobalArray::assemble(&desc, &out.results), want)
}

#[test]
fn both_schemes_match_oracle_across_layouts() {
    for scheme in UnpackScheme::ALL {
        for dists in [
            vec![Dist::Cyclic, Dist::Cyclic],
            vec![Dist::Block, Dist::BlockCyclic(4)],
            vec![Dist::BlockCyclic(2), Dist::Block],
        ] {
            let (got, want) = run_unpack(
                &[32, 16],
                &[2, 2],
                &dists,
                MaskPattern::Random {
                    density: 0.5,
                    seed: 55,
                },
                scheme,
                13, // awkward W' that straddles slices
            );
            assert_eq!(got, want, "{scheme:?} {dists:?}");
        }
    }
}

#[test]
fn schemes_agree_with_each_other() {
    let (a, want) = run_unpack(
        &[512],
        &[8],
        &[Dist::BlockCyclic(8)],
        MaskPattern::Random {
            density: 0.7,
            seed: 3,
        },
        UnpackScheme::Simple,
        32,
    );
    let (b, _) = run_unpack(
        &[512],
        &[8],
        &[Dist::BlockCyclic(8)],
        MaskPattern::Random {
            density: 0.7,
            seed: 3,
        },
        UnpackScheme::CompactStorage,
        32,
    );
    assert_eq!(a, want);
    assert_eq!(a, b);
}

#[test]
fn empty_mask_returns_pure_field() {
    let (got, want) = run_unpack(
        &[64],
        &[4],
        &[Dist::Cyclic],
        MaskPattern::Empty,
        UnpackScheme::CompactStorage,
        4,
    );
    assert_eq!(got, want);
    assert!(got.data().iter().all(|&x| x < 0), "all field values");
}

#[test]
fn full_mask_copies_the_whole_vector() {
    let (got, want) = run_unpack(
        &[64],
        &[4],
        &[Dist::BlockCyclic(4)],
        MaskPattern::Full,
        UnpackScheme::Simple,
        16,
    );
    assert_eq!(got, want);
    assert!(got.data().iter().all(|&x| x >= 5000));
}

/// Request compression: CSS sends strictly fewer request words than SSS when
/// slices hold runs of selected elements.
#[test]
fn css_requests_are_smaller_on_the_wire() {
    let words = |scheme: UnpackScheme| {
        let grid = ProcGrid::line(4);
        let desc = ArrayDesc::new(&[1024], &grid, &[Dist::BlockCyclic(64)]).unwrap();
        let size = 512;
        let v_layout = DimLayout::new_general(size, 4, 128).unwrap();
        let machine = Machine::new(grid, CostModel::cm5());
        let (d, vl) = (&desc, &v_layout);
        let opts = UnpackOptions::new(scheme);
        machine
            .run(move |proc| {
                let m = MaskPattern::FirstHalf.local(d, proc.id());
                let f = vec![0i32; d.local_len(proc.id())];
                let v = vec![1i32; vl.local_len(proc.id())];
                unpack(proc, d, &m, &f, &v, vl, &opts).unwrap();
            })
            .total_words_sent()
    };
    assert!(
        words(UnpackScheme::CompactStorage) < words(UnpackScheme::Simple),
        "run-compressed requests must be smaller"
    );
}

/// The two-stage READ costs more communication than PACK's one-stage WRITE
/// on the same mask (Section 4.2).
#[test]
fn unpack_communication_exceeds_pack() {
    use hpf_packunpack::core::{pack, PackOptions, PackScheme};
    let grid = ProcGrid::line(8);
    let desc = ArrayDesc::new(&[2048], &grid, &[Dist::BlockCyclic(16)]).unwrap();
    let pattern = MaskPattern::Random {
        density: 0.5,
        seed: 8,
    };
    let machine = Machine::new(grid.clone(), CostModel::cm5());
    let d = &desc;
    let pack_out = machine.run(move |proc| {
        let a = hpf_packunpack::distarray::local_from_fn(d, proc.id(), |g| g[0] as i32);
        let m = pattern.local(d, proc.id());
        pack(
            proc,
            d,
            &a,
            &m,
            &PackOptions::new(PackScheme::CompactStorage),
        )
        .unwrap()
        .size
    });
    let size = pack_out.results[0];
    let v_layout = DimLayout::new_general(size, 8, size.div_ceil(8)).unwrap();
    let vl = &v_layout;
    let unpack_out = machine.run(move |proc| {
        let m = pattern.local(d, proc.id());
        let f = vec![0i32; d.local_len(proc.id())];
        let v = vec![1i32; vl.local_len(proc.id())];
        unpack(
            proc,
            d,
            &m,
            &f,
            &v,
            vl,
            &UnpackOptions::new(UnpackScheme::CompactStorage),
        )
        .unwrap();
    });
    assert!(
        unpack_out.max_cat_ms(Category::ManyToMany) > pack_out.max_cat_ms(Category::ManyToMany)
    );
}
