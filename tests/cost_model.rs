//! Validation of the Section 6.4 local-computation model: with `δ = 1 ns`
//! and free communication, the simulated clock's per-category nanoseconds
//! *are* operation counts, so the paper's closed-form formulas can be
//! checked against the implementation exactly.

use hpf_packunpack::core::{pack, MaskPattern, PackOptions, PackScheme, ScanMethod};
use hpf_packunpack::distarray::{local_from_fn, ArrayDesc, DimLayout, Dist};
use hpf_packunpack::machine::{Category, CostModel, Machine, ProcGrid};

/// δ = 1 ns, everything else free: LocalComp nanoseconds == LocalComp ops.
fn ops_model() -> CostModel {
    CostModel {
        delta_ns: 1.0,
        ..CostModel::zero()
    }
}

struct Counts {
    /// Per-processor LocalComp operation counts.
    local_ops: Vec<f64>,
    /// Per-processor selected-element counts `E_i`.
    e: Vec<usize>,
    /// Per-processor received-element counts (`≈ E_a` for balanced masks).
    r: Vec<usize>,
    /// Per-processor destination-run counts `Gs_i`.
    gs: Vec<usize>,
    /// Per-processor non-empty slice counts.
    nonempty_slices: Vec<usize>,
}

fn measure(n: usize, p: usize, w: usize, density: f64, opts: PackOptions) -> Counts {
    let grid = ProcGrid::line(p);
    let desc = ArrayDesc::new(&[n], &grid, &[Dist::BlockCyclic(w)]).unwrap();
    let pattern = MaskPattern::Random { density, seed: 77 };
    let machine = Machine::new(grid, ops_model());
    let d = &desc;
    let out = machine.run(move |proc| {
        let a = local_from_fn(d, proc.id(), |g| g[0] as i32);
        let m = local_from_fn(d, proc.id(), |g| pattern.value(g, &[n]));
        let r = pack(proc, d, &a, &m, &opts).unwrap();
        (m, r.local_v.len(), r.size)
    });

    // Harness-side oracle quantities.
    let size = out.results[0].2;
    let v_layout = DimLayout::new_general(size.max(1), p, size.div_ceil(p).max(1)).unwrap();
    let mut e = Vec::new();
    let mut gs = Vec::new();
    let mut nonempty = Vec::new();
    // Walk masks in global rank order per processor to count runs: runs are
    // per-slice rank intervals split at W' boundaries.
    for (mask, _, _) in &out.results {
        e.push(mask.iter().filter(|&&b| b).count());
        nonempty.push(
            mask.chunks_exact(w)
                .filter(|s| s.iter().any(|&b| b))
                .count(),
        );
        gs.push(0);
    }
    // Re-derive Gs by replaying the ranking order (global array element
    // order): slice counts per proc in slice order.
    let mask_global = pattern.global(&[n]);
    // Per-proc slice counts.
    let slice_of: Vec<Vec<usize>> = out
        .results
        .iter()
        .map(|(mask, _, _)| {
            mask.chunks_exact(w)
                .map(|s| s.iter().filter(|&&b| b).count())
                .collect()
        })
        .collect();
    // Global rank of each slice's first element = count of trues before it.
    let ranks = {
        let mut acc = 0usize;
        let mut r = Vec::with_capacity(n);
        for &b in mask_global.data() {
            r.push(acc);
            if b {
                acc += 1;
            }
        }
        r
    };
    for proc_id in 0..p {
        for (k, &cnt) in slice_of[proc_id].iter().enumerate() {
            if cnt == 0 {
                continue;
            }
            // First selected element's rank within this slice:
            let mut r0 = None;
            for off in 0..w {
                let g = desc.global_of_local(proc_id, k * w + off)[0];
                if mask_global.get(&[g]) {
                    r0 = Some(ranks[g]);
                    break;
                }
            }
            let r0 = r0.unwrap();
            // Runs split at W' boundaries.
            let wp = v_layout.w();
            let mut pos = r0;
            let end = r0 + cnt;
            while pos < end {
                gs[proc_id] += 1;
                pos += (wp - pos % wp).min(end - pos);
            }
        }
    }
    let r: Vec<usize> = out.results.iter().map(|(_, len, _)| *len).collect();
    Counts {
        local_ops: out
            .clocks
            .iter()
            .map(|c| c.cat_ns(Category::LocalComp))
            .collect(),
        e,
        r,
        gs,
        nonempty_slices: nonempty,
    }
}

/// SSS local computation is exactly `L + 2C + 6E_i + 2R_i` for a 1-D array
/// (initial scan L + 4E, the common intermediate-step 2C, final replay 2E,
/// message decomposition 2R) — the Section 6.4.1 accounting.
#[test]
fn sss_ops_match_closed_form() {
    let (n, p, w) = (256usize, 4usize, 8usize);
    let l = n / p;
    let c = l / w;
    let counts = measure(n, p, w, 0.5, PackOptions::new(PackScheme::Simple));
    for proc_id in 0..p {
        let want = (l + 2 * c + 6 * counts.e[proc_id] + 2 * counts.r[proc_id]) as f64;
        assert_eq!(
            counts.local_ops[proc_id], want,
            "proc {proc_id}: E={} R={}",
            counts.e[proc_id], counts.r[proc_id]
        );
    }
}

/// CSS (whole-slice scan method) local computation is exactly
/// `L + 4C + W·K_i + G_i + 2E_i + 2R_i` where `K_i` counts non-empty slices
/// and `G_i` the destination runs: initial `L + C`, intermediate `2C`,
/// composition `C + W·K + Σ_runs(1 + 2·len)`, decomposition `2R`.
#[test]
fn css_ops_match_closed_form() {
    let (n, p, w) = (256usize, 4usize, 8usize);
    let l = n / p;
    let c = l / w;
    let mut opts = PackOptions::new(PackScheme::CompactStorage);
    opts.scan_method = ScanMethod::WholeSlice;
    let counts = measure(n, p, w, 0.5, opts);
    for proc_id in 0..p {
        let want = (l
            + 4 * c
            + w * counts.nonempty_slices[proc_id]
            + counts.gs[proc_id]
            + 2 * counts.e[proc_id]
            + 2 * counts.r[proc_id]) as f64;
        assert_eq!(counts.local_ops[proc_id], want, "proc {proc_id}");
    }
}

/// CMS (whole-slice scan method) local computation is exactly
/// `L + 4C + W·K_i + 2Gs_i + E_i + (R_i + 2Gr_i)`; with a balanced random
/// mask every processor both sends and receives, and we check the sum over
/// processors, where `Σ Gr = Σ Gs`.
#[test]
fn cms_ops_match_closed_form_in_aggregate() {
    let (n, p, w) = (256usize, 4usize, 8usize);
    let l = n / p;
    let c = l / w;
    let mut opts = PackOptions::new(PackScheme::CompactMessage);
    opts.scan_method = ScanMethod::WholeSlice;
    let counts = measure(n, p, w, 0.5, opts);
    let total_ops: f64 = counts.local_ops.iter().sum();
    let e: usize = counts.e.iter().sum();
    let r: usize = counts.r.iter().sum();
    let gs: usize = counts.gs.iter().sum();
    let k: usize = counts.nonempty_slices.iter().sum();
    let want = (p * (l + 4 * c) + w * k + 2 * gs + e + r + 2 * gs) as f64;
    assert_eq!(total_ops, want, "E={e} R={r} Gs={gs} K={k}");
}

/// The method-1 scan ("until collected") never does more work than the
/// method-2 scan, and strictly less when slices end with unselected
/// elements (Section 6.1's finding).
#[test]
fn until_collected_scan_is_cheaper() {
    let (n, p, w) = (1024usize, 4usize, 32usize);
    let mk = |method: ScanMethod| {
        let mut opts = PackOptions::new(PackScheme::CompactStorage);
        opts.scan_method = method;
        measure(n, p, w, 0.3, opts).local_ops.iter().sum::<f64>()
    };
    let m1 = mk(ScanMethod::UntilCollected);
    let m2 = mk(ScanMethod::WholeSlice);
    assert!(
        m1 < m2,
        "method 1 ({m1}) must beat method 2 ({m2}) at 30% density"
    );
}

/// The β₁ mechanics of Table I, pinned at the ops level: with a dense mask
/// and large blocks CSS does fewer local ops than SSS; with a cyclic layout
/// SSS does fewer.
#[test]
fn beta1_crossover_in_op_counts() {
    let total = |w: usize, scheme: PackScheme, density: f64| {
        measure(256, 4, w, density, PackOptions::new(scheme))
            .local_ops
            .iter()
            .sum::<f64>()
    };
    // Large blocks, dense mask: CSS wins.
    assert!(
        total(64, PackScheme::CompactStorage, 0.9) < total(64, PackScheme::Simple, 0.9),
        "CSS should win at block distribution and 90% density"
    );
    // Cyclic: SSS wins (C = L makes the compact schemes pay twice).
    assert!(
        total(1, PackScheme::Simple, 0.9) < total(1, PackScheme::CompactStorage, 0.9),
        "SSS should win at cyclic distribution"
    );
}
