//! PACK ∘ UNPACK round-trip identities, run entirely on the machine (the
//! result vector never leaves its distributed form between the two ops).

use hpf_packunpack::core::{
    pack, unpack, MaskPattern, PackOptions, PackScheme, UnpackOptions, UnpackScheme,
};
use hpf_packunpack::distarray::{local_from_fn, ArrayDesc, Dist, GlobalArray};
use hpf_packunpack::machine::{CostModel, Machine, ProcGrid};

/// UNPACK(PACK(A, M), M, F) restores A at selected positions and F
/// elsewhere — for every scheme combination.
#[test]
fn unpack_of_pack_restores_selected_positions() {
    let shape = [24usize, 12];
    let grid = ProcGrid::new(&[2, 3]);
    let desc =
        ArrayDesc::new(&shape, &grid, &[Dist::BlockCyclic(3), Dist::BlockCyclic(2)]).unwrap();
    let pattern = MaskPattern::Random {
        density: 0.45,
        seed: 77,
    };
    let machine = Machine::new(grid, CostModel::cm5());

    for pack_scheme in PackScheme::ALL {
        for unpack_scheme in UnpackScheme::ALL {
            let d = &desc;
            let out = machine.run(move |proc| {
                let a = local_from_fn(d, proc.id(), |g| (g[0] * 100 + g[1]) as i32);
                let m = local_from_fn(d, proc.id(), |g| pattern.value(g, &shape));
                let packed = pack(proc, d, &a, &m, &PackOptions::new(pack_scheme)).unwrap();
                let f = local_from_fn(d, proc.id(), |_| -7i32);
                match packed.v_layout {
                    Some(layout) => unpack(
                        proc,
                        d,
                        &m,
                        &f,
                        &packed.local_v,
                        &layout,
                        &UnpackOptions::new(unpack_scheme),
                    )
                    .unwrap(),
                    None => f,
                }
            });
            let got = GlobalArray::assemble(&desc, &out.results);
            for g1 in 0..shape[1] {
                for g0 in 0..shape[0] {
                    let want = if pattern.value(&[g0, g1], &shape) {
                        (g0 * 100 + g1) as i32
                    } else {
                        -7
                    };
                    assert_eq!(
                        got.get(&[g0, g1]),
                        want,
                        "({g0},{g1}) {pack_scheme:?}+{unpack_scheme:?}"
                    );
                }
            }
        }
    }
}

/// PACK(UNPACK(V, M, F), M) is the identity on V (when |V| = Size).
#[test]
fn pack_of_unpack_is_identity_on_the_vector() {
    let shape = [96usize];
    let grid = ProcGrid::line(4);
    let desc = ArrayDesc::new(&shape, &grid, &[Dist::BlockCyclic(8)]).unwrap();
    let pattern = MaskPattern::Random {
        density: 0.5,
        seed: 13,
    };
    let size = {
        let m = pattern.global(&shape);
        m.data().iter().filter(|&&b| b).count()
    };
    let v_layout =
        hpf_packunpack::distarray::DimLayout::new_general(size, 4, size.div_ceil(4)).unwrap();

    let machine = Machine::new(grid, CostModel::cm5());
    let (d, vl) = (&desc, &v_layout);
    let out = machine.run(move |proc| {
        let m = local_from_fn(d, proc.id(), |g| pattern.value(g, &shape));
        let f = local_from_fn(d, proc.id(), |_| 0i32);
        let v: Vec<i32> = (0..vl.local_len(proc.id()))
            .map(|l| 10_000 + vl.global_of(proc.id(), l) as i32)
            .collect();
        let a = unpack(proc, d, &m, &f, &v, vl, &UnpackOptions::default()).unwrap();
        let packed = pack(proc, d, &a, &m, &PackOptions::default()).unwrap();
        (v, packed)
    });
    // The re-packed vector must be identical to the original V, including
    // its distribution (both block over Size elements).
    for (p, (v_in, packed)) in out.results.iter().enumerate() {
        assert_eq!(packed.size, size);
        let layout = packed.v_layout.unwrap();
        let expected: Vec<i32> = (0..layout.local_len(p))
            .map(|l| 10_000 + layout.global_of(p, l) as i32)
            .collect();
        assert_eq!(&packed.local_v, &expected, "proc {p}");
        // And when W' matches, the local slices coincide exactly.
        if layout.w() == vl.w() {
            assert_eq!(&packed.local_v, v_in, "proc {p} slice identity");
        }
    }
}

/// Repeated round trips are stable (no drift in layouts or sizes).
#[test]
fn iterated_roundtrip_is_stable() {
    let shape = [64usize];
    let grid = ProcGrid::line(4);
    let desc = ArrayDesc::new(&shape, &grid, &[Dist::BlockCyclic(4)]).unwrap();
    let pattern = MaskPattern::Random {
        density: 0.6,
        seed: 21,
    };
    let machine = Machine::new(grid, CostModel::cm5());
    let d = &desc;
    let out = machine.run(move |proc| {
        let m = local_from_fn(d, proc.id(), |g| pattern.value(g, &shape));
        let mut a = local_from_fn(d, proc.id(), |g| g[0] as i32);
        for _ in 0..3 {
            let packed = pack(proc, d, &a, &m, &PackOptions::default()).unwrap();
            let layout = packed.v_layout.unwrap();
            a = unpack(
                proc,
                d,
                &m,
                &a,
                &packed.local_v,
                &layout,
                &UnpackOptions::default(),
            )
            .unwrap();
        }
        a
    });
    let got = GlobalArray::assemble(&desc, &out.results);
    // Selected positions keep their original values; unselected positions
    // were fielded from the original array each round, so the whole array
    // is unchanged.
    for g in 0..shape[0] {
        assert_eq!(got.get(&[g]), g as i32);
    }
}
