//! Cross-crate property tests: for *arbitrary* shapes, grids, block sizes,
//! masks, and schemes, the parallel operations must equal the sequential
//! Fortran 90 oracle exactly.

use proptest::prelude::*;

use hpf_packunpack::core::seq::{count_seq, pack_seq, ranks_seq, unpack_seq};
use hpf_packunpack::core::{pack, unpack, PackOptions, PackScheme, UnpackOptions, UnpackScheme};
use hpf_packunpack::distarray::{
    redistribute, ArrayDesc, DimLayout, Dist, GlobalArray, RedistMode,
};
use hpf_packunpack::machine::collectives::{
    alltoallv, prefix_reduction_sum, A2aSchedule, PrsAlgorithm,
};
use hpf_packunpack::machine::{CostModel, FaultPlan, Machine, ProcGrid};

/// One array dimension: (P_i, W_i, T_i) with N_i = P_i * W_i * T_i.
fn dim_strategy() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..=3, 1usize..=3, 1usize..=3)
}

/// A full configuration: up to rank 3, plus a mask bitmap seed.
#[derive(Debug, Clone)]
struct Config {
    dims: Vec<(usize, usize, usize)>, // (P, W, T) per dimension
    mask_bits: Vec<bool>,
    values: Vec<i32>,
}

impl Config {
    fn shape(&self) -> Vec<usize> {
        self.dims.iter().map(|&(p, w, t)| p * w * t).collect()
    }
    fn grid_dims(&self) -> Vec<usize> {
        self.dims.iter().map(|&(p, _, _)| p).collect()
    }
    fn dists(&self) -> Vec<Dist> {
        self.dims
            .iter()
            .map(|&(_, w, _)| Dist::BlockCyclic(w))
            .collect()
    }
}

fn config_strategy() -> impl Strategy<Value = Config> {
    prop::collection::vec(dim_strategy(), 1..=3).prop_flat_map(|dims| {
        let n: usize = dims.iter().map(|&(p, w, t)| p * w * t).product();
        (
            Just(dims),
            prop::collection::vec(any::<bool>(), n),
            prop::collection::vec(-1000i32..1000, n),
        )
            .prop_map(|(dims, mask_bits, values)| Config {
                dims,
                mask_bits,
                values,
            })
    })
}

fn scheme_strategy() -> impl Strategy<Value = PackScheme> {
    prop::sample::select(PackScheme::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Parallel PACK == sequential PACK for arbitrary configurations.
    #[test]
    fn pack_matches_oracle(cfg in config_strategy(), scheme in scheme_strategy()) {
        let shape = cfg.shape();
        let grid = ProcGrid::new(&cfg.grid_dims());
        let desc = ArrayDesc::new(&shape, &grid, &cfg.dists()).unwrap();
        let a = GlobalArray::from_vec(&shape, cfg.values.clone());
        let m = GlobalArray::from_vec(&shape, cfg.mask_bits.clone());
        let want = pack_seq(&a, &m, None);
        let (ap, mp) = (a.partition(&desc), m.partition(&desc));
        let machine = Machine::new(grid, CostModel::cm5());
        let (d, apr, mpr) = (&desc, &ap, &mp);
        let opts = PackOptions::new(scheme);
        let out = machine.run(move |proc| {
            pack(proc, d, &apr[proc.id()], &mpr[proc.id()], &opts).unwrap()
        });
        let size = out.results[0].size;
        prop_assert_eq!(size, want.len());
        let mut got = vec![0i32; size];
        if let Some(layout) = out.results[0].v_layout {
            for (p, r) in out.results.iter().enumerate() {
                for (l, &x) in r.local_v.iter().enumerate() {
                    got[layout.global_of(p, l)] = x;
                }
            }
        }
        prop_assert_eq!(got, want);
    }

    /// Parallel UNPACK == sequential UNPACK, with arbitrary vector block
    /// size and arbitrary extra capacity.
    #[test]
    fn unpack_matches_oracle(
        cfg in config_strategy(),
        scheme in prop::sample::select(UnpackScheme::ALL.to_vec()),
        w_prime in 1usize..8,
        extra in 0usize..5,
    ) {
        let shape = cfg.shape();
        let grid = ProcGrid::new(&cfg.grid_dims());
        let desc = ArrayDesc::new(&shape, &grid, &cfg.dists()).unwrap();
        let m = GlobalArray::from_vec(&shape, cfg.mask_bits.clone());
        let f = GlobalArray::from_vec(&shape, cfg.values.clone());
        let n_prime = (count_seq(&m) + extra).max(1);
        let v: Vec<i32> = (0..n_prime as i32).map(|i| 9000 + i).collect();
        let want = unpack_seq(&v, &m, &f);
        let v_layout = DimLayout::new_general(n_prime, grid.nprocs(), w_prime).unwrap();
        let v_locals: Vec<Vec<i32>> = (0..grid.nprocs())
            .map(|p| (0..v_layout.local_len(p)).map(|l| v[v_layout.global_of(p, l)]).collect())
            .collect();
        let (mp, fp) = (m.partition(&desc), f.partition(&desc));
        let machine = Machine::new(grid, CostModel::cm5());
        let (d, mpr, fpr, vpr, vl) = (&desc, &mp, &fp, &v_locals, &v_layout);
        let opts = UnpackOptions::new(scheme);
        let out = machine.run(move |proc| {
            unpack(proc, d, &mpr[proc.id()], &fpr[proc.id()], &vpr[proc.id()], vl, &opts).unwrap()
        });
        prop_assert_eq!(GlobalArray::assemble(&desc, &out.results), want);
    }

    /// Ranking assigns the sequential ranks (checked via PS_f replay).
    #[test]
    fn ranking_matches_sequential_ranks(cfg in config_strategy()) {
        use hpf_packunpack::core::ranking::{element_ranks, rank_from_counts, slice_counts, RankShape};
        let shape = cfg.shape();
        let grid = ProcGrid::new(&cfg.grid_dims());
        let desc = ArrayDesc::new(&shape, &grid, &cfg.dists()).unwrap();
        let m = GlobalArray::from_vec(&shape, cfg.mask_bits.clone());
        let want = ranks_seq(&m);
        let mp = m.partition(&desc);
        let machine = Machine::new(grid, CostModel::cm5());
        let (d, mpr) = (&desc, &mp);
        let out = machine.run(move |proc| {
            let rshape = RankShape::from_desc(d);
            let counts = slice_counts(&mpr[proc.id()], rshape.w[0]);
            let ranking = rank_from_counts(proc, &rshape, counts, PrsAlgorithm::Auto);
            element_ranks(&rshape, &mpr[proc.id()], &ranking.ps_f)
        });
        for (p, ranks) in out.results.iter().enumerate() {
            for (l, got) in ranks.iter().enumerate() {
                let glin = desc.global_linear(&desc.global_of_local(p, l));
                prop_assert_eq!(*got, want[glin].map(|r| r as u32));
            }
        }
    }

    /// Redistribution preserves content for arbitrary layout pairs, in both
    /// wire formats.
    #[test]
    fn redistribute_preserves_content(
        cfg in config_strategy(),
        dst_ws in prop::collection::vec(1usize..=4, 3),
        indexed in any::<bool>(),
    ) {
        let shape = cfg.shape();
        let grid = ProcGrid::new(&cfg.grid_dims());
        let src = ArrayDesc::new(&shape, &grid, &cfg.dists()).unwrap();
        let dst_dists: Vec<Dist> =
            shape.iter().enumerate().map(|(i, _)| Dist::BlockCyclic(dst_ws[i % dst_ws.len()])).collect();
        let dst = ArrayDesc::new_general(&shape, &grid, &dst_dists).unwrap();
        let a = GlobalArray::from_vec(&shape, cfg.values.clone());
        let parts = a.partition(&src);
        let machine = Machine::new(grid, CostModel::cm5());
        let (s, t, pp) = (&src, &dst, &parts);
        let mode = if indexed { RedistMode::Indexed } else { RedistMode::Detected };
        let out = machine.run(move |proc| {
            redistribute(proc, s, t, &pp[proc.id()], mode, A2aSchedule::LinearPermutation)
        });
        prop_assert_eq!(GlobalArray::assemble(&dst, &out.results), a);
    }

    /// The fused prefix-reduction-sum equals a serial element-wise scan for
    /// both algorithms and any processor count / vector length.
    #[test]
    fn prs_matches_serial(
        p in 1usize..=9,
        m in 0usize..40,
        split in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let algo = if split { PrsAlgorithm::Split } else { PrsAlgorithm::Direct };
        let inputs: Vec<Vec<i32>> = (0..p)
            .map(|r| (0..m).map(|j| ((seed as usize + r * 37 + j * 11) % 101) as i32).collect())
            .collect();
        let mut acc = vec![0i32; m];
        let mut want_prefix = Vec::new();
        for v in &inputs {
            want_prefix.push(acc.clone());
            for (a, b) in acc.iter_mut().zip(v) { *a += *b; }
        }
        let machine = Machine::new(ProcGrid::line(p), CostModel::cm5());
        let inp = &inputs;
        let out = machine.run(move |proc| {
            let world = proc.world();
            prefix_reduction_sum(proc, &world, &inp[proc.id()], algo)
        });
        for (r, (prefix, total)) in out.results.iter().enumerate() {
            prop_assert_eq!(prefix, &want_prefix[r]);
            prop_assert_eq!(total, &acc);
        }
    }

    /// PACK then UNPACK (with the original array as FIELD) is the identity,
    /// bit-exactly, on a machine whose every link drops, duplicates, and
    /// delays up to 20% of data frames: the reliable transport must mask
    /// arbitrary non-crash fault schedules. Covers 1-D and 2-D grids.
    #[test]
    fn faulty_pack_unpack_roundtrip_is_identity(
        dims in prop::collection::vec(dim_strategy(), 1..=2),
        mask_seed in any::<u64>(),
        fault_seed in any::<u64>(),
        drop_p in 0.0f64..=0.2,
        dup_p in 0.0f64..=0.2,
        delay_p in 0.0f64..=0.2,
        pscheme in scheme_strategy(),
        uscheme in prop::sample::select(UnpackScheme::ALL.to_vec()),
    ) {
        let shape: Vec<usize> = dims.iter().map(|&(p, w, t)| p * w * t).collect();
        let n: usize = shape.iter().product();
        let grid = ProcGrid::new(&dims.iter().map(|&(p, _, _)| p).collect::<Vec<_>>());
        let dists: Vec<Dist> = dims.iter().map(|&(_, w, _)| Dist::BlockCyclic(w)).collect();
        let desc = ArrayDesc::new(&shape, &grid, &dists).unwrap();
        let values: Vec<i32> = (0..n as i32).map(|i| i * 7 - 100).collect();
        let mask_bits: Vec<bool> =
            (0..n).map(|i| (mask_seed >> (i % 64)) & 1 == 1).collect();
        let a = GlobalArray::from_vec(&shape, values);
        let m = GlobalArray::from_vec(&shape, mask_bits);
        let plan = FaultPlan::new(fault_seed)
            .with_drop(drop_p)
            .with_duplicate(dup_p)
            .with_delay(delay_p, 100_000.0);
        let (ap, mp) = (a.partition(&desc), m.partition(&desc));
        let machine = Machine::new(grid.clone(), CostModel::cm5())
            .with_test_preset()
            .with_faults(plan);
        let (d, apr, mpr) = (&desc, &ap, &mp);
        let popts = PackOptions::new(pscheme);
        let po = &popts;
        let packed = machine.run(move |proc| {
            pack(proc, d, &apr[proc.id()], &mpr[proc.id()], po).unwrap()
        });
        prop_assert_eq!(packed.results[0].size, count_seq(&m));
        if let Some(v_layout) = packed.results[0].v_layout {
            let v_locals: Vec<Vec<i32>> =
                packed.results.iter().map(|r| r.local_v.clone()).collect();
            let uopts = UnpackOptions::new(uscheme);
            let (vpr, vl, uo) = (&v_locals, &v_layout, &uopts);
            let out = machine.run(move |proc| {
                unpack(proc, d, &mpr[proc.id()], &apr[proc.id()], &vpr[proc.id()], vl, uo)
                    .unwrap()
            });
            // FIELD == A, so the roundtrip must restore A exactly.
            prop_assert_eq!(GlobalArray::assemble(&desc, &out.results), a);
        }
    }

    /// All-to-allv delivers every element exactly once under both schedules.
    #[test]
    fn alltoallv_is_a_permutation_of_the_data(
        p in 1usize..=6,
        sizes in prop::collection::vec(0usize..6, 36),
        naive in any::<bool>(),
    ) {
        let schedule = if naive { A2aSchedule::NaivePush } else { A2aSchedule::LinearPermutation };
        let machine = Machine::new(ProcGrid::line(p), CostModel::cm5());
        let sz = &sizes;
        let out = machine.run(move |proc| {
            let world = proc.world();
            let sends: Vec<Vec<(u32, u32)>> = (0..p)
                .map(|j| {
                    let len = sz[(proc.id() * p + j) % sz.len()];
                    (0..len).map(|k| (proc.id() as u32, (j * 100 + k) as u32)).collect()
                })
                .collect();
            alltoallv(proc, &world, sends, schedule)
        });
        for (j, recvs) in out.results.iter().enumerate() {
            for (r, msg) in recvs.iter().enumerate() {
                let want_len = sizes[(r * p + j) % sizes.len()];
                prop_assert_eq!(msg.len(), want_len);
                for (k, &(src, tag)) in msg.iter().enumerate() {
                    prop_assert_eq!(src as usize, r);
                    prop_assert_eq!(tag as usize, j * 100 + k);
                }
            }
        }
    }
}
