//! Integration tests for the redistribution substrate and the Section 6.3
//! preliminary-redistribution PACK schemes.

use hpf_packunpack::core::seq::pack_seq;
use hpf_packunpack::core::{pack, pack_redistributed, MaskPattern, PackOptions, RedistScheme};
use hpf_packunpack::distarray::{redistribute, ArrayDesc, Dist, GlobalArray, RedistMode};
use hpf_packunpack::machine::collectives::A2aSchedule;
use hpf_packunpack::machine::{Category, CostModel, Machine, ProcGrid};

/// Redistribution composes: cyclic -> block-cyclic(4) -> block equals
/// cyclic -> block directly.
#[test]
fn redistribution_composes() {
    let shape = [48usize];
    let grid = ProcGrid::line(4);
    let cyc = ArrayDesc::new(&shape, &grid, &[Dist::Cyclic]).unwrap();
    let mid = ArrayDesc::new(&shape, &grid, &[Dist::BlockCyclic(4)]).unwrap();
    let blk = ArrayDesc::new(&shape, &grid, &[Dist::Block]).unwrap();
    let a = GlobalArray::from_fn(&shape, |g| g[0] as i32 * 3);
    let parts = a.partition(&cyc);
    let machine = Machine::new(grid, CostModel::cm5());
    let (c, m, b, pp) = (&cyc, &mid, &blk, &parts);
    let out = machine.run(move |proc| {
        let local = pp[proc.id()].clone();
        let two_hop = {
            let x = redistribute(
                proc,
                c,
                m,
                &local,
                RedistMode::Detected,
                A2aSchedule::LinearPermutation,
            );
            redistribute(
                proc,
                m,
                b,
                &x,
                RedistMode::Detected,
                A2aSchedule::LinearPermutation,
            )
        };
        let one_hop = redistribute(
            proc,
            c,
            b,
            &local,
            RedistMode::Indexed,
            A2aSchedule::LinearPermutation,
        );
        (two_hop, one_hop)
    });
    for (p, (two, one)) in out.results.iter().enumerate() {
        assert_eq!(two, one, "proc {p}");
    }
    assert_eq!(
        GlobalArray::assemble(
            &blk,
            &out.results
                .iter()
                .map(|(t, _)| t.clone())
                .collect::<Vec<_>>()
        ),
        a
    );
}

/// PACK after explicit redistribution equals PACK on the original layout.
#[test]
fn pack_is_layout_invariant() {
    let shape = [16usize, 16];
    let grid = ProcGrid::new(&[2, 2]);
    let cyc = ArrayDesc::new(&shape, &grid, &[Dist::Cyclic, Dist::Cyclic]).unwrap();
    let pattern = MaskPattern::Random {
        density: 0.4,
        seed: 10,
    };
    let a = GlobalArray::from_fn(&shape, |g| (g[0] * 31 + g[1]) as i32);
    let m = pattern.global(&shape);
    let want = pack_seq(&a, &m, None);

    let machine = Machine::new(grid, CostModel::cm5());
    let (ap, mp) = (a.partition(&cyc), m.partition(&cyc));
    let (c, apr, mpr) = (&cyc, &ap, &mp);
    for scheme in [RedistScheme::SelectedData, RedistScheme::WholeArrays] {
        let out = machine.run(move |proc| {
            pack_redistributed(
                proc,
                c,
                &apr[proc.id()],
                &mpr[proc.id()],
                scheme,
                &PackOptions::default(),
            )
            .unwrap()
        });
        let size = out.results[0].size;
        assert_eq!(size, want.len());
        let layout = out.results[0].v_layout.unwrap();
        let mut got = vec![0i32; size];
        for (p, r) in out.results.iter().enumerate() {
            for (l, &x) in r.local_v.iter().enumerate() {
                got[layout.global_of(p, l)] = x;
            }
        }
        assert_eq!(got, want, "{scheme:?}");
    }
}

/// The redistribution categories are charged for Red.1/Red.2 but never for
/// a plain PACK.
#[test]
fn redistribution_categories_are_scoped() {
    let grid = ProcGrid::line(4);
    let desc = ArrayDesc::new(&[256], &grid, &[Dist::Cyclic]).unwrap();
    let pattern = MaskPattern::Random {
        density: 0.5,
        seed: 2,
    };
    let machine = Machine::new(grid, CostModel::cm5());
    let d = &desc;

    let plain = machine.run(move |proc| {
        let a = hpf_packunpack::distarray::local_from_fn(d, proc.id(), |g| g[0] as i32);
        let m = pattern.local(d, proc.id());
        pack(proc, d, &a, &m, &PackOptions::default()).unwrap();
    });
    assert_eq!(plain.max_cat_ms(Category::RedistDetect), 0.0);
    assert_eq!(plain.max_cat_ms(Category::RedistComm), 0.0);

    let red = machine.run(move |proc| {
        let a = hpf_packunpack::distarray::local_from_fn(d, proc.id(), |g| g[0] as i32);
        let m = pattern.local(d, proc.id());
        pack_redistributed(
            proc,
            d,
            &a,
            &m,
            RedistScheme::WholeArrays,
            &PackOptions::default(),
        )
        .unwrap();
    });
    assert!(red.max_cat_ms(Category::RedistDetect) > 0.0);
    assert!(red.max_cat_ms(Category::RedistComm) > 0.0);
}

/// Red.2 detection costs are mask-independent; Red.1 traffic is
/// mask-dependent (Table II's qualitative structure).
#[test]
fn red2_is_density_insensitive_red1_is_not() {
    // Zero start-up cost isolates the *volume* term of the redistribution
    // traffic (with CM-5 τ = 86 µs the small messages here are start-up
    // bound and the ratio compresses).
    let cost = CostModel {
        tau_ns: 0.0,
        ..CostModel::cm5()
    };
    let time = |density: f64, scheme: RedistScheme| {
        let grid = ProcGrid::line(4);
        let desc = ArrayDesc::new(&[1024], &grid, &[Dist::Cyclic]).unwrap();
        let machine = Machine::new(grid, cost);
        let d = &desc;
        let pattern = MaskPattern::Random { density, seed: 3 };
        let out = machine.run(move |proc| {
            let a = hpf_packunpack::distarray::local_from_fn(d, proc.id(), |g| g[0] as i32);
            let m = pattern.local(d, proc.id());
            pack_redistributed(proc, d, &a, &m, scheme, &PackOptions::default()).unwrap();
        });
        out.max_cat_ms(Category::RedistComm)
    };
    let red1_spread = time(0.9, RedistScheme::SelectedData) / time(0.1, RedistScheme::SelectedData);
    let red2_spread = time(0.9, RedistScheme::WholeArrays) / time(0.1, RedistScheme::WholeArrays);
    assert!(
        red1_spread > 2.0,
        "Red.1 traffic should scale with density ({red1_spread})"
    );
    assert!(
        red2_spread < 1.2,
        "Red.2 traffic should be flat ({red2_spread})"
    );
}
