//! Cross-intrinsic integration: the intrinsics must compose with each
//! other and with PACK/UNPACK the way their Fortran semantics promise.

use hpf_packunpack::core::ranking::{element_ranks, rank_from_counts, slice_counts, RankShape};
use hpf_packunpack::core::{pack, MaskPattern, PackOptions};
use hpf_packunpack::distarray::{local_from_fn, ArrayDesc, Dist, GlobalArray};
use hpf_packunpack::intrinsics::{
    count_all, cshift_dim, merge, spread_dim, sum_all, sum_dim, sum_prefix_dim, ScanKind,
};
use hpf_packunpack::machine::collectives::{A2aSchedule, PrsAlgorithm};
use hpf_packunpack::machine::{CostModel, Machine, ProcGrid};

/// The paper's ranking is a masked exclusive scan: for a 1-D array, the
/// rank of a selected element equals `SUM_PREFIX(merge(1, 0, mask),
/// exclusive)` at its position. Two independent implementations must agree.
#[test]
fn ranking_equals_sum_prefix_of_mask() {
    let n = 96usize;
    let grid = ProcGrid::line(4);
    let desc = ArrayDesc::new(&[n], &grid, &[Dist::BlockCyclic(4)]).unwrap();
    let pattern = MaskPattern::Random {
        density: 0.55,
        seed: 8,
    };
    let machine = Machine::new(grid, CostModel::cm5());
    let d = &desc;
    let out = machine.run(move |proc| {
        let mask = pattern.local(d, proc.id());
        // Path 1: the paper's ranking machinery.
        let shape = RankShape::from_desc(d);
        let counts = slice_counts(&mask, shape.w[0]);
        let ranking = rank_from_counts(proc, &shape, counts, PrsAlgorithm::Auto);
        let via_ranking = element_ranks(&shape, &mask, &ranking.ps_f);
        // Path 2: MERGE + SUM_PREFIX.
        let ones = vec![1i32; mask.len()];
        let zeros = vec![0i32; mask.len()];
        let indicator = merge(proc, &ones, &zeros, &mask);
        let scan = sum_prefix_dim(
            proc,
            d,
            &indicator,
            0,
            ScanKind::Exclusive,
            PrsAlgorithm::Auto,
        );
        let via_scan: Vec<Option<u32>> = mask
            .iter()
            .zip(&scan)
            .map(|(&b, &s)| b.then_some(s as u32))
            .collect();
        (via_ranking, via_scan)
    });
    for (p, (a, b)) in out.results.iter().enumerate() {
        assert_eq!(a, b, "proc {p}");
    }
}

/// COUNT equals PACK's Size.
#[test]
fn count_equals_pack_size() {
    let grid = ProcGrid::new(&[2, 2]);
    let desc = ArrayDesc::new(&[16, 8], &grid, &[Dist::Cyclic, Dist::BlockCyclic(2)]).unwrap();
    let pattern = MaskPattern::Random {
        density: 0.35,
        seed: 12,
    };
    let machine = Machine::new(grid, CostModel::cm5());
    let d = &desc;
    let out = machine.run(move |proc| {
        let shape = d.shape();
        let a = local_from_fn(d, proc.id(), |g| (g[0] + g[1]) as i32);
        let m = local_from_fn(d, proc.id(), |g| pattern.value(g, &shape));
        let size = pack(proc, d, &a, &m, &PackOptions::default()).unwrap().size;
        let count = count_all(proc, d, &m);
        (size, count)
    });
    for (size, count) in out.results {
        assert_eq!(size, count);
    }
}

/// CSHIFT composes: shifting by k then by j equals shifting by k + j.
#[test]
fn cshift_composes() {
    let n = 24usize;
    let grid = ProcGrid::line(3);
    let desc = ArrayDesc::new(&[n], &grid, &[Dist::BlockCyclic(2)]).unwrap();
    let machine = Machine::new(grid, CostModel::cm5());
    let d = &desc;
    let out = machine.run(move |proc| {
        let a = local_from_fn(d, proc.id(), |g| g[0] as i32 * 11);
        let sched = A2aSchedule::LinearPermutation;
        let two_step = {
            let x = cshift_dim(proc, d, &a, 0, 5, sched);
            cshift_dim(proc, d, &x, 0, -2, sched)
        };
        let one_step = cshift_dim(proc, d, &a, 0, 3, sched);
        (two_step, one_step)
    });
    for (two, one) in out.results {
        assert_eq!(two, one);
    }
}

/// SPREAD then SUM over the new dimension multiplies by NCOPIES.
#[test]
fn spread_then_sum_scales() {
    let n = 12usize;
    let ncopies = 5usize;
    let src_grid = ProcGrid::line(4);
    let src = ArrayDesc::new(&[n], &src_grid, &[Dist::BlockCyclic(3)]).unwrap();
    let dst_grid = ProcGrid::new(&[2, 2]);
    let dst = ArrayDesc::new_general(
        &[ncopies, n],
        &dst_grid,
        &[Dist::Block, Dist::BlockCyclic(3)],
    )
    .unwrap();
    let machine = Machine::new(src_grid, CostModel::cm5());
    let (s, d) = (&src, &dst);
    let out = machine.run(move |proc| {
        let a = local_from_fn(s, proc.id(), |g| g[0] as i64 + 1);
        let wide = spread_dim(proc, s, d, &a, 0, A2aSchedule::LinearPermutation);
        let total_wide = sum_all(proc, d, &wide);
        let total_src = sum_all(proc, s, &a);
        (total_wide, total_src)
    });
    for (wide, src_total) in out.results {
        assert_eq!(wide, src_total * ncopies as i64);
    }
}

/// SUM(A, DIM) summed again equals SUM(A) — the reduction tower is
/// consistent.
#[test]
fn dim_reduction_tower_is_consistent() {
    let grid = ProcGrid::new(&[2, 2]);
    let desc = ArrayDesc::new(&[8, 8], &grid, &[Dist::BlockCyclic(2); 2]).unwrap();
    let a = GlobalArray::from_fn(&[8, 8], |g| (g[0] * 3 + g[1] * 7) as i64);
    let want: i64 = a.data().iter().sum();
    let parts = a.partition(&desc);
    let machine = Machine::new(grid, CostModel::cm5());
    let (d, pp) = (&desc, &parts);
    let out = machine.run(move |proc| {
        let local = &pp[proc.id()];
        // Reduce dim 0 (replicated along grid dim 0), then sum everything:
        // each line sum appears once per processor *column*, so divide by
        // the replication factor via summing only on coord 0.
        let lines = sum_dim(proc, d, local, 0);
        let my_contrib: i64 = if proc.coord(0) == 0 {
            lines.iter().sum()
        } else {
            0
        };
        let total = hpf_packunpack::machine::collectives::allreduce_sum(
            proc,
            &proc.world(),
            &[my_contrib],
            PrsAlgorithm::Direct,
        )[0];
        let direct = sum_all(proc, d, local);
        (total, direct)
    });
    for (total, direct) in out.results {
        assert_eq!(total, want);
        assert_eq!(direct, want);
    }
}
