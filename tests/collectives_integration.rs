//! Cross-crate sanity of the simulated cost model: monotonicity, scale
//! behaviour, and the paper's qualitative claims about where time goes.

use hpf_packunpack::core::{pack, MaskPattern, PackOptions, PackScheme};
use hpf_packunpack::distarray::{local_from_fn, ArrayDesc, Dist};
use hpf_packunpack::machine::collectives::{prefix_reduction_sum, PrsAlgorithm};
use hpf_packunpack::machine::{Category, CostModel, Machine, ProcGrid};

fn pack_total_ms(n: usize, p: usize, w: usize, density: f64) -> f64 {
    let grid = ProcGrid::line(p);
    let desc = ArrayDesc::new(&[n], &grid, &[Dist::BlockCyclic(w)]).unwrap();
    let pattern = MaskPattern::Random { density, seed: 7 };
    let machine = Machine::new(grid, CostModel::cm5());
    let d = &desc;
    machine
        .run(move |proc| {
            let a = local_from_fn(d, proc.id(), |g| g[0] as i32);
            let m = local_from_fn(d, proc.id(), |g| pattern.value(g, &[n]));
            pack(proc, d, &a, &m, &PackOptions::default()).unwrap();
        })
        .max_time_ms()
}

#[test]
fn pack_time_is_monotone_in_array_size() {
    let t1 = pack_total_ms(1024, 4, 8, 0.5);
    let t2 = pack_total_ms(4096, 4, 8, 0.5);
    let t3 = pack_total_ms(16384, 4, 8, 0.5);
    assert!(t1 < t2 && t2 < t3, "{t1} {t2} {t3}");
}

#[test]
fn pack_time_grows_as_blocks_shrink() {
    // Fixed N, P, density: smaller blocks = more tiles = more work.
    let times: Vec<f64> = [64usize, 16, 4, 1]
        .iter()
        .map(|&w| pack_total_ms(4096, 4, w, 0.5))
        .collect();
    for pair in times.windows(2) {
        assert!(
            pair[0] <= pair[1] * 1.05,
            "shrinking blocks should not speed PACK up: {times:?}"
        );
    }
    assert!(
        times[3] > times[0],
        "cyclic must be strictly slower than large blocks"
    );
}

#[test]
fn zero_cost_model_times_nothing_but_still_computes() {
    let grid = ProcGrid::line(4);
    let desc = ArrayDesc::new(&[64], &grid, &[Dist::Block]).unwrap();
    let machine = Machine::new(grid, CostModel::zero());
    let d = &desc;
    let out = machine.run(move |proc| {
        let a = local_from_fn(d, proc.id(), |g| g[0] as i32);
        let m = local_from_fn(d, proc.id(), |g| g[0] % 2 == 0);
        pack(proc, d, &a, &m, &PackOptions::default()).unwrap().size
    });
    assert_eq!(out.results[0], 32);
    assert_eq!(out.max_time_ms(), 0.0);
}

#[test]
fn fused_prs_beats_sequential_prefix_then_reduce_on_startups() {
    // The point of the fused primitive (Section 5.1): one exchange instead
    // of two. Compare message start-ups of one fused call vs two.
    let startups = |fused: bool| {
        let machine = Machine::new(ProcGrid::line(8), CostModel::cm5());
        machine
            .run(move |proc| {
                let world = proc.world();
                let v = vec![1i32; 64];
                if fused {
                    prefix_reduction_sum(proc, &world, &v, PrsAlgorithm::Direct);
                } else {
                    prefix_reduction_sum(proc, &world, &v, PrsAlgorithm::Direct);
                    prefix_reduction_sum(proc, &world, &v, PrsAlgorithm::Direct);
                }
            })
            .total_startups()
    };
    assert_eq!(2 * startups(true), startups(false));
}

#[test]
fn message_volume_matches_scheme_accounting() {
    // With a block-distributed 50%-dense mask over a *cyclic* input, SSS
    // sends (rank, value) pairs: exactly 2 words per off-processor packed
    // element. CMS on the same input sends 3 words per single-element
    // segment. This pins the paper's 6.4.2 volume claims to the wire.
    let grid = ProcGrid::line(4);
    let desc = ArrayDesc::new(&[64], &grid, &[Dist::Cyclic]).unwrap();
    let machine = Machine::new(grid, CostModel::cm5());
    let d = &desc;
    let words = |scheme: PackScheme| {
        machine
            .run(move |proc| {
                let a = local_from_fn(d, proc.id(), |g| g[0] as i32);
                // Select everything: Size = 64, ranks = identity, so with a
                // block result vector the destination of global g is g/16 but
                // the cyclic owner of g is g%4: almost all traffic is remote.
                let m = vec![true; d.local_len(proc.id())];
                pack(proc, d, &a, &m, &PackOptions::new(scheme)).unwrap();
            })
            .total_words_sent()
    };
    let sss = words(PackScheme::Simple);
    let cms = words(PackScheme::CompactMessage);
    // Both runs share identical ranking (PRS) traffic, so the difference
    // isolates the redistribution messages. Full mask on cyclic input:
    // every slice has W_0 = 1 element, so every CMS segment holds exactly
    // one element — 3 words against SSS's 2-word pair, i.e. +1 word per
    // remote element. Remote elements: rank g goes to block g/16 but lives
    // on g mod 4; they coincide for 16 of the 64 elements, leaving 48.
    assert_eq!(cms - sss, 48, "sss={sss} cms={cms}");
}

#[test]
fn scaled_experiment_shifts_time_to_communication() {
    // Fixed local size, growing P (the Section 7 scaled experiment, shrunk).
    let share = |p: usize| {
        let n = 1024 * p;
        let grid = ProcGrid::line(p);
        let desc = ArrayDesc::new(&[n], &grid, &[Dist::BlockCyclic(16)]).unwrap();
        let pattern = MaskPattern::Random {
            density: 0.5,
            seed: 11,
        };
        let machine = Machine::new(grid, CostModel::cm5());
        let d = &desc;
        let out = machine.run(move |proc| {
            let a = local_from_fn(d, proc.id(), |g| g[0] as i32);
            let m = pattern.local(d, proc.id());
            pack(proc, d, &a, &m, &PackOptions::default()).unwrap();
        });
        let comm =
            out.max_cat_ms(Category::PrefixReductionSum) + out.max_cat_ms(Category::ManyToMany);
        comm / out.max_time_ms()
    };
    assert!(
        share(16) > share(2),
        "communication share must grow with P at fixed local size"
    );
}

/// Tracing and the communication matrix compose with a full PACK run: the
/// traced spans account for the whole timeline and the matrix carries the
/// redistribution plus ranking traffic.
#[test]
fn tracing_and_comm_matrix_cover_a_pack_run() {
    let grid = ProcGrid::line(4);
    let desc = ArrayDesc::new(&[256], &grid, &[Dist::BlockCyclic(4)]).unwrap();
    let pattern = MaskPattern::Random {
        density: 0.5,
        seed: 77,
    };
    let machine = Machine::new(grid, CostModel::cm5()).with_tracing(true);
    let d = &desc;
    let out = machine.run(move |proc| {
        let a = local_from_fn(d, proc.id(), |g| g[0] as i32);
        let m = local_from_fn(d, proc.id(), |g| pattern.value(g, &[256]));
        pack(proc, d, &a, &m, &PackOptions::default()).unwrap().size
    });
    for (c, trace) in out.clocks.iter().zip(&out.traces) {
        let span_total: f64 = trace.iter().map(|s| s.len_ns()).sum();
        assert!(
            (span_total - c.now_ns).abs() < 1e-6,
            "spans must cover the clock"
        );
    }
    // The matrix total matches the clock total.
    let matrix_total: u64 = out.comm_matrix.iter().flatten().sum();
    assert_eq!(matrix_total, out.total_words_sent());
    assert!(matrix_total > 0);
    // The Gantt includes all three stages.
    let g = out.gantt(60);
    assert!(g.contains('L') && g.contains('P') && g.contains('M'), "{g}");
}
