#!/usr/bin/env bash
# Regenerate every canonical experiment output in results/.
set -euo pipefail
cd "$(dirname "$0")/.."
for b in table1 table2 fig3 fig4 fig5 prs scaling ablations balance timeline; do
  echo "== $b =="
  cargo run -p hpf-bench --release --bin "$b" > "results/$b.txt"
done
echo "done; outputs in results/"
