#!/usr/bin/env bash
# Regenerate every canonical experiment output in results/.
set -euo pipefail
cd "$(dirname "$0")/.."
for b in table1 table2 fig3 fig4 fig5 prs scaling ablations balance; do
  echo "== $b =="
  cargo run -p hpf-bench --release --bin "$b" > "results/$b.txt"
done

echo "== timeline (+ Perfetto trace) =="
cargo run -p hpf-bench --release --bin timeline -- --trace-out results/timeline-trace.json \
  > results/timeline.txt

echo "== perf (machine-readable BENCH_<rev>.json) =="
# Prune per-revision reports from older revisions: only the committed
# baseline plus the current revision's report belong in results/.
rev="$(git rev-parse --short HEAD)"
for f in results/BENCH_*.json; do
  case "$f" in
    results/BENCH_baseline.json | "results/BENCH_$rev.json") ;;
    *) echo "pruning stale $f"; rm -f "$f" ;;
  esac
done
cargo run -p hpf-bench --release --bin perf
python3 scripts/validate_bench.py "results/BENCH_$rev.json"

echo "== perf smoke baseline (perfdiff reference) + critical-path report =="
# The committed baseline must be a --smoke run: that is what ci.sh compares
# against, and smoke workloads are small enough to keep CI fast while still
# covering every scheme. Simulated costs are seed-deterministic, so the
# baseline only changes when the cost model or algorithms change.
cargo run -p hpf-bench --release --bin perf -- --smoke \
  --out results/BENCH_baseline.json --critpath-out results/critpath.txt
python3 scripts/validate_bench.py results/BENCH_baseline.json

echo "== bench history (wall + simulated trend table) =="
# Tabulates headline metrics from every committed BENCH_*.json revision
# plus the two reports regenerated above into a markdown trend table.
python3 scripts/bench-history.py --out results/bench-history.md

echo "done; outputs in results/"
