#!/usr/bin/env bash
# Regenerate every canonical experiment output in results/.
set -euo pipefail
cd "$(dirname "$0")/.."
for b in table1 table2 fig3 fig4 fig5 prs scaling ablations balance; do
  echo "== $b =="
  cargo run -p hpf-bench --release --bin "$b" > "results/$b.txt"
done

echo "== timeline (+ Perfetto trace) =="
cargo run -p hpf-bench --release --bin timeline -- --trace-out results/timeline-trace.json \
  > results/timeline.txt

echo "== perf (machine-readable BENCH_<rev>.json) =="
cargo run -p hpf-bench --release --bin perf
python3 scripts/validate_bench.py "results/BENCH_$(git rev-parse --short HEAD).json"

echo "done; outputs in results/"
