#!/usr/bin/env python3
"""Validate a BENCH_<rev>.json perf report against scripts/bench-schema.json.

Stdlib-only: implements the subset of JSON Schema the schema file uses
(type, required, properties, items, enum, minimum, minItems), then applies
cross-field checks the schema cannot express: every paper scheme must
appear (restricted to the filtered group when the report carries a
`--filter`), per-stage times must sum to (approximately) the total, every
recorded cost-model conformance verdict must pass, every `exec_hot`
workload must report **zero** steady-state allocations per execute and
zero deep-copied payload words (and dense-mask `.dense` workloads must
move at least 90% of their elements through bulk copy ops — the
copy-program lowering gate), every `recovery` workload must have
actually recovered its scheduled crash (replays >= 1, a live replay log,
non-negative wall-clock overhead), every `memory` workload's predicted
peak must bound the measured one without over-estimating past the 1.25
ratio gate (with byte-exact mailbox-ring accounting), every `scale`
workload must report bit-identical results across worker-pool sizes 1
and N with a positive ns/proc-step, and every workload's `wall`
statistics must be coherent:
smoke reports are single-rep with `cv` null (unmeasured, never 0.0),
full reports are multi-rep with `cv` measured and below WALL_CV_GATE —
a noisier measurement means the wall numbers are not trustworthy enough
to gate future revisions against.

Usage: validate_bench.py REPORT.json [SCHEMA.json]
Exit code 0 on success, 1 with a diagnostic per violation otherwise.
"""

import json
import os
import sys

# Mirrors hpf_analysis::memory::MEM_RATIO_GATE.
MEM_RATIO_GATE = 1.25

# Maximum tolerated coefficient of variation (MAD / median) of a full
# report's wall measurement; noisier than this and the report is unfit to
# serve as a perfdiff --wall baseline.
WALL_CV_GATE = 0.15

# The cv gate only applies to workloads whose wall median is at least this
# many milliseconds: one scheduler preemption costs on the order of a
# millisecond, so below a few milliseconds a single descheduling event
# shifts the sample by tens of percent and relative noise is meaningless.
# Sub-threshold workloads still get wall stats reported (and their
# regressions are caught by the simulated gate); they just cannot fail on
# noise alone.
WALL_CV_MIN_MS = 5.0

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def check(instance, schema, path, errors):
    """Recursively validate `instance` against the schema subset."""
    if "enum" in schema:
        if instance not in schema["enum"]:
            errors.append(f"{path}: {instance!r} not in {schema['enum']}")
        return

    types = schema.get("type")
    if types is not None:
        allowed = types if isinstance(types, list) else [types]
        ok = False
        for t in allowed:
            py = TYPES[t]
            if isinstance(instance, py) and not (
                t in ("integer", "number") and isinstance(instance, bool)
            ):
                ok = True
                break
        if not ok:
            errors.append(f"{path}: expected {allowed}, got {type(instance).__name__}")
            return

    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        if "minimum" in schema and instance < schema["minimum"]:
            errors.append(f"{path}: {instance} < minimum {schema['minimum']}")

    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in instance:
                check(instance[key], sub, f"{path}.{key}", errors)

    if isinstance(instance, list):
        if "minItems" in schema and len(instance) < schema["minItems"]:
            errors.append(f"{path}: {len(instance)} items < minItems {schema['minItems']}")
        item_schema = schema.get("items")
        if item_schema:
            for i, item in enumerate(instance):
                check(item, item_schema, f"{path}[{i}]", errors)


def coverage_checks(report, errors):
    """Paper coverage: all PACK schemes, both redistributions, both UNPACK
    schemes, the hot-path sweep, and the four application kernels must be
    present. A report produced with `--filter GROUP` only owes the
    workloads of that group."""
    names = [w["name"] for w in report.get("workloads", []) if isinstance(w, dict)]
    required_prefixes = [
        ("pack", "pack.sss"), ("pack", "pack.css"), ("pack", "pack.cms"),
        ("redist", "pack.red1"), ("redist", "pack.red2"),
        ("unpack", "unpack.sss"), ("unpack", "unpack.css"),
        ("plan_reuse", "plan_reuse.pack.sss"),
        ("plan_reuse", "plan_reuse.pack.css"),
        ("plan_reuse", "plan_reuse.pack.cms"),
        ("plan_reuse", "plan_reuse.unpack.sss"),
        ("plan_reuse", "plan_reuse.unpack.css"),
        ("exec_hot", "exec_hot.pack.sss"),
        ("exec_hot", "exec_hot.pack.css"),
        ("exec_hot", "exec_hot.pack.cms"),
        ("exec_hot", "exec_hot.unpack.sss"),
        ("exec_hot", "exec_hot.unpack.css"),
        ("recovery", "recovery.pack.sss"),
        ("recovery", "recovery.pack.cms"),
        ("recovery", "recovery.unpack.sss"),
        ("apps", "apps.compaction"), ("apps", "apps.sort"),
        ("apps", "apps.spmv"), ("apps", "apps.gather"),
        ("memory", "memory.pack.sss"),
        ("memory", "memory.pack.css"),
        ("memory", "memory.pack.cms"),
        ("memory", "memory.unpack.sss"),
        ("memory", "memory.unpack.css"),
        ("memory", "memory.pack.red1"),
        ("memory", "memory.pack.red2"),
        ("scale", "scale.roundtrip.p64"),
        ("scale", "scale.roundtrip.p1024"),
        ("scale", "scale.roundtrip.p4096"),
    ]
    fil = report.get("filter")
    for group, prefix in required_prefixes:
        if fil is not None and group != fil:
            continue
        if not any(n == prefix or n.startswith(prefix + ".") for n in names):
            errors.append(f"coverage: no workload named {prefix}[.*]")
    # The exec_hot sweep must include dense-mask variants: they are where
    # the bulk-copy fraction and the memcpy-roof ns/element are gated.
    if fil in (None, "exec_hot"):
        hot_names = [n for n in names if n.startswith("exec_hot.")]
        if hot_names and not any(n.endswith(".dense") for n in hot_names):
            errors.append("coverage: exec_hot group carries no .dense workloads")
    for w in report.get("workloads", []):
        if isinstance(w, dict) and fil is not None and w.get("group") != fil:
            errors.append(
                f"workload {w.get('name')}: group {w.get('group')} leaked "
                f"into a report filtered to {fil}"
            )
    # Each stage time is a per-category max over processors, so it can never
    # exceed the critical-path total (the max over processors of the sums).
    # Their sum must bracket the total: at least the total (maxima dominate
    # the slowest processor's per-category times), and not much more — the
    # slack is the load imbalance between the per-category argmax processors.
    # Synchronized kernels (pack/redist/unpack) stay within a few percent;
    # apps with data-dependent imbalance (sample sort) have been measured up
    # to ~16%, so that group gets a looser bound.
    for w in report.get("workloads", []):
        if not isinstance(w, dict) or "stages_ms" not in w:
            continue
        total = w.get("total_ms", 0)
        if not isinstance(total, (int, float)):
            continue
        stage_sum = 0.0
        for stage, v in w["stages_ms"].items():
            if not isinstance(v, (int, float)):
                continue
            stage_sum += v
            if v > total * 1.001 + 1e-9:
                errors.append(
                    f"workload {w.get('name')}: stage {stage} = {v} exceeds total {total}"
                )
        slack = 1.35 if w.get("group") == "apps" else 1.15
        if stage_sum < total * 0.999 - 1e-9 or stage_sum > total * slack + 1e-9:
            errors.append(
                f"workload {w.get('name')}: sum(stages_ms) = {stage_sum:.6f} outside "
                f"[{total:.6f}, {total * slack:.6f}] (total_ms x {slack})"
            )
        conf = w.get("conformance")
        if isinstance(conf, dict):
            if conf.get("pass") is not True:
                errors.append(
                    f"workload {w.get('name')}: conformance failed "
                    f"(scheme {conf.get('scheme')}, rel_error {conf.get('rel_error')})"
                )
            # Phase attribution must tile the totals exactly.
            for side in ("predicted", "measured"):
                plan = conf.get(f"{side}_plan_ops")
                execute = conf.get(f"{side}_execute_ops")
                total = conf.get(f"{side}_ops")
                if (
                    isinstance(plan, int)
                    and isinstance(execute, int)
                    and plan + execute != total
                ):
                    errors.append(
                        f"workload {w.get('name')}: {side} plan {plan} + "
                        f"execute {execute} != total {total}"
                    )
        hot = w.get("hot")
        if isinstance(hot, dict):
            name = w.get("name")
            # The zero-copy execute gate: from the third execution of a plan
            # onward the pooled buffers absorb the whole loop, so the
            # counting allocator must see literally nothing, and a
            # fault-free run must never deep-copy a payload.
            if hot.get("allocs_per_execute") != 0:
                errors.append(
                    f"workload {name}: {hot.get('allocs_per_execute')} heap "
                    "allocations per steady-state execute (must be 0)"
                )
            if hot.get("alloc_bytes_per_execute") != 0:
                errors.append(
                    f"workload {name}: {hot.get('alloc_bytes_per_execute')} heap "
                    "bytes per steady-state execute (must be 0)"
                )
            if hot.get("clone_words") != 0:
                errors.append(
                    f"workload {name}: fault-free run deep-copied "
                    f"{hot.get('clone_words')} payload words (must be 0)"
                )
            wall = hot.get("wall_ns_per_exec")
            if not isinstance(wall, (int, float)) or wall <= 0:
                errors.append(f"workload {name}: wall_ns_per_exec {wall} not positive")
            # The copy-program lowering gate: on dense (contiguous-mask)
            # workloads the plan must move nearly everything through bulk
            # Contig/Strided ops; a fraction below 0.9 means the lowering
            # stopped finding the runs the mask guarantees.
            cops = hot.get("copy_ops")
            if not isinstance(cops, dict):
                errors.append(f"workload {name}: hot report carries no copy_ops")
            elif isinstance(name, str) and name.endswith(".dense"):
                bf = cops.get("bulk_fraction")
                if not isinstance(bf, (int, float)) or bf < 0.9:
                    errors.append(
                        f"workload {name}: dense-mask bulk-copy fraction {bf} "
                        "below 0.9 — the plan-time lowering is not producing "
                        "bulk ops"
                    )
        rec = w.get("recovery")
        if isinstance(rec, dict):
            name = w.get("name")
            # The crash-recovery gate: every recovery workload schedules a
            # crash, so the run must actually have recovered (at least one
            # replay), the peers must have been retaining frames for the
            # victim (a live replay log), and the wall-clock overhead of
            # recovering must be non-negative by construction.
            if rec.get("recovered") is not True:
                errors.append(f"workload {name}: crash was not recovered")
            if not rec.get("replays", 0) >= 1:
                errors.append(
                    f"workload {name}: {rec.get('replays')} replays "
                    "(the scheduled crash never fired)"
                )
            if not rec.get("replay_log_high_water_words", 0) > 0:
                errors.append(
                    f"workload {name}: replay log high-water is 0 — "
                    "peers retained no frames for recovery"
                )
            overhead = rec.get("overhead_wall_ms")
            if not isinstance(overhead, (int, float)) or overhead < 0:
                errors.append(
                    f"workload {name}: overhead_wall_ms {overhead} negative"
                )
        elif w.get("group") == "recovery":
            errors.append(
                f"workload {w.get('name')}: recovery group entry carries "
                "no recovery report"
            )
        reuse = w.get("reuse")
        if isinstance(reuse, dict):
            name = w.get("name")
            # The planner/executor split's payoff: a cached plan re-executed
            # must cost well under a full (plan + execute) call, amortized.
            ratio = reuse.get("ratio", 1.0)
            if not isinstance(ratio, (int, float)) or ratio > 0.6:
                errors.append(
                    f"workload {name}: reuse ratio {ratio} exceeds 0.6 — "
                    "cached execution is not amortizing the planning cost"
                )
            if not reuse.get("cache_hits", 0) > 0:
                errors.append(f"workload {name}: plan reuse recorded no cache hits")
            executes = reuse.get("executes", 0)
            for arm in ("fresh", "cached"):
                per = reuse.get(f"{arm}_per_exec_ms")
                total = reuse.get(f"{arm}_total_ms")
                if (
                    isinstance(per, (int, float))
                    and isinstance(total, (int, float))
                    and isinstance(executes, int)
                    and executes > 0
                    and abs(per * executes - total) > max(1e-6, total * 1e-9)
                ):
                    errors.append(
                        f"workload {name}: {arm}_per_exec_ms x executes != "
                        f"{arm}_total_ms ({per} x {executes} vs {total})"
                    )
        mem = w.get("memory")
        if isinstance(mem, dict):
            name = w.get("name")
            # The peak-memory gate: the closed-form model must be an upper
            # bound on the measured simulated-time high-water mark, and a
            # useful one — over-estimation past MEM_RATIO_GATE means the
            # model (DESIGN.md section 13) has drifted from the executor.
            measured = mem.get("measured_peak_bytes")
            predicted = mem.get("predicted_peak_bytes")
            if not (isinstance(measured, int) and measured > 0):
                errors.append(
                    f"workload {name}: measured peak {measured!r} not positive — "
                    "memory tracking recorded no charges"
                )
            elif not (isinstance(predicted, int) and predicted >= measured):
                errors.append(
                    f"workload {name}: predicted peak {predicted} under-estimates "
                    f"measured {measured}"
                )
            ratio = mem.get("ratio")
            if not isinstance(ratio, (int, float)) or ratio > MEM_RATIO_GATE:
                errors.append(
                    f"workload {name}: predicted/measured ratio {ratio} exceeds "
                    f"{MEM_RATIO_GATE}"
                )
            if mem.get("ring_exact") is not True:
                errors.append(
                    f"workload {name}: mailbox-ring accounting is not "
                    f"byte-exact (ring_bytes {mem.get('ring_bytes')})"
                )
            if mem.get("pass") is not True:
                errors.append(f"workload {name}: memory gate failed")
        elif w.get("group") == "memory":
            errors.append(
                f"workload {w.get('name')}: memory group entry carries "
                "no memory report"
            )
        sc = w.get("scale")
        if isinstance(sc, dict):
            name = w.get("name")
            # The scheduler-determinism gate: the same program under a
            # single-permit worker pool and under a multi-permit pool must
            # produce bit-identical results, simulated clocks, and
            # communication matrices — the whole point of the cooperative
            # scheduler is that worker count is wall-side only.
            if sc.get("identical") is not True:
                errors.append(
                    f"workload {name}: diverged between worker-pool sizes "
                    f"{sc.get('workers_low')} and {sc.get('workers_high')}"
                )
            if sc.get("workers_low") != 1:
                errors.append(
                    f"workload {name}: scale baseline pool size "
                    f"{sc.get('workers_low')} (must be 1)"
                )
            wh = sc.get("workers_high")
            if not (isinstance(wh, int) and wh >= 2):
                errors.append(
                    f"workload {name}: scale comparison pool size {wh!r} "
                    "must be >= 2 to exercise real interleaving"
                )
            nps = sc.get("ns_per_proc_step")
            if not isinstance(nps, (int, float)) or nps <= 0:
                errors.append(
                    f"workload {name}: ns_per_proc_step {nps!r} not positive"
                )
        elif w.get("group") == "scale":
            errors.append(
                f"workload {w.get('name')}: scale group entry carries "
                "no scale report"
            )
        wall = w.get("wall")
        if isinstance(wall, dict):
            name = w.get("name")
            reps = wall.get("reps")
            cv = wall.get("cv")
            smoke = report.get("mode") == "smoke"
            # Smoke pins reps=1 and must mark cv null: "unmeasured" and
            # "measured, perfectly stable" are different claims. Full
            # reports repeat the measurement, so cv must exist and stay
            # under the gate for the report to be a usable wall baseline.
            if smoke:
                if reps != 1:
                    errors.append(f"workload {name}: smoke report ran {reps} reps (must be 1)")
                if cv is not None:
                    errors.append(
                        f"workload {name}: smoke report carries cv {cv} "
                        "(single-rep noise is unmeasured; must be null)"
                    )
            else:
                # Full-mode exemption: scale workloads at P >= 2048 are
                # context-switch-bound and take minutes per rep, so they run
                # single-rep even in full mode. Their gate is the bit-identity
                # verdict, not wall noise — a single rep with cv unmeasured
                # (null) is the honest report there.
                procs = 1
                for g in w.get("grid", []):
                    if isinstance(g, int):
                        procs *= g
                big_scale = w.get("group") == "scale" and procs >= 2048
                if big_scale and reps == 1 and cv is None:
                    pass
                elif not (isinstance(reps, int) and reps >= 2):
                    errors.append(
                        f"workload {name}: full report ran {reps} reps "
                        "(need >= 2 to measure noise)"
                    )
                elif not isinstance(cv, (int, float)):
                    errors.append(
                        f"workload {name}: full report has cv {cv!r} "
                        "(must be measured when reps >= 2)"
                    )
                elif cv > WALL_CV_GATE and wall.get("median_ms", 0) >= WALL_CV_MIN_MS:
                    errors.append(
                        f"workload {name}: wall cv {cv} exceeds {WALL_CV_GATE} — "
                        "measurement too noisy to serve as a wall baseline"
                    )
            med = wall.get("median_ms")
            if not isinstance(med, (int, float)) or med <= 0:
                errors.append(f"workload {name}: wall median_ms {med!r} not positive")


def main():
    if len(sys.argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    report_path = sys.argv[1]
    schema_path = (
        sys.argv[2]
        if len(sys.argv) == 3
        else os.path.join(os.path.dirname(os.path.abspath(__file__)), "bench-schema.json")
    )
    with open(report_path) as f:
        report = json.load(f)
    with open(schema_path) as f:
        schema = json.load(f)

    errors = []
    check(report, schema, "$", errors)
    if not errors:  # coverage checks assume a structurally valid report
        coverage_checks(report, errors)

    if errors:
        for e in errors:
            print(f"validate_bench: {e}", file=sys.stderr)
        return 1
    print(
        f"validate_bench: {report_path} OK "
        f"({len(report['workloads'])} workloads, rev {report['rev']}, {report['mode']} mode)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
