#!/usr/bin/env bash
# Full CI gate: formatting, lints, tests, and a chaos smoke run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== scheduler pool-identity gate (pool size 1 vs N, P=1024 smoke) =="
# The cooperative scheduler's contract: results, simulated clocks, event
# streams, and comm matrices are bit-identical for any worker-pool size.
# Release mode so the P=1024 virtual-processor smoke inside the machine
# suite runs at full speed; the core suite replays the contract through
# the paper's actual PACK/UNPACK algorithms.
cargo test -p hpf-machine --release -q --test sched
cargo test -p hpf-core --release -q --test sched_determinism

echo "== kernel-identity gate (scalar-ref reference walkers, release) =="
# The whole core suite re-runs with the lowered bulk copy kernels compiled
# out (--features scalar-ref forces every walker onto the per-element
# reference loop). Both feature configurations passing the same tests is
# the proof that Contig/Strided lowering is a pure execution-strategy
# change: bit-identical results and identical simulated accounting.
cargo test -p hpf-core --release -q --features scalar-ref

echo "== fuzz smoke via the plan-then-execute path =="
cargo run -p hpf-bench --release --bin fuzz -- --cases 40 --seed 1 --reuse-plans

echo "== chaos smoke (fault-injected PACK/UNPACK roundtrips) =="
chaos_trace="$(mktemp)"
cargo run -p hpf-bench --release --bin chaos -- --seed 1 --iters 5 --trace-out "$chaos_trace"

echo "== chaos smoke with cached-plan execution =="
cargo run -p hpf-bench --release --bin chaos -- --seed 2 --iters 3 --reuse-plans

echo "== chaos smoke with crash-recovery drills =="
cargo run -p hpf-bench --release --bin chaos -- --seed 3 --iters 6 --recover

echo "== chaos smoke with crash recovery over cached plans =="
cargo run -p hpf-bench --release --bin chaos -- --seed 4 --iters 4 --recover --reuse-plans

echo "== chaos smoke under a pinned two-permit worker pool =="
# Fault injection + crash recovery with the pool artificially constrained:
# parks, respawn re-enrollment, and replay all have to coexist with pool
# backpressure without deadlocking or perturbing the simulated run.
cargo run -p hpf-bench --release --bin chaos -- --seed 5 --iters 4 --recover --workers 2

echo "== trace export parses as Chrome trace_event JSON =="
python3 - "$chaos_trace" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
names = {e.get("name", "") for e in events}
for want in ("send", "recv", "retransmit", "dup-drop", "fault-verdict"):
    assert any(want in n for n in names), f"trace is missing {want} events"
assert any(e.get("ph") == "X" for e in events), "trace has no span events"
print(f"trace check: {len(events)} events OK")
EOF
rm -f "$chaos_trace"

echo "== perf smoke (machine-readable bench report + wall-profile gate) =="
# Includes the `scale` group: P in {64, 1024, 4096} pack->unpack roundtrips,
# each run under worker-pool sizes 1 and ncores and compared bit-exactly
# (the perf binary exits nonzero on divergence; the validator re-checks the
# emitted verdicts). The P=4096 leg is context-switch-bound and dominates
# this step's wall time — several minutes on a small host is expected.
perf_json="$(mktemp)"
perf_folded="$(mktemp)"
cargo run -p hpf-bench --release --bin perf -- --smoke --out "$perf_json" \
  --folded-out "$perf_folded"
python3 scripts/validate_bench.py "$perf_json"
# The folded-stack export must be non-empty and flamegraph-compatible:
# every line is "frame;frame;... <ns>" rooted at a workload name.
python3 - "$perf_folded" <<'EOF'
import sys
lines = [l.rstrip("\n") for l in open(sys.argv[1]) if l.strip()]
assert lines, "folded-stack export is empty"
for l in lines:
    stack, _, ns = l.rpartition(" ")
    assert stack and ";" in stack, f"malformed folded line: {l!r}"
    assert ns.isdigit(), f"folded line has no integer self-time: {l!r}"
assert any(s.startswith("exec_hot.") for s in lines), "no exec_hot stacks"
print(f"folded check: {len(lines)} stack lines OK")
EOF
rm -f "$perf_folded"

echo "== perf --filter exec_hot (steady-state zero-allocation gate) =="
# The perf binary runs under the counting global allocator; the validator
# fails the build if any steady-state execute allocates, or if a fault-free
# run deep-copies a payload (hot.allocs_per_execute / hot.clone_words != 0).
hot_json="$(mktemp)"
cargo run -p hpf-bench --release --bin perf -- --smoke --filter exec_hot --out "$hot_json"
python3 scripts/validate_bench.py "$hot_json"
rm -f "$hot_json"

echo "== perf --filter memory (predicted vs measured peak-memory gate) =="
# Traced runs with per-account memory tracking: the perf binary exits
# nonzero if any workload's closed-form predicted peak (DESIGN.md section
# 13) fails to bound the measured high-water mark, or over-estimates past
# the 1.25 ratio; the validator re-checks the emitted report.
mem_json="$(mktemp)"
cargo run -p hpf-bench --release --bin perf -- --smoke --filter memory --out "$mem_json"
python3 scripts/validate_bench.py "$mem_json"
rm -f "$mem_json"

echo "== perfdiff (simulated-cost regression gate vs committed baseline) =="
if [[ -f results/BENCH_baseline.json ]]; then
  # Simulated costs are deterministic and the zero-copy execute path must
  # reproduce the boxed path's accounting bit-exactly, so the gate is
  # effectively zero drift (0.001% absorbs only float formatting). An
  # intentional cost-model change must refresh the baseline via
  # scripts/regen-results.sh in the same commit. --wall adds the
  # noise-aware wall-clock gate; smoke reports carry cv=null so wall rows
  # are skipped in CI, but the flag keeps the parsing path exercised.
  # --hot-band is the gate that still bites in smoke mode: a fixed ±75%
  # band on hot.ns_per_element, wide enough for scheduler-dominated smoke
  # noise yet far below the +300% of losing a 4x bulk kernel.
  cargo run -p hpf-bench --release --bin perfdiff -- \
    results/BENCH_baseline.json "$perf_json" --wall \
    --warn-above 0.0001 --fail-above 0.001 --hot-band 75
else
  echo "perfdiff: no results/BENCH_baseline.json; skipping (run scripts/regen-results.sh)"
fi
rm -f "$perf_json"

echo "ci: all gates passed"
