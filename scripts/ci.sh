#!/usr/bin/env bash
# Full CI gate: formatting, lints, tests, and a chaos smoke run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== chaos smoke (fault-injected PACK/UNPACK roundtrips) =="
cargo run -p hpf-bench --release --bin chaos -- --seed 1 --iters 5

echo "ci: all gates passed"
