#!/usr/bin/env python3
"""Tabulate wall-clock and simulated headline metrics across perf reports
into a markdown trend table.

Walks the git history of results/BENCH_*.json (every committed revision of
every per-revision report and the baseline), parses each version it can
read, dedupes by the report's own `rev` + mode (newest commit wins), adds
any reports sitting uncommitted in the working tree, and renders one row
per report ordered oldest-first. Stdlib only.

Headline columns: the summed simulated total (deterministic; any drift is
a behavioural change), the summed wall medians (noisy; trend only), the
worst measured cv (how trustworthy the wall column is), the steady-state
hot-path ns/element of the CMS pack kernel (the ROADMAP item-2 tuning
target; the dense-mask variant when the report carries one), and that
kernel's achieved GB/s as a fraction of the report's measured
single-thread memcpy roof (schema v9+; em-dash for older reports).

Usage: bench-history.py [--out FILE]    (default: print to stdout)
Exit code 0 even when no reports exist (prints an empty table) so the
regen hook never turns a missing history into a failure.
"""

import datetime
import json
import os
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def git(*args):
    return subprocess.run(
        ["git", *args], capture_output=True, text=True, cwd=ROOT, check=False
    )


def committed_reports():
    """Yield (commit_time, report_dict) for every parseable committed
    version of a results/BENCH_*.json file."""
    log = git(
        "log", "--format=%h %ct", "--name-only", "--diff-filter=ACMR",
        "--", "results/BENCH_*.json",
    )
    if log.returncode != 0:
        return
    commit, ctime = None, 0
    for line in log.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) == 2 and parts[1].isdigit():
            commit, ctime = parts[0], int(parts[1])
            continue
        if commit is None or not line.startswith("results/BENCH_"):
            continue
        show = git("show", f"{commit}:{line}")
        if show.returncode != 0:
            continue
        try:
            yield ctime, json.loads(show.stdout)
        except json.JSONDecodeError:
            continue


def worktree_reports():
    """Yield (mtime, report_dict) for reports in the working tree."""
    results = os.path.join(ROOT, "results")
    if not os.path.isdir(results):
        return
    for name in sorted(os.listdir(results)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        path = os.path.join(results, name)
        try:
            with open(path) as f:
                yield int(os.path.getmtime(path)), json.load(f)
        except (OSError, json.JSONDecodeError):
            continue


def wall_median_ms(w):
    """A workload's wall median: the schema-v7 `wall` object when present,
    the legacy flat `wall_ms` otherwise."""
    wall = w.get("wall")
    if isinstance(wall, dict) and isinstance(wall.get("median_ms"), (int, float)):
        return wall["median_ms"]
    ms = w.get("wall_ms")
    return ms if isinstance(ms, (int, float)) else 0.0


def headline(report):
    workloads = [w for w in report.get("workloads", []) if isinstance(w, dict)]
    sim = sum(
        w["total_ms"] for w in workloads if isinstance(w.get("total_ms"), (int, float))
    )
    wall = sum(wall_median_ms(w) for w in workloads)
    cvs = [
        w["wall"]["cv"]
        for w in workloads
        if isinstance(w.get("wall"), dict)
        and isinstance(w["wall"].get("cv"), (int, float))
    ]
    # Headline kernel: the CMS pack hot path, preferring the dense-mask
    # variant (the bulk-copy showcase) when the report carries one.
    hot_ns = None
    cms_hot = [
        (w["name"], w["hot"].get("ns_per_element"))
        for w in workloads
        if w.get("name", "").startswith("exec_hot.pack.cms.")
        and isinstance(w.get("hot"), dict)
        and isinstance(w["hot"].get("ns_per_element"), (int, float))
    ]
    for name, ns in cms_hot:
        if name.endswith(".dense"):
            hot_ns = ns
            break
    if hot_ns is None and cms_hot:
        hot_ns = cms_hot[0][1]
    # Achieved throughput vs the memcpy roof: hot elements are i32, so
    # 4 bytes / (ns/element) is GB/s; the roof is measured by the same
    # report (schema v9+), making the ratio machine-relative.
    roof = report.get("memcpy_roof_gbps")
    roof_pct = None
    if hot_ns and isinstance(roof, (int, float)) and roof > 0:
        roof_pct = 100.0 * (4.0 / hot_ns) / roof
    return {
        "rev": report.get("rev", "?"),
        "mode": report.get("mode", "?"),
        "n": len(workloads),
        "sim_ms": sim,
        "wall_ms": wall,
        "max_cv": max(cvs) if cvs else None,
        "hot_ns": hot_ns,
        "hot_gbps": (4.0 / hot_ns) if hot_ns else None,
        "roof_pct": roof_pct,
    }


def main():
    out_path = None
    args = sys.argv[1:]
    if args[:1] == ["--out"]:
        if len(args) != 2:
            print("bench-history: --out requires a path", file=sys.stderr)
            return 2
        out_path = args[1]
    elif args:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    # Dedupe by (report rev, mode): a report re-committed unchanged keeps
    # its oldest sighting so the trend shows when the numbers appeared.
    seen = {}
    for when, report in list(committed_reports()) + list(worktree_reports()):
        key = (report.get("rev", "?"), report.get("mode", "?"))
        if key not in seen or when < seen[key][0]:
            seen[key] = (when, report)

    rows = sorted(
        ((when, headline(r)) for when, r in seen.values()), key=lambda t: t[0]
    )

    lines = [
        "# Bench history",
        "",
        "| date | rev | mode | workloads | sim total (ms) | wall total (ms) | max cv | cms hot ns/elem | GB/s (% of memcpy roof) |",
        "|---|---|---|---:|---:|---:|---:|---:|---:|",
    ]
    for when, h in rows:
        date = datetime.datetime.fromtimestamp(when).strftime("%Y-%m-%d")
        cv = f"{h['max_cv']:.3f}" if h["max_cv"] is not None else "—"
        hot = f"{h['hot_ns']:.2f}" if h["hot_ns"] is not None else "—"
        if h["hot_gbps"] is not None and h["roof_pct"] is not None:
            roof = f"{h['hot_gbps']:.2f} ({h['roof_pct']:.1f}%)"
        elif h["hot_gbps"] is not None:
            roof = f"{h['hot_gbps']:.2f} (—)"
        else:
            roof = "—"
        lines.append(
            f"| {date} | {h['rev']} | {h['mode']} | {h['n']} "
            f"| {h['sim_ms']:.3f} | {h['wall_ms']:.1f} | {cv} | {hot} | {roof} |"
        )
    text = "\n".join(lines) + "\n"

    if out_path:
        with open(out_path, "w") as f:
            f.write(text)
        print(f"bench-history: {len(rows)} reports -> {out_path}")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
