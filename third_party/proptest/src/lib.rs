//! A small, dependency-free, offline drop-in for the subset of the
//! [proptest](https://crates.io/crates/proptest) API this workspace uses.
//!
//! The container this repository builds in has no crates.io access, so the
//! real proptest cannot be vendored. This shim keeps the test sources
//! unchanged and provides:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map` / `boxed`;
//! * strategies for integer ranges, tuples, [`Just`], `collection::vec`,
//!   `sample::select`, `any::<bool>()`, and the `prop_oneof!` union;
//! * the [`proptest!`] macro: each `#[test]` runs `Config::cases` cases with
//!   values drawn from a deterministic per-test RNG. On failure the case
//!   number, seed, and generated arguments are printed so the case can be
//!   reproduced exactly (set `PROPTEST_SEED` to replay a different stream).
//!
//! Differences from real proptest: no shrinking (the failing case is printed
//! verbatim instead), and `prop_assert*` panics immediately rather than
//! recording a failure for the shrinker.

/// Deterministic test RNG: SplitMix64.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// RNG for one test case, derived from the global seed, the test's
    /// fully qualified name, and the case index.
    pub fn for_case(seed: u64, test_name: &str, case: u32) -> Self {
        let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        TestRng(h ^ ((case as u64) << 32 | 0x5EED))
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// The global seed: `PROPTEST_SEED` if set, else a fixed default.
pub fn global_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_CAFE)
}

pub mod test_runner {
    //! Runner configuration (subset: case count only).

    /// Subset of proptest's `Config`: how many random cases each test runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    ///
    /// Unlike real proptest there is no shrinking: a strategy is just a
    /// deterministic function of the RNG stream.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Build a second strategy from each generated value.
        fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
        type Value = U::Value;
        fn generate(&self, rng: &mut TestRng) -> U::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty range strategy");
                    (self.start as i128 + rng.below(span as u64) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    assert!(span > 0, "empty range strategy");
                    (*self.start() as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let u = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                    self.start + u * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let u = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                    self.start() + u * (self.end() - self.start())
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length.
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len =
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (`prop::sample::select`).

    use crate::strategy::Strategy;
    use crate::TestRng;
    use std::fmt::Debug;

    /// Uniform choice from a fixed list of values.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select(options)
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].clone()
        }
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and `any::<T>()`.

    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// The canonical strategy's type.
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T` (e.g. `any::<bool>()`).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Uniform `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty => $s:ident),*) => {$(
            /// Full-range integer strategy.
            #[derive(Debug, Clone, Copy)]
            pub struct $s;
            impl Strategy for $s {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = $s;
                fn arbitrary() -> $s { $s }
            }
        )*};
    }

    arbitrary_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64,
                   i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64,
                   usize => AnyUsize, isize => AnyIsize);
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Like `assert!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Like `assert_eq!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Like `assert_ne!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)` body
/// runs for `Config::cases` deterministic random cases. On failure the case
/// index, global seed, and generated argument values are printed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            // Real proptest's `Config` has many fields, so user code writes
            // `Config { cases: N, ..Config::default() }`; the shim's only
            // field is `cases`, which trips `needless_update` here.
            #[allow(clippy::needless_update)]
            let config: $crate::test_runner::Config = $cfg;
            let seed = $crate::global_seed();
            let test_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(seed, test_name, case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let described = format!(
                    concat!($(stringify!($arg), " = {:?}  "),+),
                    $(&$arg),+
                );
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                if let Err(e) = outcome {
                    eprintln!(
                        "proptest case failed: {test_name} case {case}/{} seed {seed}\n  {described}",
                        config.cases,
                    );
                    std::panic::resume_unwind(e);
                }
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case(1, "t", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let w = Strategy::generate(&(-5i32..=5), &mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec((0usize..100, any::<bool>()), 1..=8);
        let a = Strategy::generate(&strat, &mut crate::TestRng::for_case(7, "x", 3));
        let b = Strategy::generate(&strat, &mut crate::TestRng::for_case(7, "x", 3));
        assert_eq!(a, b);
    }

    #[test]
    fn oneof_and_select_cover_all_arms() {
        let strat = prop_oneof![Just(1u32), Just(2u32), 10u32..20];
        let sel = prop::sample::select(vec!['a', 'b']);
        let mut rng = crate::TestRng::for_case(9, "cover", 0);
        let mut seen = std::collections::HashSet::new();
        let mut chars = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            seen.insert(if v >= 10 { 3 } else { v });
            chars.insert(Strategy::generate(&sel, &mut rng));
        }
        assert_eq!(seen.len(), 3);
        assert_eq!(chars.len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro itself: flat_map + map compose.
        #[test]
        fn macro_generates_composed_values(
            v in (1usize..4).prop_flat_map(|n| prop::collection::vec(0i32..10, n)),
            flag in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert_eq!(v.iter().filter(|&&x| x < 10).count(), v.len());
            prop_assert!(u8::from(flag) <= 1);
        }
    }
}
