//! A small, dependency-free, offline drop-in for the subset of the
//! [criterion](https://crates.io/crates/criterion) API this workspace uses.
//!
//! The container this repository builds in has no crates.io access, so the
//! real criterion cannot be vendored. This shim keeps the bench sources
//! unchanged: `criterion_group!`/`criterion_main!` produce a binary that runs
//! every benchmark a fixed number of iterations and prints mean wall time.
//! There is no statistical analysis, warm-up tuning, or HTML report — for
//! real measurements swap the workspace `criterion` dependency back to
//! crates.io.

use std::fmt::Display;
use std::time::Instant;

/// Top-level benchmark driver handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            group: name,
            sample_size: 20,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let mut g = BenchmarkGroup {
            group: String::new(),
            sample_size: 20,
        };
        g.bench_function(id, f);
    }
}

/// A named benchmark within a group, e.g. `BenchmarkId::new("scheme", 1024)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed_ns: 0.0,
            timed: 0,
        };
        f(&mut b);
        let mean = if b.timed == 0 {
            0.0
        } else {
            b.elapsed_ns / b.timed as f64
        };
        let label = if self.group.is_empty() {
            id.name.clone()
        } else {
            format!("{}/{}", self.group, id.name)
        };
        println!("  {label}: {:.3} ms/iter ({} iters)", mean / 1e6, b.timed);
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Finish the group (prints nothing extra in this shim).
    pub fn finish(self) {}
}

/// Passed to each benchmark body; times the closure given to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
    timed: u64,
}

impl Bencher {
    /// Time `iters` executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up execution.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos() as f64;
        self.timed += self.iters;
    }
}

/// Opaque value barrier preventing the optimizer from deleting the benchmark.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_and_counts() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0u64;
        g.bench_with_input(BenchmarkId::new("f", 1), &5u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        g.finish();
        // 1 warm-up + 3 timed.
        assert_eq!(runs, 4);
    }
}
