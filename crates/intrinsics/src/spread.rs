//! `SPREAD(source, DIM, NCOPIES)` — replicate an array along a new
//! dimension, producing a rank `d+1` distributed array.
//!
//! Sender-driven one-round exchange: every source element has
//! `NCOPIES` destinations the sender can compute from the target
//! descriptor, so the communication is a single many-to-many round of
//! `(destination local index, value)` pairs, like the shifts.

use hpf_distarray::ArrayDesc;
use hpf_machine::collectives::{alltoallv, A2aSchedule};
use hpf_machine::{Category, Proc, Wire};

/// Replicate `local` (under `src`) along a new dimension inserted at
/// position `dim` of the target descriptor `dst`.
///
/// `dst` must have rank `src.ndims() + 1`, with every dimension except
/// `dim` matching `src` in order; `dst.dim(dim).n()` is `NCOPIES`. The two
/// grids must have the same processor count (their shapes may differ).
///
/// # Panics
/// Panics on rank/shape mismatch between the descriptors.
pub fn spread_dim<T: Wire + Default>(
    proc: &mut Proc,
    src: &ArrayDesc,
    dst: &ArrayDesc,
    local: &[T],
    dim: usize,
    schedule: A2aSchedule,
) -> Vec<T> {
    assert_eq!(
        dst.ndims(),
        src.ndims() + 1,
        "SPREAD adds exactly one dimension"
    );
    assert!(dim < dst.ndims(), "DIM out of range");
    assert_eq!(
        src.grid().nprocs(),
        dst.grid().nprocs(),
        "source and target must use the same processor count"
    );
    {
        let src_shape = src.shape();
        let dst_shape = dst.shape();
        for (i, &n) in src_shape.iter().enumerate() {
            let j = if i < dim { i } else { i + 1 };
            assert_eq!(dst_shape[j], n, "non-DIM extents must match (dim {i})");
        }
    }
    let me = proc.id();
    debug_assert_eq!(local.len(), src.local_len(me));
    let ncopies = dst.dim(dim).n();
    let nprocs = src.grid().nprocs();

    let sends = proc.with_category(Category::LocalComp, |proc| {
        let mut sends: Vec<Vec<(u32, T)>> = (0..nprocs).map(|_| Vec::new()).collect();
        let mut gidx_out = vec![0usize; dst.ndims()];
        src.for_each_local_global(me, |l, gidx| {
            for (i, &x) in gidx.iter().enumerate() {
                let j = if i < dim { i } else { i + 1 };
                gidx_out[j] = x;
            }
            for j in 0..ncopies {
                gidx_out[dim] = j;
                let (target, llin) = dst.owner_of(&gidx_out);
                sends[target].push((llin as u32, local[l]));
            }
        });
        proc.charge_ops(2 * local.len() * ncopies);
        sends
    });

    let recvs = proc.with_category(Category::ManyToMany, |proc| {
        let world = proc.world();
        alltoallv(proc, &world, sends, schedule)
    });

    proc.with_category(Category::LocalComp, |proc| {
        let mut out = vec![T::default(); dst.local_len(me)];
        let mut placed = 0usize;
        for msg in recvs {
            for (llin, v) in msg {
                out[llin as usize] = v;
                placed += 1;
            }
        }
        proc.charge_ops(placed);
        debug_assert_eq!(placed, out.len(), "every target slot filled exactly once");
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_distarray::{Dist, GlobalArray};
    use hpf_machine::{CostModel, Machine, ProcGrid};

    fn check(dim: usize, ncopies: usize) {
        // Source: 1-D of 12 over 4 procs, cyclic. Target: 2-D with the new
        // dimension at `dim`.
        let src_grid = ProcGrid::line(4);
        let src = ArrayDesc::new(&[12], &src_grid, &[Dist::Cyclic]).unwrap();
        let dst_grid = ProcGrid::new(&[2, 2]);
        let (dst_shape, dst_dists) = if dim == 0 {
            (vec![ncopies, 12], vec![Dist::Block, Dist::BlockCyclic(3)])
        } else {
            (vec![12, ncopies], vec![Dist::BlockCyclic(3), Dist::Block])
        };
        let dst = ArrayDesc::new_general(&dst_shape, &dst_grid, &dst_dists).unwrap();

        let a = GlobalArray::from_fn(&[12], |g| g[0] as i32 * 7 + 1);
        let parts = a.partition(&src);
        let machine = Machine::new(src_grid, CostModel::cm5());
        let (s, d, pp) = (&src, &dst, &parts);
        let out = machine.run(move |proc| {
            spread_dim(
                proc,
                s,
                d,
                &pp[proc.id()],
                dim,
                A2aSchedule::LinearPermutation,
            )
        });
        let got = GlobalArray::assemble(&dst, &out.results);
        let want = GlobalArray::from_fn(&dst_shape, |g| {
            let src_i = if dim == 0 { g[1] } else { g[0] };
            a.get(&[src_i])
        });
        assert_eq!(got, want, "dim {dim} ncopies {ncopies}");
    }

    #[test]
    fn spread_along_new_inner_dimension() {
        check(0, 4);
        check(0, 2);
    }

    #[test]
    fn spread_along_new_outer_dimension() {
        check(1, 4);
        check(1, 6);
    }

    #[test]
    #[should_panic(expected = "one dimension")]
    fn rank_mismatch_rejected() {
        let grid = ProcGrid::line(2);
        let src = ArrayDesc::new(&[4], &grid, &[Dist::Block]).unwrap();
        let machine = Machine::new(grid, CostModel::zero());
        machine.run(|proc| {
            let local = vec![0i32; 2];
            spread_dim(proc, &src, &src, &local, 0, A2aSchedule::LinearPermutation);
        });
    }
}
