//! # hpf-intrinsics — the rest of the F90/HPF transformational family
//!
//! The paper places PACK/UNPACK among "the transformational intrinsic
//! functions in FORTRAN 90, CM FORTRAN that were also incorporated into
//! HPF" (Section 1). A runtime library shipping parallel PACK/UNPACK ships
//! their siblings too; this crate provides them on the same simulated
//! coarse-grained machine and block-cyclic array substrate:
//!
//! * [`reduce`] — `SUM`/`MAXVAL`/`MINVAL`/`COUNT`, whole-array and with a
//!   `DIM` argument (per-line reductions along one dimension);
//! * [`locate`] — `MAXLOC`/`MINLOC`/`ALL`/`ANY`/`DOT_PRODUCT`;
//! * [`reshape`] — `TRANSPOSE` and `RESHAPE` (pure data movement);
//! * [`scan`] — `SUM_PREFIX`/`SUM_SUFFIX` with `DIM` (HPF library
//!   functions), the same tile/block machinery as the ranking algorithm
//!   applied element-wise along one dimension;
//! * [`shift`] — `CSHIFT`/`EOSHIFT` along a dimension;
//! * [`spread`] — `SPREAD` (replication along a new dimension);
//! * [`merge`] — `MERGE` (purely local on aligned arrays).
//!
//! These are extensions relative to the paper itself (see DESIGN.md) but
//! exercise exactly the substrate the paper builds on: axis-group
//! collectives, block-cyclic index arithmetic, and many-to-many exchange.
//!
//! ## Example
//!
//! ```
//! use hpf_machine::{Machine, CostModel, ProcGrid};
//! use hpf_machine::collectives::PrsAlgorithm;
//! use hpf_distarray::{ArrayDesc, Dist, local_from_fn};
//! use hpf_intrinsics::{sum_all, sum_prefix_dim, ScanKind};
//!
//! let grid = ProcGrid::line(4);
//! let desc = ArrayDesc::new(&[16], &grid, &[Dist::BlockCyclic(2)]).unwrap();
//! let machine = Machine::new(grid, CostModel::cm5());
//! let out = machine.run(|proc| {
//!     let a = local_from_fn(&desc, proc.id(), |g| g[0] as i64 + 1);
//!     let total = sum_all(proc, &desc, &a);
//!     let prefix = sum_prefix_dim(proc, &desc, &a, 0, ScanKind::Exclusive,
//!                                 PrsAlgorithm::Auto);
//!     (total, prefix[0])
//! });
//! // Sum of 1..=16 replicated everywhere; proc 0's first element (global
//! // index 0) has exclusive prefix 0.
//! assert_eq!(out.results[0], (136, 0));
//! ```

#![warn(missing_docs)]

pub mod locate;
pub mod merge;
pub mod reduce;
pub mod reshape;
pub mod scan;
pub mod shift;
pub mod spread;

pub use locate::{all_all, any_all, dot_product_all, maxloc_all, minloc_all};
pub use merge::merge;
pub use reduce::{count_all, count_dim, maxval_all, minval_all, reduce_dim, sum_all, sum_dim};
pub use reshape::{reshape, transpose};
pub use scan::{sum_prefix_dim, sum_prefix_dim_segmented, sum_suffix_dim, ScanKind};
pub use shift::{cshift_dim, eoshift_dim};
pub use spread::spread_dim;
