//! `MAXLOC` / `MINLOC` / `ALL` / `ANY` / `DOT_PRODUCT` — the remaining
//! whole-array reduction intrinsics.
//!
//! Location reductions fold `(value, global linear index)` pairs, breaking
//! ties toward the smaller index exactly as Fortran does (the *first*
//! extremal element in array element order wins).

use hpf_distarray::ArrayDesc;
use hpf_machine::collectives::{allreduce_with, Num, PrsAlgorithm};
use hpf_machine::{Category, Proc, Wire};

/// `MAXLOC`: the global multi-index of the first maximal element.
pub fn maxloc_all<T: Wire + PartialOrd>(
    proc: &mut Proc,
    desc: &ArrayDesc,
    local: &[T],
) -> Vec<usize> {
    loc_all(proc, desc, local, |a, b| a > b)
}

/// `MINLOC`: the global multi-index of the first minimal element.
pub fn minloc_all<T: Wire + PartialOrd>(
    proc: &mut Proc,
    desc: &ArrayDesc,
    local: &[T],
) -> Vec<usize> {
    loc_all(proc, desc, local, |a, b| a < b)
}

/// `better(a, b)` = strictly prefer value `a` over value `b`.
fn loc_all<T: Wire + PartialOrd>(
    proc: &mut Proc,
    desc: &ArrayDesc,
    local: &[T],
    better: impl Fn(T, T) -> bool + Copy,
) -> Vec<usize> {
    let me = proc.id();
    debug_assert_eq!(local.len(), desc.local_len(me));
    assert!(
        !local.is_empty(),
        "location reduction of an empty local array"
    );

    // Local candidate: (value, global linear index), first extremal wins.
    let candidate = proc.with_category(Category::LocalComp, |proc| {
        let mut best = (
            local[0],
            desc.global_linear(&desc.global_of_local(me, 0)) as u64,
        );
        for (l, &v) in local.iter().enumerate().skip(1) {
            let g = desc.global_linear(&desc.global_of_local(me, l)) as u64;
            if better(v, best.0) || (v == best.0 && g < best.1) {
                best = (v, g);
            }
        }
        proc.charge_ops(local.len());
        best
    });

    let world = proc.world();
    let combine = move |a: (T, u64), b: (T, u64)| {
        if better(a.0, b.0) || (a.0 == b.0 && a.1 < b.1) {
            a
        } else {
            b
        }
    };
    let (_, glin) = proc.with_category(Category::Other, |proc| {
        allreduce_with(proc, &world, &[candidate], combine)
    })[0];
    hpf_distarray::global_index_of_linear(desc, glin as usize)
}

/// `ALL(mask)`: true iff every element is true, replicated.
pub fn all_all(proc: &mut Proc, desc: &ArrayDesc, mask: &[bool]) -> bool {
    logical_all(proc, desc, mask, |a, b| a && b, true)
}

/// `ANY(mask)`: true iff any element is true, replicated.
pub fn any_all(proc: &mut Proc, desc: &ArrayDesc, mask: &[bool]) -> bool {
    logical_all(proc, desc, mask, |a, b| a || b, false)
}

fn logical_all(
    proc: &mut Proc,
    desc: &ArrayDesc,
    mask: &[bool],
    op: impl Fn(bool, bool) -> bool + Copy,
    unit: bool,
) -> bool {
    debug_assert_eq!(mask.len(), desc.local_len(proc.id()));
    let partial = proc.with_category(Category::LocalComp, |proc| {
        proc.charge_ops(mask.len());
        mask.iter().fold(unit, |acc, &b| op(acc, b))
    });
    let world = proc.world();
    proc.with_category(Category::Other, |proc| {
        allreduce_with(proc, &world, &[partial], op)
    })[0]
}

/// `DOT_PRODUCT(a, b)` over aligned distributed vectors (any rank, really:
/// element-wise multiply then global sum), replicated.
pub fn dot_product_all<T: Num + std::ops::Mul<Output = T>>(
    proc: &mut Proc,
    desc: &ArrayDesc,
    a: &[T],
    b: &[T],
) -> T {
    assert_eq!(a.len(), b.len(), "DOT_PRODUCT operands must be conformable");
    debug_assert_eq!(a.len(), desc.local_len(proc.id()));
    let partial = proc.with_category(Category::LocalComp, |proc| {
        proc.charge_ops(a.len());
        a.iter()
            .zip(b)
            .fold(T::default(), |acc, (&x, &y)| acc + x * y)
    });
    let world = proc.world();
    proc.with_category(Category::Other, |proc| {
        hpf_machine::collectives::allreduce_sum(proc, &world, &[partial], PrsAlgorithm::Direct)
    })[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_distarray::{local_from_fn, Dist, GlobalArray};
    use hpf_machine::{CostModel, Machine, ProcGrid};

    fn desc_2d() -> (ProcGrid, ArrayDesc) {
        let grid = ProcGrid::new(&[2, 2]);
        let desc = ArrayDesc::new(&[8, 6], &grid, &[Dist::BlockCyclic(2), Dist::Cyclic]).unwrap();
        (grid, desc)
    }

    #[test]
    fn maxloc_minloc_match_oracle_with_first_tie_break() {
        let (grid, desc) = desc_2d();
        // Values with deliberate ties: v = (g0 + g1) % 5.
        let a = GlobalArray::from_fn(&[8, 6], |g| ((g[0] + g[1]) % 5) as i32);
        // Oracle: first max / min in element order.
        let data = a.data();
        let want_max =
            data.iter().enumerate().fold(
                (data[0], 0usize),
                |best, (i, &v)| {
                    if v > best.0 {
                        (v, i)
                    } else {
                        best
                    }
                },
            );
        let want_min =
            data.iter().enumerate().fold(
                (data[0], 0usize),
                |best, (i, &v)| {
                    if v < best.0 {
                        (v, i)
                    } else {
                        best
                    }
                },
            );
        let parts = a.partition(&desc);
        let machine = Machine::new(grid, CostModel::cm5());
        let (d, pp) = (&desc, &parts);
        let out = machine.run(move |proc| {
            let local = &pp[proc.id()];
            (maxloc_all(proc, d, local), minloc_all(proc, d, local))
        });
        for (mx, mn) in out.results {
            assert_eq!(desc.global_linear(&mx), want_max.1);
            assert_eq!(desc.global_linear(&mn), want_min.1);
            assert_eq!(a.get(&mx), want_max.0);
            assert_eq!(a.get(&mn), want_min.0);
        }
    }

    #[test]
    fn all_any_logical_reductions() {
        let (grid, desc) = desc_2d();
        let machine = Machine::new(grid, CostModel::cm5());
        let d = &desc;
        let out = machine.run(move |proc| {
            let all_true = local_from_fn(d, proc.id(), |_| true);
            let one_false = local_from_fn(d, proc.id(), |g| !(g[0] == 3 && g[1] == 4));
            let all_false = local_from_fn(d, proc.id(), |_| false);
            (
                all_all(proc, d, &all_true),
                all_all(proc, d, &one_false),
                any_all(proc, d, &one_false),
                any_all(proc, d, &all_false),
            )
        });
        for r in out.results {
            assert_eq!(r, (true, false, true, false));
        }
    }

    #[test]
    fn dot_product_matches_serial() {
        let grid = ProcGrid::line(4);
        let desc = ArrayDesc::new(&[32], &grid, &[Dist::BlockCyclic(2)]).unwrap();
        let want: i64 = (0..32).map(|g| (g as i64 + 1) * (2 * g as i64 - 5)).sum();
        let machine = Machine::new(grid, CostModel::cm5());
        let d = &desc;
        let out = machine.run(move |proc| {
            let a = local_from_fn(d, proc.id(), |g| g[0] as i64 + 1);
            let b = local_from_fn(d, proc.id(), |g| 2 * g[0] as i64 - 5);
            dot_product_all(proc, d, &a, &b)
        });
        for r in out.results {
            assert_eq!(r, want);
        }
    }
}
