//! `SUM` / `MAXVAL` / `MINVAL` / `COUNT` — whole-array and per-dimension
//! reductions over block-cyclic distributed arrays.
//!
//! Whole-array forms return a replicated scalar. `DIM` forms reduce every
//! line along one dimension: the result conceptually has rank `d-1`; here
//! each processor returns its local portion (the local shape with the
//! reduced dimension removed), **replicated across the grid dimension that
//! was reduced** — the natural form for a caller that keeps computing on
//! the same grid.

use hpf_distarray::ArrayDesc;
use hpf_machine::collectives::{allreduce_sum, allreduce_with, Num, PrsAlgorithm};
use hpf_machine::{Category, Proc, Wire};

/// Iterate a local array (shape innermost-first) as lines along `dim`:
/// calls `f(line_base_linear, stride)` once per line; element `j` of the
/// line is at `line_base_linear + j * stride`.
pub(crate) fn for_each_line(lshape: &[usize], dim: usize, mut f: impl FnMut(usize, usize)) {
    let stride: usize = lshape[..dim].iter().product();
    let inner = stride;
    let outer: usize = lshape[dim + 1..].iter().product();
    let jump = stride * lshape[dim];
    for b in 0..outer {
        for a in 0..inner {
            f(a + b * jump, stride);
        }
    }
}

/// Index of a line in the reduced (rank `d-1`) local array, matching the
/// `for_each_line` enumeration order.
pub(crate) fn reduced_len(lshape: &[usize], dim: usize) -> usize {
    lshape
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != dim)
        .map(|(_, &n)| n)
        .product()
}

/// Whole-array `SUM`: the sum of all elements, replicated on every
/// processor.
pub fn sum_all<T: Num>(proc: &mut Proc, desc: &ArrayDesc, local: &[T]) -> T {
    debug_assert_eq!(local.len(), desc.local_len(proc.id()));
    let partial = proc.with_category(Category::LocalComp, |proc| {
        proc.charge_ops(local.len());
        local.iter().fold(T::default(), |acc, &x| acc + x)
    });
    let world = proc.world();
    proc.with_category(Category::Other, |proc| {
        allreduce_sum(proc, &world, &[partial], PrsAlgorithm::Direct)[0]
    })
}

/// Whole-array `COUNT`: the number of true mask elements, replicated.
pub fn count_all(proc: &mut Proc, desc: &ArrayDesc, mask: &[bool]) -> usize {
    debug_assert_eq!(mask.len(), desc.local_len(proc.id()));
    let partial = proc.with_category(Category::LocalComp, |proc| {
        proc.charge_ops(mask.len());
        mask.iter().filter(|&&b| b).count() as i64
    });
    let world = proc.world();
    proc.with_category(Category::Other, |proc| {
        allreduce_sum(proc, &world, &[partial], PrsAlgorithm::Direct)[0] as usize
    })
}

/// Whole-array `MAXVAL`, replicated. `local` must be non-empty on every
/// processor (true for any divisible layout).
pub fn maxval_all<T: Wire + PartialOrd>(proc: &mut Proc, desc: &ArrayDesc, local: &[T]) -> T {
    fold_all(proc, desc, local, |a, b| if a > b { a } else { b })
}

/// Whole-array `MINVAL`, replicated.
pub fn minval_all<T: Wire + PartialOrd>(proc: &mut Proc, desc: &ArrayDesc, local: &[T]) -> T {
    fold_all(proc, desc, local, |a, b| if a < b { a } else { b })
}

fn fold_all<T: Wire>(
    proc: &mut Proc,
    desc: &ArrayDesc,
    local: &[T],
    op: impl Fn(T, T) -> T + Copy,
) -> T {
    debug_assert_eq!(local.len(), desc.local_len(proc.id()));
    assert!(
        !local.is_empty(),
        "whole-array fold of an empty local array"
    );
    let partial = proc.with_category(Category::LocalComp, |proc| {
        proc.charge_ops(local.len());
        local.iter().copied().reduce(op).expect("non-empty")
    });
    let world = proc.world();
    proc.with_category(Category::Other, |proc| {
        allreduce_with(proc, &world, &[partial], op)[0]
    })
}

/// `DIM`-form reduction under an arbitrary associative `op`: reduce every
/// line along dimension `dim`. Returns the local reduced array (the local
/// shape with `dim` removed, `for_each_line` order), replicated across grid
/// dimension `dim`.
pub fn reduce_dim<T: Wire>(
    proc: &mut Proc,
    desc: &ArrayDesc,
    local: &[T],
    dim: usize,
    op: impl Fn(T, T) -> T + Copy,
) -> Vec<T> {
    assert!(dim < desc.ndims(), "DIM out of range");
    debug_assert_eq!(local.len(), desc.local_len(proc.id()));
    let lshape = desc.local_shape(proc.id());
    assert!(lshape[dim] > 0, "cannot reduce an empty dimension");

    // Local partial per line.
    let partials = proc.with_category(Category::LocalComp, |proc| {
        let mut out = Vec::with_capacity(reduced_len(&lshape, dim));
        for_each_line(&lshape, dim, |base, stride| {
            let mut acc = local[base];
            for j in 1..lshape[dim] {
                acc = op(acc, local[base + j * stride]);
            }
            out.push(acc);
        });
        proc.charge_ops(local.len());
        out
    });

    // Combine across the processors that share the other coordinates.
    //
    // Rank order within the axis group equals the grid coordinate along
    // `dim`, and for block-cyclic layouts the fold order across coordinates
    // is not the global element order — fine for the commutative reductions
    // this entry point serves (sum/max/min/count).
    let group = proc.axis_group(dim);
    proc.with_category(Category::Other, |proc| {
        allreduce_with(proc, &group, &partials, op)
    })
}

/// `SUM(array, DIM)`: per-line sums, replicated across grid dimension
/// `dim`.
pub fn sum_dim<T: Num>(proc: &mut Proc, desc: &ArrayDesc, local: &[T], dim: usize) -> Vec<T> {
    reduce_dim(proc, desc, local, dim, |a, b| a + b)
}

/// `COUNT(mask, DIM)`: per-line true counts, replicated across grid
/// dimension `dim`.
pub fn count_dim(proc: &mut Proc, desc: &ArrayDesc, mask: &[bool], dim: usize) -> Vec<i32> {
    let ints: Vec<i32> = mask.iter().map(|&b| i32::from(b)).collect();
    proc.charge_ops(ints.len());
    reduce_dim(proc, desc, &ints, dim, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_distarray::{Dist, GlobalArray};
    use hpf_machine::{CostModel, Machine, ProcGrid};

    fn desc_2d() -> (ProcGrid, ArrayDesc) {
        let grid = ProcGrid::new(&[2, 2]);
        let desc = ArrayDesc::new(
            &[8, 12],
            &grid,
            &[Dist::BlockCyclic(2), Dist::BlockCyclic(3)],
        )
        .unwrap();
        (grid, desc)
    }

    #[test]
    fn sum_and_count_all_match_oracle() {
        let (grid, desc) = desc_2d();
        let a = GlobalArray::from_fn(&[8, 12], |g| (g[0] * 5 + g[1]) as i64);
        let want_sum: i64 = a.data().iter().sum();
        let parts = a.partition(&desc);
        let machine = Machine::new(grid, CostModel::cm5());
        let (d, pp) = (&desc, &parts);
        let out = machine.run(move |proc| {
            let local = &pp[proc.id()];
            let mask: Vec<bool> = local.iter().map(|&x| x % 3 == 0).collect();
            (sum_all(proc, d, local), count_all(proc, d, &mask))
        });
        let want_count = a.data().iter().filter(|&&x| x % 3 == 0).count();
        for (s, c) in out.results {
            assert_eq!(s, want_sum);
            assert_eq!(c, want_count);
        }
    }

    #[test]
    fn maxval_minval_match_oracle() {
        let (grid, desc) = desc_2d();
        let a = GlobalArray::from_fn(&[8, 12], |g| (g[0] as i32 * 7 + g[1] as i32 * 13) % 31 - 15);
        let want_max = *a.data().iter().max().unwrap();
        let want_min = *a.data().iter().min().unwrap();
        let parts = a.partition(&desc);
        let machine = Machine::new(grid, CostModel::cm5());
        let (d, pp) = (&desc, &parts);
        let out = machine.run(move |proc| {
            let local = &pp[proc.id()];
            (maxval_all(proc, d, local), minval_all(proc, d, local))
        });
        for (mx, mn) in out.results {
            assert_eq!(mx, want_max);
            assert_eq!(mn, want_min);
        }
    }

    #[test]
    fn sum_dim_matches_oracle_both_dims() {
        let shape = [8usize, 12];
        let (grid, desc) = desc_2d();
        let a = GlobalArray::from_fn(&shape, |g| (g[0] * 100 + g[1]) as i64);
        let parts = a.partition(&desc);
        let machine = Machine::new(grid, CostModel::cm5());
        for dim in 0..2 {
            let (d, pp) = (&desc, &parts);
            let out = machine.run(move |proc| sum_dim(proc, d, &pp[proc.id()], dim));
            // Verify every processor's replicated local result against the
            // oracle line sums.
            for p in 0..4 {
                let lshape = desc.local_shape(p);
                let got = &out.results[p];
                assert_eq!(got.len(), reduced_len(&lshape, dim));
                let mut idx = 0usize;
                for_each_line(&lshape, dim, |base, _| {
                    // The line's fixed coordinates, taken from any element
                    // of the line (j = 0).
                    let gfix = desc.global_of_local(p, base);
                    let mut want = 0i64;
                    for j in 0..shape[dim] {
                        let mut g = gfix.clone();
                        g[dim] = j;
                        want += a.get(&g);
                    }
                    assert_eq!(got[idx], want, "proc {p} dim {dim} line {idx}");
                    idx += 1;
                });
            }
        }
    }

    #[test]
    fn count_dim_counts_per_line() {
        let grid = ProcGrid::new(&[2, 1]);
        let desc = ArrayDesc::new(&[4, 3], &grid, &[Dist::BlockCyclic(2), Dist::Block]).unwrap();
        let m = GlobalArray::from_fn(&[4, 3], |g| g[0] <= g[1]);
        let parts = m.partition(&desc);
        let machine = Machine::new(grid, CostModel::zero());
        let (d, pp) = (&desc, &parts);
        let out = machine.run(move |proc| count_dim(proc, d, &pp[proc.id()], 0));
        // Line i1 counts g0 <= i1: i1=0 -> 1, i1=1 -> 2, i1=2 -> 3.
        for r in &out.results {
            assert_eq!(r, &vec![1, 2, 3]);
        }
    }

    #[test]
    fn for_each_line_enumerates_reduced_index_space() {
        let mut lines = Vec::new();
        for_each_line(&[3, 4, 2], 1, |base, stride| lines.push((base, stride)));
        assert_eq!(lines.len(), 6); // 3 * 2
        assert!(lines.iter().all(|&(_, s)| s == 3));
        assert_eq!(lines[0], (0, 3));
        assert_eq!(lines[1], (1, 3));
        assert_eq!(lines[3], (12, 3)); // next outer block starts at 3*4
    }
}
