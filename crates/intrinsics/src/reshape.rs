//! `TRANSPOSE` and `RESHAPE` — the remaining F90 transformational
//! intrinsics with communication content.
//!
//! Both are pure data-movement operations: every element has exactly one
//! destination the sender can compute, so each is a single many-to-many
//! round of `(destination local index, value)` pairs, like the shifts.

use hpf_distarray::ArrayDesc;
use hpf_machine::collectives::{alltoallv, A2aSchedule};
use hpf_machine::{Category, Proc, Wire};

/// `TRANSPOSE(matrix)`: `out[i, j] = in[j, i]` for rank-2 arrays.
///
/// `src` and `dst` describe the input and output (with `dst.shape()` the
/// reverse of `src.shape()`); the grids must share a processor count.
pub fn transpose<T: Wire + Default>(
    proc: &mut Proc,
    src: &ArrayDesc,
    dst: &ArrayDesc,
    local: &[T],
    schedule: A2aSchedule,
) -> Vec<T> {
    assert_eq!(src.ndims(), 2, "TRANSPOSE takes rank-2 arrays");
    assert_eq!(dst.ndims(), 2, "TRANSPOSE produces rank-2 arrays");
    let s_shape = src.shape();
    let d_shape = dst.shape();
    assert_eq!(
        (d_shape[0], d_shape[1]),
        (s_shape[1], s_shape[0]),
        "destination shape must be the reverse of the source"
    );
    move_by(proc, src, dst, local, schedule, |g| vec![g[1], g[0]])
}

/// `RESHAPE(array, shape)`: reinterpret the elements in array element order
/// under a new shape (and possibly a completely different distribution and
/// grid shape). `dst.global_len()` must equal `src.global_len()`.
pub fn reshape<T: Wire + Default>(
    proc: &mut Proc,
    src: &ArrayDesc,
    dst: &ArrayDesc,
    local: &[T],
    schedule: A2aSchedule,
) -> Vec<T> {
    assert_eq!(
        src.global_len(),
        dst.global_len(),
        "RESHAPE must preserve the element count"
    );
    let dst_shape = dst.shape();
    let src_shape = src.shape();
    move_by(proc, src, dst, local, schedule, move |g| {
        hpf_distarray::index::delinearize(
            hpf_distarray::index::linearize(g, &src_shape),
            &dst_shape,
        )
    })
}

/// Shared mover: every source element goes to `dest_index(global_index)`
/// under `dst`.
fn move_by<T: Wire + Default>(
    proc: &mut Proc,
    src: &ArrayDesc,
    dst: &ArrayDesc,
    local: &[T],
    schedule: A2aSchedule,
    dest_index: impl Fn(&[usize]) -> Vec<usize>,
) -> Vec<T> {
    assert_eq!(
        src.grid().nprocs(),
        dst.grid().nprocs(),
        "source and target must use the same processor count"
    );
    let me = proc.id();
    debug_assert_eq!(local.len(), src.local_len(me));
    let nprocs = src.grid().nprocs();

    let sends = proc.with_category(Category::LocalComp, |proc| {
        let mut sends: Vec<Vec<(u32, T)>> = (0..nprocs).map(|_| Vec::new()).collect();
        src.for_each_local_global(me, |l, g| {
            let (target, llin) = dst.owner_of(&dest_index(g));
            sends[target].push((llin as u32, local[l]));
        });
        proc.charge_ops(2 * local.len());
        sends
    });

    let recvs = proc.with_category(Category::ManyToMany, |proc| {
        let world = proc.world();
        alltoallv(proc, &world, sends, schedule)
    });

    proc.with_category(Category::LocalComp, |proc| {
        let mut out = vec![T::default(); dst.local_len(me)];
        let mut placed = 0usize;
        for msg in recvs {
            for (llin, v) in msg {
                out[llin as usize] = v;
                placed += 1;
            }
        }
        proc.charge_ops(placed);
        debug_assert_eq!(placed, out.len(), "every slot filled exactly once");
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_distarray::{Dist, GlobalArray};
    use hpf_machine::{CostModel, Machine, ProcGrid};

    #[test]
    fn transpose_matches_oracle() {
        let grid = ProcGrid::new(&[2, 2]);
        let src = ArrayDesc::new(&[8, 4], &grid, &[Dist::BlockCyclic(2), Dist::Cyclic]).unwrap();
        let dst = ArrayDesc::new(&[4, 8], &grid, &[Dist::Block, Dist::BlockCyclic(2)]).unwrap();
        let a = GlobalArray::from_fn(&[8, 4], |g| (g[0] * 10 + g[1]) as i32);
        let parts = a.partition(&src);
        let machine = Machine::new(grid, CostModel::cm5());
        let (s, d, pp) = (&src, &dst, &parts);
        let out = machine
            .run(move |proc| transpose(proc, s, d, &pp[proc.id()], A2aSchedule::LinearPermutation));
        let got = GlobalArray::assemble(&dst, &out.results);
        let want = GlobalArray::from_fn(&[4, 8], |g| a.get(&[g[1], g[0]]));
        assert_eq!(got, want);
    }

    #[test]
    fn double_transpose_is_identity() {
        let grid = ProcGrid::new(&[2, 2]);
        let src = ArrayDesc::new(&[8, 4], &grid, &[Dist::Cyclic, Dist::BlockCyclic(2)]).unwrap();
        let mid = ArrayDesc::new(&[4, 8], &grid, &[Dist::Cyclic, Dist::Cyclic]).unwrap();
        let a = GlobalArray::from_fn(&[8, 4], |g| (g[0] * 7 + g[1] * 31) as i64);
        let parts = a.partition(&src);
        let machine = Machine::new(grid, CostModel::cm5());
        let (s, m, pp) = (&src, &mid, &parts);
        let out = machine.run(move |proc| {
            let t = transpose(proc, s, m, &pp[proc.id()], A2aSchedule::LinearPermutation);
            transpose(proc, m, s, &t, A2aSchedule::LinearPermutation)
        });
        assert_eq!(GlobalArray::assemble(&src, &out.results), a);
    }

    #[test]
    fn reshape_preserves_element_order() {
        // 2-D (6x4) -> 1-D (24) -> different 2-D (4x6), all different grids.
        let g2 = ProcGrid::new(&[2, 2]);
        let g1 = ProcGrid::new(&[4]);
        let src = ArrayDesc::new(&[6, 4], &g2, &[Dist::Cyclic, Dist::Block]).unwrap();
        let flat = ArrayDesc::new(&[24], &g1, &[Dist::BlockCyclic(3)]).unwrap();
        let back = ArrayDesc::new(&[4, 6], &g2, &[Dist::Block, Dist::Cyclic]).unwrap();
        let a = GlobalArray::from_fn(&[6, 4], |g| (g[0] + 6 * g[1]) as i32);
        let parts = a.partition(&src);
        let machine = Machine::new(g2.clone(), CostModel::cm5());
        let (s, f, b, pp) = (&src, &flat, &back, &parts);
        let out = machine.run(move |proc| {
            let flat_local = reshape(proc, s, f, &pp[proc.id()], A2aSchedule::LinearPermutation);
            reshape(proc, f, b, &flat_local, A2aSchedule::LinearPermutation)
        });
        let got = GlobalArray::assemble(&back, &out.results);
        // Element order is preserved: got's linear order equals a's.
        assert_eq!(got.data(), a.data());
    }

    #[test]
    #[should_panic(expected = "preserve the element count")]
    fn reshape_length_mismatch_rejected() {
        let grid = ProcGrid::line(2);
        let src = ArrayDesc::new(&[8], &grid, &[Dist::Block]).unwrap();
        let dst = ArrayDesc::new(&[6], &grid, &[Dist::Block]).unwrap();
        let machine = Machine::new(grid, CostModel::zero());
        machine.run(|proc| {
            let local = vec![0i32; 4];
            reshape(proc, &src, &dst, &local, A2aSchedule::LinearPermutation);
        });
    }
}
