//! `SUM_PREFIX` / `SUM_SUFFIX` with `DIM` — the HPF library's segmented
//! scan functions, on block-cyclic distributed arrays.
//!
//! This is the ranking algorithm's machinery applied element-wise along one
//! dimension: per-block local scans, one fused prefix-reduction-sum across
//! the processors of that dimension (per block-sum), and a local carry
//! across tiles. The value at local position `(t·W + off)` of a line is
//!
//! ```text
//! carry(t)  +  proc-prefix(t)  +  in-block prefix(off)   [+ own value]
//! ```
//!
//! exactly mirroring how a selected element's rank is assembled from
//! `PS_f` plus its in-slice rank in the paper's Section 5.

use hpf_distarray::ArrayDesc;
use hpf_machine::collectives::{prefix_reduction_sum, Num, PrsAlgorithm};
use hpf_machine::{Category, Proc};

use crate::reduce::{for_each_line, reduced_len};

/// Inclusive (`x_j` contributes to position `j`) or exclusive scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScanKind {
    /// Each position includes its own value.
    Inclusive,
    /// Each position sums strictly earlier values (position 0 gets zero).
    Exclusive,
}

/// Global `SUM_PREFIX(array, DIM)` along dimension `dim`: every element is
/// replaced by the sum of the line elements at globally earlier positions
/// (plus itself for [`ScanKind::Inclusive`]).
///
/// Requires the paper's divisible layout. Returns the local result array.
pub fn sum_prefix_dim<T: Num>(
    proc: &mut Proc,
    desc: &ArrayDesc,
    local: &[T],
    dim: usize,
    kind: ScanKind,
    prs: PrsAlgorithm,
) -> Vec<T> {
    assert!(dim < desc.ndims(), "DIM out of range");
    assert!(
        desc.divisible(),
        "SUM_PREFIX requires the divisible block-cyclic layout"
    );
    debug_assert_eq!(local.len(), desc.local_len(proc.id()));

    let lshape = desc.local_shape(proc.id());
    let w = desc.dim(dim).w();
    let tiles = desc.dim(dim).t();
    let nlines = reduced_len(&lshape, dim);

    // Per-(line, tile) block sums, laid out [tile fastest, then line].
    let block_sums = proc.with_category(Category::LocalComp, |proc| {
        let mut sums = vec![T::default(); nlines * tiles];
        let mut line = 0usize;
        for_each_line(&lshape, dim, |base, stride| {
            for t in 0..tiles {
                let mut acc = T::default();
                for off in 0..w {
                    acc += local[base + (t * w + off) * stride];
                }
                sums[line * tiles + t] = acc;
            }
            line += 1;
        });
        proc.charge_ops(local.len());
        sums
    });

    // Fused prefix-reduction-sum across the processors of `dim`:
    // pp = sums on lower coordinates of the same tile, tt = tile totals.
    let group = proc.axis_group(dim);
    let (pp, tt) = proc.with_category(Category::PrefixReductionSum, |proc| {
        prefix_reduction_sum(proc, &group, &block_sums, prs)
    });

    // Assemble: carry across tiles + processor prefix + in-block prefix.
    proc.with_category(Category::LocalComp, |proc| {
        let mut out = vec![T::default(); local.len()];
        let mut line = 0usize;
        for_each_line(&lshape, dim, |base, stride| {
            let mut carry = T::default();
            for t in 0..tiles {
                let block_base = carry + pp[line * tiles + t];
                let mut acc = T::default();
                for off in 0..w {
                    let idx = base + (t * w + off) * stride;
                    out[idx] = match kind {
                        ScanKind::Exclusive => block_base + acc,
                        ScanKind::Inclusive => block_base + acc + local[idx],
                    };
                    acc += local[idx];
                }
                carry += tt[line * tiles + t];
            }
            line += 1;
        });
        proc.charge_ops(2 * local.len());
        out
    })
}

/// Global `SUM_SUFFIX(array, DIM)`: the mirror scan, derived from the
/// prefix and the line totals (`suffix_inclusive = total - prefix_exclusive`).
pub fn sum_suffix_dim<T: Num>(
    proc: &mut Proc,
    desc: &ArrayDesc,
    local: &[T],
    dim: usize,
    kind: ScanKind,
    prs: PrsAlgorithm,
) -> Vec<T> {
    // Compute the *exclusive* prefix plus per-line totals, then flip.
    let prefix_excl = sum_prefix_dim(proc, desc, local, dim, ScanKind::Exclusive, prs);
    let lshape = desc.local_shape(proc.id());
    let w = desc.dim(dim).w();
    let tiles = desc.dim(dim).t();

    // Line totals, replicated: reuse the reduction path (cheap relative to
    // the scan and keeps this function simple).
    let totals = crate::reduce::sum_dim(proc, desc, local, dim);

    proc.with_category(Category::LocalComp, |proc| {
        let mut out = vec![T::default(); local.len()];
        let mut line = 0usize;
        for_each_line(&lshape, dim, |base, stride| {
            let total = totals[line];
            for j in 0..tiles * w {
                let idx = base + j * stride;
                out[idx] = match kind {
                    ScanKind::Inclusive => total - prefix_excl[idx],
                    ScanKind::Exclusive => total - prefix_excl[idx] - local[idx],
                };
            }
            line += 1;
        });
        proc.charge_ops(local.len());
        out
    })
}

/// Global *segmented* `SUM_PREFIX` along `dim`: `starts` marks the elements
/// that begin a new segment (aligned with the array; the first element of
/// every line is treated as a start regardless). The scan restarts at every
/// segment start — segments may span block and processor boundaries.
///
/// Implemented with the classic segmented-sum monoid
/// `(seen-start, sum-since-last-start)` folded per block, across processors
/// ([`prefix_scan_with`]), and across tiles.
pub fn sum_prefix_dim_segmented<T: Num>(
    proc: &mut Proc,
    desc: &ArrayDesc,
    local: &[T],
    starts: &[bool],
    dim: usize,
    kind: ScanKind,
) -> Vec<T> {
    use hpf_machine::collectives::prefix_scan_with;

    assert!(dim < desc.ndims(), "DIM out of range");
    assert!(
        desc.divisible(),
        "segmented SUM_PREFIX requires the divisible layout"
    );
    assert_eq!(
        local.len(),
        starts.len(),
        "SEGMENT mask must be conformable"
    );
    debug_assert_eq!(local.len(), desc.local_len(proc.id()));

    let lshape = desc.local_shape(proc.id());
    let w = desc.dim(dim).w();
    let tiles = desc.dim(dim).t();
    let nlines = reduced_len(&lshape, dim);

    type Seg<T> = (bool, T);
    #[inline]
    fn combine<T: Num>(a: Seg<T>, b: Seg<T>) -> Seg<T> {
        (a.0 || b.0, if b.0 { b.1 } else { a.1 + b.1 })
    }

    // Per-(line, tile) block folds plus per-position exclusive folds.
    let (block_folds, pos_excl) = proc.with_category(Category::LocalComp, |proc| {
        let mut folds: Vec<Seg<T>> = vec![(false, T::default()); nlines * tiles];
        let mut pos: Vec<Seg<T>> = vec![(false, T::default()); local.len()];
        let mut line = 0usize;
        for_each_line(&lshape, dim, |base, stride| {
            for t in 0..tiles {
                let mut acc: Seg<T> = (false, T::default());
                for off in 0..w {
                    let idx = base + (t * w + off) * stride;
                    pos[idx] = acc;
                    acc = combine(acc, (starts[idx], local[idx]));
                }
                folds[line * tiles + t] = acc;
            }
            line += 1;
        });
        proc.charge_ops(2 * local.len());
        (folds, pos)
    });

    // Across processors of the tile.
    let group = proc.axis_group(dim);
    let proc_prefix = proc.with_category(Category::PrefixReductionSum, |proc| {
        prefix_scan_with(proc, &group, &block_folds, (false, T::default()), combine)
    });
    // Tile totals (for the cross-tile carry): fold across procs too.
    let tile_totals = proc.with_category(Category::PrefixReductionSum, |proc| {
        hpf_machine::collectives::allreduce_with(proc, &group, &block_folds, combine)
    });

    proc.with_category(Category::LocalComp, |proc| {
        let mut out = vec![T::default(); local.len()];
        let mut line = 0usize;
        for_each_line(&lshape, dim, |base, stride| {
            let mut carry: Seg<T> = (false, T::default());
            for t in 0..tiles {
                let before_block = combine(carry, proc_prefix[line * tiles + t]);
                for off in 0..w {
                    let idx = base + (t * w + off) * stride;
                    let excl = if starts[idx] {
                        T::default()
                    } else {
                        combine(before_block, pos_excl[idx]).1
                    };
                    out[idx] = match kind {
                        ScanKind::Exclusive => excl,
                        ScanKind::Inclusive => excl + local[idx],
                    };
                }
                carry = combine(carry, tile_totals[line * tiles + t]);
            }
            line += 1;
        });
        proc.charge_ops(2 * local.len());
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_distarray::{Dist, GlobalArray};
    use hpf_machine::{CostModel, Machine, ProcGrid};

    fn oracle_prefix(a: &GlobalArray<i64>, dim: usize, kind: ScanKind) -> GlobalArray<i64> {
        let shape = a.shape().to_vec();
        GlobalArray::from_fn(&shape, |g| {
            let upto = match kind {
                ScanKind::Inclusive => g[dim] + 1,
                ScanKind::Exclusive => g[dim],
            };
            let mut acc = 0i64;
            let mut idx = g.to_vec();
            for j in 0..upto {
                idx[dim] = j;
                acc += a.get(&idx);
            }
            acc
        })
    }

    fn check(shape: &[usize], grid_dims: &[usize], dists: &[Dist], dim: usize, kind: ScanKind) {
        let grid = ProcGrid::new(grid_dims);
        let desc = ArrayDesc::new(shape, &grid, dists).unwrap();
        let a = GlobalArray::from_fn(shape, |g| {
            g.iter()
                .enumerate()
                .map(|(i, &x)| (x as i64 + 1) * (i as i64 * 10 + 1))
                .product()
        });
        let want = oracle_prefix(&a, dim, kind);
        let parts = a.partition(&desc);
        let machine = Machine::new(grid, CostModel::cm5());
        let (d, pp) = (&desc, &parts);
        let out = machine.run(move |proc| {
            sum_prefix_dim(proc, d, &pp[proc.id()], dim, kind, PrsAlgorithm::Auto)
        });
        assert_eq!(
            GlobalArray::assemble(&desc, &out.results),
            want,
            "{shape:?} {dists:?} dim {dim} {kind:?}"
        );
    }

    #[test]
    fn prefix_1d_all_distributions() {
        for dist in [Dist::Block, Dist::Cyclic, Dist::BlockCyclic(2)] {
            for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
                check(&[24], &[4], &[dist], 0, kind);
            }
        }
    }

    #[test]
    fn prefix_2d_both_dims() {
        for dim in 0..2 {
            check(
                &[8, 12],
                &[2, 2],
                &[Dist::BlockCyclic(2), Dist::BlockCyclic(3)],
                dim,
                ScanKind::Inclusive,
            );
        }
    }

    #[test]
    fn prefix_3d_middle_dim() {
        check(
            &[4, 6, 4],
            &[2, 3, 1],
            &[Dist::Cyclic, Dist::Cyclic, Dist::Block],
            1,
            ScanKind::Exclusive,
        );
    }

    #[test]
    fn suffix_matches_oracle() {
        let shape = [12usize, 4];
        let grid = ProcGrid::new(&[2, 2]);
        let desc = ArrayDesc::new(&shape, &grid, &[Dist::BlockCyclic(3), Dist::Cyclic]).unwrap();
        let a = GlobalArray::from_fn(&shape, |g| (g[0] * 2 + g[1] * 7) as i64);
        let parts = a.partition(&desc);
        let machine = Machine::new(grid, CostModel::cm5());
        for kind in [ScanKind::Inclusive, ScanKind::Exclusive] {
            let (d, pp) = (&desc, &parts);
            let out = machine.run(move |proc| {
                sum_suffix_dim(proc, d, &pp[proc.id()], 0, kind, PrsAlgorithm::Auto)
            });
            let got = GlobalArray::assemble(&desc, &out.results);
            let want = GlobalArray::from_fn(&shape, |g| {
                let from = match kind {
                    ScanKind::Inclusive => g[0],
                    ScanKind::Exclusive => g[0] + 1,
                };
                (from..shape[0]).map(|j| a.get(&[j, g[1]])).sum::<i64>()
            });
            assert_eq!(got, want, "{kind:?}");
        }
    }

    fn oracle_segmented(
        a: &GlobalArray<i64>,
        starts: &GlobalArray<bool>,
        dim: usize,
        kind: ScanKind,
    ) -> GlobalArray<i64> {
        let shape = a.shape().to_vec();
        GlobalArray::from_fn(&shape, |g| {
            // Walk back to the segment start (or line start).
            let mut lo = g[dim];
            while lo > 0 {
                let mut idx = g.to_vec();
                idx[dim] = lo;
                if starts.get(&idx) {
                    break;
                }
                lo -= 1;
            }
            let hi = match kind {
                ScanKind::Inclusive => g[dim] + 1,
                ScanKind::Exclusive => g[dim],
            };
            let mut acc = 0i64;
            let mut idx = g.to_vec();
            for j in lo..hi {
                idx[dim] = j;
                acc += a.get(&idx);
            }
            acc
        })
    }

    #[test]
    fn segmented_prefix_matches_oracle() {
        let shape = [24usize, 4];
        let grid = ProcGrid::new(&[4, 2]);
        let desc = ArrayDesc::new(&shape, &grid, &[Dist::BlockCyclic(2), Dist::Cyclic]).unwrap();
        let a = GlobalArray::from_fn(&shape, |g| (g[0] * 3 + g[1] + 1) as i64);
        // Segments start at multiples of 5 along dim 0 (crossing both block
        // and processor boundaries), varying per line.
        let starts = GlobalArray::from_fn(&shape, |g| g[0] % 5 == g[1] % 3);
        let (ap, sp) = (a.partition(&desc), starts.partition(&desc));
        let machine = Machine::new(grid, CostModel::cm5());
        for kind in [ScanKind::Exclusive, ScanKind::Inclusive] {
            let (d, apr, spr) = (&desc, &ap, &sp);
            let out = machine.run(move |proc| {
                sum_prefix_dim_segmented(proc, d, &apr[proc.id()], &spr[proc.id()], 0, kind)
            });
            let got = GlobalArray::assemble(&desc, &out.results);
            let want = oracle_segmented(&a, &starts, 0, kind);
            assert_eq!(got, want, "{kind:?}");
        }
    }

    #[test]
    fn segmented_with_no_starts_equals_plain_prefix() {
        let shape = [16usize];
        let grid = ProcGrid::line(4);
        let desc = ArrayDesc::new(&shape, &grid, &[Dist::BlockCyclic(2)]).unwrap();
        let a = GlobalArray::from_fn(&shape, |g| g[0] as i64 + 1);
        let ap = a.partition(&desc);
        let machine = Machine::new(grid, CostModel::cm5());
        let (d, apr) = (&desc, &ap);
        let out = machine.run(move |proc| {
            let no_starts = vec![false; apr[proc.id()].len()];
            let seg = sum_prefix_dim_segmented(
                proc,
                d,
                &apr[proc.id()],
                &no_starts,
                0,
                ScanKind::Exclusive,
            );
            let plain = sum_prefix_dim(
                proc,
                d,
                &apr[proc.id()],
                0,
                ScanKind::Exclusive,
                PrsAlgorithm::Auto,
            );
            (seg, plain)
        });
        for (seg, plain) in out.results {
            assert_eq!(seg, plain);
        }
    }

    #[test]
    fn every_element_a_start_zeroes_the_exclusive_scan() {
        let shape = [12usize];
        let grid = ProcGrid::line(3);
        let desc = ArrayDesc::new(&shape, &grid, &[Dist::Cyclic]).unwrap();
        let machine = Machine::new(grid, CostModel::cm5());
        let d = &desc;
        let out = machine.run(move |proc| {
            let a = hpf_distarray::local_from_fn(d, proc.id(), |g| g[0] as i64);
            let starts = vec![true; a.len()];
            sum_prefix_dim_segmented(proc, d, &a, &starts, 0, ScanKind::Exclusive)
        });
        for r in out.results {
            assert!(r.iter().all(|&x| x == 0));
        }
    }

    /// prefix_excl + own + suffix_excl == line total, pointwise.
    #[test]
    fn prefix_suffix_identity() {
        let shape = [16usize];
        let grid = ProcGrid::line(4);
        let desc = ArrayDesc::new(&shape, &grid, &[Dist::BlockCyclic(2)]).unwrap();
        let a = GlobalArray::from_fn(&shape, |g| g[0] as i64 + 1);
        let total: i64 = a.data().iter().sum();
        let parts = a.partition(&desc);
        let machine = Machine::new(grid, CostModel::cm5());
        let (d, pp) = (&desc, &parts);
        let out = machine.run(move |proc| {
            let local = &pp[proc.id()];
            let pre = sum_prefix_dim(proc, d, local, 0, ScanKind::Exclusive, PrsAlgorithm::Auto);
            let suf = sum_suffix_dim(proc, d, local, 0, ScanKind::Exclusive, PrsAlgorithm::Auto);
            pre.iter()
                .zip(local)
                .zip(&suf)
                .map(|((&p, &x), &s)| p + x + s)
                .collect::<Vec<i64>>()
        });
        for r in &out.results {
            assert!(r.iter().all(|&x| x == total), "{r:?}");
        }
    }
}
