//! `CSHIFT` / `EOSHIFT` — circular and end-off shifts along one dimension
//! of a block-cyclic distributed array.
//!
//! A shift is a WRITE-style exchange like PACK's redistribution stage:
//! every element has exactly one destination the sender can compute, so
//! one round of many-to-many personalized communication suffices. Messages
//! carry `(destination local index, value)` pairs; the receiver places
//! elements directly.

use hpf_distarray::ArrayDesc;
use hpf_machine::collectives::{alltoallv, A2aSchedule};
use hpf_machine::{Category, Proc, Wire};

/// `CSHIFT(array, shift, DIM)`: `out[…, j, …] = in[…, (j + shift) mod N, …]`
/// along dimension `dim`. Positive shifts move elements toward lower
/// indices, as in Fortran.
pub fn cshift_dim<T: Wire + Default>(
    proc: &mut Proc,
    desc: &ArrayDesc,
    local: &[T],
    dim: usize,
    shift: isize,
    schedule: A2aSchedule,
) -> Vec<T> {
    shift_impl(proc, desc, local, dim, shift, None, schedule)
}

/// `EOSHIFT(array, shift, boundary, DIM)`: like `CSHIFT` but elements
/// shifted past the ends are dropped and vacated positions take
/// `boundary`.
pub fn eoshift_dim<T: Wire + Default>(
    proc: &mut Proc,
    desc: &ArrayDesc,
    local: &[T],
    dim: usize,
    shift: isize,
    boundary: T,
    schedule: A2aSchedule,
) -> Vec<T> {
    shift_impl(proc, desc, local, dim, shift, Some(boundary), schedule)
}

/// `boundary = None` → circular; `Some(b)` → end-off with fill `b`.
fn shift_impl<T: Wire + Default>(
    proc: &mut Proc,
    desc: &ArrayDesc,
    local: &[T],
    dim: usize,
    shift: isize,
    boundary: Option<T>,
    schedule: A2aSchedule,
) -> Vec<T> {
    assert!(dim < desc.ndims(), "DIM out of range");
    let me = proc.id();
    debug_assert_eq!(local.len(), desc.local_len(me));
    let n = desc.dim(dim).n() as isize;
    let nprocs = desc.grid().nprocs();

    // Destination of the element at source position g (along dim):
    // out[g - shift] = in[g], circularly or dropped at the ends.
    let sends = proc.with_category(Category::LocalComp, |proc| {
        let mut sends: Vec<Vec<(u32, T)>> = (0..nprocs).map(|_| Vec::new()).collect();
        let mut scratch = vec![0usize; desc.ndims()];
        desc.for_each_local_global(me, |l, g| {
            let moved = g[dim] as isize - shift;
            let dest_pos = if boundary.is_none() {
                moved.rem_euclid(n)
            } else if (0..n).contains(&moved) {
                moved
            } else {
                return; // shifted off the end
            };
            scratch.copy_from_slice(g);
            scratch[dim] = dest_pos as usize;
            let (target, llin) = desc.owner_of(&scratch);
            sends[target].push((llin as u32, local[l]));
        });
        proc.charge_ops(2 * local.len());
        sends
    });

    let recvs = proc.with_category(Category::ManyToMany, |proc| {
        let world = proc.world();
        alltoallv(proc, &world, sends, schedule)
    });

    proc.with_category(Category::LocalComp, |proc| {
        let fill = boundary.unwrap_or_default();
        let mut out = vec![fill; local.len()];
        let mut placed = 0usize;
        for msg in recvs {
            for (llin, v) in msg {
                out[llin as usize] = v;
                placed += 1;
            }
        }
        proc.charge_ops(placed);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_distarray::{Dist, GlobalArray};
    use hpf_machine::{CostModel, Machine, ProcGrid};

    fn run_shift(
        shape: &[usize],
        grid_dims: &[usize],
        dists: &[Dist],
        dim: usize,
        shift: isize,
        boundary: Option<i32>,
    ) -> (GlobalArray<i32>, GlobalArray<i32>) {
        let grid = ProcGrid::new(grid_dims);
        let desc = ArrayDesc::new(shape, &grid, dists).unwrap();
        let a = GlobalArray::from_fn(shape, |g| {
            g.iter()
                .enumerate()
                .map(|(i, &x)| (x as i32 + 1) * 10i32.pow(i as u32 * 2))
                .sum()
        });
        let n = shape[dim] as isize;
        let want = GlobalArray::from_fn(shape, |g| {
            let src = g[dim] as isize + shift;
            match boundary {
                None => {
                    let mut idx = g.to_vec();
                    idx[dim] = src.rem_euclid(n) as usize;
                    a.get(&idx)
                }
                Some(b) => {
                    if (0..n).contains(&src) {
                        let mut idx = g.to_vec();
                        idx[dim] = src as usize;
                        a.get(&idx)
                    } else {
                        b
                    }
                }
            }
        });
        let parts = a.partition(&desc);
        let machine = Machine::new(grid, CostModel::cm5());
        let (d, pp) = (&desc, &parts);
        let out = machine.run(move |proc| match boundary {
            None => cshift_dim(
                proc,
                d,
                &pp[proc.id()],
                dim,
                shift,
                A2aSchedule::LinearPermutation,
            ),
            Some(b) => eoshift_dim(
                proc,
                d,
                &pp[proc.id()],
                dim,
                shift,
                b,
                A2aSchedule::LinearPermutation,
            ),
        });
        (GlobalArray::assemble(&desc, &out.results), want)
    }

    #[test]
    fn cshift_1d_various_shifts() {
        for dist in [Dist::Block, Dist::Cyclic, Dist::BlockCyclic(2)] {
            for shift in [-17isize, -3, -1, 0, 1, 5, 16, 23] {
                let (got, want) = run_shift(&[16], &[4], &[dist], 0, shift, None);
                assert_eq!(got, want, "{dist:?} shift {shift}");
            }
        }
    }

    #[test]
    fn cshift_2d_both_dims() {
        for dim in 0..2 {
            let (got, want) = run_shift(
                &[8, 8],
                &[2, 2],
                &[Dist::BlockCyclic(2), Dist::Cyclic],
                dim,
                3,
                None,
            );
            assert_eq!(got, want, "dim {dim}");
        }
    }

    #[test]
    fn eoshift_fills_boundary() {
        for shift in [-20isize, -2, 0, 2, 20] {
            let (got, want) = run_shift(&[12], &[3], &[Dist::BlockCyclic(2)], 0, shift, Some(-9));
            assert_eq!(got, want, "shift {shift}");
        }
    }

    #[test]
    fn cshift_by_full_period_is_identity() {
        let (got, want) = run_shift(&[16], &[4], &[Dist::BlockCyclic(4)], 0, 16, None);
        assert_eq!(got, want);
        let (got2, _) = run_shift(&[16], &[4], &[Dist::BlockCyclic(4)], 0, 0, None);
        assert_eq!(got, got2);
    }

    /// Shifts that stay inside a processor's own blocks cost no traffic.
    #[test]
    fn block_internal_shift_is_local() {
        let grid = ProcGrid::line(2);
        let desc = ArrayDesc::new(&[8], &grid, &[Dist::Block]).unwrap();
        let machine = Machine::new(grid, CostModel::cm5());
        let d = &desc;
        let out = machine.run(move |proc| {
            let local = hpf_distarray::local_from_fn(d, proc.id(), |g| g[0] as i32);
            // EOSHIFT by 1 within blocks of 4: only the block-boundary
            // element crosses processors.
            eoshift_dim(proc, d, &local, 0, 1, -1, A2aSchedule::LinearPermutation)
        });
        // One 2-word pair crosses from proc 1 to proc 0's side? No — with
        // shift=+1 element g lands at g-1, so only g=4 crosses (to proc 0).
        assert_eq!(out.total_words_sent(), 2);
        assert_eq!(out.results[0], vec![1, 2, 3, 4]);
        assert_eq!(out.results[1], vec![5, 6, 7, -1]);
    }
}
