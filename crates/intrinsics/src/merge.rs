//! `MERGE(TSOURCE, FSOURCE, MASK)` — element-wise selection.
//!
//! With all three arguments conformable and aligned (the standing
//! assumption of the paper's runtime), MERGE is purely local computation:
//! no communication, `L` operations.

use hpf_machine::{Category, Proc};

/// Element-wise `if mask { t } else { f }` over aligned local arrays.
///
/// # Panics
/// Panics if the three local arrays differ in length (non-conformable).
pub fn merge<T: Copy>(proc: &mut Proc, tsource: &[T], fsource: &[T], mask: &[bool]) -> Vec<T> {
    assert_eq!(
        tsource.len(),
        fsource.len(),
        "TSOURCE and FSOURCE must be conformable"
    );
    assert_eq!(
        tsource.len(),
        mask.len(),
        "MASK must be conformable with the sources"
    );
    proc.with_category(Category::LocalComp, |proc| {
        proc.charge_ops(mask.len());
        tsource
            .iter()
            .zip(fsource)
            .zip(mask)
            .map(|((&t, &f), &m)| if m { t } else { f })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_machine::{CostModel, Machine, ProcGrid};

    #[test]
    fn merge_selects_elementwise_without_communication() {
        let machine = Machine::new(ProcGrid::line(2), CostModel::cm5());
        let out = machine.run(|proc| {
            let t = vec![1i32, 2, 3];
            let f = vec![-1i32, -2, -3];
            let m = vec![true, false, true];
            merge(proc, &t, &f, &m)
        });
        for r in &out.results {
            assert_eq!(r, &vec![1, -2, 3]);
        }
        assert_eq!(out.total_words_sent(), 0);
        assert!(out.max_cat_ms(hpf_machine::Category::LocalComp) > 0.0);
    }

    #[test]
    #[should_panic(expected = "conformable")]
    fn non_conformable_rejected() {
        let machine = Machine::new(ProcGrid::line(1), CostModel::zero());
        machine.run(|proc| {
            merge(proc, &[1i32, 2], &[3i32], &[true]);
        });
    }
}
