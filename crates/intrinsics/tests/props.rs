//! Property tests for the intrinsics: arbitrary divisible configurations
//! against sequential oracles.

use proptest::prelude::*;

use hpf_distarray::{ArrayDesc, Dist, GlobalArray};
use hpf_intrinsics::{
    count_all, cshift_dim, eoshift_dim, maxval_all, minval_all, reshape, sum_all, sum_dim,
    sum_prefix_dim, transpose, ScanKind,
};
use hpf_machine::collectives::{A2aSchedule, PrsAlgorithm};
use hpf_machine::{CostModel, Machine, ProcGrid};

/// A divisible 2-D configuration: shape (p·w·t per dim), grid, dists.
#[derive(Debug, Clone)]
struct Cfg2 {
    dims: [(usize, usize, usize); 2],
    values: Vec<i64>,
}

impl Cfg2 {
    fn shape(&self) -> Vec<usize> {
        self.dims.iter().map(|&(p, w, t)| p * w * t).collect()
    }
    fn grid(&self) -> ProcGrid {
        ProcGrid::new(&[self.dims[0].0, self.dims[1].0])
    }
    fn desc(&self) -> ArrayDesc {
        let dists: Vec<Dist> = self
            .dims
            .iter()
            .map(|&(_, w, _)| Dist::BlockCyclic(w))
            .collect();
        ArrayDesc::new(&self.shape(), &self.grid(), &dists).unwrap()
    }
    fn array(&self) -> GlobalArray<i64> {
        GlobalArray::from_vec(&self.shape(), self.values.clone())
    }
}

fn cfg2() -> impl Strategy<Value = Cfg2> {
    let dim = (1usize..=3, 1usize..=2, 1usize..=3);
    (dim.clone(), dim).prop_flat_map(|(d0, d1)| {
        let n = d0.0 * d0.1 * d0.2 * d1.0 * d1.1 * d1.2;
        prop::collection::vec(-50i64..50, n).prop_map(move |values| Cfg2 {
            dims: [d0, d1],
            values,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, .. ProptestConfig::default() })]

    #[test]
    fn reductions_match_oracle(cfg in cfg2()) {
        let desc = cfg.desc();
        let a = cfg.array();
        let parts = a.partition(&desc);
        let machine = Machine::new(cfg.grid(), CostModel::cm5());
        let (d, pp) = (&desc, &parts);
        let out = machine.run(move |proc| {
            let local = &pp[proc.id()];
            let mask: Vec<bool> = local.iter().map(|&x| x > 0).collect();
            (
                sum_all(proc, d, local),
                maxval_all(proc, d, local),
                minval_all(proc, d, local),
                count_all(proc, d, &mask),
            )
        });
        let want_sum: i64 = a.data().iter().sum();
        let want_max = *a.data().iter().max().unwrap();
        let want_min = *a.data().iter().min().unwrap();
        let want_count = a.data().iter().filter(|&&x| x > 0).count();
        for (s, mx, mn, c) in out.results {
            prop_assert_eq!(s, want_sum);
            prop_assert_eq!(mx, want_max);
            prop_assert_eq!(mn, want_min);
            prop_assert_eq!(c, want_count);
        }
    }

    #[test]
    fn sum_prefix_matches_oracle_both_dims(cfg in cfg2(), dim in 0usize..2, incl in any::<bool>()) {
        let kind = if incl { ScanKind::Inclusive } else { ScanKind::Exclusive };
        let desc = cfg.desc();
        let a = cfg.array();
        let shape = cfg.shape();
        let parts = a.partition(&desc);
        let machine = Machine::new(cfg.grid(), CostModel::cm5());
        let (d, pp) = (&desc, &parts);
        let out = machine.run(move |proc| {
            sum_prefix_dim(proc, d, &pp[proc.id()], dim, kind, PrsAlgorithm::Auto)
        });
        let got = GlobalArray::assemble(&desc, &out.results);
        let want = GlobalArray::from_fn(&shape, |g| {
            let upto = match kind {
                ScanKind::Inclusive => g[dim] + 1,
                ScanKind::Exclusive => g[dim],
            };
            let mut idx = g.to_vec();
            (0..upto).map(|j| { idx[dim] = j; a.get(&idx) }).sum()
        });
        prop_assert_eq!(got, want);
    }

    #[test]
    fn sum_dim_lines_match_oracle(cfg in cfg2(), dim in 0usize..2) {
        let desc = cfg.desc();
        let a = cfg.array();
        let shape = cfg.shape();
        let parts = a.partition(&desc);
        let machine = Machine::new(cfg.grid(), CostModel::cm5());
        let (d, pp) = (&desc, &parts);
        let out = machine.run(move |proc| sum_dim(proc, d, &pp[proc.id()], dim));
        // Spot-check processor 0's replicated lines against the oracle.
        let lshape = desc.local_shape(0);
        let other = 1 - dim;
        for (idx, b) in (0..lshape[other]).enumerate() {
            // Local line b of proc 0 along `other`: find its global fixed
            // coordinate from element (0 along dim, b along other).
            let llin = if other == 0 { b } else { b * lshape[0] };
            let gfix = desc.global_of_local(0, llin);
            let want: i64 = (0..shape[dim])
                .map(|j| {
                    let mut g = gfix.clone();
                    g[dim] = j;
                    a.get(&g)
                })
                .sum();
            prop_assert_eq!(out.results[0][idx], want);
        }
    }

    #[test]
    fn cshift_then_inverse_is_identity(cfg in cfg2(), dim in 0usize..2, shift in -10isize..10) {
        let desc = cfg.desc();
        let a = cfg.array();
        let parts = a.partition(&desc);
        let machine = Machine::new(cfg.grid(), CostModel::cm5());
        let (d, pp) = (&desc, &parts);
        let out = machine.run(move |proc| {
            let x = cshift_dim(proc, d, &pp[proc.id()], dim, shift, A2aSchedule::LinearPermutation);
            cshift_dim(proc, d, &x, dim, -shift, A2aSchedule::LinearPermutation)
        });
        prop_assert_eq!(GlobalArray::assemble(&desc, &out.results), a);
    }

    #[test]
    fn eoshift_drops_and_fills(cfg in cfg2(), dim in 0usize..2, shift in -6isize..6) {
        let desc = cfg.desc();
        let a = cfg.array();
        let shape = cfg.shape();
        let parts = a.partition(&desc);
        let machine = Machine::new(cfg.grid(), CostModel::cm5());
        let (d, pp) = (&desc, &parts);
        let out = machine.run(move |proc| {
            eoshift_dim(proc, d, &pp[proc.id()], dim, shift, -999, A2aSchedule::LinearPermutation)
        });
        let got = GlobalArray::assemble(&desc, &out.results);
        let n = shape[dim] as isize;
        let want = GlobalArray::from_fn(&shape, |g| {
            let src = g[dim] as isize + shift;
            if (0..n).contains(&src) {
                let mut idx = g.to_vec();
                idx[dim] = src as usize;
                a.get(&idx)
            } else {
                -999
            }
        });
        prop_assert_eq!(got, want);
    }

    #[test]
    fn transpose_twice_is_identity(cfg in cfg2()) {
        let desc = cfg.desc();
        let shape = cfg.shape();
        let grid = cfg.grid();
        // Transposed descriptor: swapped shape on the swapped grid.
        let tgrid = ProcGrid::new(&[grid.dim(1), grid.dim(0)]);
        let tdists = [Dist::BlockCyclic(cfg.dims[1].1), Dist::BlockCyclic(cfg.dims[0].1)];
        let tdesc = ArrayDesc::new(&[shape[1], shape[0]], &tgrid, &tdists).unwrap();
        let a = cfg.array();
        let parts = a.partition(&desc);
        let machine = Machine::new(grid, CostModel::cm5());
        let (s, t, pp) = (&desc, &tdesc, &parts);
        let out = machine.run(move |proc| {
            let x = transpose(proc, s, t, &pp[proc.id()], A2aSchedule::LinearPermutation);
            transpose(proc, t, s, &x, A2aSchedule::LinearPermutation)
        });
        prop_assert_eq!(GlobalArray::assemble(&desc, &out.results), a);
    }

    #[test]
    fn reshape_roundtrip_via_flat(cfg in cfg2(), w_flat in 1usize..4) {
        let desc = cfg.desc();
        let n = cfg.shape().iter().product::<usize>();
        let p = cfg.grid().nprocs();
        // A flat layout only works when divisible; make it so by block size
        // adjustment (general descriptor).
        let flat_grid = ProcGrid::new(&[p]);
        let flat = ArrayDesc::new_general(&[n], &flat_grid, &[Dist::BlockCyclic(w_flat)]).unwrap();
        let a = cfg.array();
        let parts = a.partition(&desc);
        let machine = Machine::new(cfg.grid(), CostModel::cm5());
        let (s, f, pp) = (&desc, &flat, &parts);
        let out = machine.run(move |proc| {
            let x = reshape(proc, s, f, &pp[proc.id()], A2aSchedule::LinearPermutation);
            reshape(proc, f, s, &x, A2aSchedule::LinearPermutation)
        });
        prop_assert_eq!(GlobalArray::assemble(&desc, &out.results), a);
    }
}
