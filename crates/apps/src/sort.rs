//! Parallel sample sort — the classic all-to-many application ([9]'s
//! motivating pattern), finished with a PACK-style rebalance.
//!
//! 1. sort locally;
//! 2. pick evenly spaced local samples, allgather them, and derive `P-1`
//!    global splitters;
//! 3. bucket every element by splitter and exchange (many-to-many
//!    personalized communication — message sizes are data-dependent);
//! 4. merge locally;
//! 5. optionally **rebalance**: after bucketing, processors hold unequal
//!    counts; a scalar prefix-reduction-sum assigns every element its
//!    global rank and a second exchange moves it to the block owner —
//!    exactly the ranking + redistribution structure of PACK with a single
//!    slice per processor.

use hpf_distarray::DimLayout;
use hpf_machine::collectives::{
    allgather, alltoallv, prefix_reduction_sum, A2aSchedule, PrsAlgorithm,
};
use hpf_machine::{Category, Proc, Wire};

/// Sort the distributed vector whose local portion is `v_local`.
///
/// Returns `(sorted_local, layout)`: the concatenation over processor ranks
/// is globally sorted. With `rebalance`, every processor ends with
/// `⌈N/P⌉`-block counts under the returned layout; without it the counts
/// are whatever the buckets produced (layout is `None`).
pub fn sample_sort<T: Wire + Ord + Default>(
    proc: &mut Proc,
    v_local: &[T],
    rebalance: bool,
    schedule: A2aSchedule,
) -> (Vec<T>, Option<DimLayout>) {
    let nprocs = proc.nprocs();
    let world = proc.world();

    // 1. Local sort.
    let mut local = v_local.to_vec();
    proc.with_category(Category::LocalComp, |proc| {
        local.sort_unstable();
        // n log n comparisons, charged linearly per element at lg(n) cost.
        let n = local.len().max(1);
        proc.charge_ops(n * (usize::BITS - n.leading_zeros()) as usize);
    });

    // 2. Splitters: P-1 evenly spaced samples per processor, allgathered.
    let samples: Vec<T> = if local.is_empty() {
        Vec::new()
    } else {
        (1..nprocs)
            .map(|k| local[k * local.len() / nprocs])
            .collect()
    };
    let mut all_samples: Vec<T> = allgather(proc, &world, samples)
        .into_iter()
        .flatten()
        .collect();
    let splitters: Vec<T> = proc.with_category(Category::LocalComp, |proc| {
        all_samples.sort_unstable();
        proc.charge_ops(all_samples.len() * 4);
        if all_samples.is_empty() {
            Vec::new()
        } else {
            (1..nprocs)
                .map(|k| all_samples[k * all_samples.len() / nprocs])
                .collect()
        }
    });

    // 3. Bucket and exchange.
    let sends = proc.with_category(Category::LocalComp, |proc| {
        let mut sends: Vec<Vec<T>> = (0..nprocs).map(|_| Vec::new()).collect();
        for &x in &local {
            let bucket = splitters.partition_point(|s| *s <= x);
            sends[bucket].push(x);
        }
        proc.charge_ops(local.len() * 2);
        sends
    });
    let recvs = proc.with_category(Category::ManyToMany, |proc| {
        alltoallv(proc, &world, sends, schedule)
    });

    // 4. Local merge (the incoming streams are each sorted; a sort of the
    // concatenation keeps the code simple and the charge honest).
    let mut mine: Vec<T> = recvs.into_iter().flatten().collect();
    proc.with_category(Category::LocalComp, |proc| {
        mine.sort_unstable();
        let n = mine.len().max(1);
        proc.charge_ops(n * (usize::BITS - n.leading_zeros()) as usize);
    });

    if !rebalance {
        return (mine, None);
    }

    // 5. Rebalance: global rank of my first element via a scalar
    // prefix-reduction-sum over bucket counts (PACK's ranking specialised
    // to one slice per processor), then a (rank, value) exchange to the
    // block owners (PACK's redistribution stage).
    let (prefix, total) = proc.with_category(Category::PrefixReductionSum, |proc| {
        prefix_reduction_sum(proc, &world, &[mine.len() as i64], PrsAlgorithm::Auto)
    });
    let n_total = total[0] as usize;
    if n_total == 0 {
        return (Vec::new(), None);
    }
    let layout =
        DimLayout::new_general(n_total, nprocs, n_total.div_ceil(nprocs)).expect("positive length");

    let sends = proc.with_category(Category::LocalComp, |proc| {
        let mut sends: Vec<Vec<(u32, T)>> = (0..nprocs).map(|_| Vec::new()).collect();
        let base = prefix[0] as usize;
        for (i, &x) in mine.iter().enumerate() {
            let rank = base + i;
            sends[layout.owner(rank)].push((rank as u32, x));
        }
        proc.charge_ops(2 * mine.len());
        sends
    });
    let recvs = proc.with_category(Category::ManyToMany, |proc| {
        alltoallv(proc, &world, sends, schedule)
    });
    let balanced = proc.with_category(Category::LocalComp, |proc| {
        let mut out = vec![T::default(); layout.local_len(proc.id())];
        let mut placed = 0usize;
        for msg in recvs {
            for (rank, x) in msg {
                out[layout.local_of(rank as usize)] = x;
                placed += 1;
            }
        }
        proc.charge_ops(2 * placed);
        out
    });
    (balanced, Some(layout))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_machine::{CostModel, Machine, ProcGrid};

    fn values(pid: usize, n_local: usize) -> Vec<i64> {
        (0..n_local)
            .map(|i| ((pid * 9973 + i * 131) % 5000) as i64 - 2500)
            .collect()
    }

    fn run(p: usize, n_local: usize, rebalance: bool) -> Vec<Vec<i64>> {
        let machine = Machine::new(ProcGrid::line(p), CostModel::cm5());
        let out = machine.run(move |proc| {
            let v = values(proc.id(), n_local);
            sample_sort(proc, &v, rebalance, A2aSchedule::LinearPermutation).0
        });
        out.results
    }

    fn check_sorted(p: usize, n_local: usize, rebalance: bool) {
        let parts = run(p, n_local, rebalance);
        let concat: Vec<i64> = parts.iter().flatten().copied().collect();
        let mut want: Vec<i64> = (0..p).flat_map(|pid| values(pid, n_local)).collect();
        want.sort_unstable();
        assert_eq!(
            concat, want,
            "p={p} n_local={n_local} rebalance={rebalance}"
        );
    }

    #[test]
    fn sorts_globally_without_rebalance() {
        for p in [1, 2, 4, 7] {
            check_sorted(p, 100, false);
        }
    }

    #[test]
    fn sorts_globally_with_rebalance_and_even_counts() {
        let p = 8usize;
        let n_local = 125usize;
        let parts = run(p, n_local, true);
        check_sorted(p, n_local, true);
        let max = parts.iter().map(Vec::len).max().unwrap();
        let min = parts.iter().map(Vec::len).min().unwrap();
        assert_eq!(max, (p * n_local).div_ceil(p), "block counts");
        assert!(max - min <= max, "{max} {min}");
        // Every processor holds exactly its block share.
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), p * n_local);
    }

    #[test]
    fn empty_input_sorts_to_empty() {
        let parts = run(3, 0, true);
        assert!(parts.iter().all(Vec::is_empty));
    }

    #[test]
    fn duplicates_are_preserved() {
        let machine = Machine::new(ProcGrid::line(4), CostModel::cm5());
        let out = machine.run(move |proc| {
            let v = vec![7i64; 50]; // all equal
            sample_sort(proc, &v, true, A2aSchedule::LinearPermutation).0
        });
        let concat: Vec<i64> = out.results.iter().flatten().copied().collect();
        assert_eq!(concat, vec![7i64; 200]);
    }
}
