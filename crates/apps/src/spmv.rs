//! Sparse-matrix compression and SpMV on the PACK runtime.
//!
//! The motivating irregularity: a dense-stored matrix whose nonzeros are
//! unevenly placed (e.g. a triangular band) leaves some processors holding
//! far more useful data than others. `PACK` compresses the nonzeros — and,
//! because its result vector is *block*-distributed, simultaneously
//! rebalances them perfectly. SpMV then runs on the compact form:
//!
//! 1. **compress** (once): flatten the matrix to 1-D, then PACK the
//!    nonzero values and their flat indices from a *single*
//!    [`hpf_core::PackPlan`] — the plan is value-independent, so the mask
//!    is scanned and ranked once and executed twice (once per payload,
//!    even though one is `f64` and the other `u32`);
//! 2. **multiply** (per iteration): decode `(row, col)` from each flat
//!    index, [`gather_global`] the needed `x[col]` entries, multiply, and
//!    [`scatter_add_global`] the partial products into `y[row]`.

use hpf_core::{plan_pack, PackError, PackOptions};
use hpf_distarray::{ArrayDesc, DimLayout};
use hpf_machine::collectives::A2aSchedule;
use hpf_machine::{Category, Proc};

use crate::gather::{gather_global, scatter_add_global};

/// A compressed sparse matrix, distributed block over all processors.
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Global nonzero count.
    pub nnz: usize,
    /// This processor's nonzero values (block-distributed by rank).
    pub values: Vec<f64>,
    /// Matching flat indices (`col + ncols·row`).
    pub flat_index: Vec<u32>,
    /// Layout of the packed nonzero vectors.
    pub layout: Option<DimLayout>,
}

impl SparseMatrix {
    /// Compress a dense-stored distributed matrix: every processor passes
    /// its local portion of the dense matrix (under `desc`, shape
    /// `[ncols, nrows]` — dimension 0 is the column, the fastest-varying);
    /// zeros are dropped.
    ///
    /// Internally flattens to 1-D so the packed order is row-major CSR
    /// order, plans one PACK of the nonzero mask, and executes the plan
    /// twice — values and flat indices ride the same communication plan.
    pub fn compress(
        proc: &mut Proc,
        desc: &ArrayDesc,
        dense_local: &[f64],
        opts: &PackOptions,
    ) -> Result<SparseMatrix, PackError> {
        let shape = desc.shape();
        let (ncols, nrows) = (shape[0], shape[1]);

        // The flattened 1-D view: same data, same processors, linearised
        // index space. Build the per-element flat indices and mask locally.
        let me = proc.id();
        let (mask, flat): (Vec<bool>, Vec<u32>) = proc.with_category(Category::LocalComp, |proc| {
            let mut mask = Vec::with_capacity(dense_local.len());
            let mut flat = Vec::with_capacity(dense_local.len());
            desc.for_each_local_global(me, |l, g| {
                mask.push(dense_local[l] != 0.0);
                flat.push((g[0] + ncols * g[1]) as u32);
            });
            proc.charge_ops(2 * dense_local.len());
            (mask, flat)
        });

        let plan = plan_pack(proc, desc, &mask, opts)?;
        let packed_vals = plan.execute(proc, dense_local)?;
        let packed_idx = plan.execute(proc, &flat)?;
        debug_assert_eq!(packed_vals.size, packed_idx.size);

        Ok(SparseMatrix {
            nrows,
            ncols,
            nnz: packed_vals.size,
            values: packed_vals.local_v,
            flat_index: packed_idx.local_v,
            layout: packed_vals.v_layout,
        })
    }

    /// `y = A·x` with `x` and `y` block-distributed over the rows/columns
    /// (`x_layout.n() == ncols`, result layout over `nrows`).
    ///
    /// Returns this processor's slice of `y` and its layout.
    pub fn spmv(
        &self,
        proc: &mut Proc,
        x_local: &[f64],
        x_layout: &DimLayout,
        schedule: A2aSchedule,
    ) -> (Vec<f64>, DimLayout) {
        assert_eq!(x_layout.n(), self.ncols, "x must have one entry per column");
        let nprocs = proc.nprocs();
        let y_layout = DimLayout::new_general(self.nrows, nprocs, self.nrows.div_ceil(nprocs))
            .expect("positive dimensions");
        let mut y_local = vec![0.0f64; y_layout.local_len(proc.id())];

        // Decode (row, col) and fetch the x entries this processor needs.
        let (rows, cols) = proc.with_category(Category::LocalComp, |proc| {
            let mut rows = Vec::with_capacity(self.flat_index.len());
            let mut cols = Vec::with_capacity(self.flat_index.len());
            for &f in &self.flat_index {
                rows.push(f as usize / self.ncols);
                cols.push(f as usize % self.ncols);
            }
            proc.charge_ops(2 * self.flat_index.len());
            (rows, cols)
        });
        let xs = gather_global(proc, x_local, x_layout, &cols, schedule);

        let products: Vec<f64> = proc.with_category(Category::LocalComp, |proc| {
            proc.charge_ops(self.values.len());
            self.values.iter().zip(&xs).map(|(&a, &x)| a * x).collect()
        });
        scatter_add_global(proc, &mut y_local, &y_layout, &rows, &products, schedule);
        (y_local, y_layout)
    }

    /// Fraction of this processor's dense slots that were nonzero — the
    /// pre-compression load; after compression every processor holds
    /// `⌈nnz/P⌉` entries regardless.
    pub fn local_nnz(&self) -> usize {
        self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_distarray::{local_from_fn, Dist, GlobalArray};
    use hpf_machine::{CostModel, Machine, ProcGrid};

    /// Banded test matrix: nonzero iff |row - col| <= 1 (tridiagonal),
    /// value = row*ncols + col + 1.
    fn entry(col: usize, row: usize) -> f64 {
        if row.abs_diff(col) <= 1 {
            (row * 16 + col + 1) as f64
        } else {
            0.0
        }
    }

    #[test]
    fn compress_then_spmv_matches_dense_oracle() {
        let (ncols, nrows) = (16usize, 16);
        let grid = ProcGrid::new(&[2, 2]);
        let desc = ArrayDesc::new(
            &[ncols, nrows],
            &grid,
            &[Dist::BlockCyclic(2), Dist::BlockCyclic(2)],
        )
        .unwrap();
        let x: Vec<f64> = (0..ncols).map(|c| (c as f64) * 0.5 - 1.0).collect();
        // Dense oracle.
        let want: Vec<f64> = (0..nrows)
            .map(|r| (0..ncols).map(|c| entry(c, r) * x[c]).sum())
            .collect();

        let nprocs = grid.nprocs();
        let x_layout = DimLayout::new_general(ncols, nprocs, ncols.div_ceil(nprocs)).unwrap();
        let machine = Machine::new(grid, CostModel::cm5());
        let (d, xl, xr) = (&desc, &x_layout, &x);
        let out = machine.run(move |proc| {
            let dense = local_from_fn(d, proc.id(), |g| entry(g[0], g[1]));
            let a = SparseMatrix::compress(proc, d, &dense, &PackOptions::default()).unwrap();
            // nnz of a 16x16 tridiagonal matrix: 16 + 15 + 15.
            assert_eq!(a.nnz, 46);
            let x_local: Vec<f64> = (0..xl.local_len(proc.id()))
                .map(|l| xr[xl.global_of(proc.id(), l)])
                .collect();
            let (y, yl) = a.spmv(proc, &x_local, xl, A2aSchedule::LinearPermutation);
            (y, yl, a.local_nnz())
        });
        // Compression balances the nonzeros: no processor above
        // ceil(46/4) = 12, and the blocks tile nnz exactly.
        let locals: Vec<usize> = out.results.iter().map(|(_, _, l)| *l).collect();
        assert!(locals.iter().all(|&l| l <= 12), "{locals:?}");
        assert_eq!(locals.iter().sum::<usize>(), 46);
        // Assemble y and compare.
        let mut y = vec![0.0f64; nrows];
        for (p, (local, yl, _)) in out.results.iter().enumerate() {
            for (l, &v) in local.iter().enumerate() {
                y[yl.global_of(p, l)] = v;
            }
        }
        for (r, (&got, &wanted)) in y.iter().zip(&want).enumerate() {
            assert!((got - wanted).abs() < 1e-9, "row {r}: {got} vs {wanted}");
        }
    }

    #[test]
    fn empty_matrix_compresses_to_nothing() {
        let grid = ProcGrid::new(&[2, 2]);
        let desc = ArrayDesc::new(&[8, 8], &grid, &[Dist::Block, Dist::Block]).unwrap();
        let machine = Machine::new(grid, CostModel::cm5());
        let d = &desc;
        let out = machine.run(move |proc| {
            let dense = vec![0.0f64; d.local_len(proc.id())];
            SparseMatrix::compress(proc, d, &dense, &PackOptions::default())
                .unwrap()
                .nnz
        });
        assert!(out.results.iter().all(|&n| n == 0));
    }

    /// The rebalancing claim, measured: a lower-triangular dense matrix on
    /// a block-distributed grid loads the "lower" processors with nearly
    /// all nonzeros; after compression the spread is within one element.
    #[test]
    fn compression_rebalances_triangular_nonzeros() {
        let n = 16usize;
        let grid = ProcGrid::new(&[2, 2]);
        let desc = ArrayDesc::new(&[n, n], &grid, &[Dist::Block, Dist::Block]).unwrap();
        let machine = Machine::new(grid, CostModel::cm5());
        let d = &desc;
        let out = machine.run(move |proc| {
            let dense = local_from_fn(d, proc.id(), |g| if g[1] > g[0] { 1.0 } else { 0.0 });
            let before = dense.iter().filter(|&&v| v != 0.0).count();
            let a = SparseMatrix::compress(proc, d, &dense, &PackOptions::default()).unwrap();
            (before, a.local_nnz())
        });
        let before: Vec<usize> = out.results.iter().map(|&(b, _)| b).collect();
        let after: Vec<usize> = out.results.iter().map(|&(_, a)| a).collect();
        let spread = |v: &[usize]| v.iter().max().unwrap() - v.iter().min().unwrap();
        assert!(
            spread(&before) > 30,
            "triangle must be imbalanced before: {before:?}"
        );
        assert!(spread(&after) <= 1, "pack must balance: {after:?}");
    }

    /// Verify against the sequential PACK oracle that compression keeps CSR
    /// (row-major) order.
    #[test]
    fn packed_order_is_row_major() {
        let (ncols, nrows) = (8usize, 4);
        let grid = ProcGrid::new(&[2, 2]);
        let desc = ArrayDesc::new(&[ncols, nrows], &grid, &[Dist::Cyclic, Dist::Cyclic]).unwrap();
        let dense = GlobalArray::from_fn(&[ncols, nrows], |g| {
            if (g[0] + g[1]) % 3 == 0 {
                (g[0] + 10 * g[1]) as f64
            } else {
                0.0
            }
        });
        let machine = Machine::new(grid, CostModel::cm5());
        let (d, dr) = (&desc, &dense);
        let out = machine.run(move |proc| {
            let local = local_from_fn(d, proc.id(), |g| dr.get(g));
            SparseMatrix::compress(proc, d, &local, &PackOptions::default()).unwrap()
        });
        // Reassemble flat indices; they must be strictly increasing (packed
        // in array element order = row-major with columns fastest).
        let layout = out.results[0].layout.unwrap();
        let mut idx = vec![0u32; out.results[0].nnz];
        for (p, m) in out.results.iter().enumerate() {
            for (l, &f) in m.flat_index.iter().enumerate() {
                idx[layout.global_of(p, l)] = f;
            }
        }
        assert!(idx.windows(2).all(|w| w[0] < w[1]), "{idx:?}");
    }
}
