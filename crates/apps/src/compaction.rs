//! Iterative stream compaction: the canonical PACK workload.
//!
//! A population of "particles" distributed over the machine loses members
//! each step (absorption, out-of-bounds, convergence — any data-dependent
//! predicate). Without compaction the survivors drift into an arbitrary,
//! imbalanced layout; PACKing the survivors after each step restores a
//! perfectly balanced block distribution — the exact runtime-support
//! scenario the paper's introduction motivates.
//!
//! Each processor keeps a fixed-capacity local buffer (the original
//! `N/P` slots); alive particles occupy a prefix. PACK gathers all
//! survivors machine-wide into a block-distributed vector, which every
//! processor re-embeds as its new prefix.

use hpf_core::{PackError, PackOptions, PlanCache};
use hpf_distarray::{ArrayDesc, Dist};
use hpf_machine::collectives::allreduce_with;
use hpf_machine::{Category, Proc};

/// One step's summary (identical on every processor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepStats {
    /// Survivors after this step, machine-wide.
    pub alive: usize,
    /// Max over processors of locally alive particles *before* compaction —
    /// the load imbalance PACK removes.
    pub max_local_before: usize,
    /// Max over processors *after* compaction (`⌈alive/P⌉`).
    pub max_local_after: usize,
}

/// Run `steps` rounds of "advance, absorb, compact" over an initial
/// population of `n` particles (positions `0..n`).
///
/// `advance(pos, step)` moves a particle; `survive(pos, step)` decides
/// whether it stays. Must be called collectively; `n` must be a multiple of
/// the processor count.
pub fn run_compaction(
    proc: &mut Proc,
    n: usize,
    steps: usize,
    advance: impl Fn(i64, usize) -> i64,
    survive: impl Fn(i64, usize) -> bool,
    opts: &PackOptions,
) -> Result<Vec<StepStats>, PackError> {
    let nprocs = proc.nprocs();
    assert!(
        n.is_multiple_of(nprocs),
        "initial population must divide the processor count"
    );
    let cap = n / nprocs;

    // The fixed-capacity buffer is modelled as a block-distributed array of
    // the original size; the machine grid must be able to host it.
    let desc = ArrayDesc::new(&[n], proc.grid(), &[Dist::Block])
        .map_err(|_| PackError::NotDivisible { dim: 0 })?;

    // Initial prefix: my block of positions.
    let me = proc.id();
    let mut particles: Vec<i64> = (0..cap).map(|l| (me * cap + l) as i64).collect();
    let mut stats = Vec::with_capacity(steps);

    // The survivor mask is data-dependent and changes every step, so plans
    // never repeat: every lookup is a miss. The cache is still the right
    // interface — the step counter is an SPMD-consistent key (identical on
    // all processors without hashing any local data), and the
    // `plan.cache.{hit,miss}` counters make the non-reusability measurable
    // instead of assumed.
    let mut plans = PlanCache::new();

    for step in 0..steps {
        // Advance and absorb, locally.
        let (buffer, mask, alive_local) = proc.with_category(Category::LocalComp, |proc| {
            let mut buffer = vec![0i64; cap];
            let mut mask = vec![false; cap];
            let mut alive = 0usize;
            for &p in &particles {
                let moved = advance(p, step);
                if survive(moved, step) {
                    buffer[alive] = moved;
                    mask[alive] = true;
                    alive += 1;
                }
            }
            proc.charge_ops(2 * particles.len());
            (buffer, mask, alive)
        });

        let world = proc.world();
        let max_before = proc.with_category(Category::Other, |proc| {
            allreduce_with(proc, &world, &[alive_local as u64], u64::max)[0] as usize
        });

        // Compact machine-wide: plan under the step's mask, then execute.
        let plan = plans.pack_plan(proc, &desc, &mask, step as u64, opts)?;
        let packed = plan.execute(proc, &buffer)?;
        particles = packed.local_v;
        stats.push(StepStats {
            alive: packed.size,
            max_local_before: max_before,
            max_local_after: particles.len(),
        });
        if packed.size == 0 {
            break;
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_machine::{CostModel, Machine, ProcGrid};

    /// Serial oracle of the same simulation.
    fn oracle(
        n: usize,
        steps: usize,
        advance: impl Fn(i64, usize) -> i64,
        survive: impl Fn(i64, usize) -> bool,
    ) -> Vec<usize> {
        let mut pop: Vec<i64> = (0..n as i64).collect();
        let mut alive = Vec::new();
        for step in 0..steps {
            pop = pop
                .into_iter()
                .map(|p| advance(p, step))
                .filter(|&p| survive(p, step))
                .collect();
            alive.push(pop.len());
            if pop.is_empty() {
                break;
            }
        }
        alive
    }

    #[test]
    fn population_counts_match_serial_simulation() {
        let n = 256usize;
        let steps = 6usize;
        let advance = |p: i64, _| p.wrapping_mul(31).wrapping_add(17) % 1000;
        let survive = |p: i64, step: usize| !(p.unsigned_abs() as usize + step).is_multiple_of(4);
        let want = oracle(n, steps, advance, survive);

        let machine = Machine::new(ProcGrid::line(4), CostModel::cm5());
        let out = machine.run(move |proc| {
            run_compaction(proc, n, steps, advance, survive, &PackOptions::default()).unwrap()
        });
        for stats in &out.results {
            let got: Vec<usize> = stats.iter().map(|s| s.alive).collect();
            assert_eq!(&got, &want);
        }
    }

    #[test]
    fn compaction_restores_balance_under_skewed_absorption() {
        // Absorb everything except low positions: without compaction, only
        // the first processor would keep work.
        let n = 512usize;
        let machine = Machine::new(ProcGrid::line(8), CostModel::cm5());
        let out = machine.run(move |proc| {
            run_compaction(
                proc,
                n,
                1,
                |p, _| p,
                |p, _| p < 80, // only the lowest 80 positions survive
                &PackOptions::default(),
            )
            .unwrap()
        });
        for stats in &out.results {
            let s = stats[0];
            assert_eq!(s.alive, 80);
            // Before: proc 0 keeps all of its 64, proc 1 keeps 16, others 0.
            assert_eq!(s.max_local_before, 64);
            // After: ceil(80/8) = 10 everywhere.
            assert_eq!(s.max_local_after, 10);
        }
    }

    #[test]
    fn per_step_masks_are_all_plan_cache_misses() {
        let n = 128usize;
        let steps = 4usize;
        let p = 4usize;
        let machine = Machine::new(ProcGrid::line(p), CostModel::cm5()).with_metrics(true);
        let out = machine.run(move |proc| {
            run_compaction(
                proc,
                n,
                steps,
                |pos, _| pos + 1,
                |pos, _| pos % 5 != 0, // sheds ~20% per step, never extinct
                &PackOptions::default(),
            )
            .unwrap()
        });
        let m = out.merged_metrics();
        // One planning per step per processor, never a repeat.
        assert_eq!(m.counter("plan.cache.miss"), (steps * p) as u64);
        assert_eq!(m.counter("plan.cache.hit"), 0);
    }

    #[test]
    fn extinction_terminates_early() {
        let machine = Machine::new(ProcGrid::line(4), CostModel::cm5());
        let out = machine.run(move |proc| {
            run_compaction(
                proc,
                64,
                10,
                |p, _| p,
                |_, step| step == 0,
                &PackOptions::default(),
            )
            .unwrap()
        });
        for stats in &out.results {
            // Step 0 keeps everyone, step 1 kills everyone, loop stops.
            assert_eq!(stats.len(), 2);
            assert_eq!(stats[0].alive, 64);
            assert_eq!(stats[1].alive, 0);
        }
    }
}
