//! # hpf-apps — mini-applications on the PACK/UNPACK runtime
//!
//! The paper motivates PACK/UNPACK as runtime support for data-parallel
//! languages: compilers lower irregular, data-dependent array operations to
//! these intrinsics. This crate demonstrates that layer with applications
//! built *entirely* from the workspace's public APIs:
//!
//! * [`gather_global`] / [`scatter_add_global`] — the irregular READ/WRITE
//!   primitives (UNPACK's request/reply pattern generalised to arbitrary
//!   indices, and its additive inverse);
//! * [`SparseMatrix`] — dense→sparse compression via PACK (which doubles as
//!   a perfect rebalancer) plus SpMV over the compact form;
//! * [`run_compaction`] — iterative stream compaction with per-step load
//!   statistics, the introduction's canonical workload;
//! * [`sample_sort`] — parallel sample sort, finished with a PACK-style
//!   rank-and-redistribute rebalance.

//! ## Example
//!
//! ```
//! use hpf_machine::{Machine, CostModel, ProcGrid};
//! use hpf_machine::collectives::A2aSchedule;
//! use hpf_apps::sample_sort;
//!
//! let machine = Machine::new(ProcGrid::line(4), CostModel::cm5());
//! let out = machine.run(|proc| {
//!     // Each processor contributes a decreasing run.
//!     let v: Vec<i64> = (0..8).map(|i| 100 - (proc.id() * 8 + i) as i64).collect();
//!     sample_sort(proc, &v, true, A2aSchedule::LinearPermutation).0
//! });
//! let sorted: Vec<i64> = out.results.iter().flatten().copied().collect();
//! assert_eq!(sorted, (69..=100).rev().map(|x| 100 - x + 69).collect::<Vec<_>>());
//! ```

#![warn(missing_docs)]

pub mod compaction;
pub mod gather;
pub mod sort;
pub mod spmv;

pub use compaction::{run_compaction, StepStats};
pub use gather::{gather_global, scatter_add_global};
pub use sort::sample_sort;
pub use spmv::SparseMatrix;
