//! Irregular gather: fetch `v[idx[k]]` for arbitrary global indices from a
//! distributed vector.
//!
//! This is the READ primitive underneath UNPACK generalised to arbitrary
//! (non-consecutive) indices: two-stage request/reply many-to-many
//! communication, exactly the Section 4.2 pattern with explicit per-element
//! requests.

use hpf_distarray::DimLayout;
use hpf_machine::collectives::{alltoallv, A2aSchedule};
use hpf_machine::{Category, Proc, Wire};

/// Fetch the values of `v_local`'s distributed vector (under `v_layout`) at
/// the global `indices`; returns them in the same order as `indices`.
///
/// Every processor must call this (collectively), each with its own index
/// list (possibly empty).
pub fn gather_global<T: Wire + Default>(
    proc: &mut Proc,
    v_local: &[T],
    v_layout: &DimLayout,
    indices: &[usize],
    schedule: A2aSchedule,
) -> Vec<T> {
    debug_assert_eq!(v_local.len(), v_layout.local_len(proc.id()));
    let nprocs = proc.nprocs();

    // Compose per-owner requests, remembering where each reply slots back.
    let (requests, origins) = proc.with_category(Category::LocalComp, |proc| {
        let mut requests: Vec<Vec<u32>> = (0..nprocs).map(|_| Vec::new()).collect();
        let mut origins: Vec<Vec<u32>> = (0..nprocs).map(|_| Vec::new()).collect();
        for (k, &g) in indices.iter().enumerate() {
            assert!(g < v_layout.n(), "gather index {g} out of bounds");
            let owner = v_layout.owner(g);
            requests[owner].push(g as u32);
            origins[owner].push(k as u32);
        }
        proc.charge_ops(2 * indices.len());
        (requests, origins)
    });

    let incoming = proc.with_category(Category::ManyToMany, |proc| {
        let world = proc.world();
        alltoallv(proc, &world, requests, schedule)
    });

    let replies = proc.with_category(Category::LocalComp, |proc| {
        let mut replies: Vec<Vec<T>> = Vec::with_capacity(nprocs);
        let mut ops = 0usize;
        for req in &incoming {
            replies.push(
                req.iter()
                    .map(|&g| v_local[v_layout.local_of(g as usize)])
                    .collect(),
            );
            ops += 2 * req.len();
        }
        proc.charge_ops(ops);
        replies
    });

    let values_back = proc.with_category(Category::ManyToMany, |proc| {
        let world = proc.world();
        alltoallv(proc, &world, replies, schedule)
    });

    proc.with_category(Category::LocalComp, |proc| {
        let mut out = vec![T::default(); indices.len()];
        let mut ops = 0usize;
        for (owner, slots) in origins.iter().enumerate() {
            debug_assert_eq!(values_back[owner].len(), slots.len());
            for (&k, &v) in slots.iter().zip(&values_back[owner]) {
                out[k as usize] = v;
            }
            ops += slots.len();
        }
        proc.charge_ops(ops);
        out
    })
}

/// The WRITE counterpart: scatter-add `values[k]` into global positions
/// `indices[k]` of a distributed accumulator (under `y_layout`), combining
/// collisions with `+`. One many-to-many round of `(index, value)` pairs.
pub fn scatter_add_global<T: Wire + Default + std::ops::AddAssign>(
    proc: &mut Proc,
    y_local: &mut [T],
    y_layout: &DimLayout,
    indices: &[usize],
    values: &[T],
    schedule: A2aSchedule,
) {
    assert_eq!(indices.len(), values.len(), "one value per index");
    debug_assert_eq!(y_local.len(), y_layout.local_len(proc.id()));
    let nprocs = proc.nprocs();

    let sends = proc.with_category(Category::LocalComp, |proc| {
        let mut sends: Vec<Vec<(u32, T)>> = (0..nprocs).map(|_| Vec::new()).collect();
        for (&g, &v) in indices.iter().zip(values) {
            assert!(g < y_layout.n(), "scatter index {g} out of bounds");
            sends[y_layout.owner(g)].push((g as u32, v));
        }
        proc.charge_ops(2 * indices.len());
        sends
    });

    let recvs = proc.with_category(Category::ManyToMany, |proc| {
        let world = proc.world();
        alltoallv(proc, &world, sends, schedule)
    });

    proc.with_category(Category::LocalComp, |proc| {
        let mut ops = 0usize;
        for msg in recvs {
            for (g, v) in msg {
                y_local[y_layout.local_of(g as usize)] += v;
                ops += 2;
            }
        }
        proc.charge_ops(ops);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_machine::{CostModel, Machine, ProcGrid};

    #[test]
    fn gather_fetches_arbitrary_indices() {
        let p = 4usize;
        let n = 37usize;
        let layout = DimLayout::new_general(n, p, 5).unwrap();
        let machine = Machine::new(ProcGrid::line(p), CostModel::cm5());
        let l = &layout;
        let out = machine.run(move |proc| {
            let v: Vec<i32> = (0..l.local_len(proc.id()))
                .map(|i| l.global_of(proc.id(), i) as i32 * 10)
                .collect();
            // Each proc asks for a scrambled, overlapping index set.
            let idx: Vec<usize> = (0..20).map(|k| (k * 7 + proc.id() * 3) % n).collect();
            let got = gather_global(proc, &v, l, &idx, A2aSchedule::LinearPermutation);
            (idx, got)
        });
        for (idx, got) in out.results {
            for (&g, &v) in idx.iter().zip(&got) {
                assert_eq!(v, g as i32 * 10);
            }
        }
    }

    #[test]
    fn scatter_add_accumulates_collisions() {
        let p = 3usize;
        let n = 10usize;
        let layout = DimLayout::new_general(n, p, 4).unwrap();
        let machine = Machine::new(ProcGrid::line(p), CostModel::cm5());
        let l = &layout;
        let out = machine.run(move |proc| {
            let mut y = vec![0i64; l.local_len(proc.id())];
            // Everyone adds 1 into every slot, plus their id into slot 0.
            let mut idx: Vec<usize> = (0..n).collect();
            let mut vals = vec![1i64; n];
            idx.push(0);
            vals.push(proc.id() as i64);
            scatter_add_global(proc, &mut y, l, &idx, &vals, A2aSchedule::LinearPermutation);
            y
        });
        // Slot 0 owner holds p (ones) + sum of ids; all other slots hold p.
        let owner0 = layout.owner(0);
        for (pid, y) in out.results.iter().enumerate() {
            for (i, &v) in y.iter().enumerate() {
                let g = layout.global_of(pid, i);
                let want = if g == 0 && pid == owner0 {
                    p as i64 + (p * (p - 1) / 2) as i64
                } else {
                    p as i64
                };
                assert_eq!(v, want, "global {g}");
            }
        }
    }

    #[test]
    fn empty_requests_are_fine() {
        let machine = Machine::new(ProcGrid::line(2), CostModel::cm5());
        let layout = DimLayout::new_general(8, 2, 4).unwrap();
        let l = &layout;
        let out = machine.run(move |proc| {
            let v = vec![5i32; 4];
            gather_global(proc, &v, l, &[], A2aSchedule::LinearPermutation)
        });
        assert!(out.results.iter().all(Vec::is_empty));
    }
}
