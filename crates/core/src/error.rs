//! Typed errors for the parallel PACK/UNPACK entry points.
//!
//! All validation is performed from processor-local state that is identical
//! on every processor (the shared descriptor, local lengths derived from it,
//! and the replicated `Size` from the ranking stage), so when one processor
//! returns an error, all of them do — no communication structure is left
//! half-executed.
//!
//! Machine-level failures (receive timeouts, fault-injected crashes,
//! unreachable peers — see [`hpf_machine::MachineError`]) are a different
//! layer: they come out of [`hpf_machine::Machine::try_run`] rather than
//! from `pack`/`unpack` themselves, because a machine failure aborts the
//! whole SPMD run, not one processor's call. [`Error`] unifies both layers
//! for callers (such as the chaos harness) that drive a full
//! PACK→UNPACK pipeline and want one error type.

use std::fmt;

use hpf_machine::MachineError;

/// Error from [`crate::pack`] and friends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackError {
    /// The input descriptor violates the paper's divisibility assumption
    /// `P_i·W_i | N_i` on some dimension.
    NotDivisible {
        /// The offending dimension.
        dim: usize,
    },
    /// The local input array length does not match the descriptor.
    ArrayLenMismatch {
        /// Expected local length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// The local mask length does not match the local array length
    /// (F90: mask must be conformable with the array).
    MaskLenMismatch {
        /// Expected local length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// The `VECTOR` argument is shorter than the number of selected
    /// elements (F90 requires `SIZE(VECTOR) >= COUNT(MASK)`).
    VectorTooShort {
        /// Number of selected elements.
        size: usize,
        /// Global `VECTOR` length.
        capacity: usize,
    },
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::NotDivisible { dim } => write!(
                f,
                "dimension {dim} violates P*W | N; redistribute first or use a divisible layout"
            ),
            PackError::ArrayLenMismatch { expected, got } => {
                write!(
                    f,
                    "local array has {got} elements, descriptor implies {expected}"
                )
            }
            PackError::MaskLenMismatch { expected, got } => {
                write!(f, "local mask has {got} elements, expected {expected}")
            }
            PackError::VectorTooShort { size, capacity } => write!(
                f,
                "mask selects {size} elements but the VECTOR argument holds only {capacity}"
            ),
        }
    }
}

impl std::error::Error for PackError {}

/// Error from [`crate::unpack`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnpackError {
    /// The mask/field descriptor violates the divisibility assumption.
    NotDivisible {
        /// The offending dimension.
        dim: usize,
    },
    /// The local mask length does not match the descriptor.
    MaskLenMismatch {
        /// Expected local length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// The local field length does not match the mask (F90: FIELD must be
    /// conformable with MASK).
    FieldLenMismatch {
        /// Expected local length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// The local slice of `V` does not match the vector layout.
    VectorLenMismatch {
        /// Expected local length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// The input vector is shorter than the number of selected mask
    /// elements (`N' < Size`).
    VectorTooSmall {
        /// Number of selected elements.
        size: usize,
        /// Global vector length `N'`.
        capacity: usize,
    },
}

impl fmt::Display for UnpackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnpackError::NotDivisible { dim } => write!(
                f,
                "dimension {dim} violates P*W | N; UNPACK requires a divisible layout"
            ),
            UnpackError::MaskLenMismatch { expected, got } => {
                write!(f, "local mask has {got} elements, expected {expected}")
            }
            UnpackError::FieldLenMismatch { expected, got } => {
                write!(f, "local field has {got} elements, expected {expected}")
            }
            UnpackError::VectorLenMismatch { expected, got } => {
                write!(
                    f,
                    "local vector slice has {got} elements, expected {expected}"
                )
            }
            UnpackError::VectorTooSmall { size, capacity } => write!(
                f,
                "mask selects {size} elements but the input vector holds only {capacity}"
            ),
        }
    }
}

impl std::error::Error for UnpackError {}

/// Any failure of a PACK/UNPACK pipeline: an argument-validation error from
/// one of the entry points, or a machine-level failure of the simulated
/// run itself (timeout, crash, unreachable peer).
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Argument validation failed in [`crate::pack`] (and friends).
    Pack(PackError),
    /// Argument validation failed in [`crate::unpack`].
    Unpack(UnpackError),
    /// The simulated machine itself failed; see
    /// [`hpf_machine::Machine::try_run`].
    Machine(MachineError),
}

impl From<PackError> for Error {
    fn from(e: PackError) -> Self {
        Error::Pack(e)
    }
}

impl From<UnpackError> for Error {
    fn from(e: UnpackError) -> Self {
        Error::Unpack(e)
    }
}

impl From<MachineError> for Error {
    fn from(e: MachineError) -> Self {
        Error::Machine(e)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Pack(e) => write!(f, "pack: {e}"),
            Error::Unpack(e) => write!(f, "unpack: {e}"),
            Error::Machine(e) => write!(f, "machine: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Pack(e) => Some(e),
            Error::Unpack(e) => Some(e),
            Error::Machine(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = PackError::NotDivisible { dim: 1 };
        assert!(e.to_string().contains("dimension 1"));
        let e = UnpackError::VectorTooSmall {
            size: 10,
            capacity: 8,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("8"));
    }

    #[test]
    fn unified_error_wraps_all_layers() {
        let p: Error = PackError::NotDivisible { dim: 0 }.into();
        assert!(p.to_string().starts_with("pack:"));
        let m: Error = MachineError::ProcCrashed { proc: 3, step: 7 }.into();
        assert!(m.to_string().contains("proc 3"));
        assert!(std::error::Error::source(&m).is_some());
    }
}
