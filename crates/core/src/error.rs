//! Typed errors for the parallel PACK/UNPACK entry points.
//!
//! All validation is performed from processor-local state that is identical
//! on every processor (the shared descriptor, local lengths derived from it,
//! and the replicated `Size` from the ranking stage), so when one processor
//! returns an error, all of them do — no communication structure is left
//! half-executed.

use std::fmt;

/// Error from [`crate::pack`] and friends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackError {
    /// The input descriptor violates the paper's divisibility assumption
    /// `P_i·W_i | N_i` on some dimension.
    NotDivisible {
        /// The offending dimension.
        dim: usize,
    },
    /// The local input array length does not match the descriptor.
    ArrayLenMismatch {
        /// Expected local length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// The local mask length does not match the local array length
    /// (F90: mask must be conformable with the array).
    MaskLenMismatch {
        /// Expected local length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// The `VECTOR` argument is shorter than the number of selected
    /// elements (F90 requires `SIZE(VECTOR) >= COUNT(MASK)`).
    VectorTooShort {
        /// Number of selected elements.
        size: usize,
        /// Global `VECTOR` length.
        capacity: usize,
    },
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::NotDivisible { dim } => write!(
                f,
                "dimension {dim} violates P*W | N; redistribute first or use a divisible layout"
            ),
            PackError::ArrayLenMismatch { expected, got } => {
                write!(f, "local array has {got} elements, descriptor implies {expected}")
            }
            PackError::MaskLenMismatch { expected, got } => {
                write!(f, "local mask has {got} elements, expected {expected}")
            }
            PackError::VectorTooShort { size, capacity } => write!(
                f,
                "mask selects {size} elements but the VECTOR argument holds only {capacity}"
            ),
        }
    }
}

impl std::error::Error for PackError {}

/// Error from [`crate::unpack`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnpackError {
    /// The mask/field descriptor violates the divisibility assumption.
    NotDivisible {
        /// The offending dimension.
        dim: usize,
    },
    /// The local mask length does not match the descriptor.
    MaskLenMismatch {
        /// Expected local length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// The local field length does not match the mask (F90: FIELD must be
    /// conformable with MASK).
    FieldLenMismatch {
        /// Expected local length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// The local slice of `V` does not match the vector layout.
    VectorLenMismatch {
        /// Expected local length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// The input vector is shorter than the number of selected mask
    /// elements (`N' < Size`).
    VectorTooSmall {
        /// Number of selected elements.
        size: usize,
        /// Global vector length `N'`.
        capacity: usize,
    },
}

impl fmt::Display for UnpackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnpackError::NotDivisible { dim } => write!(
                f,
                "dimension {dim} violates P*W | N; UNPACK requires a divisible layout"
            ),
            UnpackError::MaskLenMismatch { expected, got } => {
                write!(f, "local mask has {got} elements, expected {expected}")
            }
            UnpackError::FieldLenMismatch { expected, got } => {
                write!(f, "local field has {got} elements, expected {expected}")
            }
            UnpackError::VectorLenMismatch { expected, got } => {
                write!(f, "local vector slice has {got} elements, expected {expected}")
            }
            UnpackError::VectorTooSmall { size, capacity } => write!(
                f,
                "mask selects {size} elements but the input vector holds only {capacity}"
            ),
        }
    }
}

impl std::error::Error for UnpackError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = PackError::NotDivisible { dim: 1 };
        assert!(e.to_string().contains("dimension 1"));
        let e = UnpackError::VectorTooSmall { size: 10, capacity: 8 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("8"));
    }
}
