//! Cross-run plan cache: memoize [`PackPlan`]s and [`UnpackPlan`]s keyed
//! by stable fingerprints, so repeated PACK/UNPACK calls under an
//! unchanged `(descriptor, mask, options)` triple skip planning entirely.
//!
//! The cache is a per-processor, caller-held object (SPMD style: each
//! processor owns one, exactly as it owns its local array portions).
//! Planning is collective, so **all processors must hit or miss
//! together**: the caller-supplied mask fingerprint has to be computed
//! SPMD-consistently — the same value on every processor for the same
//! logical (global) mask. [`crate::MaskPattern::fingerprint`] and a step
//! counter both qualify; a hash of the *local* mask portion does not in
//! general (one processor's portion can stay identical while another's
//! changes, which would deadlock the ranking collectives).
//!
//! Hits and misses are counted on the machine's metrics registry as
//! `plan.cache.hit` / `plan.cache.miss` (no-ops unless the machine was
//! built with metrics).

use std::collections::HashMap;
use std::rc::Rc;

use hpf_distarray::{ArrayDesc, DimLayout};
use hpf_machine::collectives::{A2aSchedule, PrsAlgorithm};
use hpf_machine::Proc;

use crate::error::{PackError, UnpackError};
use crate::mask::splitmix64;
use crate::schemes::{PackOptions, ScanMethod, UnpackOptions};

use super::{plan_pack, plan_unpack, PackPlan, UnpackPlan};

/// Cache key: descriptor, mask, and options fingerprints.
type PlanKey = (u64, u64, u64);

/// A per-processor cache of communication plans.
///
/// ```
/// use hpf_machine::{Machine, CostModel, ProcGrid};
/// use hpf_distarray::{ArrayDesc, Dist, local_from_fn};
/// use hpf_core::{MaskPattern, PackOptions, PlanCache};
///
/// let grid = ProcGrid::line(4);
/// let desc = ArrayDesc::new(&[32], &grid, &[Dist::BlockCyclic(2)]).unwrap();
/// let mask = MaskPattern::FirstHalf;
/// let machine = Machine::new(grid, CostModel::cm5());
/// let out = machine.run(|proc| {
///     let m = mask.local(&desc, proc.id());
///     let mut cache = PlanCache::new();
///     let opts = PackOptions::default();
///     // First call plans; the second is a pure execute.
///     let plan = cache.pack_plan(proc, &desc, &m, mask.fingerprint(), &opts).unwrap();
///     let a = local_from_fn(&desc, proc.id(), |g| g[0] as i32);
///     let first = plan.execute(proc, &a).unwrap();
///     let plan = cache.pack_plan(proc, &desc, &m, mask.fingerprint(), &opts).unwrap();
///     let again = plan.execute(proc, &a).unwrap();
///     assert_eq!(first, again);
///     first.size
/// });
/// assert_eq!(out.results[0], 16);
/// ```
#[derive(Default)]
pub struct PlanCache {
    packs: HashMap<PlanKey, Rc<PackPlan>>,
    unpacks: HashMap<PlanKey, Rc<UnpackPlan>>,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// The PACK plan for `(desc, mask, opts)`: returned from the cache on
    /// a hit, built with [`plan_pack`] (a collective call) on a miss.
    ///
    /// `mask_fp` must identify the *global* mask SPMD-consistently (see
    /// the module docs); `m_local` is only used when planning.
    pub fn pack_plan(
        &mut self,
        proc: &mut Proc,
        desc: &ArrayDesc,
        m_local: &[bool],
        mask_fp: u64,
        opts: &PackOptions,
    ) -> Result<Rc<PackPlan>, PackError> {
        let key = (desc.fingerprint(), mask_fp, pack_opts_fingerprint(opts));
        if let Some(plan) = self.packs.get(&key) {
            proc.inc_counter("plan.cache.hit", 1);
            return Ok(Rc::clone(plan));
        }
        proc.inc_counter("plan.cache.miss", 1);
        let plan = Rc::new(plan_pack(proc, desc, m_local, opts)?);
        self.packs.insert(key, Rc::clone(&plan));
        Ok(plan)
    }

    /// The UNPACK plan for `(desc, mask, v_layout, opts)`; cache
    /// semantics as in [`PlanCache::pack_plan`].
    pub fn unpack_plan(
        &mut self,
        proc: &mut Proc,
        desc: &ArrayDesc,
        m_local: &[bool],
        mask_fp: u64,
        v_layout: &DimLayout,
        opts: &UnpackOptions,
    ) -> Result<Rc<UnpackPlan>, UnpackError> {
        let opts_fp = mix_into(unpack_opts_fingerprint(opts), v_layout.fingerprint());
        let key = (desc.fingerprint(), mask_fp, opts_fp);
        if let Some(plan) = self.unpacks.get(&key) {
            proc.inc_counter("plan.cache.hit", 1);
            return Ok(Rc::clone(plan));
        }
        proc.inc_counter("plan.cache.miss", 1);
        let plan = Rc::new(plan_unpack(proc, desc, m_local, v_layout, opts)?);
        self.unpacks.insert(key, Rc::clone(&plan));
        Ok(plan)
    }

    /// Number of cached plans (PACK + UNPACK).
    pub fn len(&self) -> usize {
        self.packs.len() + self.unpacks.len()
    }

    /// True iff nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.packs.is_empty() && self.unpacks.is_empty()
    }
}

/// Fold `word` into a running fingerprint.
fn mix_into(acc: u64, word: u64) -> u64 {
    splitmix64(acc ^ splitmix64(word))
}

/// Stable fingerprint of everything in [`PackOptions`] that shapes a plan.
fn pack_opts_fingerprint(opts: &PackOptions) -> u64 {
    let mut fp = splitmix64(0x5041_434b); // "PACK"
    fp = mix_into(fp, scheme_tag(opts.scheme as u64, 0));
    fp = mix_into(fp, prs_tag(opts.prs));
    fp = mix_into(fp, schedule_tag(opts.schedule));
    fp = mix_into(fp, scan_tag(opts.scan_method));
    fp = mix_into(fp, opts.result_block_size.map_or(0, |w| 1 + w as u64));
    fp
}

/// Stable fingerprint of everything in [`UnpackOptions`] that shapes a
/// plan (the vector layout is folded in separately by the caller).
fn unpack_opts_fingerprint(opts: &UnpackOptions) -> u64 {
    let mut fp = splitmix64(0x554e_5041_434b); // "UNPACK"
    fp = mix_into(fp, scheme_tag(opts.scheme as u64, 1));
    fp = mix_into(fp, prs_tag(opts.prs));
    fp = mix_into(fp, schedule_tag(opts.schedule));
    fp
}

fn scheme_tag(discriminant: u64, family: u64) -> u64 {
    (family << 8) | discriminant
}

fn prs_tag(prs: PrsAlgorithm) -> u64 {
    match prs {
        PrsAlgorithm::Direct => 0,
        PrsAlgorithm::Split => 1,
        PrsAlgorithm::Auto => 2,
        PrsAlgorithm::Hardware => 3,
    }
}

fn schedule_tag(s: A2aSchedule) -> u64 {
    match s {
        A2aSchedule::LinearPermutation => 0,
        A2aSchedule::NaivePush => 1,
        A2aSchedule::PairwiseExchange => 2,
    }
}

fn scan_tag(m: ScanMethod) -> u64 {
    match m {
        ScanMethod::UntilCollected => 0,
        ScanMethod::WholeSlice => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{PackScheme, UnpackScheme};

    #[test]
    fn option_fingerprints_distinguish_all_knobs() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for scheme in PackScheme::ALL {
            for prs in [
                PrsAlgorithm::Direct,
                PrsAlgorithm::Split,
                PrsAlgorithm::Auto,
                PrsAlgorithm::Hardware,
            ] {
                for schedule in [
                    A2aSchedule::LinearPermutation,
                    A2aSchedule::NaivePush,
                    A2aSchedule::PairwiseExchange,
                ] {
                    for scan_method in [ScanMethod::UntilCollected, ScanMethod::WholeSlice] {
                        for result_block_size in [None, Some(1), Some(8)] {
                            let opts = PackOptions {
                                scheme,
                                prs,
                                schedule,
                                scan_method,
                                result_block_size,
                            };
                            assert!(
                                seen.insert(pack_opts_fingerprint(&opts)),
                                "collision at {opts:?}"
                            );
                        }
                    }
                }
            }
        }
        // PACK and UNPACK keys never alias even with equal discriminants.
        for scheme in UnpackScheme::ALL {
            let opts = UnpackOptions::new(scheme);
            assert!(seen.insert(unpack_opts_fingerprint(&opts)));
        }
    }
}
