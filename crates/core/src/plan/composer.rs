//! The composition layer of the plan IR: one `Composer` abstraction that
//! turns a mask + ranking into value-independent *routes*, covering all
//! three PACK schemes and both UNPACK schemes.
//!
//! A route answers, per destination processor, two questions that the
//! Section 6 schemes answer in scheme-specific ways:
//!
//! * which **global ranks** of the result vector the destination covers
//!   (explicit per-element, or run-compressed `(base, len)` — the compact
//!   message idea), and
//! * which **local element slots** correspond to those ranks, in rank
//!   order (PACK gathers values *from* the slots; UNPACK scatters replies
//!   *into* them).
//!
//! Neither depends on array values, so routes are computed once at plan
//! time and replayed against fresh data on every execute. The two
//! composer implementations mirror the paper's storage trade-off:
//! [`SimpleComposer`] keeps per-element records from a single scan
//! (SSS), [`CompactComposer`] keeps only the counter array `PS_c` and
//! rebuilds everything with a second scan (CSS/CMS). Per-scheme operation
//! charges are parameterized by [`ComposeCost`] so the plan+execute split
//! still sums to the exact Section 6.4 formulas.

use hpf_distarray::DimLayout;
use hpf_machine::{Category, Proc};

use crate::pack::dest_runs;
use crate::ranking::Ranking;
use crate::schemes::ScanMethod;

/// Rank structure of one destination's route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum RankList {
    /// One global rank per element (SSS-style pair messages / requests).
    Explicit(Vec<u32>),
    /// Run-compressed consecutive ranks (CMS segments / CSS requests).
    Runs(Vec<(u32, u32)>),
}

impl RankList {
    fn new(emit: RankEmit) -> RankList {
        match emit {
            RankEmit::Explicit => RankList::Explicit(Vec::new()),
            RankEmit::Runs => RankList::Runs(Vec::new()),
        }
    }
}

/// One destination's share of a communication plan: the global ranks it
/// covers plus the aligned local element slots (one per rank, rank order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Route {
    /// Global ranks covered, explicit or run-compressed.
    pub ranks: RankList,
    /// Local element indices aligned with `ranks`.
    pub slots: Vec<u32>,
}

/// Which rank structure a compact composition emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RankEmit {
    /// Expand runs to per-element ranks (pack CSS keeps pair messages).
    Explicit,
    /// Keep `(base, len)` runs (pack CMS segments, unpack CSS requests).
    Runs,
}

/// Per-route composition charges, scheme-specific (Section 6.4): each
/// destination run costs `per_run` operations plus `per_elem` per element
/// it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ComposeCost {
    /// Operations per destination run (`Gs` multiplier).
    pub per_run: usize,
    /// Operations per routed element (`E` multiplier).
    pub per_elem: usize,
}

/// A storage scheme's plan-time half: the initial scan (producing the
/// slice counts the ranking stage consumes) and the composition of
/// value-independent routes against the final ranking.
pub(crate) trait Composer {
    /// Initial scan of the local mask: slice counts, with the scheme's
    /// storage retained in `self`.
    fn scan(&mut self, proc: &mut Proc, m_local: &[bool], w0: usize) -> Vec<i32>;

    /// Compose the per-destination routes from the retained storage and
    /// the final base ranks. `layout` is the result-vector layout whose
    /// owners the routes target.
    fn compose(
        &mut self,
        proc: &mut Proc,
        ranking: &Ranking,
        m_local: &[bool],
        w0: usize,
        layout: &DimLayout,
    ) -> Vec<Route>;
}

/// Simple storage: per-element `(local, slice, initial rank)` records from
/// a single scan (`L + 4E` operations), replayed at `per_elem` operations
/// each during composition. Always emits explicit ranks.
pub(crate) struct SimpleComposer {
    per_elem: usize,
    records: Vec<(u32, u32, u32)>,
}

impl SimpleComposer {
    pub(crate) fn new(per_elem: usize) -> SimpleComposer {
        SimpleComposer {
            per_elem,
            records: Vec::new(),
        }
    }
}

impl Composer for SimpleComposer {
    fn scan(&mut self, proc: &mut Proc, m_local: &[bool], w0: usize) -> Vec<i32> {
        proc.wall_span("scan.simple", |proc| {
            proc.with_category(Category::LocalComp, |proc| {
                let mut counts = vec![0i32; m_local.len() / w0.max(1)];
                for (l, &selected) in m_local.iter().enumerate() {
                    if selected {
                        let k = l / w0;
                        self.records.push((l as u32, k as u32, counts[k] as u32));
                        counts[k] += 1;
                    }
                }
                proc.charge_ops(m_local.len() + 4 * self.records.len());
                counts
            })
        })
    }

    fn compose(
        &mut self,
        proc: &mut Proc,
        ranking: &Ranking,
        _m_local: &[bool],
        _w0: usize,
        layout: &DimLayout,
    ) -> Vec<Route> {
        let nprocs = proc.nprocs();
        proc.wall_span("compose.simple", |proc| {
            proc.with_category(Category::LocalComp, |proc| {
                let mut routes: Vec<Route> = (0..nprocs)
                    .map(|_| Route {
                        ranks: RankList::new(RankEmit::Explicit),
                        slots: Vec::new(),
                    })
                    .collect();
                for &(local, slice, init) in &self.records {
                    let rank = init as usize + ranking.ps_f[slice as usize] as usize;
                    let owner = layout.owner(rank);
                    let route = &mut routes[owner];
                    match &mut route.ranks {
                        RankList::Explicit(v) => v.push(rank as u32),
                        RankList::Runs(_) => unreachable!("simple composition is explicit"),
                    }
                    route.slots.push(local);
                }
                proc.charge_ops(self.per_elem * self.records.len());
                proc.wall_bytes(self.records.len() as u64 * 8);
                routes
            })
        })
    }
}

/// Compact storage: only the counter array `PS_c` survives the initial
/// scan (`L + C` operations); composition walks the slices (`C` checks),
/// rebuilds the consecutive rank runs from `PS_c`/`PS_f`, and recovers the
/// element slots with a second scan (`S` operations under the configured
/// [`ScanMethod`]).
pub(crate) struct CompactComposer {
    emit: RankEmit,
    cost: ComposeCost,
    scan_method: ScanMethod,
    ps_c: Vec<i32>,
}

impl CompactComposer {
    pub(crate) fn new(emit: RankEmit, cost: ComposeCost, scan_method: ScanMethod) -> Self {
        CompactComposer {
            emit,
            cost,
            scan_method,
            ps_c: Vec::new(),
        }
    }
}

impl Composer for CompactComposer {
    fn scan(&mut self, proc: &mut Proc, m_local: &[bool], w0: usize) -> Vec<i32> {
        proc.wall_span("scan.compact", |proc| {
            proc.with_category(Category::LocalComp, |proc| {
                let counts = crate::ranking::slice_counts(m_local, w0);
                self.ps_c = counts.clone();
                proc.charge_ops(m_local.len() + self.ps_c.len());
                counts
            })
        })
    }

    fn compose(
        &mut self,
        proc: &mut Proc,
        ranking: &Ranking,
        m_local: &[bool],
        w0: usize,
        layout: &DimLayout,
    ) -> Vec<Route> {
        let nprocs = proc.nprocs();
        proc.wall_span("compose.compact", |proc| {
            proc.with_category(Category::LocalComp, |proc| {
                let mut routes: Vec<Route> = (0..nprocs)
                    .map(|_| Route {
                        ranks: RankList::new(self.emit),
                        slots: Vec::new(),
                    })
                    .collect();
                let mut ops = self.ps_c.len(); // one check per slice
                let mut slots: Vec<u32> = Vec::with_capacity(w0);
                for (k, &n) in self.ps_c.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    let n = n as usize;
                    let r0 = ranking.ps_f[k] as usize;
                    slots.clear();
                    ops += collect_slice_slots(
                        &m_local[k * w0..(k + 1) * w0],
                        k * w0,
                        n,
                        self.scan_method,
                        &mut slots,
                    );
                    let mut taken = 0usize;
                    for (start, len) in dest_runs(r0, n, layout) {
                        let owner = layout.owner(start);
                        let route = &mut routes[owner];
                        match &mut route.ranks {
                            RankList::Explicit(v) => {
                                for j in 0..len {
                                    v.push((start + j) as u32);
                                }
                            }
                            RankList::Runs(v) => v.push((start as u32, len as u32)),
                        }
                        route.slots.extend_from_slice(&slots[taken..taken + len]);
                        taken += len;
                        ops += self.cost.per_run + self.cost.per_elem * len;
                    }
                }
                proc.charge_ops(ops);
                proc.wall_bytes(ops as u64 * 4);
                routes
            })
        })
    }
}

/// Collect the local indices of the `n` selected elements of one slice
/// (which starts at local index `base`), using the requested second-scan
/// method (Section 6.1). Returns the number of elementary operations the
/// scan performed: until-collected stops after the last selected element,
/// whole-slice always costs the slice width.
fn collect_slice_slots(
    m_slice: &[bool],
    base: usize,
    n: usize,
    method: ScanMethod,
    out: &mut Vec<u32>,
) -> usize {
    match method {
        ScanMethod::UntilCollected => {
            let mut scanned = 0usize;
            for (i, &b) in m_slice.iter().enumerate() {
                if b {
                    out.push((base + i) as u32);
                    if out.len() == n {
                        scanned = i + 1;
                        break;
                    }
                }
            }
            debug_assert_eq!(out.len(), n, "slice count disagrees with mask");
            scanned
        }
        ScanMethod::WholeSlice => {
            for (i, &b) in m_slice.iter().enumerate() {
                if b {
                    out.push((base + i) as u32);
                }
            }
            m_slice.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_scan_methods_agree_on_slots_but_not_cost() {
        let m = [false, true, false, true, false, false];
        let mut s1 = Vec::new();
        let ops1 = collect_slice_slots(&m, 12, 2, ScanMethod::UntilCollected, &mut s1);
        let mut s2 = Vec::new();
        let ops2 = collect_slice_slots(&m, 12, 2, ScanMethod::WholeSlice, &mut s2);
        assert_eq!(s1, vec![13, 15]);
        assert_eq!(s1, s2);
        assert_eq!(ops1, 4); // stops after the last selected element
        assert_eq!(ops2, 6); // scans the whole slice
    }
}
