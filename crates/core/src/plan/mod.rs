//! Planner/executor split for PACK and UNPACK.
//!
//! Everything the Section 4–6 algorithms compute from the *mask* alone —
//! slice counts, the ranking collectives, the destination routes, and the
//! communication structure of the redistribution exchange — is
//! value-independent: it answers "who sends which result-vector ranks to
//! whom", never "what values". This module reifies that half into a plan
//! ([`PackPlan`] / [`UnpackPlan`]) built once by [`plan_pack`] /
//! [`plan_unpack`], so that executing the plan against fresh array values
//! performs **zero ranking collectives and zero index recomputation**:
//!
//! ```text
//! plan  = scan + ranking (PRS collectives) + composition (+ request round)
//!         + copy-program lowering
//! execute = gather/scatter values along the precompiled copy programs
//!           + exchange
//! ```
//!
//! The split is exact with respect to the Section 6.4 operation model: the
//! plan-phase and execute-phase `LocalComp` charges sum to precisely the
//! per-scheme formulas (see [`crate::predict`]), and
//! `plan().execute(data)` is bit-identical to the one-shot entry points
//! (which are now thin wrappers doing exactly `plan` + `execute`).
//!
//! Since the copy-program lowering (DESIGN.md §16), a plan also carries,
//! per destination, a compiled [`copyprog::CopyProgram`] over its index
//! lists; the execute kernels walk the program — bulk `copy_from_slice`
//! runs and constant-stride loops where the mask allows, scalar ranges
//! where it does not — instead of indexing element by element. Lowering is
//! wall-clock-only: simulated operation charges are per *value moved* and
//! do not depend on the loop shape, so every Section 6.4 metric is
//! unchanged to the bit.
//!
//! Plans are generic over the element type at execute time: one
//! [`PackPlan`] built for a mask/layout packs `f64` values and `u32`
//! indices alike, which is how the SpMV app compresses two aligned arrays
//! with a single ranking pass.
//!
//! [`PlanCache`] memoizes plans across calls keyed by stable fingerprints,
//! turning repeated pack/unpack under an unchanged mask into pure
//! executes.

mod cache;
pub(crate) mod composer;
pub(crate) mod copyprog;
mod poolmsg;

pub use cache::PlanCache;
pub use copyprog::CopyStats;

use hpf_distarray::{ArrayDesc, DimLayout};
use hpf_machine::collectives::{
    alltoallv, alltoallv_planned, alltoallv_pooled, A2aPlan, A2aSchedule,
};
use hpf_machine::{fresh_pool_key, Category, MemAccount, Packet, PoolSlot, Proc, Reusable, Wire};

use crate::error::{PackError, UnpackError};
use crate::pack::{compact_message, result_layout, CmsMessage, PackOutput};
use crate::ranking::rank_from_counts;
use crate::schemes::{PackOptions, PackScheme, UnpackOptions, UnpackScheme};
use crate::unpack::RankRequest;

use composer::{Composer, RankList, Route};
use copyprog::{CopyProgram, Phase};
use poolmsg::{FlatMsg, PairMsg};

/// A reusable, value-independent PACK plan for one `(descriptor, mask,
/// options)` triple on one processor. Built by [`plan_pack`]; executed any
/// number of times with [`PackPlan::execute`].
#[derive(Debug, Clone)]
pub struct PackPlan {
    scheme: PackScheme,
    schedule: A2aSchedule,
    size: usize,
    v_layout: Option<DimLayout>,
    local_len: usize,
    routes: Vec<Route>,
    /// Per destination: the copy program lowered from the route's slot
    /// list, driving the execute-time value gather (DESIGN.md §16).
    gather: Vec<CopyProgram>,
    a2a: A2aPlan,
    /// Buffer-pool key: each plan owns a distinct family of reusable send
    /// buffers in every processor's pool (see DESIGN.md §11).
    pool_key: u64,
}

/// Build a [`PackPlan`]: initial scan, ranking collectives, route
/// composition, copy-program lowering, and a one-round exchange of send
/// flags so every processor also knows which peers will message it at
/// execute time.
///
/// All work is wrapped in the `pack.plan` stage span. Scanning, ranking
/// arithmetic, and composition charge [`Category::LocalComp`] (plus the
/// ranking collectives under [`Category::PrefixReductionSum`]); the flag
/// exchange charges [`Category::Other`] — it is plan-time metadata, not
/// part of the paper's data redistribution, and is paid once however many
/// times the plan is executed. The copy-program lowering charges nothing
/// simulated at all (`plan.lower` wall span only): it changes how the
/// executor's loops are shaped, never how many per-value operations the
/// model counts.
///
/// This is a collective call: every processor must invoke it with its
/// aligned local mask portion.
pub fn plan_pack(
    proc: &mut Proc,
    desc: &ArrayDesc,
    m_local: &[bool],
    opts: &PackOptions,
) -> Result<PackPlan, PackError> {
    let shape = crate::pack::validate_mask(proc, desc, m_local)?;
    let local_len = m_local.len();
    Ok(proc.with_stage("pack.plan", |proc| {
        let w0 = shape.w[0];
        let mut composer = pack_composer(opts);
        let counts = composer.scan(proc, m_local, w0);
        let ranking = rank_from_counts(proc, &shape, counts, opts.prs);
        if ranking.size == 0 {
            let n = proc.nprocs();
            let plan = PackPlan {
                scheme: opts.scheme,
                schedule: opts.schedule,
                size: 0,
                v_layout: None,
                local_len,
                routes: Vec::new(),
                gather: Vec::new(),
                a2a: A2aPlan::from_flags(vec![false; n], vec![false; n]),
                pool_key: fresh_pool_key(),
            };
            proc.mem_charge(MemAccount::Plan, plan.mem_bytes());
            return plan;
        }
        let layout =
            result_layout(ranking.size, proc.nprocs(), opts.result_block_size).expect("size > 0");
        let routes = composer.compose(proc, &ranking, m_local, w0, &layout);
        let gather = proc.wall_span("plan.lower", |_| {
            routes
                .iter()
                .map(|r| CopyProgram::lower(&r.slots))
                .collect()
        });
        let to: Vec<bool> = routes.iter().map(|r| !r.slots.is_empty()).collect();
        let a2a = proc.with_category(Category::Other, |proc| {
            let world = proc.world();
            A2aPlan::exchange(proc, &world, to, opts.schedule)
        });
        let plan = PackPlan {
            scheme: opts.scheme,
            schedule: opts.schedule,
            size: ranking.size,
            v_layout: Some(layout),
            local_len,
            routes,
            gather,
            a2a,
            pool_key: fresh_pool_key(),
        };
        proc.mem_charge(MemAccount::Plan, plan.mem_bytes());
        plan
    }))
}

impl PackPlan {
    /// The scheme the plan was composed for.
    pub fn scheme(&self) -> PackScheme {
        self.scheme
    }

    /// Bytes retained by the plan's index structures (routes, lowered copy
    /// programs, and exchange flags), charged to the `plan` memory account
    /// at build time and never released — plans live for the run, typically
    /// cached across calls.
    fn mem_bytes(&self) -> u64 {
        let routes: u64 = self.routes.iter().map(route_bytes).sum();
        let progs: u64 = self.gather.iter().map(CopyProgram::mem_bytes).sum();
        routes + progs + 2 * self.a2a.to.len() as u64
    }

    /// Aggregate op breakdown of the plan's lowered gather programs —
    /// how much of the execute-time value movement runs as bulk copies.
    pub fn copy_stats(&self) -> CopyStats {
        let mut s = CopyStats::default();
        for p in &self.gather {
            s.merge(p.stats());
        }
        s
    }

    /// Global number of packed elements (`Size`), replicated everywhere.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Layout of the result vector (`None` iff `size == 0`).
    pub fn v_layout(&self) -> Option<DimLayout> {
        self.v_layout
    }

    /// Execute the plan against local array values: gather along the
    /// precomputed routes, run the planned many-to-many exchange, decode.
    /// No ranking collectives and no index recomputation — the only local
    /// work is value movement.
    ///
    /// Collective; wrapped in the `pack.execute` stage span. Works for any
    /// element type `T` (the plan is value-independent).
    ///
    /// # Errors
    /// [`PackError::ArrayLenMismatch`] if `a_local` does not match the
    /// planned descriptor's local length (collective, like the one-shot
    /// entry points).
    pub fn execute<T: Wire + Default>(
        &self,
        proc: &mut Proc,
        a_local: &[T],
    ) -> Result<PackOutput<T>, PackError> {
        let mut out = PackOutput {
            local_v: Vec::new(),
            size: 0,
            v_layout: None,
        };
        self.execute_into(proc, a_local, &mut out)?;
        Ok(out)
    }

    /// [`PackPlan::execute`] writing into a caller-owned output. `out` is
    /// refilled in place; from the second call with the same `out` onward
    /// the whole gather → exchange → decode loop performs **zero heap
    /// allocations**: send buffers come from the per-processor pool
    /// (checked out here, returned by the receiving processor's decode) and
    /// the result vector reuses its capacity.
    ///
    /// Simulated accounting — charges, events, stage spans — is
    /// bit-identical to `execute`, which is now this method plus a fresh
    /// output.
    pub fn execute_into<T: Wire + Default>(
        &self,
        proc: &mut Proc,
        a_local: &[T],
        out: &mut PackOutput<T>,
    ) -> Result<(), PackError> {
        if a_local.len() != self.local_len {
            return Err(PackError::ArrayLenMismatch {
                expected: self.local_len,
                got: a_local.len(),
            });
        }
        if self.size == 0 {
            out.local_v.clear();
            out.size = 0;
            out.v_layout = None;
            return Ok(());
        }
        let layout = self.v_layout.expect("size > 0");
        // Under crash recovery, pooled (in-place reused) send buffers are
        // off limits: a replayed packet must keep sharing its original
        // payload. The owned-buffer path below makes identical charges in
        // identical spans, so the simulated accounting does not change —
        // only the wall-clock allocation behaviour does.
        let recovery = proc.recovery_enabled();
        proc.with_stage("pack.execute", |proc| {
            match self.scheme {
                PackScheme::Simple | PackScheme::CompactStorage if recovery => {
                    let sends = self.gather_pairs_owned(proc, a_local);
                    let recvs = proc.with_category(Category::ManyToMany, |proc| {
                        let world = proc.world();
                        alltoallv_planned(proc, &world, sends, &self.a2a, self.schedule)
                    });
                    self.decode_pairs_owned(proc, &layout, &recvs, &mut out.local_v);
                }
                PackScheme::Simple | PackScheme::CompactStorage => {
                    self.gather_pairs(proc, a_local);
                    let mut recvs = proc.take_pkt_scratch();
                    proc.with_category(Category::ManyToMany, |proc| {
                        alltoallv_pooled::<PairMsg<T>>(
                            proc,
                            &self.a2a,
                            self.schedule,
                            self.pool_key,
                            &mut recvs,
                        );
                    });
                    self.decode_pairs(proc, &layout, &mut recvs, &mut out.local_v);
                    proc.restore_pkt_scratch(recvs);
                }
                PackScheme::CompactMessage if recovery => {
                    let sends = self.gather_segments_owned(proc, a_local);
                    let recvs = proc.with_category(Category::ManyToMany, |proc| {
                        let world = proc.world();
                        alltoallv_planned(proc, &world, sends, &self.a2a, self.schedule)
                    });
                    self.decode_segments_owned(proc, &layout, &recvs, &mut out.local_v);
                }
                PackScheme::CompactMessage => {
                    self.gather_segments(proc, a_local);
                    let mut recvs = proc.take_pkt_scratch();
                    proc.with_category(Category::ManyToMany, |proc| {
                        alltoallv_pooled::<CmsMessage<T>>(
                            proc,
                            &self.a2a,
                            self.schedule,
                            self.pool_key,
                            &mut recvs,
                        );
                    });
                    self.decode_segments(proc, &layout, &mut recvs, &mut out.local_v);
                    proc.restore_pkt_scratch(recvs);
                }
            }
            out.size = self.size;
            out.v_layout = Some(layout);
        });
        Ok(())
    }

    /// Gather `(rank, value)` pair messages into pooled per-destination
    /// buffers (one operation per moved element). A warm buffer already
    /// holds the plan-constant rank skeleton, so the refill walks the
    /// lowered copy program and overwrites **values only**; cold buffers
    /// (the first two executes, one per pool slot) build the skeleton
    /// scalar. The buffer for each destination — this processor's own rank
    /// included — is left staged in its slot for the exchange.
    fn gather_pairs<T: Wire + Default>(&self, proc: &mut Proc, a_local: &[T]) {
        proc.wall_span("pack.gather", |proc| {
            proc.with_category(Category::LocalComp, |proc| {
                let mut moved = 0usize;
                for (dst, route) in self.routes.iter().enumerate() {
                    if route.slots.is_empty() {
                        continue;
                    }
                    let RankList::Explicit(ranks) = &route.ranks else {
                        unreachable!("pair schemes compose explicit ranks")
                    };
                    let (slot, mut buf) = proc.pool_checkout::<PairMsg<T>>(self.pool_key, dst);
                    if buf.pairs.len() == ranks.len() && !cfg!(feature = "scalar-ref") {
                        debug_assert!(
                            buf.pairs.iter().zip(ranks).all(|(p, &r)| p.0 == r),
                            "stale rank skeleton in pooled pair buffer"
                        );
                        walk_pairs_refill(
                            proc,
                            &self.gather[dst],
                            &route.slots,
                            a_local,
                            &mut buf.pairs,
                        );
                    } else {
                        proc.wall_span("copy.scatter", |proc| {
                            buf.pairs.clear();
                            buf.pairs.extend(
                                ranks
                                    .iter()
                                    .zip(&route.slots)
                                    .map(|(&r, &s)| (r, a_local[s as usize])),
                            );
                            proc.wall_bytes((ranks.len() * std::mem::size_of::<(u32, T)>()) as u64);
                        });
                    }
                    moved += ranks.len();
                    slot.stash(buf);
                }
                proc.charge_ops(moved);
            })
        })
    }

    /// Gather compact-message segments along run-compressed routes into
    /// pooled buffers (one operation per moved value; the 2-per-segment
    /// header charge was paid at plan time). The route structure is fixed
    /// per plan, so refills find the header skeleton and the shaped flat
    /// value array in place and only walk the copy program.
    fn gather_segments<T: Wire + Default>(&self, proc: &mut Proc, a_local: &[T]) {
        proc.wall_span("pack.gather", |proc| {
            proc.with_category(Category::LocalComp, |proc| {
                let mut moved = 0usize;
                for (dst, route) in self.routes.iter().enumerate() {
                    if route.slots.is_empty() {
                        continue;
                    }
                    let RankList::Runs(runs) = &route.ranks else {
                        unreachable!("compact message composes runs")
                    };
                    let (slot, mut msg) = proc.pool_checkout::<CmsMessage<T>>(self.pool_key, dst);
                    proc.wall_span("fill_segments", |proc| {
                        compact_message::ensure_shape(&mut msg, runs, route.slots.len());
                        walk_gather(
                            proc,
                            &self.gather[dst],
                            &route.slots,
                            a_local,
                            &mut msg.vals,
                        );
                    });
                    moved += route.slots.len();
                    slot.stash(msg);
                }
                proc.charge_ops(moved);
            })
        })
    }

    /// [`PackPlan::gather_pairs`] into owned per-destination buffers — the
    /// crash-recovery path (same operations, same charge, fresh
    /// allocations instead of pool slots, scalar-reference gather).
    fn gather_pairs_owned<T: Wire + Default>(
        &self,
        proc: &mut Proc,
        a_local: &[T],
    ) -> Vec<Vec<(u32, T)>> {
        proc.with_category(Category::LocalComp, |proc| {
            let mut moved = 0usize;
            let mut sends: Vec<Vec<(u32, T)>> = vec![Vec::new(); proc.nprocs()];
            for (dst, route) in self.routes.iter().enumerate() {
                if route.slots.is_empty() {
                    continue;
                }
                let RankList::Explicit(ranks) = &route.ranks else {
                    unreachable!("pair schemes compose explicit ranks")
                };
                sends[dst] = ranks
                    .iter()
                    .zip(&route.slots)
                    .map(|(&r, &s)| (r, a_local[s as usize]))
                    .collect();
                moved += ranks.len();
            }
            proc.charge_ops(moved);
            sends
        })
    }

    /// [`PackPlan::gather_segments`] into owned buffers — the crash-recovery
    /// path (scalar-reference fill).
    fn gather_segments_owned<T: Wire + Default>(
        &self,
        proc: &mut Proc,
        a_local: &[T],
    ) -> Vec<CmsMessage<T>> {
        proc.with_category(Category::LocalComp, |proc| {
            let mut moved = 0usize;
            let mut sends: Vec<CmsMessage<T>> =
                (0..proc.nprocs()).map(|_| CmsMessage::default()).collect();
            for (dst, route) in self.routes.iter().enumerate() {
                if route.slots.is_empty() {
                    continue;
                }
                let RankList::Runs(runs) = &route.ranks else {
                    unreachable!("compact message composes runs")
                };
                compact_message::fill_segments(&mut sends[dst], runs, &route.slots, a_local);
                moved += route.slots.len();
            }
            proc.charge_ops(moved);
            sends
        })
    }

    /// [`PackPlan::decode_pairs`] over owned receive buffers — the
    /// crash-recovery path (identical `2·E_a` charge).
    fn decode_pairs_owned<T: Wire + Default>(
        &self,
        proc: &mut Proc,
        layout: &DimLayout,
        recvs: &[Vec<(u32, T)>],
        out: &mut Vec<T>,
    ) {
        proc.with_category(Category::LocalComp, |proc| {
            let me = proc.id();
            prepare_out(out, layout.local_len(me));
            let mut placed = 0usize;
            for (src, buf) in recvs.iter().enumerate() {
                if src == me || self.a2a.from[src] {
                    placed += place_pairs(layout, me, buf, out);
                }
            }
            debug_assert_eq!(placed, out.len(), "pack decode must cover V exactly");
            proc.charge_ops(2 * placed);
        })
    }

    /// [`PackPlan::decode_segments`] over owned receive buffers — the
    /// crash-recovery path (identical `E_a + 2·Gr_i` charge).
    fn decode_segments_owned<T: Wire + Default>(
        &self,
        proc: &mut Proc,
        layout: &DimLayout,
        recvs: &[CmsMessage<T>],
        out: &mut Vec<T>,
    ) {
        proc.with_category(Category::LocalComp, |proc| {
            let me = proc.id();
            prepare_out(out, layout.local_len(me));
            let mut ops = 0usize;
            for (src, msg) in recvs.iter().enumerate() {
                if src == me || self.a2a.from[src] {
                    ops += compact_message::place_segments(layout, me, msg, out);
                }
            }
            proc.charge_ops(ops);
        })
    }

    /// Decode pooled pair messages into `out` (Section 6.4.1: `2·E_a`),
    /// returning each buffer to its sender's slot via [`decode_pooled`].
    fn decode_pairs<T: Wire + Default>(
        &self,
        proc: &mut Proc,
        layout: &DimLayout,
        recvs: &mut Vec<Packet>,
        out: &mut Vec<T>,
    ) {
        proc.wall_span("pack.decode", |proc| {
            proc.with_category(Category::LocalComp, |proc| {
                let me = proc.id();
                prepare_out(out, layout.local_len(me));
                let placed = decode_pooled::<PairMsg<T>, _>(
                    proc,
                    self.pool_key,
                    self.a2a.to[me],
                    recvs,
                    |_, _, buf| place_pairs(layout, me, &buf.pairs, out),
                );
                debug_assert_eq!(placed, out.len(), "pack decode must cover V exactly");
                proc.charge_ops(2 * placed);
                proc.wall_bytes((placed * std::mem::size_of::<(u32, T)>()) as u64);
            })
        })
    }

    /// Decode pooled segment messages into `out` (Section 6.4.2:
    /// `E_a + 2·Gr_i`), returning each buffer to its sender's slot via
    /// [`decode_pooled`].
    fn decode_segments<T: Wire + Default>(
        &self,
        proc: &mut Proc,
        layout: &DimLayout,
        recvs: &mut Vec<Packet>,
        out: &mut Vec<T>,
    ) {
        proc.wall_span("pack.decode", |proc| {
            proc.with_category(Category::LocalComp, |proc| {
                let me = proc.id();
                prepare_out(out, layout.local_len(me));
                let mut placed = 0usize;
                let ops = decode_pooled::<CmsMessage<T>, _>(
                    proc,
                    self.pool_key,
                    self.a2a.to[me],
                    recvs,
                    |proc, _, msg| {
                        placed += msg.value_count();
                        place_segments_walled(proc, layout, me, msg, out)
                    },
                );
                debug_assert_eq!(placed, out.len(), "pack decode must cover V exactly");
                let _ = placed;
                proc.charge_ops(ops);
            })
        })
    }
}

/// Retained bytes of one route's index buffers: 4 bytes per slot, plus 4
/// per explicit rank or 8 per `(base, len)` run.
fn route_bytes(route: &Route) -> u64 {
    let ranks = match &route.ranks {
        RankList::Explicit(v) => v.len() as u64 * 4,
        RankList::Runs(v) => v.len() as u64 * 8,
    };
    ranks + route.slots.len() as u64 * 4
}

/// Shape the decode output. `V`'s local slice is fully overwritten by the
/// decode — every result rank is routed to exactly one processor and every
/// processor's routes tile `0..Size` — so a right-sized buffer from a
/// previous execute is reused as-is; the old unconditional clear +
/// zero-resize re-zeroed `local_len` elements per execute for nothing.
/// Fresh (or wrongly sized) buffers are zero-filled once. The coverage
/// invariant is `debug_assert`ed by every decode path.
fn prepare_out<T: Default + Clone>(out: &mut Vec<T>, local_len: usize) {
    if out.len() != local_len {
        out.clear();
        out.resize(local_len, T::default());
    }
}

/// The shared pooled-decode loop: take the self-staged buffer (it never
/// crossed the wire), then every received packet's slot, run `place` over
/// each, and return every buffer to its sender's slot. `place` gets the
/// sending processor's id (this processor's own for the self slot) and
/// returns whatever count it wants accumulated — placed values for pair
/// decodes, model operations for segment decodes.
fn decode_pooled<B: Reusable, F>(
    proc: &mut Proc,
    pool_key: u64,
    self_staged: bool,
    recvs: &mut Vec<Packet>,
    mut place: F,
) -> usize
where
    F: FnMut(&mut Proc, usize, &B) -> usize,
{
    let me = proc.id();
    let mut acc = 0usize;
    if self_staged {
        let slot = proc.pool_current::<B>(pool_key, me);
        let buf = slot.take_staged();
        acc += place(proc, me, &buf);
        slot.put_back(buf);
    }
    for pkt in recvs.drain(..) {
        let src = pkt.src;
        let slot = pkt
            .data
            .downcast::<PoolSlot<B>>()
            .expect("pooled exchange delivers pool slots");
        let buf = slot.take_staged();
        acc += place(proc, src, &buf);
        slot.put_back(buf);
    }
    acc
}

/// Walk a lowered gather program into a pre-shaped destination slice,
/// splitting the bulk ops and the scalar ranges into their wall frames
/// (`copy.contig` / `copy.scatter`) so hotspot attribution sees the shift
/// from indexed to bulk movement.
fn walk_gather<T: Wire>(
    proc: &mut Proc,
    prog: &CopyProgram,
    idx: &[u32],
    src: &[T],
    dst: &mut [T],
) {
    let bulk = prog.stats().bulk_elements as usize;
    proc.wall_span("copy.contig", |proc| {
        copyprog::gather_fill(prog, idx, src, dst, Phase::Bulk);
        proc.wall_bytes((bulk * std::mem::size_of::<T>()) as u64);
    });
    proc.wall_span("copy.scatter", |proc| {
        copyprog::gather_fill(prog, idx, src, dst, Phase::Scatter);
        proc.wall_bytes(((idx.len() - bulk) * std::mem::size_of::<T>()) as u64);
    });
}

/// [`walk_gather`] for pair buffers: overwrite the value halves along the
/// program, rank skeleton untouched.
fn walk_pairs_refill<T: Wire>(
    proc: &mut Proc,
    prog: &CopyProgram,
    idx: &[u32],
    src: &[T],
    dst: &mut [(u32, T)],
) {
    let bulk = prog.stats().bulk_elements as usize;
    proc.wall_span("copy.contig", |proc| {
        copyprog::gather_pairs_refill(prog, idx, src, dst, Phase::Bulk);
        proc.wall_bytes((bulk * std::mem::size_of::<T>()) as u64);
    });
    proc.wall_span("copy.scatter", |proc| {
        copyprog::gather_pairs_refill(prog, idx, src, dst, Phase::Scatter);
        proc.wall_bytes(((idx.len() - bulk) * std::mem::size_of::<T>()) as u64);
    });
}

/// Walk a lowered scatter program (`out[idx[k]] = vals[k]`) under the
/// `copy.contig` / `copy.scatter` wall frames.
fn walk_scatter<T: Wire>(
    proc: &mut Proc,
    prog: &CopyProgram,
    idx: &[u32],
    vals: &[T],
    out: &mut [T],
) {
    let bulk = prog.stats().bulk_elements as usize;
    proc.wall_span("copy.contig", |proc| {
        copyprog::scatter_apply(prog, idx, vals, out, Phase::Bulk);
        proc.wall_bytes((bulk * std::mem::size_of::<T>()) as u64);
    });
    proc.wall_span("copy.scatter", |proc| {
        copyprog::scatter_apply(prog, idx, vals, out, Phase::Scatter);
        proc.wall_bytes(((idx.len() - bulk) * std::mem::size_of::<T>()) as u64);
    });
}

/// [`compact_message::place_segments`] bracketed by a `place_segments`
/// wall span, attributing the placed values' bytes (the 2-word segment
/// headers are excluded from the byte count — they are index work, not
/// value movement).
fn place_segments_walled<T: Wire + Default>(
    proc: &mut Proc,
    layout: &DimLayout,
    me: usize,
    msg: &CmsMessage<T>,
    out: &mut [T],
) -> usize {
    proc.wall_span("place_segments", |proc| {
        let ops = compact_message::place_segments(layout, me, msg, out);
        proc.wall_bytes((msg.value_count() * std::mem::size_of::<T>()) as u64);
        ops
    })
}

/// Place one pair message's `(global rank, value)` entries into the local
/// slice of `V`; returns the number of values placed.
///
/// The receiver never learns the sender's rank lists at plan time (adding
/// an exchange for them would change the simulated wire traffic), so runs
/// are detected here at execute time: consecutive ranks within one result
/// block map to consecutive local indices, so each run costs one
/// `local_of` division and a tight copy loop instead of one division per
/// value. The block-boundary cap makes the in-block contiguity theorem
/// apply; owner and contiguity are re-checked per run under
/// `debug_assertions`. The `scalar-ref` feature keeps the per-element
/// reference walk.
fn place_pairs<T: Wire + Default>(
    layout: &DimLayout,
    me: usize,
    pairs: &[(u32, T)],
    out: &mut [T],
) -> usize {
    if cfg!(feature = "scalar-ref") {
        for &(rank, value) in pairs {
            debug_assert_eq!(layout.owner(rank as usize), me, "misrouted element");
            out[layout.local_of(rank as usize)] = value;
        }
        return pairs.len();
    }
    let w = layout.w();
    let mut i = 0usize;
    while i < pairs.len() {
        let r0 = pairs[i].0 as usize;
        // A run of consecutive ranks stays locally contiguous only within
        // one result block of size W'; cap the probe at the boundary.
        let cap = w - r0 % w;
        let mut len = 1usize;
        while len < cap && i + len < pairs.len() && pairs[i + len].0 as usize == r0 + len {
            len += 1;
        }
        debug_assert_eq!(layout.owner(r0), me, "misrouted element");
        debug_assert_eq!(layout.owner(r0 + len - 1), me, "run crosses owners");
        let base = layout.local_of(r0);
        debug_assert_eq!(
            layout.local_of(r0 + len - 1),
            base + len - 1,
            "run is not locally contiguous"
        );
        for (k, &(_, v)) in pairs[i..i + len].iter().enumerate() {
            out[base + k] = v;
        }
        i += len;
    }
    pairs.len()
}

/// A reusable, value-independent UNPACK plan. The rank *requests* of the
/// READ direction are exchanged once at plan time; each execute only moves
/// values (the reply round plus local copies).
#[derive(Debug, Clone)]
pub struct UnpackPlan {
    schedule: A2aSchedule,
    size: usize,
    local_len: usize,
    v_local_len: usize,
    /// Per reply-sender: local element slots awaiting its values.
    targets: Vec<Vec<u32>>,
    /// Per requester: the local indices into my `V` slice to serve, in
    /// request order.
    serve_idx: Vec<Vec<u32>>,
    /// Per requester: copy program lowered from `serve_idx` (the reply
    /// fill).
    serve_prog: Vec<CopyProgram>,
    /// Per reply-sender: copy program lowered from `targets` (the reply
    /// scatter).
    scatter_prog: Vec<CopyProgram>,
    reply_a2a: A2aPlan,
    /// Buffer-pool key for the reply-round send buffers (DESIGN.md §11).
    pool_key: u64,
}

/// Build an [`UnpackPlan`]: initial scan, ranking collectives, request
/// composition, the request exchange itself, the owner-side precomputation
/// of which local `V` indices each requester needs, and the lowering of
/// both index families into copy programs.
///
/// Wrapped in the `unpack.plan` stage span; the request round keeps its
/// `unpack.request` span and [`Category::ManyToMany`] charge exactly as in
/// the one-shot path. The reply exchange needs no flag round: both
/// directions are locally known once the requests have arrived.
///
/// Collective. Returns [`UnpackError::VectorTooSmall`] (collectively) if
/// the mask selects more elements than `v_layout` can hold.
pub fn plan_unpack(
    proc: &mut Proc,
    desc: &ArrayDesc,
    m_local: &[bool],
    v_layout: &DimLayout,
    opts: &UnpackOptions,
) -> Result<UnpackPlan, UnpackError> {
    let shape = crate::unpack::validate_mask(proc, desc, m_local)?;
    let local_len = m_local.len();
    let v_local_len = v_layout.local_len(proc.id());
    proc.with_stage("unpack.plan", |proc| {
        let w0 = shape.w[0];
        let mut composer = unpack_composer(opts);
        let counts = composer.scan(proc, m_local, w0);
        let ranking = rank_from_counts(proc, &shape, counts, opts.prs);
        let size = ranking.size;
        if size > v_layout.n() {
            // `Size` is replicated, so every processor takes this branch —
            // a collective error with no half-open communication.
            return Err(UnpackError::VectorTooSmall {
                size,
                capacity: v_layout.n(),
            });
        }
        let n = proc.nprocs();
        if size == 0 {
            let plan = UnpackPlan {
                schedule: opts.schedule,
                size: 0,
                local_len,
                v_local_len,
                targets: vec![Vec::new(); n],
                serve_idx: vec![Vec::new(); n],
                serve_prog: Vec::new(),
                scatter_prog: Vec::new(),
                reply_a2a: A2aPlan::from_flags(vec![false; n], vec![false; n]),
                pool_key: fresh_pool_key(),
            };
            proc.mem_charge(MemAccount::Plan, plan.mem_bytes());
            return Ok(plan);
        }
        let routes = composer.compose(proc, &ranking, m_local, w0, v_layout);
        let mut requests: Vec<RankRequest> = Vec::with_capacity(n);
        let mut targets: Vec<Vec<u32>> = Vec::with_capacity(n);
        for route in routes {
            requests.push(match route.ranks {
                RankList::Explicit(v) => RankRequest::Explicit(v),
                RankList::Runs(v) => RankRequest::Runs(v),
            });
            targets.push(route.slots);
        }
        // The request round: identical wire traffic to the one-shot path,
        // paid once per plan instead of once per call.
        let incoming = proc.with_stage("unpack.request", |proc| {
            proc.with_category(Category::ManyToMany, |proc| {
                let world = proc.world();
                alltoallv(proc, &world, requests, opts.schedule)
            })
        });
        // Owner-side precompute: resolve each requested rank to a local
        // index into my slice of V (one operation per served rank; the
        // value fetch itself is charged at execute time).
        let serve_idx = proc.with_category(Category::LocalComp, |proc| {
            let mut serve: Vec<Vec<u32>> = Vec::with_capacity(incoming.len());
            let mut ops = 0usize;
            for req in &incoming {
                let mut idx = Vec::with_capacity(req.expanded_len());
                req.for_each_rank(|r| {
                    debug_assert_eq!(v_layout.owner(r), proc.id(), "misrouted request");
                    idx.push(v_layout.local_of(r) as u32);
                });
                ops += idx.len();
                serve.push(idx);
            }
            proc.charge_ops(ops);
            serve
        });
        let (serve_prog, scatter_prog) = proc.wall_span("plan.lower", |_| {
            (lower_idx_lists(&serve_idx), lower_idx_lists(&targets))
        });
        // Reply directions are locally known: I reply to whoever asked,
        // and I await replies from whoever I asked.
        let to: Vec<bool> = serve_idx.iter().map(|s| !s.is_empty()).collect();
        let from: Vec<bool> = targets.iter().map(|t| !t.is_empty()).collect();
        let plan = UnpackPlan {
            schedule: opts.schedule,
            size,
            local_len,
            v_local_len,
            targets,
            serve_idx,
            serve_prog,
            scatter_prog,
            reply_a2a: A2aPlan::from_flags(to, from),
            pool_key: fresh_pool_key(),
        };
        proc.mem_charge(MemAccount::Plan, plan.mem_bytes());
        Ok(plan)
    })
}

/// Lower each index list of a per-processor family into its copy program.
fn lower_idx_lists(lists: &[Vec<u32>]) -> Vec<CopyProgram> {
    lists.iter().map(|l| CopyProgram::lower(l)).collect()
}

impl UnpackPlan {
    /// Global number of selected mask elements (`Size`).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Bytes retained by the plan's index structures (targets, serve
    /// indices, lowered copy programs, reply flags); see
    /// [`PackPlan::mem_bytes`].
    fn mem_bytes(&self) -> u64 {
        let targets: u64 = self.targets.iter().map(|v| v.len() as u64 * 4).sum();
        let serve: u64 = self.serve_idx.iter().map(|v| v.len() as u64 * 4).sum();
        let progs: u64 = self
            .serve_prog
            .iter()
            .chain(&self.scatter_prog)
            .map(CopyProgram::mem_bytes)
            .sum();
        targets + serve + progs + 2 * self.reply_a2a.to.len() as u64
    }

    /// Aggregate op breakdown of the plan's lowered serve + scatter
    /// programs; see [`PackPlan::copy_stats`].
    pub fn copy_stats(&self) -> CopyStats {
        let mut s = CopyStats::default();
        for p in self.serve_prog.iter().chain(&self.scatter_prog) {
            s.merge(p.stats());
        }
        s
    }

    /// Execute the plan against fresh field and vector values: copy the
    /// field, serve the precomputed value requests, run the planned reply
    /// exchange, and scatter into the recorded slots. Returns this
    /// processor's local portion of the result array `A`.
    ///
    /// Collective; wrapped in the `unpack.execute` stage span (the reply
    /// round keeps its `unpack.reply` span).
    ///
    /// # Errors
    /// [`UnpackError::FieldLenMismatch`] / [`UnpackError::VectorLenMismatch`]
    /// if the arguments do not match the planned layouts (collective).
    pub fn execute<T: Wire + Default>(
        &self,
        proc: &mut Proc,
        f_local: &[T],
        v_local: &[T],
    ) -> Result<Vec<T>, UnpackError> {
        let mut out = Vec::new();
        self.execute_into(proc, f_local, v_local, &mut out)?;
        Ok(out)
    }

    /// [`UnpackPlan::execute`] writing into a caller-owned output vector.
    /// `out` is cleared and refilled; from the second call with the same
    /// `out` onward the copy → serve → reply → scatter loop performs zero
    /// heap allocations — reply buffers come from the per-processor pool
    /// and the output reuses its capacity. Simulated accounting is
    /// bit-identical to `execute`.
    pub fn execute_into<T: Wire + Default>(
        &self,
        proc: &mut Proc,
        f_local: &[T],
        v_local: &[T],
        out: &mut Vec<T>,
    ) -> Result<(), UnpackError> {
        if f_local.len() != self.local_len {
            return Err(UnpackError::FieldLenMismatch {
                expected: self.local_len,
                got: f_local.len(),
            });
        }
        if v_local.len() != self.v_local_len {
            return Err(UnpackError::VectorLenMismatch {
                expected: self.v_local_len,
                got: v_local.len(),
            });
        }
        // Pooled buffers are unavailable under crash recovery (replayed
        // packets must keep sharing their original payloads); the owned
        // path charges identically. See `PackPlan::execute_into`.
        let recovery = proc.recovery_enabled();
        proc.with_stage("unpack.execute", |proc| {
            // Field copy: local computation for every unselected element
            // (the selected ones are overwritten below).
            proc.wall_span("unpack.fieldcopy", |proc| {
                proc.with_category(Category::LocalComp, |proc| {
                    proc.charge_ops(f_local.len());
                    out.clear();
                    out.extend_from_slice(f_local);
                    proc.wall_bytes(std::mem::size_of_val(f_local) as u64);
                })
            });
            if self.size == 0 {
                return;
            }
            if recovery {
                self.exchange_owned(proc, v_local, out);
                return;
            }
            // Serve: fill each requester's pooled reply buffer along the
            // precomputed copy program (one operation per value — the
            // index arithmetic was paid at plan time). Requesters with
            // nothing to serve get no buffer, matching the reply plan's
            // silent rounds.
            proc.wall_span("unpack.serve", |proc| {
                proc.with_category(Category::LocalComp, |proc| {
                    let mut ops = 0usize;
                    for (requester, idx) in self.serve_idx.iter().enumerate() {
                        if idx.is_empty() {
                            continue;
                        }
                        let (slot, mut buf) =
                            proc.pool_checkout::<FlatMsg<T>>(self.pool_key, requester);
                        if buf.vals.len() != idx.len() {
                            buf.vals.clear();
                            buf.vals.resize(idx.len(), T::default());
                        }
                        walk_gather(
                            proc,
                            &self.serve_prog[requester],
                            idx,
                            v_local,
                            &mut buf.vals,
                        );
                        ops += idx.len();
                        slot.stash(buf);
                    }
                    proc.charge_ops(ops);
                })
            });
            let mut recvs = proc.take_pkt_scratch();
            proc.with_stage("unpack.reply", |proc| {
                proc.with_category(Category::ManyToMany, |proc| {
                    alltoallv_pooled::<FlatMsg<T>>(
                        proc,
                        &self.reply_a2a,
                        self.schedule,
                        self.pool_key,
                        &mut recvs,
                    );
                })
            });
            // Scatter the replies into A at the recorded element slots
            // along the per-owner copy programs, returning each buffer to
            // its sender's slot via the shared pooled-decode loop.
            proc.wall_span("unpack.scatter", |proc| {
                proc.with_category(Category::LocalComp, |proc| {
                    let me = proc.id();
                    let ops = decode_pooled::<FlatMsg<T>, _>(
                        proc,
                        self.pool_key,
                        self.reply_a2a.to[me],
                        &mut recvs,
                        |proc, src, buf| {
                            debug_assert_eq!(
                                buf.vals.len(),
                                self.targets[src].len(),
                                "reply length mismatch"
                            );
                            walk_scatter(
                                proc,
                                &self.scatter_prog[src],
                                &self.targets[src],
                                &buf.vals,
                                out,
                            );
                            buf.vals.len()
                        },
                    );
                    proc.charge_ops(ops);
                })
            });
            proc.restore_pkt_scratch(recvs);
        });
        Ok(())
    }

    /// The serve → reply → scatter loop over owned buffers — the
    /// crash-recovery path of [`UnpackPlan::execute_into`], all scalar
    /// reference walks. Charges, spans, and wire words match the pooled
    /// loop exactly.
    fn exchange_owned<T: Wire + Default>(&self, proc: &mut Proc, v_local: &[T], out: &mut [T]) {
        let sends = proc.with_category(Category::LocalComp, |proc| {
            let mut ops = 0usize;
            let mut sends: Vec<Vec<T>> = vec![Vec::new(); proc.nprocs()];
            for (requester, idx) in self.serve_idx.iter().enumerate() {
                if idx.is_empty() {
                    continue;
                }
                sends[requester] = idx.iter().map(|&i| v_local[i as usize]).collect();
                ops += idx.len();
            }
            proc.charge_ops(ops);
            sends
        });
        let recvs = proc.with_stage("unpack.reply", |proc| {
            proc.with_category(Category::ManyToMany, |proc| {
                let world = proc.world();
                alltoallv_planned(proc, &world, sends, &self.reply_a2a, self.schedule)
            })
        });
        proc.with_category(Category::LocalComp, |proc| {
            let me = proc.id();
            let mut ops = 0usize;
            for (owner, buf) in recvs.iter().enumerate() {
                if owner == me || self.reply_a2a.from[owner] {
                    ops += scatter_reply(&self.targets[owner], buf, out);
                }
            }
            proc.charge_ops(ops);
        });
    }
}

/// Scatter one owner's reply values into the recorded element slots with
/// the scalar reference walk (the crash-recovery path); returns the number
/// of values scattered.
fn scatter_reply<T: Wire>(slots: &[u32], values: &[T], out: &mut [T]) -> usize {
    debug_assert_eq!(values.len(), slots.len(), "reply length mismatch");
    for (&slot, &v) in slots.iter().zip(values) {
        out[slot as usize] = v;
    }
    slots.len()
}

/// The scheme's plan-time composer for PACK (Section 6 storage schemes).
fn pack_composer(opts: &PackOptions) -> Box<dyn Composer> {
    match opts.scheme {
        PackScheme::Simple => crate::pack::simple::composer(),
        PackScheme::CompactStorage => crate::pack::compact_storage::composer(opts.scan_method),
        PackScheme::CompactMessage => crate::pack::compact_message::composer(opts.scan_method),
    }
}

/// The scheme's plan-time composer for UNPACK.
fn unpack_composer(opts: &UnpackOptions) -> Box<dyn Composer> {
    match opts.scheme {
        UnpackScheme::Simple => crate::unpack::simple::composer(),
        UnpackScheme::CompactStorage => crate::unpack::compact_storage::composer(),
    }
}
