//! Plan-time copy-program lowering: the execute hot path's bulk kernels.
//!
//! A plan's routes pin every index a gather or scatter will ever touch, so
//! the per-element indirection of the generic path (`slots[i]` loads,
//! `layout.local_of(rank)` divisions) can be compiled away **once at plan
//! time**. This module lowers an index list into a tiny program of typed
//! copy ops:
//!
//! ```text
//! program  = op*
//! op       = Contig  { pos, at, len }             idx[pos+k] == at + k
//!          | Strided { pos, at, stride, count }   idx[pos+k] == at + k·stride
//!          | Scatter { pos, len }                 defer to the scalar walk
//! ```
//!
//! `pos` addresses the *dense* side (the message buffer, tiled front to
//! back); `at` addresses the *indexed* side (the local array slice the
//! indices point into). A block-distributed section lowers to a handful of
//! `Contig` ops — executed as `copy_from_slice`, i.e. `memcpy` — a cyclic
//! distribution lowers to `Strided` ops with stride `P·W`, and a random
//! mask degenerates to `Scatter` ranges that replay the original scalar
//! loop. Lowering is wall-clock-only work: it charges **zero** simulated
//! operations, so the Section 6.4 accounting is bit-identical to the
//! scalar path (the op *counts* were always per value, never per loop
//! shape).
//!
//! The walkers take a [`Phase`]: ops write to disjoint dense positions, so
//! the executor runs the bulk ops under a `copy.contig` wall span and the
//! scatter ranges under `copy.scatter`, making the shift from indexed to
//! bulk movement visible in flamegraphs and the hotspot report.
//!
//! The `scalar-ref` cargo feature forces every walker back to the scalar
//! reference loop — CI runs the full test sweep under both and the results
//! must be bit-identical. The `simd` feature unrolls the strided walkers
//! four wide (the contiguous ops are already `memcpy`, which the platform
//! vectorizes).

/// Minimum run length worth a dedicated `Contig` op; shorter stride-1 runs
/// fold into the surrounding `Scatter` range. A short `copy_from_slice`
/// costs a call + bounds checks, and each emitted op costs
/// `size_of::<CopyOp>()` plan bytes — below this length the scalar walk is
/// both faster and smaller.
const MIN_CONTIG: usize = 4;

/// Minimum run length worth a `Strided` op, for the same trade-off.
const MIN_STRIDED: usize = 8;

/// One lowered copy instruction; see the module docs for the grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CopyOp {
    /// `idx[pos + k] == at + k` for `k < len`: one `copy_from_slice`.
    Contig {
        /// Start position on the dense side.
        pos: u32,
        /// First index on the indexed side.
        at: u32,
        /// Run length.
        len: u32,
    },
    /// `idx[pos + k] == at + k·stride` for `k < count`: a constant-stride
    /// walk with no index loads. `stride` is signed — a block-cyclic result
    /// layout served against an ascending request list can step backwards.
    Strided {
        /// Start position on the dense side.
        pos: u32,
        /// First index on the indexed side.
        at: u32,
        /// Signed step between consecutive indexed-side elements.
        stride: i32,
        /// Number of elements.
        count: u32,
    },
    /// No exploitable structure: walk `idx[pos .. pos+len]` scalar.
    Scatter {
        /// Start position on the dense side.
        pos: u32,
        /// Range length.
        len: u32,
    },
}

/// Which half of a program a walker executes. Ops touch disjoint dense
/// positions, so the two phases compose to the full copy in either order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// `Contig` and `Strided` ops (the `copy.contig` wall frame).
    Bulk,
    /// `Scatter` ranges (the `copy.scatter` wall frame). Under the
    /// `scalar-ref` feature this phase runs the whole scalar walk.
    Scatter,
}

/// Aggregate shape of one or more lowered programs — exported through the
/// plans into the `exec_hot` perf reports (`copy_ops` breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CopyStats {
    /// Number of `Contig` ops.
    pub contig: u64,
    /// Number of `Strided` ops.
    pub strided: u64,
    /// Number of `Scatter` ops.
    pub scatter: u64,
    /// Elements moved by `Contig`/`Strided` ops.
    pub bulk_elements: u64,
    /// Total elements covered by the program(s).
    pub total_elements: u64,
}

impl CopyStats {
    /// Fold another program's stats into this one.
    pub fn merge(&mut self, other: &CopyStats) {
        self.contig += other.contig;
        self.strided += other.strided;
        self.scatter += other.scatter;
        self.bulk_elements += other.bulk_elements;
        self.total_elements += other.total_elements;
    }

    /// Fraction of elements moved by bulk (`Contig`/`Strided`) ops;
    /// 1.0 for an empty program.
    pub fn bulk_fraction(&self) -> f64 {
        if self.total_elements == 0 {
            1.0
        } else {
            self.bulk_elements as f64 / self.total_elements as f64
        }
    }
}

/// A lowered copy program over one index list. Built once at plan time by
/// [`CopyProgram::lower`]; walked on every execute by the kernels below,
/// which take the original `idx` alongside the program (only `Scatter`
/// ops still read it).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct CopyProgram {
    ops: Vec<CopyOp>,
    stats: CopyStats,
}

impl CopyProgram {
    /// Lower an index list into copy ops: greedy maximal equal-delta runs,
    /// emitted as `Contig` (delta 1) or `Strided` when long enough to pay
    /// for themselves, everything else coalesced into `Scatter` ranges.
    ///
    /// An undersized run advances by a single element rather than being
    /// consumed whole — its tail may seed a full-length run with what
    /// follows (e.g. `[5, 100, 101, 102, 103]` keeps the 4-long contig).
    pub(crate) fn lower(idx: &[u32]) -> CopyProgram {
        let mut prog = CopyProgram {
            ops: Vec::new(),
            stats: CopyStats {
                total_elements: idx.len() as u64,
                ..CopyStats::default()
            },
        };
        let n = idx.len();
        let mut i = 0usize;
        while i < n {
            let (delta, run) = if i + 1 < n {
                let d = i64::from(idx[i + 1]) - i64::from(idx[i]);
                let mut j = i + 1;
                while j + 1 < n && i64::from(idx[j + 1]) - i64::from(idx[j]) == d {
                    j += 1;
                }
                (d, j - i + 1)
            } else {
                (0, 1)
            };
            if delta == 1 && run >= MIN_CONTIG {
                prog.ops.push(CopyOp::Contig {
                    pos: i as u32,
                    at: idx[i],
                    len: run as u32,
                });
                prog.stats.contig += 1;
                prog.stats.bulk_elements += run as u64;
                i += run;
            } else if run >= MIN_STRIDED && i32::try_from(delta).is_ok() {
                prog.ops.push(CopyOp::Strided {
                    pos: i as u32,
                    at: idx[i],
                    stride: delta as i32,
                    count: run as u32,
                });
                prog.stats.strided += 1;
                prog.stats.bulk_elements += run as u64;
                i += run;
            } else {
                // Fold one element into the trailing scatter range; the
                // rest of this run gets its own chance to anchor a
                // full-length run.
                match prog.ops.last_mut() {
                    Some(CopyOp::Scatter { pos, len }) if *pos as usize + *len as usize == i => {
                        *len += 1;
                    }
                    _ => {
                        prog.ops.push(CopyOp::Scatter {
                            pos: i as u32,
                            len: 1,
                        });
                        prog.stats.scatter += 1;
                    }
                }
                i += 1;
            }
        }
        #[cfg(debug_assertions)]
        prog.check(idx);
        prog
    }

    /// Bytes the program retains for the plan's lifetime (charged to
    /// `mem.plan` next to the routes it annotates).
    pub(crate) fn mem_bytes(&self) -> u64 {
        (self.ops.len() * std::mem::size_of::<CopyOp>()) as u64
    }

    /// This program's op/element breakdown.
    pub(crate) fn stats(&self) -> &CopyStats {
        &self.stats
    }

    /// Verify the program against the index list it was lowered from —
    /// every op must reproduce `idx` exactly and the ops must tile
    /// `0..idx.len()` in order. Debug builds run this after lowering.
    #[cfg(debug_assertions)]
    fn check(&self, idx: &[u32]) {
        let mut next = 0usize;
        for op in &self.ops {
            match *op {
                CopyOp::Contig { pos, at, len } => {
                    assert_eq!(pos as usize, next);
                    for k in 0..len as usize {
                        assert_eq!(idx[pos as usize + k] as usize, at as usize + k);
                    }
                    next += len as usize;
                }
                CopyOp::Strided {
                    pos,
                    at,
                    stride,
                    count,
                } => {
                    assert_eq!(pos as usize, next);
                    for k in 0..count as usize {
                        let want = i64::from(at) + k as i64 * i64::from(stride);
                        assert_eq!(i64::from(idx[pos as usize + k]), want);
                    }
                    next += count as usize;
                }
                CopyOp::Scatter { pos, len } => {
                    assert_eq!(pos as usize, next);
                    next += len as usize;
                }
            }
        }
        assert_eq!(next, idx.len(), "program does not tile the index list");
    }
}

/// Gather `dst[k] = src[idx[k]]` for the requested phase — the pooled
/// segment-value / reply fill kernel. `dst` must already have `idx.len()`
/// elements (the pooled buffers keep their shape across executes, so the
/// steady state is a pure positional overwrite).
pub(crate) fn gather_fill<T: Copy>(
    prog: &CopyProgram,
    idx: &[u32],
    src: &[T],
    dst: &mut [T],
    phase: Phase,
) {
    debug_assert_eq!(dst.len(), idx.len());
    if cfg!(feature = "scalar-ref") {
        if phase == Phase::Scatter {
            for (d, &i) in dst.iter_mut().zip(idx) {
                *d = src[i as usize];
            }
        }
        return;
    }
    for op in &prog.ops {
        match *op {
            CopyOp::Contig { pos, at, len } if phase == Phase::Bulk => {
                dst[pos as usize..pos as usize + len as usize]
                    .copy_from_slice(&src[at as usize..at as usize + len as usize]);
            }
            CopyOp::Strided {
                pos,
                at,
                stride,
                count,
            } if phase == Phase::Bulk => {
                strided_gather(
                    src,
                    at,
                    stride,
                    &mut dst[pos as usize..(pos + count) as usize],
                );
            }
            CopyOp::Scatter { pos, len } if phase == Phase::Scatter => {
                let ids = &idx[pos as usize..pos as usize + len as usize];
                for (d, &i) in dst[pos as usize..pos as usize + len as usize]
                    .iter_mut()
                    .zip(ids)
                {
                    *d = src[i as usize];
                }
            }
            _ => {}
        }
    }
}

/// Gather `dst[k].1 = src[idx[k]]` for the requested phase, ranks
/// untouched — the steady-state pair-message refill (the rank skeleton
/// survives in the pooled buffer, so only values move).
pub(crate) fn gather_pairs_refill<T: Copy, R>(
    prog: &CopyProgram,
    idx: &[u32],
    src: &[T],
    dst: &mut [(R, T)],
    phase: Phase,
) {
    debug_assert_eq!(dst.len(), idx.len());
    if cfg!(feature = "scalar-ref") {
        if phase == Phase::Scatter {
            for (d, &i) in dst.iter_mut().zip(idx) {
                d.1 = src[i as usize];
            }
        }
        return;
    }
    for op in &prog.ops {
        match *op {
            CopyOp::Contig { pos, at, len } if phase == Phase::Bulk => {
                let vals = &src[at as usize..at as usize + len as usize];
                for (d, &v) in dst[pos as usize..pos as usize + len as usize]
                    .iter_mut()
                    .zip(vals)
                {
                    d.1 = v;
                }
            }
            CopyOp::Strided {
                pos,
                at,
                stride,
                count,
            } if phase == Phase::Bulk => {
                let mut a = i64::from(at);
                for d in &mut dst[pos as usize..pos as usize + count as usize] {
                    d.1 = src[a as usize];
                    a += i64::from(stride);
                }
            }
            CopyOp::Scatter { pos, len } if phase == Phase::Scatter => {
                let ids = &idx[pos as usize..pos as usize + len as usize];
                for (d, &i) in dst[pos as usize..pos as usize + len as usize]
                    .iter_mut()
                    .zip(ids)
                {
                    d.1 = src[i as usize];
                }
            }
            _ => {}
        }
    }
}

/// Scatter dense `vals` through the index list for the requested phase:
/// `out[idx[k]] = vals[k]` — the UNPACK reply-scatter kernel. `Contig` ops
/// are one `copy_from_slice` into `out`.
pub(crate) fn scatter_apply<T: Copy>(
    prog: &CopyProgram,
    idx: &[u32],
    vals: &[T],
    out: &mut [T],
    phase: Phase,
) {
    debug_assert_eq!(vals.len(), idx.len());
    if cfg!(feature = "scalar-ref") {
        if phase == Phase::Scatter {
            for (&i, &v) in idx.iter().zip(vals) {
                out[i as usize] = v;
            }
        }
        return;
    }
    for op in &prog.ops {
        match *op {
            CopyOp::Contig { pos, at, len } if phase == Phase::Bulk => {
                out[at as usize..at as usize + len as usize]
                    .copy_from_slice(&vals[pos as usize..pos as usize + len as usize]);
            }
            CopyOp::Strided {
                pos,
                at,
                stride,
                count,
            } if phase == Phase::Bulk => {
                let mut a = i64::from(at);
                for &v in &vals[pos as usize..pos as usize + count as usize] {
                    out[a as usize] = v;
                    a += i64::from(stride);
                }
            }
            CopyOp::Scatter { pos, len } if phase == Phase::Scatter => {
                let ids = &idx[pos as usize..pos as usize + len as usize];
                for (&i, &v) in ids
                    .iter()
                    .zip(&vals[pos as usize..pos as usize + len as usize])
                {
                    out[i as usize] = v;
                }
            }
            _ => {}
        }
    }
}

/// The strided gather inner loop. With the `simd` feature the body is
/// unrolled four wide — four independent loads per iteration give the
/// out-of-order core four address streams instead of a serial chain.
#[cfg(not(feature = "simd"))]
fn strided_gather<T: Copy>(src: &[T], at: u32, stride: i32, dst: &mut [T]) {
    let mut a = i64::from(at);
    for d in dst {
        *d = src[a as usize];
        a += i64::from(stride);
    }
}

/// Four-wide unrolled strided gather (`simd` feature).
#[cfg(feature = "simd")]
fn strided_gather<T: Copy>(src: &[T], at: u32, stride: i32, dst: &mut [T]) {
    let (at, stride) = (i64::from(at), i64::from(stride));
    let mut chunks = dst.chunks_exact_mut(4);
    let mut k = 0i64;
    for quad in &mut chunks {
        let base = at + k * stride;
        quad[0] = src[base as usize];
        quad[1] = src[(base + stride) as usize];
        quad[2] = src[(base + 2 * stride) as usize];
        quad[3] = src[(base + 3 * stride) as usize];
        k += 4;
    }
    for d in chunks.into_remainder() {
        *d = src[(at + k * stride) as usize];
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_gather(idx: &[u32], src: &[u32]) -> Vec<u32> {
        idx.iter().map(|&i| src[i as usize]).collect()
    }

    fn roundtrip(idx: &[u32]) {
        let prog = CopyProgram::lower(idx);
        let src: Vec<u32> = (0..4096).map(|x| x * 3 + 7).collect();
        let mut out = vec![0u32; idx.len()];
        gather_fill(&prog, idx, &src, &mut out, Phase::Bulk);
        gather_fill(&prog, idx, &src, &mut out, Phase::Scatter);
        assert_eq!(out, scalar_gather(idx, &src));

        let mut pairs: Vec<(u32, u32)> = idx.iter().map(|&i| (i, 0)).collect();
        gather_pairs_refill(&prog, idx, &src, &mut pairs, Phase::Bulk);
        gather_pairs_refill(&prog, idx, &src, &mut pairs, Phase::Scatter);
        assert!(pairs.iter().zip(idx).all(|(p, &i)| p.0 == i));
        assert_eq!(
            pairs.iter().map(|p| p.1).collect::<Vec<_>>(),
            scalar_gather(idx, &src)
        );

        // Scatter back: out[idx[k]] = vals[k] must equal the scalar loop.
        let vals: Vec<u32> = (0..idx.len() as u32).map(|x| x + 100).collect();
        let mut a = vec![0u32; 4096];
        let mut b = vec![0u32; 4096];
        scatter_apply(&prog, idx, &vals, &mut a, Phase::Bulk);
        scatter_apply(&prog, idx, &vals, &mut a, Phase::Scatter);
        for (&i, &v) in idx.iter().zip(&vals) {
            b[i as usize] = v;
        }
        assert_eq!(a, b);
    }

    #[test]
    fn dense_run_lowers_to_one_contig() {
        let idx: Vec<u32> = (100..400).collect();
        let prog = CopyProgram::lower(&idx);
        assert_eq!(prog.ops.len(), 1);
        assert_eq!(prog.stats().contig, 1);
        assert_eq!(prog.stats().bulk_fraction(), 1.0);
        roundtrip(&idx);
    }

    #[test]
    fn cyclic_run_lowers_to_one_stride() {
        let idx: Vec<u32> = (0..128).map(|k| 5 + 16 * k).collect();
        let prog = CopyProgram::lower(&idx);
        assert_eq!(prog.stats().strided, 1);
        assert_eq!(prog.stats().bulk_fraction(), 1.0);
        roundtrip(&idx);
    }

    #[test]
    fn short_runs_coalesce_into_scatter() {
        // Alternating pairs: every equal-delta run is length 2 — too short
        // for either bulk op.
        let idx: Vec<u32> = (0..64).map(|k| (k % 2) * 1000 + k).collect();
        let prog = CopyProgram::lower(&idx);
        assert_eq!(prog.stats().contig + prog.stats().strided, 0);
        assert_eq!(prog.stats().scatter, 1, "scatter ranges coalesce");
        assert_eq!(prog.stats().bulk_fraction(), 0.0);
        roundtrip(&idx);
    }

    #[test]
    fn undersized_run_does_not_eat_the_next_contig() {
        // [5, 100..104): the (5,100) delta-95 run is undersized; greedily
        // consuming it whole would orphan 100 from the contig that follows.
        let idx = [5u32, 100, 101, 102, 103];
        let prog = CopyProgram::lower(&idx);
        assert_eq!(prog.stats().contig, 1);
        assert_eq!(prog.stats().bulk_elements, 4);
        roundtrip(&idx);
    }

    #[test]
    fn negative_stride_is_lowered() {
        let idx: Vec<u32> = (0..32).map(|k| 1000 - 8 * k).collect();
        let prog = CopyProgram::lower(&idx);
        assert_eq!(prog.stats().strided, 1);
        roundtrip(&idx);
    }

    #[test]
    fn empty_and_singleton_lists() {
        roundtrip(&[]);
        roundtrip(&[17]);
        let prog = CopyProgram::lower(&[]);
        assert_eq!(prog.mem_bytes(), 0);
        assert_eq!(prog.stats().bulk_fraction(), 1.0);
    }

    #[test]
    fn mem_bytes_counts_ops() {
        let idx: Vec<u32> = (0..100).collect();
        let prog = CopyProgram::lower(&idx);
        assert_eq!(
            prog.mem_bytes(),
            (prog.ops.len() * std::mem::size_of::<CopyOp>()) as u64
        );
        assert!(prog.mem_bytes() > 0);
    }

    proptest::proptest! {
        /// Lowered gather and scatter are bit-identical to the scalar
        /// reference for arbitrary index lists (the debug `check` inside
        /// `lower` additionally proves the ops tile the list exactly).
        #[test]
        fn lowering_matches_scalar(idx in proptest::collection::vec(0u32..4096, 0..300)) {
            roundtrip(&idx);
        }
    }
}
