//! Pooled message wrappers whose *shape* survives the pool's `reset`.
//!
//! The stock pooled buffer, `Vec<T>`, clears on [`Reusable::reset`], so
//! every execute rebuilds its messages element by element. But a plan's
//! routes are fixed: the message a plan sends to a given destination has
//! the same ranks and the same length on every execute — only the values
//! change. These wrappers keep the full buffer across `put_back`, turning
//! the steady-state refill into a pure positional overwrite driven by the
//! plan's lowered copy program (no clears, no pushes, no rank writes).
//!
//! Wire accounting is unchanged: each wrapper reports exactly the words of
//! the `Vec` it replaces, so pool and payload memory charges — and every
//! simulated metric derived from them — are bit-identical to the cleared
//! buffers they supersede.

use hpf_machine::{Payload, Reusable, Wire, Words};

/// A pair-scheme message: `(global rank, value)` entries, `1 + T::WORDS`
/// words each (Section 6.4.1's `2·E_i` for 1-word elements). Replaces the
/// bare `Vec<(u32, T)>` in the pooled PACK exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PairMsg<T> {
    /// The `(rank, value)` entries. Ranks form the plan-constant skeleton;
    /// the steady-state refill overwrites only the values.
    pub pairs: Vec<(u32, T)>,
}

impl<T> Default for PairMsg<T> {
    fn default() -> Self {
        PairMsg { pairs: Vec::new() }
    }
}

impl<T: Wire> Payload for PairMsg<T> {
    fn wire_words(&self) -> Words {
        self.pairs.len() * <(u32, T)>::WORDS
    }

    fn clone_payload(&self) -> Box<dyn std::any::Any + Send> {
        Box::new(self.clone())
    }
}

impl<T: Wire> Reusable for PairMsg<T> {
    /// Keep the rank skeleton and the value slots: the next refill for the
    /// same destination overwrites values in place.
    fn reset(&mut self) {}
}

/// A flat value-only message for the UNPACK reply round, replacing the
/// bare `Vec<T>`: same `len · T::WORDS` wire words, but the buffer keeps
/// its length across `put_back` so the serve kernel refills it
/// positionally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct FlatMsg<T> {
    /// The served values, one per requested rank, in request order.
    pub vals: Vec<T>,
}

impl<T> Default for FlatMsg<T> {
    fn default() -> Self {
        FlatMsg { vals: Vec::new() }
    }
}

impl<T: Wire> Payload for FlatMsg<T> {
    fn wire_words(&self) -> Words {
        self.vals.len() * T::WORDS
    }

    fn clone_payload(&self) -> Box<dyn std::any::Any + Send> {
        Box::new(self.clone())
    }
}

impl<T: Wire> Reusable for FlatMsg<T> {
    /// Keep the shaped value array for the next positional refill.
    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_words_match_the_vectors_they_replace() {
        let pm = PairMsg::<i64> {
            pairs: vec![(0, 1), (5, 2), (9, 3)],
        };
        assert_eq!(pm.wire_words(), vec![(0u32, 1i64); 3].wire_words());
        let fm = FlatMsg::<i32> {
            vals: vec![7, 8, 9, 10],
        };
        assert_eq!(fm.wire_words(), vec![0i32; 4].wire_words());
    }

    #[test]
    fn reset_preserves_shape_and_contents() {
        let mut pm = PairMsg::<i32> {
            pairs: vec![(3, 30)],
        };
        pm.reset();
        assert_eq!(pm.pairs, vec![(3, 30)]);
        let mut fm = FlatMsg::<i32> { vals: vec![1, 2] };
        fm.reset();
        assert_eq!(fm.vals, vec![1, 2]);
    }
}
