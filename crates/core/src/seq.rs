//! Sequential Fortran 90 `PACK`/`UNPACK` semantics — the correctness oracle
//! every parallel scheme is tested against.
//!
//! Fortran array element order is column-major; with the paper's convention
//! that dimension 0 is the fastest-varying, our row-major-with-dim-0-first
//! storage enumerates elements in exactly the same order, so the rank of a
//! selected element `A(i_{d-1}, …, i_0)` is the count of true mask entries
//! at smaller linear indices — matching the paper's rank formula
//! `Σ i_i · Π_{k<i} N_k`.

use hpf_distarray::GlobalArray;

/// `PACK(A, M [, VECTOR])`: gather the elements of `a` selected by `m` in
/// array element order. If `vector` is given, the result has `vector.len()`
/// elements, with unselected trailing positions copied from `vector`
/// (Fortran's padding semantics).
///
/// # Panics
/// Panics if the mask shape differs from the array shape, or if `vector`
/// is shorter than the number of selected elements.
pub fn pack_seq<T: Copy>(
    a: &GlobalArray<T>,
    m: &GlobalArray<bool>,
    vector: Option<&[T]>,
) -> Vec<T> {
    assert_eq!(
        a.shape(),
        m.shape(),
        "mask must be conformable with the array"
    );
    let mut out: Vec<T> = a
        .data()
        .iter()
        .zip(m.data())
        .filter_map(|(&v, &keep)| keep.then_some(v))
        .collect();
    if let Some(pad) = vector {
        assert!(
            pad.len() >= out.len(),
            "VECTOR argument has {} elements but {} were selected",
            pad.len(),
            out.len()
        );
        out.extend_from_slice(&pad[out.len()..]);
    }
    out
}

/// The number of selected elements (`Size` in the paper).
pub fn count_seq(m: &GlobalArray<bool>) -> usize {
    m.data().iter().filter(|&&b| b).count()
}

/// The rank of each selected element in array element order: `ranks[lin]` is
/// `Some(r)` iff `m` is true at linear index `lin` and exactly `r` true
/// entries precede it.
pub fn ranks_seq(m: &GlobalArray<bool>) -> Vec<Option<usize>> {
    let mut r = 0usize;
    m.data()
        .iter()
        .map(|&b| {
            if b {
                let mine = r;
                r += 1;
                Some(mine)
            } else {
                None
            }
        })
        .collect()
}

/// `UNPACK(V, M, FIELD)`: scatter `v` into the positions of `m` that are
/// true (in array element order), taking unselected positions from `field`.
///
/// # Panics
/// Panics if shapes are not conformable or `v` has fewer elements than `m`
/// has true entries.
pub fn unpack_seq<T: Copy>(
    v: &[T],
    m: &GlobalArray<bool>,
    field: &GlobalArray<T>,
) -> GlobalArray<T> {
    assert_eq!(
        field.shape(),
        m.shape(),
        "field must be conformable with the mask"
    );
    let needed = count_seq(m);
    assert!(
        v.len() >= needed,
        "input vector has {} elements but the mask selects {}",
        v.len(),
        needed
    );
    let mut next = 0usize;
    let data: Vec<T> = m
        .data()
        .iter()
        .zip(field.data())
        .map(|(&keep, &f)| {
            if keep {
                let x = v[next];
                next += 1;
                x
            } else {
                f
            }
        })
        .collect();
    GlobalArray::from_vec(m.shape(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(shape: &[usize], data: Vec<i32>) -> GlobalArray<i32> {
        GlobalArray::from_vec(shape, data)
    }

    fn mask(shape: &[usize], data: Vec<bool>) -> GlobalArray<bool> {
        GlobalArray::from_vec(shape, data)
    }

    #[test]
    fn pack_selects_in_element_order() {
        let a = arr(&[6], vec![10, 20, 30, 40, 50, 60]);
        let m = mask(&[6], vec![true, false, true, true, false, true]);
        assert_eq!(pack_seq(&a, &m, None), vec![10, 30, 40, 60]);
    }

    #[test]
    fn pack_2d_uses_dim0_fastest_order() {
        // shape (N1=2, N0=3): element order (0,0),(1,0),(2,0),(0,1),(1,1),(2,1)
        // in (i0, i1) terms.
        let a = arr(&[3, 2], vec![1, 2, 3, 4, 5, 6]);
        let m = mask(&[3, 2], vec![false, true, false, true, false, true]);
        assert_eq!(pack_seq(&a, &m, None), vec![2, 4, 6]);
    }

    #[test]
    fn pack_with_vector_pads_tail() {
        let a = arr(&[4], vec![1, 2, 3, 4]);
        let m = mask(&[4], vec![true, false, false, true]);
        assert_eq!(pack_seq(&a, &m, Some(&[0, 0, 98, 99])), vec![1, 4, 98, 99]);
    }

    #[test]
    #[should_panic(expected = "VECTOR argument")]
    fn pack_vector_too_short_panics() {
        let a = arr(&[3], vec![1, 2, 3]);
        let m = mask(&[3], vec![true, true, true]);
        pack_seq(&a, &m, Some(&[0, 0]));
    }

    #[test]
    fn unpack_scatters_and_fields() {
        let m = mask(&[5], vec![false, true, false, true, true]);
        let f = arr(&[5], vec![-1, -2, -3, -4, -5]);
        let got = unpack_seq(&[7, 8, 9, 1000], &m, &f);
        assert_eq!(got.data(), &[-1, 7, -3, 8, 9]);
    }

    #[test]
    fn unpack_inverts_pack_on_selected_positions() {
        let a = arr(&[3, 3], (0..9).collect());
        let m = mask(
            &[3, 3],
            vec![true, false, true, false, true, false, true, false, true],
        );
        let v = pack_seq(&a, &m, None);
        let f = arr(&[3, 3], vec![0; 9]);
        let back = unpack_seq(&v, &m, &f);
        for (i, (&b, &keep)) in back.data().iter().zip(m.data()).enumerate() {
            if keep {
                assert_eq!(b, a.data()[i]);
            } else {
                assert_eq!(b, 0);
            }
        }
    }

    #[test]
    fn ranks_enumerate_true_entries() {
        let m = mask(&[5], vec![true, false, true, true, false]);
        assert_eq!(ranks_seq(&m), vec![Some(0), None, Some(1), Some(2), None]);
        assert_eq!(count_seq(&m), 3);
    }

    #[test]
    #[should_panic(expected = "selects")]
    fn unpack_undersized_vector_panics() {
        let m = mask(&[2], vec![true, true]);
        let f = arr(&[2], vec![0, 0]);
        unpack_seq(&[1], &m, &f);
    }
}
