//! Mask-array generation matching Section 7's experimental setup.
//!
//! The paper drives PACK/UNPACK with five random masks (density 10%, 30%,
//! 50%, 70%, 90%) and one structured mask: in one dimension, true iff the
//! global index is below `N/2`; in two dimensions, true iff the dimension-1
//! index exceeds the dimension-0 index (labelled "LT" in Table I).
//!
//! Random masks are generated *pointwise* from a seeded hash of the global
//! index, so every processor can materialise its local portion without
//! communication and all schemes see bit-identical masks.

use hpf_distarray::{ArrayDesc, GlobalArray};

/// A reproducible mask pattern over a given array shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaskPattern {
    /// Every element selected.
    Full,
    /// No element selected.
    Empty,
    /// Bernoulli(density) per element, from `seed`. Density in `[0, 1]`.
    Random {
        /// Selection probability per element.
        density: f64,
        /// RNG seed; different seeds give independent masks.
        seed: u64,
    },
    /// 1-D: true iff the global index is `< N/2` (the paper's structured
    /// 1-D mask).
    FirstHalf,
    /// 2-D: true iff the global index on dimension 1 is larger than the
    /// global index on dimension 0 (the paper's structured 2-D mask, "LT").
    LowerTriangular,
}

/// SplitMix64 — a tiny, high-quality 64-bit mixer; deterministic pointwise
/// mask generation (and plan-cache key hashing) needs nothing more.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl MaskPattern {
    /// Evaluate the mask at a global multi-index (`gidx[0]` is dimension 0).
    ///
    /// # Panics
    /// Panics if `FirstHalf` is used on a non-1-D shape or
    /// `LowerTriangular` on a non-2-D shape.
    pub fn value(&self, gidx: &[usize], shape: &[usize]) -> bool {
        match *self {
            MaskPattern::Full => true,
            MaskPattern::Empty => false,
            MaskPattern::Random { density, seed } => {
                let mut lin = 0u64;
                let mut stride = 1u64;
                for (&i, &n) in gidx.iter().zip(shape) {
                    lin += i as u64 * stride;
                    stride *= n as u64;
                }
                let h = splitmix64(seed ^ splitmix64(lin.wrapping_add(1)));
                // Top 53 bits -> uniform in [0, 1).
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                u < density
            }
            MaskPattern::FirstHalf => {
                assert_eq!(gidx.len(), 1, "FirstHalf is a 1-D pattern");
                gidx[0] < shape[0] / 2
            }
            MaskPattern::LowerTriangular => {
                assert_eq!(gidx.len(), 2, "LowerTriangular is a 2-D pattern");
                gidx[1] > gidx[0]
            }
        }
    }

    /// Materialise the full mask as a dense [`GlobalArray`] (harness side).
    pub fn global(&self, shape: &[usize]) -> GlobalArray<bool> {
        GlobalArray::from_fn(shape, |idx| self.value(idx, shape))
    }

    /// Materialise processor `proc_id`'s local portion under `desc`.
    pub fn local(&self, desc: &ArrayDesc, proc_id: usize) -> Vec<bool> {
        let shape = desc.shape();
        hpf_distarray::local_from_fn(desc, proc_id, |gidx| self.value(gidx, &shape))
    }

    /// A stable 64-bit fingerprint of the pattern, suitable as the
    /// `mask_fp` key of a [`crate::PlanCache`]: equal patterns fingerprint
    /// equally on every processor (the value depends only on the pattern,
    /// never on a local slice), so cache hits and misses stay collective.
    pub fn fingerprint(&self) -> u64 {
        let (tag, a, b) = match *self {
            MaskPattern::Full => (1u64, 0, 0),
            MaskPattern::Empty => (2, 0, 0),
            MaskPattern::Random { density, seed } => (3, density.to_bits(), seed),
            MaskPattern::FirstHalf => (4, 0, 0),
            MaskPattern::LowerTriangular => (5, 0, 0),
        };
        let mut h = splitmix64(0x4d41_534b ^ tag); // "MASK"
        h = splitmix64(h ^ splitmix64(a));
        splitmix64(h ^ splitmix64(b))
    }

    /// The paper's five random densities.
    pub const DENSITIES: [f64; 5] = [0.10, 0.30, 0.50, 0.70, 0.90];

    /// Short label for tables ("10%", …, "LT").
    pub fn label(&self) -> String {
        match *self {
            MaskPattern::Full => "100%".into(),
            MaskPattern::Empty => "0%".into(),
            MaskPattern::Random { density, .. } => format!("{:.0}%", density * 100.0),
            MaskPattern::FirstHalf => "LT".into(),
            MaskPattern::LowerTriangular => "LT".into(),
        }
    }
}

/// Fingerprint an explicit boolean mask slice. Only a valid
/// [`crate::PlanCache`] key when every processor hashes the **same**
/// global sequence (e.g. a replicated mask) — fingerprinting genuinely
/// local slices produces different keys per processor and would deadlock
/// the collective planner; prefer [`MaskPattern::fingerprint`] or an
/// application step counter for distributed masks.
pub fn local_fingerprint(mask: &[bool]) -> u64 {
    let mut h = splitmix64(0x4c4d_4153_4b21 ^ mask.len() as u64);
    let mut word = 0u64;
    for (i, &b) in mask.iter().enumerate() {
        if b {
            word |= 1 << (i % 64);
        }
        if i % 64 == 63 {
            h = splitmix64(h ^ word);
            word = 0;
        }
    }
    splitmix64(h ^ word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_distarray::Dist;
    use hpf_machine::ProcGrid;

    #[test]
    fn random_density_is_approximately_honoured() {
        let shape = [256, 64];
        for density in MaskPattern::DENSITIES {
            let m = MaskPattern::Random { density, seed: 42 }.global(&shape);
            let trues = m.data().iter().filter(|&&b| b).count();
            let got = trues as f64 / m.len() as f64;
            assert!(
                (got - density).abs() < 0.02,
                "density {density}: got {got} over {} elements",
                m.len()
            );
        }
    }

    #[test]
    fn random_is_deterministic_and_seed_sensitive() {
        let p = MaskPattern::Random {
            density: 0.5,
            seed: 1,
        };
        let a = p.global(&[128]);
        let b = p.global(&[128]);
        assert_eq!(a, b);
        let c = MaskPattern::Random {
            density: 0.5,
            seed: 2,
        }
        .global(&[128]);
        assert_ne!(a, c);
    }

    #[test]
    fn local_matches_global_partition() {
        let grid = ProcGrid::new(&[2, 2]);
        let desc = ArrayDesc::new(&[8, 8], &grid, &[Dist::BlockCyclic(2), Dist::Cyclic]).unwrap();
        let p = MaskPattern::Random {
            density: 0.3,
            seed: 7,
        };
        let global = p.global(&[8, 8]);
        let parts = global.partition(&desc);
        for (proc, want) in parts.iter().enumerate() {
            assert_eq!(&p.local(&desc, proc), want, "proc {proc}");
        }
    }

    #[test]
    fn first_half_selects_exactly_half() {
        let m = MaskPattern::FirstHalf.global(&[64]);
        assert_eq!(m.data().iter().filter(|&&b| b).count(), 32);
        assert!(m.get(&[31]));
        assert!(!m.get(&[32]));
    }

    #[test]
    fn lower_triangular_is_strict() {
        let m = MaskPattern::LowerTriangular.global(&[4, 4]);
        // true iff i1 > i0: strictly below the diagonal in (i1, i0) terms.
        assert_eq!(m.data().iter().filter(|&&b| b).count(), 6);
        assert!(m.get(&[0, 1]));
        assert!(!m.get(&[1, 1]));
        assert!(!m.get(&[2, 1]));
    }

    #[test]
    fn full_and_empty() {
        assert!(MaskPattern::Full.global(&[8]).data().iter().all(|&b| b));
        assert!(MaskPattern::Empty.global(&[8]).data().iter().all(|&b| !b));
    }

    #[test]
    fn pattern_fingerprints_do_not_collide() {
        let patterns = [
            MaskPattern::Full,
            MaskPattern::Empty,
            MaskPattern::FirstHalf,
            MaskPattern::LowerTriangular,
            MaskPattern::Random {
                density: 0.5,
                seed: 1,
            },
            MaskPattern::Random {
                density: 0.5,
                seed: 2,
            },
            MaskPattern::Random {
                density: 0.3,
                seed: 1,
            },
        ];
        let fps: std::collections::HashSet<u64> =
            patterns.iter().map(|p| p.fingerprint()).collect();
        assert_eq!(fps.len(), patterns.len(), "fingerprint collision");
        // Stable across calls (the whole point of a cache key).
        assert_eq!(
            MaskPattern::FirstHalf.fingerprint(),
            MaskPattern::FirstHalf.fingerprint()
        );
    }

    #[test]
    fn local_fingerprints_separate_length_and_content() {
        let a = local_fingerprint(&[true, false, true]);
        let b = local_fingerprint(&[true, false, false]);
        let c = local_fingerprint(&[true, false, true, false]);
        assert_ne!(a, b, "content must matter");
        assert_ne!(a, c, "length must matter");
        assert_eq!(a, local_fingerprint(&[true, false, true]));
        // Crosses the 64-bit word boundary without losing bits.
        let mut long = vec![false; 130];
        long[100] = true;
        let mut long2 = long.clone();
        long2[129] = true;
        assert_ne!(local_fingerprint(&long), local_fingerprint(&long2));
    }
}
