//! # hpf-core — parallel PACK/UNPACK with distributed ranking
//!
//! Reproduction of *Bae & Ranka, "PACK/UNPACK on Coarse-Grained Distributed
//! Memory Parallel Machines"* (IPPS 1996). `PACK` gathers the elements of a
//! distributed rank-`d` array selected by a logical mask into a distributed
//! vector; `UNPACK` scatters a distributed vector back under a mask, with a
//! field array supplying unselected positions. Both work in two stages:
//!
//! 1. a **ranking** stage ([`ranking`]) that computes every selected
//!    element's position in the result *without moving array elements*,
//!    via per-dimension vector prefix-reduction-sums, and
//! 2. a **redistribution** stage of many-to-many personalized
//!    communication.
//!
//! Three storage/message schemes trade local memory traffic against message
//! volume ([`PackScheme`]: SSS / CSS / CMS; [`UnpackScheme`]: SSS / CSS),
//! and cyclically distributed inputs can be redistributed to block first
//! ([`pack_redistributed`], Red.1 / Red.2) to minimise ranking overhead.
//!
//! Both operations are split into a value-independent **planner**
//! ([`plan_pack`] / [`plan_unpack`]) and a value-only **executor**
//! ([`PackPlan::execute`] / [`UnpackPlan::execute`]); [`pack`] and
//! [`unpack`] are thin plan-then-execute wrappers, and a [`PlanCache`]
//! amortises planning across repeated calls under an unchanged mask — see
//! the [`plan`] module.
//!
//! Everything runs on the simulated coarse-grained machine of
//! [`hpf_machine`] and charges its two-level cost model, which is how the
//! benches regenerate the paper's tables and figures.
//!
//! ## Example
//!
//! ```
//! use hpf_machine::{Machine, CostModel, ProcGrid};
//! use hpf_distarray::{ArrayDesc, Dist, GlobalArray, local_from_fn};
//! use hpf_core::{pack, MaskPattern, PackOptions, PackScheme};
//!
//! let grid = ProcGrid::line(4);
//! let desc = ArrayDesc::new(&[16], &grid, &[Dist::BlockCyclic(2)]).unwrap();
//! let mask = MaskPattern::FirstHalf;
//! let machine = Machine::new(grid, CostModel::cm5());
//! let out = machine.run(|proc| {
//!     let a = local_from_fn(&desc, proc.id(), |g| g[0] as i32 * 10);
//!     let m = mask.local(&desc, proc.id());
//!     pack(proc, &desc, &a, &m, &PackOptions::new(PackScheme::CompactMessage)).unwrap()
//! });
//! // The first half of the array, gathered in order: 0, 10, 20, ... 70.
//! assert_eq!(out.results[0].size, 8);
//! assert_eq!(out.results[0].local_v, vec![0, 10]);
//! ```

#![warn(missing_docs)]

mod error;
pub mod mask;
mod pack;
pub mod plan;
pub mod ranking;
mod schemes;
pub mod seq;
mod unpack;

pub use error::{Error, PackError, UnpackError};
pub use mask::MaskPattern;
pub use pack::{
    pack, pack_redistributed, pack_with_vector, predict, CmsMessage, MaskStats, PackOutput,
    RedistScheme,
};
pub use plan::{plan_pack, plan_unpack, CopyStats, PackPlan, PlanCache, UnpackPlan};
pub use schemes::{PackOptions, PackScheme, ScanMethod, UnpackOptions, UnpackScheme};
pub use unpack::{unpack, unpack_redistributed, RankRequest};
