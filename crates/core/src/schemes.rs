//! Scheme selection and options for the parallel PACK/UNPACK entry points.

use hpf_machine::collectives::{A2aSchedule, PrsAlgorithm};

/// Storage / message-composition scheme for PACK (Section 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PackScheme {
    /// **SSS** — simple storage scheme: record per-element information
    /// (index, tile, initial rank, destination) during the initial scan;
    /// messages are `(global rank, value)` pairs. One local scan, heavy
    /// per-element memory traffic (`∝ L + C + 6E_i + 2E_a`).
    Simple,
    /// **CSS** — compact storage scheme: store nothing per element; keep a
    /// counter array `PS_c` (copy of `PS_0`) and rebuild everything from
    /// `PS_c`/`PS_f` in a second scan. Messages still `(rank, value)` pairs
    /// (`∝ 2L + 2C + 3E_i + 2E_a`).
    CompactStorage,
    /// **CMS** — compact message scheme: CSS storage plus run-compressed
    /// messages `(base rank, count, values…)` exploiting that ranks within
    /// a slice are consecutive (`∝ 2L + 2C + 2E_i + 2Gs_i + E_a + 2Gr_i`).
    CompactMessage,
}

impl PackScheme {
    /// All schemes, in the paper's presentation order.
    pub const ALL: [PackScheme; 3] = [
        PackScheme::Simple,
        PackScheme::CompactStorage,
        PackScheme::CompactMessage,
    ];

    /// Table label ("SSS" / "CSS" / "CMS").
    pub fn label(self) -> &'static str {
        match self {
            PackScheme::Simple => "SSS",
            PackScheme::CompactStorage => "CSS",
            PackScheme::CompactMessage => "CMS",
        }
    }
}

/// Storage scheme for UNPACK (the paper evaluates two; a run-compressed
/// request format plays the compact-message role on the request side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnpackScheme {
    /// **SSS** — per-element rank requests.
    Simple,
    /// **CSS** — counter-array storage with run-compressed
    /// `(base rank, count)` requests.
    CompactStorage,
}

impl UnpackScheme {
    /// Both schemes, in presentation order.
    pub const ALL: [UnpackScheme; 2] = [UnpackScheme::Simple, UnpackScheme::CompactStorage];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            UnpackScheme::Simple => "SSS",
            UnpackScheme::CompactStorage => "CSS",
        }
    }
}

/// The two slice-scanning methods of Section 6.1's message-composition scan
/// (the compact schemes' second local scan).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScanMethod {
    /// Method 1 (the paper's choice): scan a slice only until all of its
    /// packed elements have been collected.
    #[default]
    UntilCollected,
    /// Method 2: scan the whole slice unconditionally.
    WholeSlice,
}

/// Options for [`crate::pack`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackOptions {
    /// Storage / message scheme.
    pub scheme: PackScheme,
    /// Prefix-reduction-sum algorithm for the ranking stage.
    pub prs: PrsAlgorithm,
    /// Many-to-many schedule for the redistribution stage.
    pub schedule: A2aSchedule,
    /// Second-scan method for the compact schemes.
    pub scan_method: ScanMethod,
    /// Block size `W'` of the result vector. `None` = block distribution
    /// (`⌈Size/P⌉`), the paper's fixed experimental choice.
    pub result_block_size: Option<usize>,
}

impl PackOptions {
    /// Default options with the given scheme (Auto PRS, linear permutation,
    /// method-1 scan, block-distributed result).
    pub fn new(scheme: PackScheme) -> Self {
        PackOptions {
            scheme,
            prs: PrsAlgorithm::Auto,
            schedule: A2aSchedule::LinearPermutation,
            scan_method: ScanMethod::UntilCollected,
            result_block_size: None,
        }
    }
}

impl Default for PackOptions {
    fn default() -> Self {
        Self::new(PackScheme::CompactMessage)
    }
}

/// Options for [`crate::unpack`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnpackOptions {
    /// Storage scheme.
    pub scheme: UnpackScheme,
    /// Prefix-reduction-sum algorithm for the ranking stage.
    pub prs: PrsAlgorithm,
    /// Many-to-many schedule for both communication stages.
    pub schedule: A2aSchedule,
}

impl UnpackOptions {
    /// Default options with the given scheme.
    pub fn new(scheme: UnpackScheme) -> Self {
        UnpackOptions {
            scheme,
            prs: PrsAlgorithm::Auto,
            schedule: A2aSchedule::LinearPermutation,
        }
    }
}

impl Default for UnpackOptions {
    fn default() -> Self {
        Self::new(UnpackScheme::CompactStorage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(PackScheme::Simple.label(), "SSS");
        assert_eq!(PackScheme::CompactStorage.label(), "CSS");
        assert_eq!(PackScheme::CompactMessage.label(), "CMS");
        assert_eq!(UnpackScheme::Simple.label(), "SSS");
        assert_eq!(UnpackScheme::CompactStorage.label(), "CSS");
    }

    #[test]
    fn defaults_match_paper_experiment_setup() {
        let o = PackOptions::default();
        assert_eq!(o.schedule, A2aSchedule::LinearPermutation);
        assert_eq!(o.scan_method, ScanMethod::UntilCollected);
        assert_eq!(o.result_block_size, None);
    }
}
