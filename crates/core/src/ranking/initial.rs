//! Initial step (local scan) — Section 5.2.
//!
//! The local mask array is scanned slice by slice (a *slice* is a run of
//! `W_0` consecutive dimension-0 elements inside one block). The result is
//! the common initialisation of `PS_0` and `RS_0`: the number of selected
//! elements per slice.
//!
//! The scan itself is *not* charged here: the three storage schemes of
//! Section 6 do different amounts of bookkeeping during this pass (the
//! simple scheme records per-element information, the compact schemes do
//! not), so each scheme charges its own initial-scan cost.

/// Number of selected elements per slice: `counts[k]` is the count of true
/// entries in `mask[k·w0 .. (k+1)·w0]`. This is the shared initial value of
/// `PS_0` and `RS_0`.
///
/// # Panics
/// Panics if `w0` does not divide the mask length.
pub fn slice_counts(mask: &[bool], w0: usize) -> Vec<i32> {
    assert!(
        w0 > 0 && mask.len().is_multiple_of(w0),
        "W_0 must tile the local array"
    );
    mask.chunks_exact(w0)
        .map(|s| s.iter().filter(|&&b| b).count() as i32)
        .collect()
}

/// Per-element initial (in-slice) ranks: `Some(r)` iff the element is
/// selected and `r` selected elements precede it *within its slice*.
pub fn in_slice_ranks(mask: &[bool], w0: usize) -> Vec<Option<u32>> {
    assert!(
        w0 > 0 && mask.len().is_multiple_of(w0),
        "W_0 must tile the local array"
    );
    let mut out = Vec::with_capacity(mask.len());
    for slice in mask.chunks_exact(w0) {
        let mut r = 0u32;
        for &b in slice {
            if b {
                out.push(Some(r));
                r += 1;
            } else {
                out.push(None);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_per_slice() {
        let m = [true, false, true, true, false, false, true, true];
        assert_eq!(slice_counts(&m, 2), vec![1, 2, 0, 2]);
        assert_eq!(slice_counts(&m, 4), vec![3, 2]);
        assert_eq!(slice_counts(&m, 8), vec![5]);
    }

    #[test]
    fn in_slice_ranks_restart_each_slice() {
        let m = [true, true, false, true];
        assert_eq!(in_slice_ranks(&m, 2), vec![Some(0), Some(1), None, Some(0)]);
        assert_eq!(in_slice_ranks(&m, 4), vec![Some(0), Some(1), None, Some(2)]);
    }

    #[test]
    fn empty_mask() {
        let m: [bool; 0] = [];
        assert_eq!(slice_counts(&m, 3), Vec::<i32>::new());
        assert!(in_slice_ranks(&m, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "tile")]
    fn w0_must_divide() {
        slice_counts(&[true, false, true], 2);
    }
}
