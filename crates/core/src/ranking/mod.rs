//! The parallel ranking algorithm — Section 5.
//!
//! Ranks every selected element of a distributed masked array *without
//! moving any array elements*: an initial local scan produces per-slice
//! counts, `d` intermediate steps grow the sub-array within which ranks are
//! valid (one vector prefix-reduction-sum per dimension plus local
//! segmented prefix sums), and a final combination collapses the
//! per-dimension base-rank arrays into `PS_f`, from which
//!
//! ```text
//! rank(x) = initial-rank(x) + PS_f[slice(x)]
//! ```

mod final_step;
mod initial;
mod intermediate;
mod workspace;

pub use final_step::combine_base_ranks;
pub use initial::{in_slice_ranks, slice_counts};
pub use intermediate::{intermediate_steps, BaseRanks};
pub use workspace::{segmented_exclusive_prefix, RankShape};

use hpf_machine::collectives::PrsAlgorithm;
use hpf_machine::Proc;

/// The ranking stage's output on one processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ranking {
    /// Final base-rank array: `ps_f[k]` is the global rank of the first
    /// selected element of local slice `k` (one slot per slice, `C` total).
    pub ps_f: Vec<i32>,
    /// Global number of selected elements (`Size`), replicated everywhere.
    pub size: usize,
}

/// Run the intermediate and final ranking steps from per-slice counts
/// (the output of the scheme-specific initial scan).
pub fn rank_from_counts(
    proc: &mut Proc,
    shape: &RankShape,
    counts: Vec<i32>,
    prs: PrsAlgorithm,
) -> Ranking {
    let BaseRanks { ps, size } = proc.with_stage("rank.intermediate", |proc| {
        intermediate_steps(proc, shape, counts, prs)
    });
    let ps_f = proc.with_stage("rank.final", |proc| combine_base_ranks(proc, shape, ps));
    Ranking { ps_f, size }
}

/// Convenience: the global rank of every selected local element
/// (`None` where the mask is false). Used by tests and by the simple
/// storage scheme's record replay.
pub fn element_ranks(shape: &RankShape, mask: &[bool], ps_f: &[i32]) -> Vec<Option<u32>> {
    let w0 = shape.w[0];
    in_slice_ranks(mask, w0)
        .into_iter()
        .enumerate()
        .map(|(l, r)| r.map(|init| init + ps_f[l / w0] as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::MaskPattern;
    use crate::seq::{count_seq, ranks_seq};
    use hpf_distarray::{ArrayDesc, Dist};
    use hpf_machine::{Category, CostModel, Machine, ProcGrid};

    /// Full oracle check: on every processor, every selected element's rank
    /// (initial in-slice rank + PS_f of its slice) must equal the element's
    /// sequential rank in global array element order.
    fn check_against_oracle(
        shape: &[usize],
        grid_dims: &[usize],
        dists: &[Dist],
        pattern: MaskPattern,
    ) {
        let grid = ProcGrid::new(grid_dims);
        let desc = ArrayDesc::new(shape, &grid, dists).unwrap();
        let mask_g = pattern.global(shape);
        let want_ranks = ranks_seq(&mask_g);
        let want_size = count_seq(&mask_g);
        let parts = mask_g.partition(&desc);

        let machine = Machine::new(grid, CostModel::cm5());
        let (desc_ref, parts_ref) = (&desc, &parts);
        let out = machine.run(move |proc| {
            let rshape = RankShape::from_desc(desc_ref);
            let mask = &parts_ref[proc.id()];
            let counts = slice_counts(mask, rshape.w[0]);
            let ranking = rank_from_counts(proc, &rshape, counts, PrsAlgorithm::Auto);
            let ranks = element_ranks(&rshape, mask, &ranking.ps_f);
            (ranking.size, ranks)
        });

        for (p, (size, ranks)) in out.results.iter().enumerate() {
            assert_eq!(*size, want_size, "Size mismatch on proc {p}");
            for (l, got) in ranks.iter().enumerate() {
                let g = desc.global_of_local(p, l);
                let glin = desc.global_linear(&g);
                let want = want_ranks[glin].map(|r| r as u32);
                assert_eq!(
                    *got, want,
                    "rank mismatch at global {g:?} (proc {p}, local {l}), \
                     shape {shape:?}, dists {dists:?}, pattern {pattern:?}"
                );
            }
        }
    }

    #[test]
    fn one_d_all_distributions() {
        for dist in [
            Dist::Block,
            Dist::Cyclic,
            Dist::BlockCyclic(2),
            Dist::BlockCyclic(4),
        ] {
            for pattern in [
                MaskPattern::Random {
                    density: 0.5,
                    seed: 3,
                },
                MaskPattern::FirstHalf,
                MaskPattern::Full,
                MaskPattern::Empty,
            ] {
                check_against_oracle(&[32], &[4], &[dist], pattern);
            }
        }
    }

    #[test]
    fn two_d_mixed_distributions() {
        let dist_cases: &[[Dist; 2]] = &[
            [Dist::Block, Dist::Block],
            [Dist::Cyclic, Dist::Cyclic],
            [Dist::BlockCyclic(2), Dist::BlockCyclic(4)],
            [Dist::Cyclic, Dist::Block],
            [Dist::BlockCyclic(4), Dist::Cyclic],
        ];
        for dists in dist_cases {
            for pattern in [
                MaskPattern::Random {
                    density: 0.3,
                    seed: 11,
                },
                MaskPattern::LowerTriangular,
            ] {
                check_against_oracle(&[16, 8], &[2, 2], dists, pattern);
            }
        }
    }

    #[test]
    fn three_d_ranking() {
        check_against_oracle(
            &[8, 4, 6],
            &[2, 2, 3],
            &[Dist::BlockCyclic(2), Dist::Cyclic, Dist::Block],
            MaskPattern::Random {
                density: 0.6,
                seed: 5,
            },
        );
    }

    #[test]
    fn single_processor_grid() {
        check_against_oracle(
            &[8, 8],
            &[1, 1],
            &[Dist::Block, Dist::Block],
            MaskPattern::Random {
                density: 0.5,
                seed: 9,
            },
        );
    }

    #[test]
    fn uneven_processor_grid() {
        check_against_oracle(
            &[12, 8],
            &[3, 2],
            &[Dist::BlockCyclic(2), Dist::BlockCyclic(2)],
            MaskPattern::Random {
                density: 0.4,
                seed: 13,
            },
        );
    }

    /// Figure 1's configuration: A(16), block-cyclic(2), 4 processors.
    #[test]
    fn figure1_configuration() {
        check_against_oracle(
            &[16],
            &[4],
            &[Dist::BlockCyclic(2)],
            MaskPattern::Random {
                density: 0.625,
                seed: 1,
            },
        );
    }

    /// Ranking must charge PRS communication and local computation, and the
    /// PRS share must grow as the block size shrinks (more tiles => longer
    /// vectors), the paper's central performance observation.
    #[test]
    fn prs_cost_grows_as_block_size_shrinks() {
        let time_for = |w: usize| {
            let grid = ProcGrid::line(4);
            let desc = ArrayDesc::new(&[1024], &grid, &[Dist::BlockCyclic(w)]).unwrap();
            let pattern = MaskPattern::Random {
                density: 0.5,
                seed: 2,
            };
            let machine = Machine::new(grid, CostModel::cm5());
            let desc_ref = &desc;
            let out = machine.run(move |proc| {
                let rshape = RankShape::from_desc(desc_ref);
                let mask = pattern.local(desc_ref, proc.id());
                let counts = slice_counts(&mask, rshape.w[0]);
                rank_from_counts(proc, &rshape, counts, PrsAlgorithm::Auto);
            });
            (
                out.max_cat_ms(Category::PrefixReductionSum),
                out.max_cat_ms(Category::LocalComp),
            )
        };
        let (prs_cyclic, local_cyclic) = time_for(1);
        let (prs_block, local_block) = time_for(256);
        assert!(prs_cyclic > prs_block, "cyclic should pay more PRS time");
        assert!(
            local_cyclic > local_block,
            "cyclic should pay more local time"
        );
        assert!(prs_block > 0.0 && local_block > 0.0);
    }
}
