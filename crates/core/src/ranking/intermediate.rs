//! Intermediate steps — Section 5.3 and Figure 2, implemented literally.
//!
//! At the start of step `i`, `PS_i == RS_i` holds the number of selected
//! elements per (tile-`i`, upper-dimension) cell, valid within a sub-array
//! of shape `Δ = [1 × … × W_i × N_{i-1} × … × N_0]`. Step `i` enlarges `Δ`
//! in three substeps:
//!
//! 1. **prefix-reduction-sum** along grid dimension `i`: `PS_i` becomes the
//!    exclusive prefix over processor coordinates (selected elements in
//!    earlier blocks of the same tile), `RS_i` the total — `Δ` grows to a
//!    full tile, `S_i`;
//! 2. **local segmented prefix** over `RS_i` (segments span the `T_i` tiles
//!    × one `W_{i+1}` block of the next dimension), added into `PS_i` — `Δ`
//!    grows to `[W_{i+1} × N_i × …]`;
//! 3. **initialise** `PS_{i+1} = RS_{i+1}` with each segment's total,
//!    rebuilt as (segment's last raw cell, saved before the exclusive
//!    prefix) + (exclusive prefix at the last cell).
//!
//! In step `d-1` there is no next dimension: the single segment spans the
//! whole vector and the "segment total" is the global `Size`.

use hpf_machine::collectives::{prefix_reduction_sum, PrsAlgorithm};
use hpf_machine::{Category, Proc};

use super::workspace::{segmented_exclusive_prefix, RankShape};

/// Result of the intermediate steps: the per-dimension base-rank arrays
/// `PS_i` and the global number of selected elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaseRanks {
    /// `ps[i]` is the final `PS_i`, flat with layout
    /// `[T_i, L_{i+1}, …, L_{d-1}]` (innermost first).
    pub ps: Vec<Vec<i32>>,
    /// Total number of selected elements across all processors (`Size`).
    pub size: usize,
}

/// Run the `d` intermediate steps. `counts` is the shared initialisation of
/// `PS_0`/`RS_0` from the initial scan (one count per slice).
///
/// Communication is charged to [`Category::PrefixReductionSum`]; the local
/// substeps to [`Category::LocalComp`].
pub fn intermediate_steps(
    proc: &mut Proc,
    shape: &RankShape,
    counts: Vec<i32>,
    prs: PrsAlgorithm,
) -> BaseRanks {
    let d = shape.d();
    debug_assert_eq!(
        counts.len(),
        shape.ps_len(0),
        "counts must have one entry per slice"
    );

    let mut ps_out: Vec<Vec<i32>> = Vec::with_capacity(d);
    let mut cur = counts; // PS_i == RS_i on entry to step i
    let mut size = 0usize;

    for i in 0..d {
        // Substep 1: vector prefix-reduction-sum along grid dimension i.
        let group = proc.axis_group(i);
        let (mut ps, mut rs) = proc.with_category(Category::PrefixReductionSum, |proc| {
            prefix_reduction_sum(proc, &group, &cur, prs)
        });

        proc.with_category(Category::LocalComp, |proc| {
            let len = cur.len();
            if i + 1 < d {
                let seg = shape.t[i] * shape.w[i + 1]; // segment length
                let block = shape.t[i] * shape.l[i + 1]; // per-upper-index run
                let t_next = shape.t[i + 1];
                let uppers = shape.upper_vol(i + 1);
                let mut next = vec![0i32; shape.ps_len(i + 1)];

                // Substep 2.1: seed RS_{i+1} with each segment's last raw cell.
                for u in 0..uppers {
                    for k in 0..t_next {
                        next[u * t_next + k] = rs[u * block + (k + 1) * seg - 1];
                    }
                }
                // Substeps 2.2–2.3: segmented exclusive prefix on RS_i.
                segmented_exclusive_prefix(&mut rs, seg);
                // Substep 2.4: PS_i += RS_i.
                for (a, b) in ps.iter_mut().zip(&rs) {
                    *a += *b;
                }
                // Substep 3: add the exclusive prefix at each segment's last
                // cell, completing the segment totals for PS_{i+1}/RS_{i+1}.
                for u in 0..uppers {
                    for k in 0..t_next {
                        next[u * t_next + k] += rs[u * block + (k + 1) * seg - 1];
                    }
                }
                proc.charge_ops(2 * len + 2 * next.len());
                ps_out.push(ps);
                cur = next;
            } else {
                // Step d-1: one segment spanning the whole vector; the
                // "segment total" is the global Size.
                let seed = rs[len - 1];
                segmented_exclusive_prefix(&mut rs, len);
                for (a, b) in ps.iter_mut().zip(&rs) {
                    *a += *b;
                }
                size = (seed + rs[len - 1]) as usize;
                proc.charge_ops(2 * len);
                ps_out.push(ps);
            }
        });
    }

    BaseRanks { ps: ps_out, size }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_distarray::{ArrayDesc, Dist, GlobalArray};
    use hpf_machine::{CostModel, Machine, ProcGrid};

    /// 1-D, block-cyclic(2) over 4 procs, all-true mask: each slice holds 2
    /// elements, Size = 16, and PS_f = PS_0 must give each slice the number
    /// of true elements globally preceding it.
    #[test]
    fn one_d_all_true() {
        let grid = ProcGrid::line(4);
        let desc = ArrayDesc::new(&[16], &grid, &[Dist::BlockCyclic(2)]).unwrap();
        let machine = Machine::new(grid, CostModel::zero());
        let desc_ref = &desc;
        let out = machine.run(move |proc| {
            let shape = RankShape::from_desc(desc_ref);
            let counts = vec![2i32; 2]; // T_0 = 2 slices, 2 trues each
            intermediate_steps(proc, &shape, counts, PrsAlgorithm::Direct)
        });
        for (p, br) in out.results.iter().enumerate() {
            assert_eq!(br.size, 16);
            // Proc p's slice 0 starts at global index 2p, slice 1 at 8 + 2p.
            assert_eq!(br.ps[0], vec![2 * p as i32, 8 + 2 * p as i32], "proc {p}");
        }
    }

    /// Cross-check against a brute-force oracle on a 2-D array: for a known
    /// mask, PS_f (after the final combination, here emulated for d=1 per
    /// dim) must equal, per slice, the count of globally-preceding trues.
    /// The full end-to-end check lives in ranking::mod tests; here we verify
    /// size and the dimension-0 base ranks.
    #[test]
    fn two_d_size_is_global_true_count() {
        let grid = ProcGrid::new(&[2, 2]);
        let desc = ArrayDesc::new(
            &[8, 8],
            &grid,
            &[Dist::BlockCyclic(2), Dist::BlockCyclic(2)],
        )
        .unwrap();
        let mask = GlobalArray::from_fn(&[8, 8], |idx| (idx[0] * 3 + idx[1] * 5) % 7 < 3);
        let want_size = mask.data().iter().filter(|&&b| b).count();
        let parts = mask.partition(&desc);
        let machine = Machine::new(grid, CostModel::zero());
        let (desc_ref, parts_ref) = (&desc, &parts);
        let out = machine.run(move |proc| {
            let shape = RankShape::from_desc(desc_ref);
            let counts = super::super::initial::slice_counts(&parts_ref[proc.id()], shape.w[0]);
            intermediate_steps(proc, &shape, counts, PrsAlgorithm::Direct)
        });
        for br in &out.results {
            assert_eq!(br.size, want_size);
            assert_eq!(br.ps.len(), 2);
            assert_eq!(br.ps[0].len(), 8); // T_0 * L_1 = 2 * 4
            assert_eq!(br.ps[1].len(), 2); // T_1
        }
    }
}
