//! Final step — Section 5.4: combine the per-dimension base-rank arrays
//! into the final base-rank array `PS_f`.
//!
//! `PS_i` (shape `[T_i, L_{i+1}, …]`) and `PS_{i+1}` (shape
//! `[T_{i+1}, L_{i+2}, …]`) are added with the paper's rule
//!
//! ```text
//! ∀ j, k  with  k·W_{i+1} ≤ j < (k+1)·W_{i+1}:
//!     PS_i(…, j, :) ← PS_i(…, j, :) + PS_{i+1}(…, k)
//! ```
//!
//! i.e. each `PS_{i+1}` cell is broadcast over the `W_{i+1}` rows of its
//! block and over all `T_i` tiles. Applying this from dimension `d-2` down
//! to 0 accumulates everything into `PS_0`, which becomes `PS_f` with one
//! slot per slice: the final rank of a selected element `x` is
//! `initial-rank(x) + PS_f(…, i_0 div W_0)`.

use hpf_machine::{Category, Proc};

use super::workspace::RankShape;

/// Sum the base-rank arrays down into `PS_f` (one slot per slice).
///
/// Consumes the per-dimension `ps` arrays from the intermediate steps.
/// Charged to [`Category::LocalComp`].
pub fn combine_base_ranks(proc: &mut Proc, shape: &RankShape, mut ps: Vec<Vec<i32>>) -> Vec<i32> {
    let d = shape.d();
    debug_assert_eq!(ps.len(), d);
    proc.with_category(Category::LocalComp, |proc| {
        let mut charged = 0usize;
        for i in (0..d.saturating_sub(1)).rev() {
            let (lower_slot, upper_slot) = {
                let (a, b) = ps.split_at_mut(i + 1);
                (&mut a[i], &b[0])
            };
            let t_i = shape.t[i];
            let l_next = shape.l[i + 1];
            let w_next = shape.w[i + 1];
            let t_next = shape.t[i + 1];
            let uppers = shape.upper_vol(i + 1);
            // lower layout: [T_i, L_{i+1}, uppers]; upper layout: [T_{i+1}, uppers].
            for u in 0..uppers {
                for j in 0..l_next {
                    let add = upper_slot[u * t_next + j / w_next];
                    let base = u * t_i * l_next + j * t_i;
                    for cell in &mut lower_slot[base..base + t_i] {
                        *cell += add;
                    }
                }
            }
            charged += t_i * l_next * uppers;
        }
        proc.charge_ops(charged);
        ps.swap_remove(0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_distarray::{ArrayDesc, Dist};
    use hpf_machine::{CostModel, Machine, ProcGrid};

    /// d = 1: PS_f is PS_0 unchanged.
    #[test]
    fn one_d_is_identity() {
        let grid = ProcGrid::line(2);
        let desc = ArrayDesc::new(&[8], &grid, &[Dist::BlockCyclic(2)]).unwrap();
        let machine = Machine::new(grid, CostModel::zero());
        let desc_ref = &desc;
        let out = machine.run(move |proc| {
            let shape = RankShape::from_desc(desc_ref);
            combine_base_ranks(proc, &shape, vec![vec![3, 1]])
        });
        assert_eq!(out.results[0], vec![3, 1]);
    }

    /// d = 2 hand-computed combination.
    #[test]
    fn two_d_broadcast_add() {
        // L = (L1=4, L0=4), W = (2, 2), so T = (2, 2):
        // PS_0 layout [T_0=2, L_1=4]; PS_1 layout [T_1=2].
        let grid = ProcGrid::new(&[2, 2]);
        let desc = ArrayDesc::new(
            &[8, 8],
            &grid,
            &[Dist::BlockCyclic(2), Dist::BlockCyclic(2)],
        )
        .unwrap();
        let machine = Machine::new(grid, CostModel::zero());
        let desc_ref = &desc;
        let out = machine.run(move |proc| {
            let shape = RankShape::from_desc(desc_ref);
            let ps0: Vec<i32> = (0..8).collect(); // [t0 + 2*j]
            let ps1 = vec![100, 200]; // per dim-1 tile
            combine_base_ranks(proc, &shape, vec![ps0, ps1])
        });
        // Rows j=0,1 (block 0 of dim 1) get +100; rows j=2,3 get +200.
        assert_eq!(out.results[0], vec![100, 101, 102, 103, 204, 205, 206, 207]);
    }
}
