//! Shapes of the ranking working arrays.
//!
//! The algorithm keeps, per dimension `i`, two working arrays `PS_i` and
//! `RS_i` of shape `(L_{d-1}, …, L_{i+1}, T_i)` (paper order; innermost
//! first that is `[T_i, L_{i+1}, …, L_{d-1}]`). Stored flat and row-major,
//! every substep of Figure 2 becomes a strided loop:
//!
//! * the `PS_0` slot of the local element at local linear index `l` is
//!   simply `l / W_0` (its *slice* number), because dimension 0 is
//!   innermost and `W_0 | L_0`;
//! * the segments of the substep-2 segmented prefix are contiguous runs of
//!   `T_i · W_{i+1}` entries;
//! * the boundary cells moved to `PS_{i+1}`/`RS_{i+1}` are each segment's
//!   last entry.

use hpf_distarray::ArrayDesc;

/// Per-dimension layout quantities of the array being ranked, extracted once
/// from its descriptor (all under the paper's divisibility assumptions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankShape {
    /// Local extents `L_i`.
    pub l: Vec<usize>,
    /// Block sizes `W_i`.
    pub w: Vec<usize>,
    /// Tile counts `T_i = L_i / W_i`.
    pub t: Vec<usize>,
    /// Grid extents `P_i`.
    pub p: Vec<usize>,
}

impl RankShape {
    /// Extract from a descriptor.
    ///
    /// # Panics
    /// Panics if the descriptor violates the divisibility assumptions; the
    /// public `pack`/`unpack` entry points validate first and return a typed
    /// error instead.
    pub fn from_desc(desc: &ArrayDesc) -> Self {
        assert!(
            desc.divisible(),
            "ranking requires P_i*W_i | N_i on every dimension"
        );
        let d = desc.ndims();
        let mut shape = RankShape {
            l: Vec::with_capacity(d),
            w: Vec::with_capacity(d),
            t: Vec::with_capacity(d),
            p: Vec::with_capacity(d),
        };
        for i in 0..d {
            let dim = desc.dim(i);
            shape.l.push(dim.l());
            shape.w.push(dim.w());
            shape.t.push(dim.t());
            shape.p.push(dim.p());
        }
        shape
    }

    /// Rank `d` of the array.
    #[inline]
    pub fn d(&self) -> usize {
        self.l.len()
    }

    /// Local element count `L = Π L_i`.
    pub fn local_len(&self) -> usize {
        self.l.iter().product()
    }

    /// `Π_{k>i} L_k` — the volume of the dimensions above `i`.
    pub fn upper_vol(&self, i: usize) -> usize {
        self.l[i + 1..].iter().product()
    }

    /// Flat length of `PS_i`/`RS_i`: `T_i · Π_{k>i} L_k`.
    pub fn ps_len(&self, i: usize) -> usize {
        self.t[i] * self.upper_vol(i)
    }

    /// Number of slices `C = ps_len(0)` — one `PS_0`/`PS_f` slot per slice.
    pub fn slice_count(&self) -> usize {
        self.ps_len(0)
    }
}

/// Exclusive prefix sum within consecutive segments of length `seg`.
///
/// # Panics
/// Panics (debug) if `seg` does not divide the vector length.
pub fn segmented_exclusive_prefix(v: &mut [i32], seg: usize) {
    debug_assert!(
        seg > 0 && v.len().is_multiple_of(seg),
        "segment length must tile the vector"
    );
    for chunk in v.chunks_exact_mut(seg) {
        let mut acc = 0i32;
        for x in chunk {
            let cur = *x;
            *x = acc;
            acc += cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_distarray::Dist;
    use hpf_machine::ProcGrid;

    #[test]
    fn shape_quantities_match_section3() {
        // 2-D: (N1=16, N0=8) on (P1=2, P0=2), W = (4, 2).
        let desc = ArrayDesc::new(
            &[8, 16],
            &ProcGrid::new(&[2, 2]),
            &[Dist::BlockCyclic(2), Dist::BlockCyclic(4)],
        )
        .unwrap();
        let s = RankShape::from_desc(&desc);
        assert_eq!(s.l, vec![4, 8]); // L_0 = 8/2, L_1 = 16/2
        assert_eq!(s.t, vec![2, 2]); // T_0 = 8/(2*2), T_1 = 16/(2*4)
        assert_eq!(s.local_len(), 32);
        assert_eq!(s.ps_len(0), 2 * 8); // T_0 * L_1
        assert_eq!(s.ps_len(1), 2); // T_1
        assert_eq!(s.slice_count(), 16);
        assert_eq!(s.upper_vol(0), 8);
        assert_eq!(s.upper_vol(1), 1);
    }

    #[test]
    fn segmented_prefix_is_exclusive_per_segment() {
        let mut v = vec![1, 2, 3, 4, 5, 6];
        segmented_exclusive_prefix(&mut v, 3);
        assert_eq!(v, vec![0, 1, 3, 0, 4, 9]);
        let mut w = vec![5, 7];
        segmented_exclusive_prefix(&mut w, 2);
        assert_eq!(w, vec![0, 5]);
    }

    #[test]
    fn whole_vector_is_one_segment() {
        let mut v = vec![2, 2, 2, 2];
        segmented_exclusive_prefix(&mut v, 4);
        assert_eq!(v, vec![0, 2, 4, 6]);
    }
}
