//! UNPACK with a preliminary redistribution — Section 6.3's negative
//! result, kept as a measurable ablation.

use hpf_distarray::{ArrayDesc, DimLayout};
use hpf_machine::{Proc, Wire};

use crate::error::UnpackError;
use crate::schemes::UnpackOptions;

/// UNPACK with a preliminary cyclic→block redistribution — implemented to
/// *demonstrate* Section 6.3's observation that this is "not a feasible
/// option for UNPACK": because UNPACK is a READ whose result array must
/// come back in the original distribution, it takes two redistributions on
/// top of the mask/field moves (`M` and `F` forward, the result `A` back),
/// and the added cost routinely outweighs the ranking savings. The
/// `ablations` bench quantifies exactly that.
pub fn unpack_redistributed<T: Wire + Default>(
    proc: &mut Proc,
    desc: &ArrayDesc,
    m_local: &[bool],
    f_local: &[T],
    v_local: &[T],
    v_layout: &DimLayout,
    opts: &UnpackOptions,
) -> Result<Vec<T>, UnpackError> {
    use hpf_distarray::{redistribute, Dist, RedistMode};

    // Validate against the original layout first (collective).
    super::validate(proc, desc, m_local, f_local, v_local, v_layout)?;

    let shape = desc.shape();
    let dists = vec![Dist::Block; desc.ndims()];
    let block_desc = ArrayDesc::new(&shape, desc.grid(), &dists)
        .expect("block layout of a divisible descriptor");

    // Forward moves: M and F to the block layout.
    let m_tmp = redistribute(
        proc,
        desc,
        &block_desc,
        m_local,
        RedistMode::Detected,
        opts.schedule,
    );
    let f_tmp = redistribute(
        proc,
        desc,
        &block_desc,
        f_local,
        RedistMode::Detected,
        opts.schedule,
    );

    // UNPACK on the block layout (minimal ranking overhead).
    let a_tmp = super::unpack(proc, &block_desc, &m_tmp, &f_tmp, v_local, v_layout, opts)?;

    // Backward move: the result array must return in its original
    // distribution (UNPACK is a READ; the caller keeps computing on `desc`).
    Ok(redistribute(
        proc,
        &block_desc,
        desc,
        &a_tmp,
        RedistMode::Detected,
        opts.schedule,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::MaskPattern;
    use hpf_distarray::Dist;
    use hpf_machine::{Category, CostModel, Machine, ProcGrid};

    /// The infeasible-by-design redistributed UNPACK still computes the
    /// right answer — the point is that it costs more, not that it breaks.
    #[test]
    fn unpack_redistributed_matches_plain_unpack() {
        use super::super::unpack;
        let shape = [24usize];
        let grid = ProcGrid::line(4);
        let desc = ArrayDesc::new(&shape, &grid, &[Dist::Cyclic]).unwrap();
        let pattern = MaskPattern::Random {
            density: 0.5,
            seed: 19,
        };
        let size = pattern.global(&shape).data().iter().filter(|&&b| b).count();
        let v_layout = DimLayout::new_general(size.max(1), 4, size.div_ceil(4).max(1)).unwrap();
        let machine = Machine::new(grid, CostModel::cm5());
        let (d, vl) = (&desc, &v_layout);
        let out = machine.run(move |proc| {
            let m = pattern.local(d, proc.id());
            let f = vec![-3i32; d.local_len(proc.id())];
            let v: Vec<i32> = (0..vl.local_len(proc.id()))
                .map(|l| vl.global_of(proc.id(), l) as i32)
                .collect();
            let plain = unpack(proc, d, &m, &f, &v, vl, &UnpackOptions::default()).unwrap();
            let redist =
                unpack_redistributed(proc, d, &m, &f, &v, vl, &UnpackOptions::default()).unwrap();
            (plain, redist)
        });
        let mut redist_charged = false;
        for c in &out.clocks {
            redist_charged |= c.cat_ms(Category::RedistComm) > 0.0;
        }
        assert!(redist_charged, "redistribution must have been charged");
        for (p, (plain, redist)) in out.results.iter().enumerate() {
            assert_eq!(plain, redist, "proc {p}");
        }
    }
}
