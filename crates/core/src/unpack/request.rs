//! The rank-request wire format for UNPACK's first communication round.

use hpf_machine::Payload;

/// A per-owner rank request: either explicit ranks (simple scheme) or
/// `(base, count)` runs (compact storage scheme). Implemented as a payload
/// so each format charges its own wire size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankRequest {
    /// One rank per selected element (`E` words).
    Explicit(Vec<u32>),
    /// Run-compressed consecutive ranks (`2·runs` words).
    Runs(Vec<(u32, u32)>),
}

impl Default for RankRequest {
    fn default() -> Self {
        RankRequest::Explicit(Vec::new())
    }
}

impl RankRequest {
    /// Total number of ranks requested.
    pub fn expanded_len(&self) -> usize {
        match self {
            RankRequest::Explicit(v) => v.len(),
            RankRequest::Runs(runs) => runs.iter().map(|&(_, n)| n as usize).sum(),
        }
    }

    /// Visit every requested rank in request order.
    pub fn for_each_rank(&self, mut f: impl FnMut(usize)) {
        match self {
            RankRequest::Explicit(v) => {
                for &r in v {
                    f(r as usize);
                }
            }
            RankRequest::Runs(runs) => {
                for &(base, n) in runs {
                    for r in base..base + n {
                        f(r as usize);
                    }
                }
            }
        }
    }

    /// True iff no ranks are requested.
    pub fn is_empty(&self) -> bool {
        match self {
            RankRequest::Explicit(v) => v.is_empty(),
            RankRequest::Runs(r) => r.is_empty(),
        }
    }
}

impl Payload for RankRequest {
    fn wire_words(&self) -> usize {
        match self {
            RankRequest::Explicit(v) => v.len(),
            RankRequest::Runs(runs) => 2 * runs.len(),
        }
    }

    fn clone_payload(&self) -> Box<dyn std::any::Any + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_wire_sizes_differ_by_scheme() {
        let explicit = RankRequest::Explicit(vec![1, 2, 3, 4, 5, 6]);
        let runs = RankRequest::Runs(vec![(1, 6)]);
        assert_eq!(explicit.expanded_len(), runs.expanded_len());
        assert_eq!(Payload::wire_words(&explicit), 6);
        assert_eq!(Payload::wire_words(&runs), 2);
        let mut a = Vec::new();
        runs.for_each_rank(|r| a.push(r));
        assert_eq!(a, vec![1, 2, 3, 4, 5, 6]);
    }
}
