//! UNPACK's compact storage scheme (CSS) — Section 6.4.3.
//!
//! Counter-array storage as in PACK's CSS, but the request wire format is
//! run-compressed: consecutive ranks within a slice collapse to one
//! `(base, count)` run (`2·Gs` words instead of `E`) — the compact message
//! idea applied to the READ direction, where it shrinks the *request*
//! stage (the reply is always value-only). Composition walks the
//! non-empty slices re-scanning the mask (method 1 — the paper's choice
//! for UNPACK, where the second scan is always needed to recover element
//! slots), charging two operations per run plus one per element.
//!
//! Under the plan/execute split, both scans, the run composition, the
//! request round, and the owners' request decode are plan-time; only the
//! field copy, the value replies, and the scatter are execute-time.

use crate::plan::composer::{CompactComposer, ComposeCost, Composer, RankEmit};
use crate::schemes::ScanMethod;

/// The UNPACK CSS plan-time composer: counter-array storage, runs on the
/// wire, method-1 slot recovery (scan until the last selected element).
pub(crate) fn composer() -> Box<dyn Composer> {
    Box::new(CompactComposer::new(
        RankEmit::Runs,
        ComposeCost {
            per_run: 2,
            per_elem: 1,
        },
        ScanMethod::UntilCollected,
    ))
}
