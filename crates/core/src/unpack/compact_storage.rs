//! UNPACK compact storage scheme: counter-array storage (as in PACK's CSS)
//! and run-compressed `(base rank, count)` requests.
//!
//! Because the ranks of a slice's selected elements are consecutive, the
//! request to each owner of `V` compresses to destination runs — the
//! compact message idea applied to the READ direction, where it shrinks the
//! *request* stage (the reply is always value-only).

use hpf_distarray::DimLayout;
use hpf_machine::{Category, Proc};

use crate::pack::dest_runs;
use crate::ranking::Ranking;
use crate::schemes::ScanMethod;

use super::RankRequest;

/// Counter-array storage: `PS_c` (a copy of the initial slice counts).
pub(crate) struct CssStorage {
    ps_c: Vec<i32>,
}

/// Initial scan: slice counts only, plus the `PS_c` copy (`L + C` ops).
pub(crate) fn initial_scan(proc: &mut Proc, m_local: &[bool], w0: usize) -> (Vec<i32>, CssStorage) {
    proc.with_category(Category::LocalComp, |proc| {
        let counts = crate::ranking::slice_counts(m_local, w0);
        let ps_c = counts.clone();
        proc.charge_ops(m_local.len() + ps_c.len());
        (counts, CssStorage { ps_c })
    })
}

/// Request composition: walk the slices, rebuild the consecutive rank runs
/// from `PS_c`/`PS_f`, and record the target element slots with a second
/// scan of the non-empty slices.
pub(crate) fn compose_requests(
    proc: &mut Proc,
    storage: CssStorage,
    ranking: &Ranking,
    m_local: &[bool],
    w0: usize,
    scan_method: ScanMethod,
    v_layout: &DimLayout,
) -> (Vec<RankRequest>, Vec<Vec<u32>>) {
    let nprocs = proc.nprocs();
    proc.with_category(Category::LocalComp, |proc| {
        let mut runs: Vec<Vec<(u32, u32)>> = (0..nprocs).map(|_| Vec::new()).collect();
        let mut targets: Vec<Vec<u32>> = (0..nprocs).map(|_| Vec::new()).collect();
        let mut ops = storage.ps_c.len();
        let mut slots: Vec<u32> = Vec::with_capacity(w0);
        for (k, &n) in storage.ps_c.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let n = n as usize;
            let r0 = ranking.ps_f[k] as usize;
            // Second scan: collect the local slots of the slice's selected
            // elements (method 1 stops once all n are found).
            slots.clear();
            let slice = &m_local[k * w0..(k + 1) * w0];
            match scan_method {
                ScanMethod::UntilCollected => {
                    for (i, &b) in slice.iter().enumerate() {
                        if b {
                            slots.push((k * w0 + i) as u32);
                            if slots.len() == n {
                                ops += i + 1;
                                break;
                            }
                        }
                    }
                }
                ScanMethod::WholeSlice => {
                    for (i, &b) in slice.iter().enumerate() {
                        if b {
                            slots.push((k * w0 + i) as u32);
                        }
                    }
                    ops += w0;
                }
            }
            debug_assert_eq!(slots.len(), n, "slice count disagrees with mask");
            let mut taken = 0usize;
            for (start, len) in dest_runs(r0, n, v_layout) {
                let owner = v_layout.owner(start);
                runs[owner].push((start as u32, len as u32));
                targets[owner].extend_from_slice(&slots[taken..taken + len]);
                taken += len;
                ops += 2 + len; // run header + target bookkeeping
            }
        }
        proc.charge_ops(ops);
        (runs.into_iter().map(RankRequest::Runs).collect(), targets)
    })
}
