//! UNPACK's simple storage scheme (SSS) — Section 6.4.3.
//!
//! As in PACK's SSS, the initial scan records per-element bookkeeping
//! (`L + 4E` operations) and the composition replays the records against
//! `PS_f`. UNPACK composes *two* aligned lists per element — the global
//! rank to request and the local element slot awaiting the reply — so the
//! replay costs `2E` instead of PACK's `E`. Requests go out as explicit
//! rank lists (`E` words on the wire).
//!
//! Under the plan/execute split, the scan, the replay, the request round,
//! and the owners' request decode are all plan-time; only the field copy,
//! the value replies, and the scatter are execute-time.

use crate::plan::composer::{Composer, SimpleComposer};

/// The UNPACK SSS plan-time composer: per-element records, explicit ranks,
/// two replay operations per element (rank + slot lists).
pub(crate) fn composer() -> Box<dyn Composer> {
    Box::new(SimpleComposer::new(2))
}
