//! UNPACK simple storage scheme: per-element records during the initial
//! scan (as in PACK's SSS), explicit per-element rank requests on the wire.

use hpf_distarray::DimLayout;
use hpf_machine::{Category, Proc};

use crate::ranking::Ranking;

use super::RankRequest;

/// Per-element records: `(local slot, slice, in-slice rank)`.
pub(crate) struct SssStorage {
    records: Vec<(u32, u32, u32)>,
}

/// Initial scan: slice counts plus per-element records
/// (`L + 4E` operations, as in PACK's SSS).
pub(crate) fn initial_scan(proc: &mut Proc, m_local: &[bool], w0: usize) -> (Vec<i32>, SssStorage) {
    proc.with_category(Category::LocalComp, |proc| {
        let mut counts = vec![0i32; m_local.len() / w0.max(1)];
        let mut records: Vec<(u32, u32, u32)> = Vec::new();
        for (l, &selected) in m_local.iter().enumerate() {
            if selected {
                let k = l / w0;
                records.push((l as u32, k as u32, counts[k] as u32));
                counts[k] += 1;
            }
        }
        proc.charge_ops(m_local.len() + 4 * records.len());
        (counts, SssStorage { records })
    })
}

/// Request composition: replay the records against `PS_f`; one explicit
/// rank per element (2 ops each).
pub(crate) fn compose_requests(
    proc: &mut Proc,
    storage: SssStorage,
    ranking: &Ranking,
    v_layout: &DimLayout,
) -> (Vec<RankRequest>, Vec<Vec<u32>>) {
    let nprocs = proc.nprocs();
    proc.with_category(Category::LocalComp, |proc| {
        let mut ranks: Vec<Vec<u32>> = (0..nprocs).map(|_| Vec::new()).collect();
        let mut targets: Vec<Vec<u32>> = (0..nprocs).map(|_| Vec::new()).collect();
        for &(local, slice, init) in &storage.records {
            let rank = init as usize + ranking.ps_f[slice as usize] as usize;
            let owner = v_layout.owner(rank);
            ranks[owner].push(rank as u32);
            targets[owner].push(local);
        }
        proc.charge_ops(2 * storage.records.len());
        (
            ranks.into_iter().map(RankRequest::Explicit).collect(),
            targets,
        )
    })
}
