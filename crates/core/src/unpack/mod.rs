//! Parallel UNPACK — Section 4.2.
//!
//! UNPACK scatters a distributed vector `V` into a distributed array `A`
//! under a mask `M`, with a field array `F` supplying unselected positions
//! (a purely local copy). Ranking is identical to PACK, but the
//! redistribution stage is a **READ**: the processor that needs `V[r]`
//! knows `r`, while `V[r]`'s owner does not know who needs it. Hence the
//! paper's two-stage communication — each consumer sends rank *requests*,
//! each owner sends value *replies* — and the observation that UNPACK's
//! communication time can be twice PACK's.

mod compact_storage;
mod simple;

use hpf_distarray::{ArrayDesc, DimLayout};
use hpf_machine::collectives::alltoallv;
use hpf_machine::{Category, Proc, Wire};

use crate::error::UnpackError;
use crate::ranking::RankShape;
use crate::schemes::{UnpackOptions, UnpackScheme};

/// Parallel `UNPACK(V, M, F)`.
///
/// * `desc` describes `M`, `F`, and the result array `A` (conformable and
///   aligned, as the paper assumes);
/// * `v_local` is this processor's slice of `V` under `v_layout` (a 1-D
///   block-cyclic layout over all processors, `N' ≥ Size`).
///
/// Returns this processor's local portion of `A`.
pub fn unpack<T: Wire + Default>(
    proc: &mut Proc,
    desc: &ArrayDesc,
    m_local: &[bool],
    f_local: &[T],
    v_local: &[T],
    v_layout: &DimLayout,
    opts: &UnpackOptions,
) -> Result<Vec<T>, UnpackError> {
    let shape = validate(proc, desc, m_local, f_local, v_local, v_layout)?;
    let w0 = shape.w[0];
    let stage = match opts.scheme {
        UnpackScheme::Simple => "unpack.sss",
        UnpackScheme::CompactStorage => "unpack.css",
    };
    proc.with_stage(stage, |proc| {
        unpack_body(proc, &shape, w0, m_local, f_local, v_local, v_layout, opts)
    })
}

/// The UNPACK proper (validation and the scheme stage span live in
/// [`unpack`]).
#[allow(clippy::too_many_arguments)]
fn unpack_body<T: Wire + Default>(
    proc: &mut Proc,
    shape: &RankShape,
    w0: usize,
    m_local: &[bool],
    f_local: &[T],
    v_local: &[T],
    v_layout: &DimLayout,
    opts: &UnpackOptions,
) -> Result<Vec<T>, UnpackError> {
    // Initial scan (scheme-specific storage), then the shared ranking.
    enum Storage {
        Sss(simple::SssStorage),
        Css(compact_storage::CssStorage),
    }
    let (counts, storage) = match opts.scheme {
        UnpackScheme::Simple => {
            let (c, s) = simple::initial_scan(proc, m_local, w0);
            (c, Storage::Sss(s))
        }
        UnpackScheme::CompactStorage => {
            let (c, s) = compact_storage::initial_scan(proc, m_local, w0);
            (c, Storage::Css(s))
        }
    };
    let ranking = crate::ranking::rank_from_counts(proc, shape, counts, opts.prs);
    let size = ranking.size;
    if size > v_layout.n() {
        // `Size` is replicated, so every processor takes this branch — a
        // collective error with no half-open communication.
        return Err(UnpackError::VectorTooSmall {
            size,
            capacity: v_layout.n(),
        });
    }

    // Field copy: local computation for every unselected element (the
    // selected ones are overwritten below).
    let mut a_local = proc.with_category(Category::LocalComp, |proc| {
        proc.charge_ops(f_local.len());
        f_local.to_vec()
    });

    if size > 0 {
        // Request composition: per owner of V, the rank request and the
        // local element slots awaiting the replies (in request order).
        let (requests, targets) = match storage {
            Storage::Sss(s) => simple::compose_requests(proc, s, &ranking, v_layout),
            Storage::Css(s) => compact_storage::compose_requests(
                proc,
                s,
                &ranking,
                m_local,
                w0,
                crate::schemes::ScanMethod::UntilCollected,
                v_layout,
            ),
        };
        // Stage 1: send rank requests to the owners of V.
        let incoming = proc.with_stage("unpack.request", |proc| {
            proc.with_category(Category::ManyToMany, |proc| {
                let world = proc.world();
                alltoallv(proc, &world, requests, opts.schedule)
            })
        });

        // Service: look up each requested rank in my slice of V.
        let replies = proc.with_category(Category::LocalComp, |proc| {
            let mut replies: Vec<Vec<T>> = Vec::with_capacity(incoming.len());
            let mut ops = 0usize;
            for req in &incoming {
                let mut vals = Vec::with_capacity(req.expanded_len());
                req.for_each_rank(|r| {
                    debug_assert_eq!(v_layout.owner(r), proc.id(), "misrouted request");
                    vals.push(v_local[v_layout.local_of(r)]);
                });
                ops += 2 * vals.len();
                replies.push(vals);
            }
            proc.charge_ops(ops);
            replies
        });

        // Stage 2: send the values back.
        let values_back = proc.with_stage("unpack.reply", |proc| {
            proc.with_category(Category::ManyToMany, |proc| {
                let world = proc.world();
                alltoallv(proc, &world, replies, opts.schedule)
            })
        });

        // Scatter the replies into A at the recorded element slots.
        proc.with_category(Category::LocalComp, |proc| {
            let mut ops = 0usize;
            for (owner, slots) in targets.iter().enumerate() {
                debug_assert_eq!(
                    values_back[owner].len(),
                    slots.len(),
                    "reply length mismatch"
                );
                for (&slot, &v) in slots.iter().zip(&values_back[owner]) {
                    a_local[slot as usize] = v;
                }
                ops += slots.len();
            }
            proc.charge_ops(ops);
        });
    }

    Ok(a_local)
}

/// UNPACK with a preliminary cyclic→block redistribution — implemented to
/// *demonstrate* Section 6.3's observation that this is "not a feasible
/// option for UNPACK": because UNPACK is a READ whose result array must
/// come back in the original distribution, it takes two redistributions on
/// top of the mask/field moves (`M` and `F` forward, the result `A` back),
/// and the added cost routinely outweighs the ranking savings. The
/// `ablations` bench quantifies exactly that.
pub fn unpack_redistributed<T: Wire + Default>(
    proc: &mut Proc,
    desc: &ArrayDesc,
    m_local: &[bool],
    f_local: &[T],
    v_local: &[T],
    v_layout: &DimLayout,
    opts: &UnpackOptions,
) -> Result<Vec<T>, UnpackError> {
    use hpf_distarray::{redistribute, Dist, RedistMode};

    // Validate against the original layout first (collective).
    validate(proc, desc, m_local, f_local, v_local, v_layout)?;

    let shape = desc.shape();
    let dists = vec![Dist::Block; desc.ndims()];
    let block_desc = ArrayDesc::new(&shape, desc.grid(), &dists)
        .expect("block layout of a divisible descriptor");

    // Forward moves: M and F to the block layout.
    let m_tmp = redistribute(
        proc,
        desc,
        &block_desc,
        m_local,
        RedistMode::Detected,
        opts.schedule,
    );
    let f_tmp = redistribute(
        proc,
        desc,
        &block_desc,
        f_local,
        RedistMode::Detected,
        opts.schedule,
    );

    // UNPACK on the block layout (minimal ranking overhead).
    let a_tmp = unpack(proc, &block_desc, &m_tmp, &f_tmp, v_local, v_layout, opts)?;

    // Backward move: the result array must return in its original
    // distribution (UNPACK is a READ; the caller keeps computing on `desc`).
    Ok(redistribute(
        proc,
        &block_desc,
        desc,
        &a_tmp,
        RedistMode::Detected,
        opts.schedule,
    ))
}

/// A per-owner rank request: either explicit ranks (simple scheme) or
/// `(base, count)` runs (compact storage scheme). Implemented as a payload
/// so each format charges its own wire size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankRequest {
    /// One rank per selected element (`E` words).
    Explicit(Vec<u32>),
    /// Run-compressed consecutive ranks (`2·runs` words).
    Runs(Vec<(u32, u32)>),
}

impl Default for RankRequest {
    fn default() -> Self {
        RankRequest::Explicit(Vec::new())
    }
}

impl RankRequest {
    /// Total number of ranks requested.
    pub fn expanded_len(&self) -> usize {
        match self {
            RankRequest::Explicit(v) => v.len(),
            RankRequest::Runs(runs) => runs.iter().map(|&(_, n)| n as usize).sum(),
        }
    }

    /// Visit every requested rank in request order.
    pub fn for_each_rank(&self, mut f: impl FnMut(usize)) {
        match self {
            RankRequest::Explicit(v) => {
                for &r in v {
                    f(r as usize);
                }
            }
            RankRequest::Runs(runs) => {
                for &(base, n) in runs {
                    for r in base..base + n {
                        f(r as usize);
                    }
                }
            }
        }
    }

    /// True iff no ranks are requested.
    pub fn is_empty(&self) -> bool {
        match self {
            RankRequest::Explicit(v) => v.is_empty(),
            RankRequest::Runs(r) => r.is_empty(),
        }
    }
}

impl hpf_machine::Payload for RankRequest {
    fn wire_words(&self) -> usize {
        match self {
            RankRequest::Explicit(v) => v.len(),
            RankRequest::Runs(runs) => 2 * runs.len(),
        }
    }

    fn clone_payload(&self) -> Box<dyn std::any::Any + Send> {
        Box::new(self.clone())
    }
}

fn validate(
    proc: &Proc,
    desc: &ArrayDesc,
    m_local: &[bool],
    f_local: &[impl Sized],
    v_local: &[impl Sized],
    v_layout: &DimLayout,
) -> Result<RankShape, UnpackError> {
    for i in 0..desc.ndims() {
        if !desc.dim(i).divisible() {
            return Err(UnpackError::NotDivisible { dim: i });
        }
    }
    let expected = desc.local_len(proc.id());
    if m_local.len() != expected {
        return Err(UnpackError::MaskLenMismatch {
            expected,
            got: m_local.len(),
        });
    }
    if f_local.len() != expected {
        return Err(UnpackError::FieldLenMismatch {
            expected,
            got: f_local.len(),
        });
    }
    let v_expected = v_layout.local_len(proc.id());
    if v_local.len() != v_expected {
        return Err(UnpackError::VectorLenMismatch {
            expected: v_expected,
            got: v_local.len(),
        });
    }
    Ok(RankShape::from_desc(desc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::MaskPattern;
    use crate::seq::unpack_seq;
    use hpf_distarray::{Dist, GlobalArray};
    use hpf_machine::{CostModel, Machine, ProcGrid};

    fn check_unpack(
        shape: &[usize],
        grid_dims: &[usize],
        dists: &[Dist],
        pattern: MaskPattern,
        scheme: UnpackScheme,
        w_prime: usize,
        extra_capacity: usize,
    ) {
        let grid = ProcGrid::new(grid_dims);
        let desc = ArrayDesc::new(shape, &grid, dists).unwrap();
        let m = pattern.global(shape);
        let f = GlobalArray::from_fn(shape, |idx| -(1 + idx[0] as i32));
        let size = crate::seq::count_seq(&m);
        let n_prime = (size + extra_capacity).max(1);
        let v: Vec<i32> = (0..n_prime as i32).map(|i| 1000 + i).collect();
        let want = unpack_seq(&v, &m, &f);

        let v_layout = DimLayout::new_general(n_prime, grid.nprocs(), w_prime).unwrap();
        let v_locals: Vec<Vec<i32>> = (0..grid.nprocs())
            .map(|p| {
                (0..v_layout.local_len(p))
                    .map(|l| v[v_layout.global_of(p, l)])
                    .collect()
            })
            .collect();
        let m_parts = m.partition(&desc);
        let f_parts = f.partition(&desc);

        let machine = Machine::new(grid, CostModel::cm5());
        let (desc_ref, m_ref, f_ref, v_ref, vl_ref) =
            (&desc, &m_parts, &f_parts, &v_locals, &v_layout);
        let opts = UnpackOptions::new(scheme);
        let out = machine.run(move |proc| {
            unpack(
                proc,
                desc_ref,
                &m_ref[proc.id()],
                &f_ref[proc.id()],
                &v_ref[proc.id()],
                vl_ref,
                &opts,
            )
            .unwrap()
        });
        let got = GlobalArray::assemble(&desc, &out.results);
        assert_eq!(
            got, want,
            "{scheme:?} {shape:?} {dists:?} {pattern:?} W'={w_prime}"
        );
    }

    #[test]
    fn both_schemes_match_oracle_1d() {
        for scheme in UnpackScheme::ALL {
            for dist in [Dist::Block, Dist::Cyclic, Dist::BlockCyclic(2)] {
                for pattern in [
                    MaskPattern::Random {
                        density: 0.5,
                        seed: 31,
                    },
                    MaskPattern::FirstHalf,
                    MaskPattern::Full,
                    MaskPattern::Empty,
                ] {
                    check_unpack(&[32], &[4], &[dist], pattern, scheme, 8, 0);
                }
            }
        }
    }

    #[test]
    fn both_schemes_match_oracle_2d() {
        for scheme in UnpackScheme::ALL {
            for dists in [
                [Dist::Block, Dist::Block],
                [Dist::Cyclic, Dist::Cyclic],
                [Dist::BlockCyclic(2), Dist::BlockCyclic(2)],
            ] {
                for pattern in [
                    MaskPattern::Random {
                        density: 0.4,
                        seed: 17,
                    },
                    MaskPattern::LowerTriangular,
                ] {
                    check_unpack(&[16, 8], &[2, 2], &dists, pattern, scheme, 10, 0);
                }
            }
        }
    }

    #[test]
    fn oversized_input_vector_is_fine() {
        // N' > Size: trailing vector elements are simply unused.
        for scheme in UnpackScheme::ALL {
            check_unpack(
                &[16],
                &[4],
                &[Dist::BlockCyclic(2)],
                MaskPattern::Random {
                    density: 0.5,
                    seed: 23,
                },
                scheme,
                4,
                7,
            );
        }
    }

    #[test]
    fn cyclic_input_vector_distribution() {
        for scheme in UnpackScheme::ALL {
            check_unpack(
                &[16],
                &[4],
                &[Dist::Block],
                MaskPattern::Random {
                    density: 0.6,
                    seed: 29,
                },
                scheme,
                1, // W' = 1: V itself cyclic
                3,
            );
        }
    }

    /// The infeasible-by-design redistributed UNPACK still computes the
    /// right answer — the point is that it costs more, not that it breaks.
    #[test]
    fn unpack_redistributed_matches_plain_unpack() {
        let shape = [24usize];
        let grid = ProcGrid::line(4);
        let desc = ArrayDesc::new(&shape, &grid, &[Dist::Cyclic]).unwrap();
        let pattern = MaskPattern::Random {
            density: 0.5,
            seed: 19,
        };
        let size = pattern.global(&shape).data().iter().filter(|&&b| b).count();
        let v_layout = DimLayout::new_general(size.max(1), 4, size.div_ceil(4).max(1)).unwrap();
        let machine = Machine::new(grid, CostModel::cm5());
        let (d, vl) = (&desc, &v_layout);
        let out = machine.run(move |proc| {
            let m = pattern.local(d, proc.id());
            let f = vec![-3i32; d.local_len(proc.id())];
            let v: Vec<i32> = (0..vl.local_len(proc.id()))
                .map(|l| vl.global_of(proc.id(), l) as i32)
                .collect();
            let plain = unpack(proc, d, &m, &f, &v, vl, &UnpackOptions::default()).unwrap();
            let redist =
                unpack_redistributed(proc, d, &m, &f, &v, vl, &UnpackOptions::default()).unwrap();
            (plain, redist)
        });
        let mut redist_charged = false;
        for c in &out.clocks {
            redist_charged |= c.cat_ms(Category::RedistComm) > 0.0;
        }
        assert!(redist_charged, "redistribution must have been charged");
        for (p, (plain, redist)) in out.results.iter().enumerate() {
            assert_eq!(plain, redist, "proc {p}");
        }
    }

    #[test]
    fn undersized_vector_is_a_collective_error() {
        let grid = ProcGrid::line(4);
        let desc = ArrayDesc::new(&[16], &grid, &[Dist::Block]).unwrap();
        let v_layout = DimLayout::new_general(4, 4, 1).unwrap(); // capacity 4 < 8 selected
        let machine = Machine::new(grid, CostModel::zero());
        let (desc_ref, vl_ref) = (&desc, &v_layout);
        let out = machine.run(move |proc| {
            let m = MaskPattern::FirstHalf.local(desc_ref, proc.id());
            let f = vec![0i32; 4];
            let v = vec![0i32; vl_ref.local_len(proc.id())];
            unpack(
                proc,
                desc_ref,
                &m,
                &f,
                &v,
                vl_ref,
                &UnpackOptions::default(),
            )
            .unwrap_err()
        });
        for e in out.results {
            assert_eq!(
                e,
                UnpackError::VectorTooSmall {
                    size: 8,
                    capacity: 4
                }
            );
        }
    }

    #[test]
    fn request_wire_sizes_differ_by_scheme() {
        let explicit = RankRequest::Explicit(vec![1, 2, 3, 4, 5, 6]);
        let runs = RankRequest::Runs(vec![(1, 6)]);
        assert_eq!(explicit.expanded_len(), runs.expanded_len());
        assert_eq!(hpf_machine::Payload::wire_words(&explicit), 6);
        assert_eq!(hpf_machine::Payload::wire_words(&runs), 2);
        let mut a = Vec::new();
        runs.for_each_rank(|r| a.push(r));
        assert_eq!(a, vec![1, 2, 3, 4, 5, 6]);
    }

    /// The headline claim of Section 4.2: UNPACK's redistribution-stage
    /// communication is roughly twice PACK's, because of request+reply.
    #[test]
    fn unpack_m2m_exceeds_pack_m2m() {
        use crate::pack::pack;
        use crate::schemes::{PackOptions, PackScheme};
        let grid = ProcGrid::line(4);
        let desc = ArrayDesc::new(&[256], &grid, &[Dist::BlockCyclic(4)]).unwrap();
        let pattern = MaskPattern::Random {
            density: 0.5,
            seed: 41,
        };
        let machine = Machine::new(grid.clone(), CostModel::cm5());
        let desc_ref = &desc;
        let pack_out = machine.run(move |proc| {
            let a = hpf_distarray::local_from_fn(desc_ref, proc.id(), |g| g[0] as i32);
            let m = pattern.local(desc_ref, proc.id());
            pack(
                proc,
                desc_ref,
                &a,
                &m,
                &PackOptions::new(PackScheme::Simple),
            )
            .unwrap()
            .size
        });
        let size = pack_out.results[0];
        let v_layout = DimLayout::new_general(size, 4, size.div_ceil(4)).unwrap();
        let machine2 = Machine::new(grid, CostModel::cm5());
        let vl_ref = &v_layout;
        let unpack_out = machine2.run(move |proc| {
            let m = pattern.local(desc_ref, proc.id());
            let f = vec![0i32; desc_ref.local_len(proc.id())];
            let v = vec![7i32; vl_ref.local_len(proc.id())];
            unpack(
                proc,
                desc_ref,
                &m,
                &f,
                &v,
                vl_ref,
                &UnpackOptions::new(UnpackScheme::Simple),
            )
            .unwrap();
        });
        let pack_m2m = pack_out.max_cat_ms(Category::ManyToMany);
        let unpack_m2m = unpack_out.max_cat_ms(Category::ManyToMany);
        assert!(
            unpack_m2m > pack_m2m,
            "unpack {unpack_m2m} ms should exceed pack {pack_m2m} ms"
        );
    }
}
