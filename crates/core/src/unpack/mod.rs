//! Parallel UNPACK — Section 4.2.
//!
//! UNPACK scatters a distributed vector `V` into a distributed array `A`
//! under a mask `M`, with a field array `F` supplying unselected positions
//! (a purely local copy). Ranking is identical to PACK, but the
//! redistribution stage is a **READ**: the processor that needs `V[r]`
//! knows `r`, while `V[r]`'s owner does not know who needs it. Hence the
//! paper's two-stage communication — each consumer sends rank *requests*,
//! each owner sends value *replies* — and the observation that UNPACK's
//! communication time can be twice PACK's.
//!
//! Since the planner/executor split, [`unpack`] is a thin wrapper over
//! [`crate::plan::plan_unpack`] + [`crate::plan::UnpackPlan::execute`];
//! the request round is plan-time (it depends only on the mask), the
//! reply round is execute-time (it moves values).

pub(crate) mod compact_storage;
mod redist;
mod request;
pub(crate) mod simple;

pub use redist::unpack_redistributed;
pub use request::RankRequest;

use hpf_distarray::{ArrayDesc, DimLayout};
use hpf_machine::{Proc, Wire};

use crate::error::UnpackError;
use crate::ranking::RankShape;
use crate::schemes::UnpackOptions;

/// Parallel `UNPACK(V, M, F)`.
///
/// * `desc` describes `M`, `F`, and the result array `A` (conformable and
///   aligned, as the paper assumes);
/// * `v_local` is this processor's slice of `V` under `v_layout` (a 1-D
///   block-cyclic layout over all processors, `N' ≥ Size`).
///
/// Returns this processor's local portion of `A`.
///
/// Exactly equivalent to [`crate::plan_unpack`] followed by one
/// [`crate::UnpackPlan::execute`] — callers that unpack repeatedly under
/// an unchanged mask should hold the plan (or a [`crate::PlanCache`]) and
/// execute it directly, which skips the ranking collectives *and* the
/// rank-request round.
pub fn unpack<T: Wire + Default>(
    proc: &mut Proc,
    desc: &ArrayDesc,
    m_local: &[bool],
    f_local: &[T],
    v_local: &[T],
    v_layout: &DimLayout,
    opts: &UnpackOptions,
) -> Result<Vec<T>, UnpackError> {
    validate(proc, desc, m_local, f_local, v_local, v_layout)?;
    let plan = crate::plan::plan_unpack(proc, desc, m_local, v_layout, opts)?;
    plan.execute(proc, f_local, v_local)
}

fn validate(
    proc: &Proc,
    desc: &ArrayDesc,
    m_local: &[bool],
    f_local: &[impl Sized],
    v_local: &[impl Sized],
    v_layout: &DimLayout,
) -> Result<RankShape, UnpackError> {
    let shape = validate_mask(proc, desc, m_local)?;
    let expected = desc.local_len(proc.id());
    if f_local.len() != expected {
        return Err(UnpackError::FieldLenMismatch {
            expected,
            got: f_local.len(),
        });
    }
    let v_expected = v_layout.local_len(proc.id());
    if v_local.len() != v_expected {
        return Err(UnpackError::VectorLenMismatch {
            expected: v_expected,
            got: v_local.len(),
        });
    }
    Ok(shape)
}

/// Mask-only validation for the planner (field and vector values exist
/// only at execute time; the plan's `execute` checks their lengths).
pub(crate) fn validate_mask(
    proc: &Proc,
    desc: &ArrayDesc,
    m_local: &[bool],
) -> Result<RankShape, UnpackError> {
    for i in 0..desc.ndims() {
        if !desc.dim(i).divisible() {
            return Err(UnpackError::NotDivisible { dim: i });
        }
    }
    let expected = desc.local_len(proc.id());
    if m_local.len() != expected {
        return Err(UnpackError::MaskLenMismatch {
            expected,
            got: m_local.len(),
        });
    }
    Ok(RankShape::from_desc(desc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::MaskPattern;
    use crate::schemes::UnpackScheme;
    use crate::seq::unpack_seq;
    use hpf_distarray::{Dist, GlobalArray};
    use hpf_machine::{Category, CostModel, Machine, ProcGrid};

    fn check_unpack(
        shape: &[usize],
        grid_dims: &[usize],
        dists: &[Dist],
        pattern: MaskPattern,
        scheme: UnpackScheme,
        w_prime: usize,
        extra_capacity: usize,
    ) {
        let grid = ProcGrid::new(grid_dims);
        let desc = ArrayDesc::new(shape, &grid, dists).unwrap();
        let m = pattern.global(shape);
        let f = GlobalArray::from_fn(shape, |idx| -(1 + idx[0] as i32));
        let size = crate::seq::count_seq(&m);
        let n_prime = (size + extra_capacity).max(1);
        let v: Vec<i32> = (0..n_prime as i32).map(|i| 1000 + i).collect();
        let want = unpack_seq(&v, &m, &f);

        let v_layout = DimLayout::new_general(n_prime, grid.nprocs(), w_prime).unwrap();
        let v_locals: Vec<Vec<i32>> = (0..grid.nprocs())
            .map(|p| {
                (0..v_layout.local_len(p))
                    .map(|l| v[v_layout.global_of(p, l)])
                    .collect()
            })
            .collect();
        let m_parts = m.partition(&desc);
        let f_parts = f.partition(&desc);

        let machine = Machine::new(grid, CostModel::cm5());
        let (desc_ref, m_ref, f_ref, v_ref, vl_ref) =
            (&desc, &m_parts, &f_parts, &v_locals, &v_layout);
        let opts = UnpackOptions::new(scheme);
        let out = machine.run(move |proc| {
            unpack(
                proc,
                desc_ref,
                &m_ref[proc.id()],
                &f_ref[proc.id()],
                &v_ref[proc.id()],
                vl_ref,
                &opts,
            )
            .unwrap()
        });
        let got = GlobalArray::assemble(&desc, &out.results);
        assert_eq!(
            got, want,
            "{scheme:?} {shape:?} {dists:?} {pattern:?} W'={w_prime}"
        );
    }

    #[test]
    fn both_schemes_match_oracle_1d() {
        for scheme in UnpackScheme::ALL {
            for dist in [Dist::Block, Dist::Cyclic, Dist::BlockCyclic(2)] {
                for pattern in [
                    MaskPattern::Random {
                        density: 0.5,
                        seed: 31,
                    },
                    MaskPattern::FirstHalf,
                    MaskPattern::Full,
                    MaskPattern::Empty,
                ] {
                    check_unpack(&[32], &[4], &[dist], pattern, scheme, 8, 0);
                }
            }
        }
    }

    #[test]
    fn both_schemes_match_oracle_2d() {
        for scheme in UnpackScheme::ALL {
            for dists in [
                [Dist::Block, Dist::Block],
                [Dist::Cyclic, Dist::Cyclic],
                [Dist::BlockCyclic(2), Dist::BlockCyclic(2)],
            ] {
                for pattern in [
                    MaskPattern::Random {
                        density: 0.4,
                        seed: 17,
                    },
                    MaskPattern::LowerTriangular,
                ] {
                    check_unpack(&[16, 8], &[2, 2], &dists, pattern, scheme, 10, 0);
                }
            }
        }
    }

    #[test]
    fn oversized_input_vector_is_fine() {
        // N' > Size: trailing vector elements are simply unused.
        for scheme in UnpackScheme::ALL {
            check_unpack(
                &[16],
                &[4],
                &[Dist::BlockCyclic(2)],
                MaskPattern::Random {
                    density: 0.5,
                    seed: 23,
                },
                scheme,
                4,
                7,
            );
        }
    }

    #[test]
    fn cyclic_input_vector_distribution() {
        for scheme in UnpackScheme::ALL {
            check_unpack(
                &[16],
                &[4],
                &[Dist::Block],
                MaskPattern::Random {
                    density: 0.6,
                    seed: 29,
                },
                scheme,
                1, // W' = 1: V itself cyclic
                3,
            );
        }
    }

    #[test]
    fn undersized_vector_is_a_collective_error() {
        let grid = ProcGrid::line(4);
        let desc = ArrayDesc::new(&[16], &grid, &[Dist::Block]).unwrap();
        let v_layout = DimLayout::new_general(4, 4, 1).unwrap(); // capacity 4 < 8 selected
        let machine = Machine::new(grid, CostModel::zero());
        let (desc_ref, vl_ref) = (&desc, &v_layout);
        let out = machine.run(move |proc| {
            let m = MaskPattern::FirstHalf.local(desc_ref, proc.id());
            let f = vec![0i32; 4];
            let v = vec![0i32; vl_ref.local_len(proc.id())];
            unpack(
                proc,
                desc_ref,
                &m,
                &f,
                &v,
                vl_ref,
                &UnpackOptions::default(),
            )
            .unwrap_err()
        });
        for e in out.results {
            assert_eq!(
                e,
                UnpackError::VectorTooSmall {
                    size: 8,
                    capacity: 4
                }
            );
        }
    }

    /// The headline claim of Section 4.2: UNPACK's redistribution-stage
    /// communication is roughly twice PACK's, because of request+reply.
    #[test]
    fn unpack_m2m_exceeds_pack_m2m() {
        use crate::pack::pack;
        use crate::schemes::{PackOptions, PackScheme};
        let grid = ProcGrid::line(4);
        let desc = ArrayDesc::new(&[256], &grid, &[Dist::BlockCyclic(4)]).unwrap();
        let pattern = MaskPattern::Random {
            density: 0.5,
            seed: 41,
        };
        let machine = Machine::new(grid.clone(), CostModel::cm5());
        let desc_ref = &desc;
        let pack_out = machine.run(move |proc| {
            let a = hpf_distarray::local_from_fn(desc_ref, proc.id(), |g| g[0] as i32);
            let m = pattern.local(desc_ref, proc.id());
            pack(
                proc,
                desc_ref,
                &a,
                &m,
                &PackOptions::new(PackScheme::Simple),
            )
            .unwrap()
            .size
        });
        let size = pack_out.results[0];
        let v_layout = DimLayout::new_general(size, 4, size.div_ceil(4)).unwrap();
        let machine2 = Machine::new(grid, CostModel::cm5());
        let vl_ref = &v_layout;
        let unpack_out = machine2.run(move |proc| {
            let m = pattern.local(desc_ref, proc.id());
            let f = vec![0i32; desc_ref.local_len(proc.id())];
            let v = vec![7i32; vl_ref.local_len(proc.id())];
            unpack(
                proc,
                desc_ref,
                &m,
                &f,
                &v,
                vl_ref,
                &UnpackOptions::new(UnpackScheme::Simple),
            )
            .unwrap();
        });
        let pack_m2m = pack_out.max_cat_ms(Category::ManyToMany);
        let unpack_m2m = unpack_out.max_cat_ms(Category::ManyToMany);
        assert!(
            unpack_m2m > pack_m2m,
            "unpack {unpack_m2m} ms should exceed pack {pack_m2m} ms"
        );
    }
}
