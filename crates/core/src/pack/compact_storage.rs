//! The compact storage scheme (CSS) — Sections 6.1 / 6.4.1.
//!
//! Nothing is stored per element. The initial scan only produces the slice
//! counts, a copy of which is kept as the *counter array* `PS_c`. After the
//! ranking stage, comparing `PS_c[k]` (how many selected elements slice `k`
//! holds) with `PS_f[k]` (the global rank of the first of them) rebuilds,
//! per slice, the consecutive global ranks `r_0, r_0+1, …, r_0+n-1`, the
//! destination processors (the `sendl` vector), and — via a second scan of
//! only the non-empty slices — the values themselves.
//!
//! Messages remain `(rank, value)` pairs as in the simple scheme. Local
//! computation ∝ `2L + 2C + 3E_i + 2E_a`: an extra scan and an extra pass
//! over the slices buy the removal of the 4-per-element record traffic, so
//! CSS wins once blocks are large (few slices) and density is high (records
//! dominate).

use hpf_machine::collectives::alltoallv;
use hpf_machine::{Category, Proc, Wire};

use crate::ranking::{rank_from_counts, RankShape};
use crate::schemes::PackOptions;

use super::{collect_slice_values, decode_pairs, dest_runs, result_layout, PackOutput};

pub(crate) fn pack_css<T: Wire + Default>(
    proc: &mut Proc,
    shape: &RankShape,
    a_local: &[T],
    m_local: &[bool],
    opts: &PackOptions,
) -> PackOutput<T> {
    let w0 = shape.w[0];

    // Initial step: slice counts only (charge L), plus the PS_c copy
    // (charge C).
    let (counts, ps_c) = proc.with_category(Category::LocalComp, |proc| {
        let counts = crate::ranking::slice_counts(m_local, w0);
        let ps_c = counts.clone();
        proc.charge_ops(m_local.len() + ps_c.len());
        (counts, ps_c)
    });

    let ranking = rank_from_counts(proc, shape, counts, opts.prs);
    if ranking.size == 0 {
        return PackOutput {
            local_v: Vec::new(),
            size: 0,
            v_layout: None,
        };
    }
    let layout =
        result_layout(ranking.size, proc.nprocs(), opts.result_block_size).expect("size > 0");

    // Final step + message composition: walk the slices; for each non-empty
    // slice, rebuild ranks from PS_c/PS_f, build the sendl runs, and collect
    // the values with the second scan.
    let sends = proc.with_category(Category::LocalComp, |proc| {
        let nprocs = proc.nprocs();
        let mut sends: Vec<Vec<(u32, T)>> = (0..nprocs).map(|_| Vec::new()).collect();
        let mut ops = ps_c.len(); // one check per slice
        let mut values: Vec<T> = Vec::with_capacity(w0);
        for (k, &n) in ps_c.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let n = n as usize;
            let r0 = ranking.ps_f[k] as usize;
            values.clear();
            ops += collect_slice_values(
                &a_local[k * w0..(k + 1) * w0],
                &m_local[k * w0..(k + 1) * w0],
                n,
                opts.scan_method,
                &mut values,
            );
            // Pair composition (2 ops/element) plus one sendl access per
            // destination run.
            let mut taken = 0usize;
            for (start, len) in dest_runs(r0, n, &layout) {
                let dest = layout.owner(start);
                for (j, &v) in values[taken..taken + len].iter().enumerate() {
                    sends[dest].push(((start + j) as u32, v));
                }
                taken += len;
                ops += 1 + 2 * len;
            }
        }
        proc.charge_ops(ops);
        sends
    });

    let recvs = proc.with_category(Category::ManyToMany, |proc| {
        let world = proc.world();
        alltoallv(proc, &world, sends, opts.schedule)
    });

    let local_v = decode_pairs(proc, &layout, recvs);
    PackOutput {
        local_v,
        size: ranking.size,
        v_layout: Some(layout),
    }
}
