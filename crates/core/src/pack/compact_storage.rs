//! The compact storage scheme (CSS) — Sections 6.1 / 6.4.1.
//!
//! Nothing is stored per element. The initial scan only produces the slice
//! counts, a copy of which is kept as the *counter array* `PS_c`. After the
//! ranking stage, comparing `PS_c[k]` (how many selected elements slice `k`
//! holds) with `PS_f[k]` (the global rank of the first of them) rebuilds,
//! per slice, the consecutive global ranks `r_0, r_0+1, …, r_0+n-1`, the
//! destination processors (the `sendl` vector), and — via a second scan of
//! only the non-empty slices — the element slots themselves.
//!
//! Messages remain `(rank, value)` pairs as in the simple scheme. Local
//! computation ∝ `2L + 2C + 3E_i + 2E_a`: an extra scan and an extra pass
//! over the slices buy the removal of the 4-per-element record traffic, so
//! CSS wins once blocks are large (few slices) and density is high (records
//! dominate).
//!
//! Under the plan/execute split, the two scans, the slice walk, and the
//! rank expansion (`1/run + 1/element`) are plan-time; the value gather
//! (`1/element`) and pair decode (`2/element`) are execute-time.

use crate::plan::composer::{CompactComposer, ComposeCost, Composer, RankEmit};
use crate::schemes::ScanMethod;

/// The CSS plan-time composer: counter-array storage, ranks expanded to
/// explicit per-element form (the wire format stays pair-based), one
/// `sendl` operation per destination run plus one per element.
pub(crate) fn composer(scan_method: ScanMethod) -> Box<dyn Composer> {
    Box::new(CompactComposer::new(
        RankEmit::Explicit,
        ComposeCost {
            per_run: 1,
            per_elem: 1,
        },
        scan_method,
    ))
}
