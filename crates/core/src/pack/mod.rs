//! Parallel PACK — Section 4.1: ranking stage + redistribution stage, with
//! the three storage/message schemes of Section 6.
//!
//! Since the planner/executor split, [`pack`] is a thin wrapper over
//! [`crate::plan::plan_pack`] + [`crate::plan::PackPlan::execute`]; the
//! per-scheme modules configure the plan-time composer and own their wire
//! formats.

pub(crate) mod compact_message;
pub(crate) mod compact_storage;
pub mod predict;
mod redist;
pub(crate) mod simple;
mod vector_arg;

pub use compact_message::CmsMessage;
pub use predict::MaskStats;
pub use redist::{pack_redistributed, RedistScheme};
pub use vector_arg::pack_with_vector;

use hpf_distarray::{ArrayDesc, DimLayout};
use hpf_machine::{Category, Proc, Wire};

use crate::error::PackError;
use crate::ranking::RankShape;
use crate::schemes::PackOptions;

/// Result of a parallel PACK on one processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackOutput<T> {
    /// This processor's portion of the result vector `V`.
    pub local_v: Vec<T>,
    /// Global number of packed elements (`Size`), replicated everywhere.
    pub size: usize,
    /// Layout of `V` over all processors (`None` iff `size == 0`).
    pub v_layout: Option<DimLayout>,
}

/// Parallel `PACK(A, M)`: gather the elements of the distributed array `A`
/// selected by the aligned mask `M` into a vector `V` distributed over all
/// processors (block by default; `opts.result_block_size` selects a general
/// block-cyclic `W'`).
///
/// Every processor calls this with its local portions; each receives its
/// local slice of `V` plus the replicated `Size` and the vector layout.
///
/// Exactly equivalent to [`crate::plan_pack`] followed by one
/// [`crate::PackPlan::execute`] — callers that pack repeatedly under an
/// unchanged mask should hold the plan (or a [`crate::PlanCache`]) and
/// execute it directly.
///
/// Work is charged to the calling processor's clock:
/// [`Category::LocalComp`] for scanning, rank computation, and message
/// composition/decomposition; [`Category::PrefixReductionSum`] for the
/// ranking collectives; [`Category::ManyToMany`] for the redistribution
/// exchange (plus a one-round plan-time flag exchange under
/// [`Category::Other`]).
pub fn pack<T: Wire + Default>(
    proc: &mut Proc,
    desc: &ArrayDesc,
    a_local: &[T],
    m_local: &[bool],
    opts: &PackOptions,
) -> Result<PackOutput<T>, PackError> {
    validate(proc, desc, a_local, m_local)?;
    let plan = crate::plan::plan_pack(proc, desc, m_local, opts)?;
    plan.execute(proc, a_local)
}

/// Validate inputs and extract the ranking shape. All checks use state that
/// is identical on every processor, so error returns are collective.
pub(crate) fn validate(
    proc: &Proc,
    desc: &ArrayDesc,
    a_len_of: &[impl Sized],
    m_local: &[bool],
) -> Result<RankShape, PackError> {
    for i in 0..desc.ndims() {
        if !desc.dim(i).divisible() {
            return Err(PackError::NotDivisible { dim: i });
        }
    }
    let expected = desc.local_len(proc.id());
    if a_len_of.len() != expected {
        return Err(PackError::ArrayLenMismatch {
            expected,
            got: a_len_of.len(),
        });
    }
    if m_local.len() != expected {
        return Err(PackError::MaskLenMismatch {
            expected,
            got: m_local.len(),
        });
    }
    Ok(RankShape::from_desc(desc))
}

/// Mask-only validation for the planner (no array values exist at plan
/// time; the plan's `execute` checks the array length instead).
pub(crate) fn validate_mask(
    proc: &Proc,
    desc: &ArrayDesc,
    m_local: &[bool],
) -> Result<RankShape, PackError> {
    for i in 0..desc.ndims() {
        if !desc.dim(i).divisible() {
            return Err(PackError::NotDivisible { dim: i });
        }
    }
    let expected = desc.local_len(proc.id());
    if m_local.len() != expected {
        return Err(PackError::MaskLenMismatch {
            expected,
            got: m_local.len(),
        });
    }
    Ok(RankShape::from_desc(desc))
}

/// Layout of the result vector: `Size` elements over all `nprocs`
/// processors, block by default or block-cyclic `W'`.
pub(crate) fn result_layout(
    size: usize,
    nprocs: usize,
    block_size: Option<usize>,
) -> Option<DimLayout> {
    if size == 0 {
        return None;
    }
    let w = block_size.unwrap_or_else(|| size.div_ceil(nprocs)).max(1);
    Some(DimLayout::new_general(size, nprocs, w).expect("positive parameters"))
}

/// Decode received `(global rank, value)` pair messages into the local
/// portion of `V`. Shared by the simple and compact storage schemes
/// (Section 6.4.1: decomposition costs `2·E_a`).
pub(crate) fn decode_pairs<T: Wire + Default>(
    proc: &mut Proc,
    layout: &DimLayout,
    recvs: Vec<Vec<(u32, T)>>,
) -> Vec<T> {
    proc.with_category(Category::LocalComp, |proc| {
        let me = proc.id();
        let mut local_v = vec![T::default(); layout.local_len(me)];
        let mut placed = 0usize;
        for msg in recvs {
            for (rank, value) in msg {
                debug_assert_eq!(layout.owner(rank as usize), me, "misrouted element");
                local_v[layout.local_of(rank as usize)] = value;
                placed += 1;
            }
        }
        proc.charge_ops(2 * placed);
        local_v
    })
}

/// Split the consecutive ranks `r0 .. r0+n` into maximal runs with a single
/// destination processor under `layout` (runs break at multiples of `W'`).
/// Yields `(start_rank, len)` pairs.
pub(crate) fn dest_runs(
    r0: usize,
    n: usize,
    layout: &DimLayout,
) -> impl Iterator<Item = (usize, usize)> + '_ {
    let w = layout.w();
    let mut r = r0;
    let end = r0 + n;
    std::iter::from_fn(move || {
        if r >= end {
            return None;
        }
        let len = (w - r % w).min(end - r);
        let out = (r, len);
        r += len;
        Some(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::MaskPattern;
    use crate::schemes::{PackScheme, ScanMethod};
    use crate::seq::pack_seq;
    use hpf_distarray::{Dist, GlobalArray};
    use hpf_machine::collectives::A2aSchedule;
    use hpf_machine::{CostModel, Machine, ProcGrid};

    /// Reassemble the distributed result vector into a dense Vec.
    pub(crate) fn assemble_v<T: Copy + Default + std::fmt::Debug>(
        outs: &[PackOutput<T>],
    ) -> Vec<T> {
        let size = outs[0].size;
        if size == 0 {
            return Vec::new();
        }
        let layout = outs[0].v_layout.unwrap();
        let mut v = vec![T::default(); size];
        for (p, out) in outs.iter().enumerate() {
            assert_eq!(out.size, size);
            for (l, &x) in out.local_v.iter().enumerate() {
                v[layout.global_of(p, l)] = x;
            }
        }
        v
    }

    fn check_pack(
        shape: &[usize],
        grid_dims: &[usize],
        dists: &[Dist],
        pattern: MaskPattern,
        opts: PackOptions,
    ) {
        let grid = ProcGrid::new(grid_dims);
        let desc = ArrayDesc::new(shape, &grid, dists).unwrap();
        let a = GlobalArray::from_fn(shape, |idx| {
            idx.iter()
                .enumerate()
                .map(|(i, &x)| (x as i32 + 1) * 10i32.pow(i as u32))
                .sum::<i32>()
        });
        let m = pattern.global(shape);
        let want = pack_seq(&a, &m, None);

        let a_parts = a.partition(&desc);
        let m_parts = m.partition(&desc);
        let machine = Machine::new(grid, CostModel::cm5());
        let (desc_ref, a_ref, m_ref, opts_ref) = (&desc, &a_parts, &m_parts, &opts);
        let out = machine.run(move |proc| {
            pack(
                proc,
                desc_ref,
                &a_ref[proc.id()],
                &m_ref[proc.id()],
                opts_ref,
            )
            .unwrap()
        });
        let got = assemble_v(&out.results);
        assert_eq!(
            got, want,
            "scheme {:?} shape {shape:?} dists {dists:?} pattern {pattern:?}",
            opts.scheme
        );
        // Local portions must tile Size exactly.
        let total: usize = out.results.iter().map(|o| o.local_v.len()).sum();
        assert_eq!(total, want.len());
    }

    #[test]
    fn all_schemes_match_oracle_1d() {
        for scheme in PackScheme::ALL {
            for dist in [Dist::Block, Dist::Cyclic, Dist::BlockCyclic(2)] {
                for pattern in [
                    MaskPattern::Random {
                        density: 0.5,
                        seed: 21,
                    },
                    MaskPattern::FirstHalf,
                    MaskPattern::Full,
                    MaskPattern::Empty,
                ] {
                    check_pack(&[32], &[4], &[dist], pattern, PackOptions::new(scheme));
                }
            }
        }
    }

    #[test]
    fn all_schemes_match_oracle_2d() {
        for scheme in PackScheme::ALL {
            for dists in [
                [Dist::Block, Dist::Block],
                [Dist::Cyclic, Dist::Cyclic],
                [Dist::BlockCyclic(2), Dist::BlockCyclic(4)],
            ] {
                for pattern in [
                    MaskPattern::Random {
                        density: 0.3,
                        seed: 5,
                    },
                    MaskPattern::LowerTriangular,
                ] {
                    check_pack(&[16, 8], &[2, 2], &dists, pattern, PackOptions::new(scheme));
                }
            }
        }
    }

    #[test]
    fn three_d_pack() {
        for scheme in PackScheme::ALL {
            check_pack(
                &[8, 4, 4],
                &[2, 1, 2],
                &[Dist::BlockCyclic(2), Dist::Block, Dist::Cyclic],
                MaskPattern::Random {
                    density: 0.5,
                    seed: 77,
                },
                PackOptions::new(scheme),
            );
        }
    }

    #[test]
    fn non_block_result_vector() {
        for scheme in PackScheme::ALL {
            let mut opts = PackOptions::new(scheme);
            opts.result_block_size = Some(3);
            check_pack(
                &[32],
                &[4],
                &[Dist::BlockCyclic(4)],
                MaskPattern::Random {
                    density: 0.7,
                    seed: 2,
                },
                opts,
            );
        }
    }

    #[test]
    fn whole_slice_scan_method_gives_same_result() {
        for scheme in [PackScheme::CompactStorage, PackScheme::CompactMessage] {
            let mut opts = PackOptions::new(scheme);
            opts.scan_method = ScanMethod::WholeSlice;
            check_pack(
                &[32],
                &[4],
                &[Dist::BlockCyclic(2)],
                MaskPattern::Random {
                    density: 0.5,
                    seed: 8,
                },
                opts,
            );
        }
    }

    #[test]
    fn naive_schedule_gives_same_result() {
        let mut opts = PackOptions::new(PackScheme::CompactMessage);
        opts.schedule = A2aSchedule::NaivePush;
        check_pack(
            &[16, 8],
            &[2, 2],
            &[Dist::BlockCyclic(2), Dist::Cyclic],
            MaskPattern::Random {
                density: 0.5,
                seed: 3,
            },
            opts,
        );
    }

    #[test]
    fn validation_errors() {
        let grid = ProcGrid::line(4);
        let desc = ArrayDesc::new(&[16], &grid, &[Dist::BlockCyclic(2)]).unwrap();
        let machine = Machine::new(grid, CostModel::zero());
        let desc_ref = &desc;
        let out = machine.run(move |proc| {
            let a = vec![0i32; 4];
            let m_short = vec![true; 3];
            let err = pack(proc, desc_ref, &a, &m_short, &PackOptions::default()).unwrap_err();
            matches!(
                err,
                PackError::MaskLenMismatch {
                    expected: 4,
                    got: 3
                }
            )
        });
        assert!(out.results.iter().all(|&ok| ok));
    }

    #[test]
    fn dest_runs_split_at_block_boundaries() {
        let layout = DimLayout::new_general(20, 4, 5).unwrap();
        // ranks 3..12 with W'=5: runs (3,2), (5,5), (10,2).
        let runs: Vec<_> = dest_runs(3, 9, &layout).collect();
        assert_eq!(runs, vec![(3, 2), (5, 5), (10, 2)]);
        // A run never crosses an owner boundary.
        for (start, len) in runs {
            let owner = layout.owner(start);
            for r in start..start + len {
                assert_eq!(layout.owner(r), owner);
            }
        }
        assert_eq!(dest_runs(0, 0, &layout).count(), 0);
    }

    #[test]
    fn result_layout_block_default() {
        let l = result_layout(10, 4, None).unwrap();
        assert_eq!(l.w(), 3); // ceil(10/4)
        assert_eq!(
            (0..4).map(|c| l.local_len(c)).collect::<Vec<_>>(),
            vec![3, 3, 3, 1]
        );
        assert!(result_layout(0, 4, None).is_none());
    }
}
