//! The compact message scheme (CMS) — Sections 6.2 / 6.4.2.
//!
//! Storage works exactly as in the compact storage scheme; the message
//! format changes. Because the global ranks of the `n` selected elements of
//! a slice are consecutive (`r_0, r_0+1, …, r_0+n-1`), each destination run
//! needs only its first rank and its length on the wire:
//!
//! ```text
//! message = segment*      segment = (base-rank, count, value, …, value)
//! ```
//!
//! so a message of `E` values in `G` segments costs `E + 2G` words instead
//! of `2E`. With one segment of minimum length 1, a segment costs 3 words —
//! hence the paper's observation that CMS cannot pay off at cyclic
//! distribution (slice size 1) or when slices hold single elements, and
//! that shrinking the result vector's block size `W'` inflates the segment
//! count.
//!
//! Under the plan/execute split, the scans and the run composition
//! (`2/run` segment headers) are plan-time; the value gather (`1/value`)
//! and the segment decode (`2/segment + 1/value`) are execute-time.

use hpf_distarray::DimLayout;
use hpf_machine::{Payload, Reusable, Wire, Words};

use crate::plan::composer::{CompactComposer, ComposeCost, Composer, RankEmit};
use crate::schemes::ScanMethod;

/// A compact-message-scheme message: a stream of
/// `(base rank, values…)` segments. Wire size is `Σ (2 + |values|)` words,
/// exactly the paper's `E_i + 2·Gs_i` accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmsMessage<T> {
    /// `(base rank, run of values with consecutive ranks)` segments.
    pub segments: Vec<(u32, Vec<T>)>,
}

impl<T> Default for CmsMessage<T> {
    fn default() -> Self {
        CmsMessage {
            segments: Vec::new(),
        }
    }
}

impl<T> CmsMessage<T> {
    /// Total number of values across all segments.
    pub fn value_count(&self) -> usize {
        self.segments.iter().map(|(_, v)| v.len()).sum()
    }

    /// Number of segments (`Gs`/`Gr` in the paper's model).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

impl<T: Wire> Payload for CmsMessage<T> {
    fn wire_words(&self) -> Words {
        self.segments
            .iter()
            .map(|(_, v)| 2 + v.len() * T::WORDS)
            .sum()
    }

    fn clone_payload(&self) -> Box<dyn std::any::Any + Send> {
        Box::new(self.clone())
    }
}

impl<T: Wire> Reusable for CmsMessage<T> {
    /// Clear each segment's values but keep the segment skeleton and every
    /// inner allocation: a plan's routes are fixed, so the next
    /// [`fill_segments`] refill for the same destination reuses both.
    fn reset(&mut self) {
        for (_, vals) in &mut self.segments {
            vals.clear();
        }
    }
}

/// Fill a pooled message from a route's run list (`(base rank, len)` pairs)
/// and gather slots. If the skeleton already matches the run count — always
/// true from the second execute of a plan — the refill is in place and
/// allocation-free.
pub(crate) fn fill_segments<T: Wire>(
    msg: &mut CmsMessage<T>,
    runs: &[(u32, u32)],
    slots: &[u32],
    a_local: &[T],
) {
    if msg.segments.len() != runs.len() {
        msg.segments.clear();
        msg.segments.extend(
            runs.iter()
                .map(|&(base, len)| (base, Vec::with_capacity(len as usize))),
        );
    }
    let mut taken = 0usize;
    for (seg, &(base, len)) in msg.segments.iter_mut().zip(runs) {
        seg.0 = base;
        seg.1.clear();
        seg.1.extend(
            slots[taken..taken + len as usize]
                .iter()
                .map(|&s| a_local[s as usize]),
        );
        taken += len as usize;
    }
}

/// The CMS plan-time composer: counter-array storage, run-compressed
/// ranks, two operations per destination run (the segment header); the
/// per-value work is all execute-time.
pub(crate) fn composer(scan_method: ScanMethod) -> Box<dyn Composer> {
    Box::new(CompactComposer::new(
        RankEmit::Runs,
        ComposeCost {
            per_run: 2,
            per_elem: 0,
        },
        scan_method,
    ))
}

/// Place one received segment message into the local portion of `V`
/// (Section 6.4.2: decomposition costs `E_a + 2·Gr_i` — two operations per
/// segment plus one per value). Returns the operation count for the caller
/// to charge once per decode pass.
pub(crate) fn place_segments<T: Wire + Default>(
    layout: &DimLayout,
    me: usize,
    msg: &CmsMessage<T>,
    out: &mut [T],
) -> usize {
    let mut ops = 0usize;
    for (base, vals) in &msg.segments {
        ops += 2 + vals.len();
        for (j, &v) in vals.iter().enumerate() {
            let rank = *base as usize + j;
            debug_assert_eq!(layout.owner(rank), me, "misrouted segment");
            out[layout.local_of(rank)] = v;
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_words_match_paper_formula() {
        // E values in G segments -> E + 2G words (1-word elements).
        let msg = CmsMessage::<i32> {
            segments: vec![(0, vec![1, 2, 3]), (10, vec![4]), (20, vec![5, 6])],
        };
        assert_eq!(msg.value_count(), 6);
        assert_eq!(msg.segment_count(), 3);
        assert_eq!(msg.wire_words(), 6 + 2 * 3);
        assert_eq!(CmsMessage::<i32>::default().wire_words(), 0);
    }

    #[test]
    fn single_element_segment_costs_three_words() {
        // The paper: "the size of each segment is at least 3" — why CMS
        // cannot win at cyclic distribution.
        let msg = CmsMessage::<i32> {
            segments: vec![(5, vec![9])],
        };
        assert_eq!(msg.wire_words(), 3);
    }
}
