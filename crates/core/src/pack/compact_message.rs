//! The compact message scheme (CMS) — Sections 6.2 / 6.4.2.
//!
//! Storage works exactly as in the compact storage scheme; the message
//! format changes. Because the global ranks of the `n` selected elements of
//! a slice are consecutive (`r_0, r_0+1, …, r_0+n-1`), each destination run
//! needs only its first rank and its length on the wire:
//!
//! ```text
//! message = segment*      segment = (base-rank, count, value, …, value)
//! ```
//!
//! so a message of `E` values in `G` segments costs `E + 2G` words instead
//! of `2E`. With one segment of minimum length 1, a segment costs 3 words —
//! hence the paper's observation that CMS cannot pay off at cyclic
//! distribution (slice size 1) or when slices hold single elements, and
//! that shrinking the result vector's block size `W'` inflates the segment
//! count.
//!
//! The in-memory layout is structure-of-arrays: segment headers in
//! [`CmsMessage::heads`], all values flattened into [`CmsMessage::vals`].
//! The flat value array is what lets the execute hot path fill and decode
//! a message with bulk `copy_from_slice` runs (see
//! [`crate::plan::copyprog`]) — wire accounting is unchanged, since
//! `Σ (2 + len)` and `2·G + Σ len` are the same sum.
//!
//! Under the plan/execute split, the scans and the run composition
//! (`2/run` segment headers) are plan-time; the value gather (`1/value`)
//! and the segment decode (`2/segment + 1/value`) are execute-time.

use hpf_distarray::DimLayout;
use hpf_machine::{Payload, Reusable, Wire, Words};

use crate::plan::composer::{CompactComposer, ComposeCost, Composer, RankEmit};
use crate::schemes::ScanMethod;

/// A compact-message-scheme message: `(base rank, len)` segment headers
/// over a flat value array. Wire size is `Σ (2 + |values|)` words, exactly
/// the paper's `E_i + 2·Gs_i` accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmsMessage<T> {
    /// `(base rank, run length)` headers, one per segment; segment `g`'s
    /// values start at `Σ len` of the headers before it.
    pub heads: Vec<(u32, u32)>,
    /// All segment values, concatenated in header order.
    pub vals: Vec<T>,
}

impl<T> Default for CmsMessage<T> {
    fn default() -> Self {
        CmsMessage {
            heads: Vec::new(),
            vals: Vec::new(),
        }
    }
}

impl<T> CmsMessage<T> {
    /// Total number of values across all segments.
    pub fn value_count(&self) -> usize {
        self.vals.len()
    }

    /// Number of segments (`Gs`/`Gr` in the paper's model).
    pub fn segment_count(&self) -> usize {
        self.heads.len()
    }
}

impl<T: Wire> Payload for CmsMessage<T> {
    fn wire_words(&self) -> Words {
        2 * self.heads.len() + self.vals.len() * T::WORDS
    }

    fn clone_payload(&self) -> Box<dyn std::any::Any + Send> {
        Box::new(self.clone())
    }
}

impl<T: Wire> Reusable for CmsMessage<T> {
    /// Keep both the header skeleton and the shaped value array: a plan's
    /// routes are fixed, so the next [`ensure_shape`] for the same
    /// destination finds everything in place and the refill is a pure
    /// positional overwrite.
    fn reset(&mut self) {}
}

/// Shape a pooled message to a route's run list: headers equal to `runs`,
/// value array sized to the route's element count. From the second execute
/// of a plan this finds everything already in place and is a comparison
/// plus a length check — no writes, no allocation.
pub(crate) fn ensure_shape<T: Wire + Default>(
    msg: &mut CmsMessage<T>,
    runs: &[(u32, u32)],
    value_count: usize,
) {
    if msg.heads != runs {
        msg.heads.clear();
        msg.heads.extend_from_slice(runs);
    }
    if msg.vals.len() != value_count {
        msg.vals.clear();
        msg.vals.resize(value_count, T::default());
    }
    debug_assert_eq!(
        msg.heads.iter().map(|&(_, l)| l as usize).sum::<usize>(),
        value_count,
        "run lengths disagree with the slot count"
    );
}

/// Fill a message from a route's run list and gather slots with the scalar
/// reference walk — the crash-recovery (owned-buffer) path, and the oracle
/// the lowered fill is checked against.
pub(crate) fn fill_segments<T: Wire + Default>(
    msg: &mut CmsMessage<T>,
    runs: &[(u32, u32)],
    slots: &[u32],
    a_local: &[T],
) {
    ensure_shape(msg, runs, slots.len());
    for (v, &s) in msg.vals.iter_mut().zip(slots) {
        *v = a_local[s as usize];
    }
}

/// The CMS plan-time composer: counter-array storage, run-compressed
/// ranks, two operations per destination run (the segment header); the
/// per-value work is all execute-time.
pub(crate) fn composer(scan_method: ScanMethod) -> Box<dyn Composer> {
    Box::new(CompactComposer::new(
        RankEmit::Runs,
        ComposeCost {
            per_run: 2,
            per_elem: 0,
        },
        scan_method,
    ))
}

/// Place one received segment message into the local portion of `V`
/// (Section 6.4.2: decomposition costs `E_a + 2·Gr_i` — two operations per
/// segment plus one per value). Returns the operation count for the caller
/// to charge once per decode pass.
///
/// Every segment was split at result-block boundaries by the sender's
/// composer, so its ranks map to **contiguous** local indices on this
/// owner (`local_of(base + j) == local_of(base) + j` within one block) —
/// one `local_of` division and one `copy_from_slice` per segment instead
/// of one of each per value. The `scalar-ref` feature keeps the
/// per-element reference walk.
pub(crate) fn place_segments<T: Wire + Default>(
    layout: &DimLayout,
    me: usize,
    msg: &CmsMessage<T>,
    out: &mut [T],
) -> usize {
    let mut ops = 0usize;
    let mut off = 0usize;
    for &(base, len) in &msg.heads {
        let (base, len) = (base as usize, len as usize);
        ops += 2 + len;
        let vals = &msg.vals[off..off + len];
        off += len;
        debug_assert_eq!(layout.owner(base), me, "misrouted segment");
        debug_assert_eq!(layout.owner(base + len - 1), me, "segment crosses owners");
        if cfg!(feature = "scalar-ref") {
            for (j, &v) in vals.iter().enumerate() {
                debug_assert_eq!(layout.owner(base + j), me, "misrouted segment");
                out[layout.local_of(base + j)] = v;
            }
        } else {
            let lo = layout.local_of(base);
            debug_assert_eq!(
                layout.local_of(base + len - 1),
                lo + len - 1,
                "segment is not locally contiguous"
            );
            out[lo..lo + len].copy_from_slice(vals);
        }
    }
    debug_assert_eq!(off, msg.vals.len(), "headers disagree with value count");
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_words_match_paper_formula() {
        // E values in G segments -> E + 2G words (1-word elements).
        let msg = CmsMessage::<i32> {
            heads: vec![(0, 3), (10, 1), (20, 2)],
            vals: vec![1, 2, 3, 4, 5, 6],
        };
        assert_eq!(msg.value_count(), 6);
        assert_eq!(msg.segment_count(), 3);
        assert_eq!(msg.wire_words(), 6 + 2 * 3);
        assert_eq!(CmsMessage::<i32>::default().wire_words(), 0);
    }

    #[test]
    fn single_element_segment_costs_three_words() {
        // The paper: "the size of each segment is at least 3" — why CMS
        // cannot win at cyclic distribution.
        let msg = CmsMessage::<i32> {
            heads: vec![(5, 1)],
            vals: vec![9],
        };
        assert_eq!(msg.wire_words(), 3);
    }

    #[test]
    fn fill_reuses_the_shape_in_place() {
        let runs = [(4u32, 2u32), (9, 1)];
        let slots = [0u32, 2, 3];
        let a = [10i32, 20, 30, 40];
        let mut msg = CmsMessage::default();
        fill_segments(&mut msg, &runs, &slots, &a);
        assert_eq!(msg.heads, runs);
        assert_eq!(msg.vals, vec![10, 30, 40]);
        let heads_ptr = msg.heads.as_ptr();
        let vals_ptr = msg.vals.as_ptr();
        msg.reset();
        let b = [11i32, 21, 31, 41];
        fill_segments(&mut msg, &runs, &slots, &b);
        assert_eq!(msg.vals, vec![11, 31, 41]);
        assert_eq!(msg.heads.as_ptr(), heads_ptr, "skeleton survives reset");
        assert_eq!(msg.vals.as_ptr(), vals_ptr, "values refill in place");
    }

    #[test]
    fn place_segments_bulk_matches_scalar() {
        // W' = 4 over 2 procs: proc 0 owns ranks 0..4 and 8..12.
        let layout = DimLayout::new_general(16, 2, 4).unwrap();
        let msg = CmsMessage::<i32> {
            heads: vec![(0, 4), (9, 2)],
            vals: vec![1, 2, 3, 4, 5, 6],
        };
        let mut out = vec![0i32; layout.local_len(0)];
        let ops = place_segments(&layout, 0, &msg, &mut out);
        assert_eq!(ops, (2 + 4) + (2 + 2));
        let mut want = vec![0i32; out.len()];
        let mut off = 0;
        for &(base, len) in &msg.heads {
            for j in 0..len as usize {
                want[layout.local_of(base as usize + j)] = msg.vals[off + j];
            }
            off += len as usize;
        }
        assert_eq!(out, want);
    }
}
