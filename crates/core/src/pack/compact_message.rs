//! The compact message scheme (CMS) — Sections 6.2 / 6.4.2.
//!
//! Storage works exactly as in the compact storage scheme; the message
//! format changes. Because the global ranks of the `n` selected elements of
//! a slice are consecutive (`r_0, r_0+1, …, r_0+n-1`), each destination run
//! needs only its first rank and its length on the wire:
//!
//! ```text
//! message = segment*      segment = (base-rank, count, value, …, value)
//! ```
//!
//! so a message of `E` values in `G` segments costs `E + 2G` words instead
//! of `2E`. With one segment of minimum length 1, a segment costs 3 words —
//! hence the paper's observation that CMS cannot pay off at cyclic
//! distribution (slice size 1) or when slices hold single elements, and
//! that shrinking the result vector's block size `W'` inflates the segment
//! count.

use hpf_machine::collectives::alltoallv;
use hpf_machine::{Category, Payload, Proc, Wire, Words};

use crate::ranking::{rank_from_counts, RankShape};
use crate::schemes::PackOptions;

use super::{collect_slice_values, dest_runs, result_layout, PackOutput};

/// A compact-message-scheme message: a stream of
/// `(base rank, values…)` segments. Wire size is `Σ (2 + |values|)` words,
/// exactly the paper's `E_i + 2·Gs_i` accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmsMessage<T> {
    /// `(base rank, run of values with consecutive ranks)` segments.
    pub segments: Vec<(u32, Vec<T>)>,
}

impl<T> Default for CmsMessage<T> {
    fn default() -> Self {
        CmsMessage {
            segments: Vec::new(),
        }
    }
}

impl<T> CmsMessage<T> {
    /// Total number of values across all segments.
    pub fn value_count(&self) -> usize {
        self.segments.iter().map(|(_, v)| v.len()).sum()
    }

    /// Number of segments (`Gs`/`Gr` in the paper's model).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

impl<T: Wire> Payload for CmsMessage<T> {
    fn wire_words(&self) -> Words {
        self.segments
            .iter()
            .map(|(_, v)| 2 + v.len() * T::WORDS)
            .sum()
    }

    fn clone_payload(&self) -> Box<dyn std::any::Any + Send> {
        Box::new(self.clone())
    }
}

pub(crate) fn pack_cms<T: Wire + Default>(
    proc: &mut Proc,
    shape: &RankShape,
    a_local: &[T],
    m_local: &[bool],
    opts: &PackOptions,
) -> PackOutput<T> {
    let w0 = shape.w[0];

    // Initial step: identical to the compact storage scheme.
    let (counts, ps_c) = proc.with_category(Category::LocalComp, |proc| {
        let counts = crate::ranking::slice_counts(m_local, w0);
        let ps_c = counts.clone();
        proc.charge_ops(m_local.len() + ps_c.len());
        (counts, ps_c)
    });

    let ranking = rank_from_counts(proc, shape, counts, opts.prs);
    if ranking.size == 0 {
        return PackOutput {
            local_v: Vec::new(),
            size: 0,
            v_layout: None,
        };
    }
    let layout =
        result_layout(ranking.size, proc.nprocs(), opts.result_block_size).expect("size > 0");

    // Final step + segment composition: one segment per destination run.
    let sends = proc.with_category(Category::LocalComp, |proc| {
        let nprocs = proc.nprocs();
        let mut sends: Vec<CmsMessage<T>> = (0..nprocs).map(|_| CmsMessage::default()).collect();
        let mut ops = ps_c.len();
        let mut values: Vec<T> = Vec::with_capacity(w0);
        for (k, &n) in ps_c.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let n = n as usize;
            let r0 = ranking.ps_f[k] as usize;
            values.clear();
            ops += collect_slice_values(
                &a_local[k * w0..(k + 1) * w0],
                &m_local[k * w0..(k + 1) * w0],
                n,
                opts.scan_method,
                &mut values,
            );
            let mut taken = 0usize;
            for (start, len) in dest_runs(r0, n, &layout) {
                let dest = layout.owner(start);
                sends[dest]
                    .segments
                    .push((start as u32, values[taken..taken + len].to_vec()));
                taken += len;
                ops += 2 + len; // segment header + value appends
            }
        }
        proc.charge_ops(ops);
        sends
    });

    // Redistribution.
    let recvs = proc.with_category(Category::ManyToMany, |proc| {
        let world = proc.world();
        alltoallv(proc, &world, sends, opts.schedule)
    });

    // Decomposition: 2 ops per segment + 1 per value (E_a + 2·Gr_i).
    let local_v = proc.with_category(Category::LocalComp, |proc| {
        let me = proc.id();
        let mut local_v = vec![T::default(); layout.local_len(me)];
        let mut ops = 0usize;
        for msg in recvs {
            for (base, vals) in msg.segments {
                ops += 2 + vals.len();
                for (j, v) in vals.into_iter().enumerate() {
                    let rank = base as usize + j;
                    debug_assert_eq!(layout.owner(rank), me, "misrouted segment");
                    local_v[layout.local_of(rank)] = v;
                }
            }
        }
        proc.charge_ops(ops);
        local_v
    });

    PackOutput {
        local_v,
        size: ranking.size,
        v_layout: Some(layout),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_words_match_paper_formula() {
        // E values in G segments -> E + 2G words (1-word elements).
        let msg = CmsMessage::<i32> {
            segments: vec![(0, vec![1, 2, 3]), (10, vec![4]), (20, vec![5, 6])],
        };
        assert_eq!(msg.value_count(), 6);
        assert_eq!(msg.segment_count(), 3);
        assert_eq!(msg.wire_words(), 6 + 2 * 3);
        assert_eq!(CmsMessage::<i32>::default().wire_words(), 0);
    }

    #[test]
    fn single_element_segment_costs_three_words() {
        // The paper: "the size of each segment is at least 3" — why CMS
        // cannot win at cyclic distribution.
        let msg = CmsMessage::<i32> {
            segments: vec![(5, vec![9])],
        };
        assert_eq!(msg.wire_words(), 3);
    }
}
