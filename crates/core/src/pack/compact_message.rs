//! The compact message scheme (CMS) — Sections 6.2 / 6.4.2.
//!
//! Storage works exactly as in the compact storage scheme; the message
//! format changes. Because the global ranks of the `n` selected elements of
//! a slice are consecutive (`r_0, r_0+1, …, r_0+n-1`), each destination run
//! needs only its first rank and its length on the wire:
//!
//! ```text
//! message = segment*      segment = (base-rank, count, value, …, value)
//! ```
//!
//! so a message of `E` values in `G` segments costs `E + 2G` words instead
//! of `2E`. With one segment of minimum length 1, a segment costs 3 words —
//! hence the paper's observation that CMS cannot pay off at cyclic
//! distribution (slice size 1) or when slices hold single elements, and
//! that shrinking the result vector's block size `W'` inflates the segment
//! count.
//!
//! Under the plan/execute split, the scans and the run composition
//! (`2/run` segment headers) are plan-time; the value gather (`1/value`)
//! and the segment decode (`2/segment + 1/value`) are execute-time.

use hpf_distarray::DimLayout;
use hpf_machine::{Category, Payload, Proc, Wire, Words};

use crate::plan::composer::{CompactComposer, ComposeCost, Composer, RankEmit};
use crate::schemes::ScanMethod;

/// A compact-message-scheme message: a stream of
/// `(base rank, values…)` segments. Wire size is `Σ (2 + |values|)` words,
/// exactly the paper's `E_i + 2·Gs_i` accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmsMessage<T> {
    /// `(base rank, run of values with consecutive ranks)` segments.
    pub segments: Vec<(u32, Vec<T>)>,
}

impl<T> Default for CmsMessage<T> {
    fn default() -> Self {
        CmsMessage {
            segments: Vec::new(),
        }
    }
}

impl<T> CmsMessage<T> {
    /// Total number of values across all segments.
    pub fn value_count(&self) -> usize {
        self.segments.iter().map(|(_, v)| v.len()).sum()
    }

    /// Number of segments (`Gs`/`Gr` in the paper's model).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

impl<T: Wire> Payload for CmsMessage<T> {
    fn wire_words(&self) -> Words {
        self.segments
            .iter()
            .map(|(_, v)| 2 + v.len() * T::WORDS)
            .sum()
    }

    fn clone_payload(&self) -> Box<dyn std::any::Any + Send> {
        Box::new(self.clone())
    }
}

/// The CMS plan-time composer: counter-array storage, run-compressed
/// ranks, two operations per destination run (the segment header); the
/// per-value work is all execute-time.
pub(crate) fn composer(scan_method: ScanMethod) -> Box<dyn Composer> {
    Box::new(CompactComposer::new(
        RankEmit::Runs,
        ComposeCost {
            per_run: 2,
            per_elem: 0,
        },
        scan_method,
    ))
}

/// Decode received segment messages into the local portion of `V`
/// (Section 6.4.2: decomposition costs `E_a + 2·Gr_i` — two operations per
/// segment plus one per value).
pub(crate) fn decode_segments<T: Wire + Default>(
    proc: &mut Proc,
    layout: &DimLayout,
    recvs: Vec<CmsMessage<T>>,
) -> Vec<T> {
    proc.with_category(Category::LocalComp, |proc| {
        let me = proc.id();
        let mut local_v = vec![T::default(); layout.local_len(me)];
        let mut ops = 0usize;
        for msg in recvs {
            for (base, vals) in msg.segments {
                ops += 2 + vals.len();
                for (j, v) in vals.into_iter().enumerate() {
                    let rank = base as usize + j;
                    debug_assert_eq!(layout.owner(rank), me, "misrouted segment");
                    local_v[layout.local_of(rank)] = v;
                }
            }
        }
        proc.charge_ops(ops);
        local_v
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_words_match_paper_formula() {
        // E values in G segments -> E + 2G words (1-word elements).
        let msg = CmsMessage::<i32> {
            segments: vec![(0, vec![1, 2, 3]), (10, vec![4]), (20, vec![5, 6])],
        };
        assert_eq!(msg.value_count(), 6);
        assert_eq!(msg.segment_count(), 3);
        assert_eq!(msg.wire_words(), 6 + 2 * 3);
        assert_eq!(CmsMessage::<i32>::default().wire_words(), 0);
    }

    #[test]
    fn single_element_segment_costs_three_words() {
        // The paper: "the size of each segment is at least 3" — why CMS
        // cannot win at cyclic distribution.
        let msg = CmsMessage::<i32> {
            segments: vec![(5, vec![9])],
        };
        assert_eq!(msg.wire_words(), 3);
    }
}
