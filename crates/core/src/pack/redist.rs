//! Cyclic-to-block preliminary redistribution — Section 6.3.
//!
//! The ranking overhead is proportional to the tile count, which is worst
//! for cyclic distribution. Redistributing the input to block distribution
//! first makes the subsequent PACK maximally cheap; the question the paper's
//! Table II answers is whether the redistribution pays for itself. Two
//! schemes:
//!
//! * **Red.1 — redistribution of selected data**: only elements whose mask
//!   is true are moved, as `(global index, value)` pairs; the receiver
//!   rebuilds temporary array/mask. Cheap when few elements are selected.
//! * **Red.2 — redistribution of whole arrays**: both the input array and
//!   the mask move wholesale with value-only messages, which needs the two
//!   communication-detection phases of [7]. Cheap when most elements are
//!   selected — unless detection dominates, as it does for 1-D arrays.
//!
//! Either way the PACK proper then runs on the block-distributed temporary
//! (the paper adds the redistribution time to the compact message scheme's
//! block-distribution time; we default `opts.scheme` accordingly).

use hpf_distarray::{redistribute, ArrayDesc, Dist, RedistMode};
use hpf_machine::collectives::alltoallv;
use hpf_machine::{Category, Proc, Wire};

use crate::error::PackError;
use crate::schemes::PackOptions;

use super::{pack, PackOutput};

/// Preliminary redistribution scheme (Section 6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RedistScheme {
    /// Red.1: move only the selected elements (with their global indices).
    SelectedData,
    /// Red.2: move the whole input array and mask (value-only messages,
    /// two-phase communication detection).
    WholeArrays,
}

impl RedistScheme {
    /// Table label ("Red. 1" / "Red. 2").
    pub fn label(self) -> &'static str {
        match self {
            RedistScheme::SelectedData => "Red. 1",
            RedistScheme::WholeArrays => "Red. 2",
        }
    }
}

/// PACK with a preliminary redistribution to block distribution.
///
/// Equivalent to [`pack`] on the original layout (same result vector), but
/// the ranking stage runs with the minimal tile count. Redistribution
/// detection is charged to [`Category::RedistDetect`] and its traffic to
/// [`Category::RedistComm`]; the PACK proper charges its usual categories.
pub fn pack_redistributed<T: Wire + Default>(
    proc: &mut Proc,
    desc: &ArrayDesc,
    a_local: &[T],
    m_local: &[bool],
    scheme: RedistScheme,
    opts: &PackOptions,
) -> Result<PackOutput<T>, PackError> {
    // Validate against the *original* descriptor first (collective, like
    // `pack` itself).
    super::validate(proc, desc, a_local, m_local)?;

    let block_desc = block_desc(desc);
    match scheme {
        RedistScheme::SelectedData => {
            let (a_tmp, m_tmp) =
                redistribute_selected(proc, desc, &block_desc, a_local, m_local, opts);
            pack(proc, &block_desc, &a_tmp, &m_tmp, opts)
        }
        RedistScheme::WholeArrays => {
            let a_tmp = redistribute(
                proc,
                desc,
                &block_desc,
                a_local,
                RedistMode::Detected,
                opts.schedule,
            );
            let m_tmp = redistribute(
                proc,
                desc,
                &block_desc,
                m_local,
                RedistMode::Detected,
                opts.schedule,
            );
            pack(proc, &block_desc, &a_tmp, &m_tmp, opts)
        }
    }
}

/// The all-block descriptor with the same shape and grid.
fn block_desc(desc: &ArrayDesc) -> ArrayDesc {
    let shape = desc.shape();
    let dists = vec![Dist::Block; desc.ndims()];
    // The original descriptor is divisible (P_i·W_i | N_i ⇒ P_i | N_i), so
    // the block layout is divisible too.
    ArrayDesc::new(&shape, desc.grid(), &dists).expect("block layout of a divisible descriptor")
}

/// Red.1: move only selected elements, as `(combined global index, value)`
/// pairs; receivers rebuild temporary array and mask.
fn redistribute_selected<T: Wire + Default>(
    proc: &mut Proc,
    src: &ArrayDesc,
    dst: &ArrayDesc,
    a_local: &[T],
    m_local: &[bool],
    opts: &PackOptions,
) -> (Vec<T>, Vec<bool>) {
    let me = proc.id();
    let nprocs = proc.nprocs();

    // Detection + composition: scan the mask; for each selected element,
    // combine its d indices into one global index (the paper's
    // message-minimising combine) and bucket the pair.
    let sends = proc.with_stage("redist.detect", |proc| {
        proc.with_category(Category::RedistDetect, |proc| {
            let mut sends: Vec<Vec<(u32, T)>> = (0..nprocs).map(|_| Vec::new()).collect();
            let mut selected = 0usize;
            src.for_each_local_global(me, |l, g| {
                if m_local[l] {
                    let glin = src.global_linear(g);
                    let (target, _) = dst.owner_of(g);
                    sends[target].push((glin as u32, a_local[l]));
                    selected += 1;
                }
            });
            proc.charge_ops(m_local.len() + 2 * selected);
            sends
        })
    });

    let recvs = proc.with_stage("redist.comm", |proc| {
        proc.with_category(Category::RedistComm, |proc| {
            let world = proc.world();
            alltoallv(proc, &world, sends, opts.schedule)
        })
    });

    // Receiver: initialise the temporary mask to all-false (charge L), then
    // decompose each global index and place the element.
    proc.with_stage("redist.detect", |proc| {
        proc.with_category(Category::RedistDetect, |proc| {
            let len = dst.local_len(me);
            let mut a_tmp = vec![T::default(); len];
            let mut m_tmp = vec![false; len];
            let mut placed = 0usize;
            for msg in recvs {
                for (glin, v) in msg {
                    let (owner, llin) = dst.owner_of_linear(glin as usize);
                    debug_assert_eq!(owner, me, "misrouted element");
                    a_tmp[llin] = v;
                    m_tmp[llin] = true;
                    placed += 1;
                }
            }
            proc.charge_ops(len + 2 * placed);
            (a_tmp, m_tmp)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::MaskPattern;
    use crate::seq::pack_seq;
    use hpf_distarray::GlobalArray;
    use hpf_machine::{CostModel, Machine, ProcGrid};

    fn check(shape: &[usize], grid_dims: &[usize], scheme: RedistScheme, pattern: MaskPattern) {
        let grid = ProcGrid::new(grid_dims);
        // Cyclic input — the case redistribution exists for.
        let dists = vec![Dist::Cyclic; shape.len()];
        let desc = ArrayDesc::new(shape, &grid, &dists).unwrap();
        let a = GlobalArray::from_fn(shape, |idx| {
            idx.iter().fold(1i32, |acc, &x| acc * 31 + x as i32)
        });
        let m = pattern.global(shape);
        let want = pack_seq(&a, &m, None);
        let a_parts = a.partition(&desc);
        let m_parts = m.partition(&desc);
        let machine = Machine::new(grid, CostModel::cm5());
        let (desc_ref, a_ref, m_ref) = (&desc, &a_parts, &m_parts);
        let out = machine.run(move |proc| {
            pack_redistributed(
                proc,
                desc_ref,
                &a_ref[proc.id()],
                &m_ref[proc.id()],
                scheme,
                &PackOptions::default(),
            )
            .unwrap()
        });
        let got = crate::pack::tests::assemble_v(&out.results);
        assert_eq!(got, want, "{scheme:?} {shape:?} {pattern:?}");
        // Redistribution must have charged detection and traffic.
        assert!(out.max_cat_ms(Category::RedistDetect) > 0.0);
    }

    #[test]
    fn red1_matches_oracle() {
        check(
            &[32],
            &[4],
            RedistScheme::SelectedData,
            MaskPattern::Random {
                density: 0.3,
                seed: 4,
            },
        );
        check(
            &[8, 8],
            &[2, 2],
            RedistScheme::SelectedData,
            MaskPattern::LowerTriangular,
        );
    }

    #[test]
    fn red2_matches_oracle() {
        check(
            &[32],
            &[4],
            RedistScheme::WholeArrays,
            MaskPattern::Random {
                density: 0.7,
                seed: 4,
            },
        );
        check(
            &[8, 8],
            &[2, 2],
            RedistScheme::WholeArrays,
            MaskPattern::Random {
                density: 0.9,
                seed: 1,
            },
        );
    }

    #[test]
    fn empty_mask_is_fine() {
        check(&[16], &[4], RedistScheme::SelectedData, MaskPattern::Empty);
        check(&[16], &[4], RedistScheme::WholeArrays, MaskPattern::Empty);
    }

    #[test]
    fn labels() {
        assert_eq!(RedistScheme::SelectedData.label(), "Red. 1");
        assert_eq!(RedistScheme::WholeArrays.label(), "Red. 2");
    }

    /// Red.1's traffic scales with the selected count; Red.2's does not.
    #[test]
    fn red1_volume_tracks_density() {
        let words_for = |density: f64, scheme: RedistScheme| {
            let grid = ProcGrid::line(4);
            let desc = ArrayDesc::new(&[64], &grid, &[Dist::Cyclic]).unwrap();
            let pattern = MaskPattern::Random { density, seed: 6 };
            let machine = Machine::new(grid.clone(), CostModel::cm5());
            let desc_ref = &desc;
            machine
                .run(move |proc| {
                    let a = hpf_distarray::local_from_fn(desc_ref, proc.id(), |g| g[0] as i32);
                    let m = pattern.local(desc_ref, proc.id());
                    pack_redistributed(proc, desc_ref, &a, &m, scheme, &PackOptions::default())
                        .unwrap();
                })
                .total_words_sent()
        };
        assert!(
            words_for(0.1, RedistScheme::SelectedData) < words_for(0.9, RedistScheme::SelectedData)
        );
        // Red.2 moves everything regardless; only the PACK-stage traffic
        // (packed values) grows with density, so the *difference* between
        // densities is much smaller than for the values themselves.
        let lo = words_for(0.1, RedistScheme::WholeArrays);
        let hi = words_for(0.9, RedistScheme::WholeArrays);
        assert!(
            hi < lo * 2,
            "Red.2 volume should be dominated by the fixed whole-array move"
        );
    }
}
