//! Closed-form predicted local-operation counts — the Section 6.4 model,
//! evaluated from the global mask alone.
//!
//! Each PACK/UNPACK scheme charges a deterministic number of elementary
//! local operations that depends only on the mask, the array layout
//! `(N, P, W)`, and the result-vector block size `W'`. This module
//! recomputes those counts without running anything, so an analysis pass
//! can check *measured* `LocalComp` operation counters against the paper's
//! analytical model (Sections 6.4.1/6.4.2) and flag any drift — the
//! continuous version of the paper's Section 7 validation.
//!
//! Per-processor quantities, for a 1-D array block-cyclically distributed
//! with block size `W` over `P` processors (`L = N/P` local elements,
//! `C = L/W` local slices):
//!
//! * `E_i` — selected elements on processor `i`;
//! * `R_i` — result-vector elements owned by `i` (`= Q_i`, the ranks
//!   requested *from* `i` in the UNPACK direction);
//! * `K_i` — non-empty slices on `i`;
//! * `Gs_i` — destination runs sent by `i` (consecutive-rank intervals
//!   split at `W'` boundaries);
//! * `Gr_i` — runs received by `i` (`Σ Gr = Σ Gs`);
//! * `S_i` — second-scan cost over non-empty slices (`W·K_i` under the
//!   whole-slice method 2; `Σ (last selected offset + 1)` under the
//!   until-collected method 1 — Section 6.1).
//!
//! The formulas (all verified to zero error by `tests/cost_model.rs` and
//! `tests/conformance.rs` in `crates/analysis`):
//!
//! * PACK SSS: `L + 2C + 6E_i + 2R_i`
//! * PACK CSS: `L + 4C + S_i + Gs_i + 2E_i + 2R_i`
//! * PACK CMS: `L + 4C + S_i + 2Gs_i + E_i + R_i + 2Gr_i`
//! * UNPACK SSS: `2L + 2C + 7E_i + 2R_i`
//! * UNPACK CSS: `2L + 4C + S_i + 2Gs_i + 2E_i + 2R_i` (method-1 scan,
//!   which is what the UNPACK composition uses)

use hpf_distarray::DimLayout;

use crate::plan::copyprog::CopyProgram;
use crate::schemes::{PackScheme, ScanMethod, UnpackScheme};

/// Mask-derived per-processor quantities for one 1-D workload. Everything
/// the Section 6.4 formulas consume; see the module docs for symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskStats {
    /// Local elements per processor, `L = N/P`.
    pub l: usize,
    /// Local slices per processor, `C = L/W`.
    pub c: usize,
    /// Array block size `W`.
    pub w: usize,
    /// Global selected count (`Size`).
    pub size: usize,
    /// Result-vector block size `W'` actually used.
    pub w_prime: usize,
    /// `E_i`: selected elements per processor.
    pub e: Vec<usize>,
    /// `R_i`: result-vector elements owned per processor.
    pub r: Vec<usize>,
    /// `K_i`: non-empty slices per processor.
    pub k: Vec<usize>,
    /// `Gs_i`: destination runs sent per processor.
    pub gs: Vec<usize>,
    /// `Gr_i`: runs received per processor.
    pub gr: Vec<usize>,
    /// Method-1 second-scan cost per processor
    /// (`Σ` over non-empty slices of last-selected offset + 1).
    pub scan_until: Vec<usize>,
    /// Retained bytes of the PACK plan's lowered gather copy programs per
    /// processor (DESIGN.md §16) — exact, reconstructed by running the
    /// same [`CopyProgram::lower`] over the same per-destination slot
    /// lists the composers produce. Identical for all three schemes (the
    /// gather order is rank order regardless of message format).
    pub pack_prog_bytes: Vec<u64>,
    /// Retained bytes of the UNPACK plan's lowered copy programs per
    /// processor: the serve programs (over the local `V` indices each
    /// requester is owed) plus the scatter programs (over the same
    /// element-slot lists as the PACK gather).
    pub unpack_prog_bytes: Vec<u64>,
}

impl MaskStats {
    /// Derive all quantities from the global mask of an `N`-element 1-D
    /// array distributed block-cyclically with block size `w` over `p`
    /// processors. `result_block_size` follows
    /// [`crate::PackOptions::result_block_size`]: `None` means the default
    /// block distribution `W' = ⌈Size/P⌉`.
    ///
    /// # Panics
    /// Panics unless `N` is divisible by `p·w` (the same divisibility PACK
    /// itself validates).
    pub fn from_mask(
        mask: &[bool],
        p: usize,
        w: usize,
        result_block_size: Option<usize>,
    ) -> MaskStats {
        let n = mask.len();
        assert!(p > 0 && w > 0, "degenerate layout");
        assert_eq!(n % (p * w), 0, "N = {n} not divisible by P·W = {}", p * w);
        let l = n / p;
        let c = l / w;
        let size = mask.iter().filter(|&&b| b).count();
        let w_prime = result_block_size.unwrap_or_else(|| size.div_ceil(p)).max(1);
        let v_layout = (size > 0)
            .then(|| DimLayout::new_general(size, p, w_prime).expect("positive parameters"));

        let mut e = vec![0usize; p];
        let mut k = vec![0usize; p];
        let mut gs = vec![0usize; p];
        let mut gr = vec![0usize; p];
        let mut scan_until = vec![0usize; p];
        let r = match &v_layout {
            Some(vl) => (0..p).map(|i| vl.local_len(i)).collect(),
            None => vec![0usize; p],
        };

        // Per-destination index lists, rebuilt exactly as the composers
        // and the request decode build them, so the copy programs lowered
        // below are byte-identical to the ones the plans retain:
        // `slots[i][dst]` = processor `i`'s local element indices routed to
        // `dst`, in rank order (the PACK gather slots and the UNPACK
        // targets alike); `serve[o][q]` = owner `o`'s local `V` indices
        // owed to requester `q`, in rank order.
        let mut slots: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); p]; p];
        let mut serve: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); p]; p];

        // Walk global slices in element order: slice `s` lives on processor
        // `s mod P`; the running selected-count is the global rank of each
        // slice's first selected element (exactly how the prefix-reduction-
        // sum ranks them).
        let mut rank = 0usize;
        for (s, slice) in mask.chunks_exact(w).enumerate() {
            let owner = s % p;
            let cnt = slice.iter().filter(|&&b| b).count();
            e[owner] += cnt;
            if cnt == 0 {
                continue;
            }
            k[owner] += 1;
            let last = slice.iter().rposition(|&b| b).expect("cnt > 0");
            scan_until[owner] += last + 1;
            let vl = v_layout.as_ref().expect("cnt > 0 implies size > 0");
            let slice_base = (s / p) * w;
            let mut rk = rank;
            for (off, &b) in slice.iter().enumerate() {
                if !b {
                    continue;
                }
                let dst = vl.owner(rk);
                slots[owner][dst].push((slice_base + off) as u32);
                serve[dst][owner].push(vl.local_of(rk) as u32);
                rk += 1;
            }
            // Ranks rank..rank+cnt split into destination runs at W'
            // boundaries; each run lands wholly on one owner of V.
            let mut pos = rank;
            let end = rank + cnt;
            while pos < end {
                let len = (w_prime - pos % w_prime).min(end - pos);
                gs[owner] += 1;
                gr[vl.owner(pos)] += 1;
                pos += len;
            }
            rank = end;
        }
        let prog_bytes = |lists: &[Vec<u32>]| -> u64 {
            lists
                .iter()
                .map(|l| CopyProgram::lower(l).mem_bytes())
                .sum()
        };
        let pack_prog_bytes: Vec<u64> = slots.iter().map(|per_dst| prog_bytes(per_dst)).collect();
        let unpack_prog_bytes: Vec<u64> = (0..p)
            .map(|i| prog_bytes(&serve[i]) + pack_prog_bytes[i])
            .collect();
        MaskStats {
            l,
            c,
            w,
            size,
            w_prime,
            e,
            r,
            k,
            gs,
            gr,
            scan_until,
            pack_prog_bytes,
            unpack_prog_bytes,
        }
    }

    /// Second-scan cost `S_i` under the given method (Section 6.1):
    /// whole-slice scans cost `W` per non-empty slice; until-collected
    /// scans stop at the last selected element.
    fn scan_cost(&self, i: usize, method: ScanMethod) -> usize {
        match method {
            ScanMethod::WholeSlice => self.w * self.k[i],
            ScanMethod::UntilCollected => self.scan_until[i],
        }
    }

    /// Predicted per-processor `LocalComp` operation counts for a parallel
    /// PACK under `scheme` with the given second-scan method.
    ///
    /// Only meaningful for `size > 0` (an all-false mask short-circuits the
    /// composition and redistribution steps the formulas account for).
    pub fn predict_pack_ops(&self, scheme: PackScheme, method: ScanMethod) -> Vec<u64> {
        let (plan, exec) = self.predict_pack_ops_split(scheme, method);
        plan.iter().zip(&exec).map(|(&p, &x)| p + x).collect()
    }

    /// The PACK prediction attributed to the planner/executor split:
    /// `(plan ops, execute ops)` per processor, summing exactly to
    /// [`MaskStats::predict_pack_ops`]. Scans, ranking, and composition are
    /// plan-time; the value gather and message decode are execute-time.
    pub fn predict_pack_ops_split(
        &self,
        scheme: PackScheme,
        method: ScanMethod,
    ) -> (Vec<u64>, Vec<u64>) {
        let (l, c) = (self.l, self.c);
        (0..self.e.len())
            .map(|i| {
                let (e, r, gs, gr) = (self.e[i], self.r[i], self.gs[i], self.gr[i]);
                let (plan, exec) = match scheme {
                    // 6.4.1: initial L+4E and replay E at plan; gather E
                    // and pair decode 2R at execute (ranking 2C at plan).
                    PackScheme::Simple => (l + 2 * c + 5 * e, e + 2 * r),
                    // 6.4.1: initial L+C, ranking 2C, composition
                    // C + S + Σ(1+len) at plan; gather E, decode 2R.
                    PackScheme::CompactStorage => {
                        (l + 4 * c + self.scan_cost(i, method) + gs + e, e + 2 * r)
                    }
                    // 6.4.2: composition charges 2 per segment header at
                    // plan; values gather at execute, decomposition 2 per
                    // received segment plus one per value.
                    PackScheme::CompactMessage => (
                        l + 4 * c + self.scan_cost(i, method) + 2 * gs,
                        e + r + 2 * gr,
                    ),
                };
                (plan as u64, exec as u64)
            })
            .unzip()
    }

    /// Predicted per-processor `LocalComp` operation counts for a parallel
    /// UNPACK under `scheme`. The field copy adds `L`; the request/reply
    /// READ direction services `2R_i` lookups and scatters `E_i` replies.
    /// UNPACK's compact-storage composition always uses the method-1
    /// (until-collected) second scan.
    pub fn predict_unpack_ops(&self, scheme: UnpackScheme) -> Vec<u64> {
        let (plan, exec) = self.predict_unpack_ops_split(scheme);
        plan.iter().zip(&exec).map(|(&p, &x)| p + x).collect()
    }

    /// The UNPACK prediction attributed to the planner/executor split:
    /// `(plan ops, execute ops)` per processor, summing exactly to
    /// [`MaskStats::predict_unpack_ops`]. Scans, ranking, composition, the
    /// request round, and the owners' request decode (`R_i` lookups) are
    /// plan-time; the field copy, the value replies (`R_i`), and the
    /// scatter (`E_i`) are execute-time.
    pub fn predict_unpack_ops_split(&self, scheme: UnpackScheme) -> (Vec<u64>, Vec<u64>) {
        let (l, c) = (self.l, self.c);
        (0..self.e.len())
            .map(|i| {
                let (e, r, gs) = (self.e[i], self.r[i], self.gs[i]);
                let plan = match scheme {
                    UnpackScheme::Simple => l + 2 * c + 6 * e + r,
                    UnpackScheme::CompactStorage => {
                        l + 4 * c + self.scan_cost(i, ScanMethod::UntilCollected) + 2 * gs + e + r
                    }
                };
                ((plan) as u64, (l + r + e) as u64)
            })
            .unzip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripes(n: usize, period: usize, on: usize) -> Vec<bool> {
        (0..n).map(|g| g % period < on).collect()
    }

    #[test]
    fn stats_count_the_basics() {
        // N=16, P=2, W=4: slices 0,2 on proc 0; slices 1,3 on proc 1.
        let mask = stripes(16, 4, 2); // two selected at the head of each slice
        let s = MaskStats::from_mask(&mask, 2, 4, None);
        assert_eq!((s.l, s.c, s.size), (8, 2, 8));
        assert_eq!(s.e, vec![4, 4]);
        assert_eq!(s.k, vec![2, 2]);
        // W' = ceil(8/2) = 4; each slice contributes 2 consecutive ranks.
        assert_eq!(s.w_prime, 4);
        // Ranks: slice0→0..2, slice1→2..4, slice2→4..6, slice3→6..8.
        // Runs split at 4: slice1's 2..4 stays whole, slice2's 4..6 whole.
        assert_eq!(s.gs, vec![2, 2]);
        assert_eq!(s.gs.iter().sum::<usize>(), s.gr.iter().sum::<usize>());
        assert_eq!(s.r, vec![4, 4]);
        // Until-collected scans stop at offset 1 (+1 = 2 per slice).
        assert_eq!(s.scan_until, vec![4, 4]);
    }

    #[test]
    fn empty_mask_is_harmless() {
        let s = MaskStats::from_mask(&[false; 12], 3, 2, None);
        assert_eq!(s.size, 0);
        assert_eq!(s.e, vec![0, 0, 0]);
        assert_eq!(s.gs, vec![0, 0, 0]);
    }

    #[test]
    fn run_splitting_respects_w_prime() {
        // One full slice of 4 selected on proc 0, W' = 3: ranks 0..4 split
        // into (0..3) and (3..4).
        let mut mask = vec![false; 8];
        mask[..4].fill(true);
        let s = MaskStats::from_mask(&mask, 2, 4, Some(3));
        assert_eq!(s.gs, vec![2, 0]);
        assert_eq!(s.gr, vec![1, 1]);
        assert_eq!(s.r, vec![3, 1]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_layout_panics() {
        MaskStats::from_mask(&[true; 10], 3, 2, None);
    }
}
