//! `PACK(ARRAY, MASK, VECTOR)` — the full Fortran 90 form with the optional
//! `VECTOR` argument: the result has `VECTOR`'s length, with positions past
//! the selected count copied from `VECTOR` itself.
//!
//! The paper implements the two-argument form (its result vector has
//! exactly `Size` elements); the three-argument form is standard F90 and
//! completes the intrinsic. After the ranking stage, selected elements are
//! routed exactly as in the simple scheme, and each processor additionally
//! forwards its slice of `VECTOR`'s *tail* (global positions
//! `Size..N''`) to the owners of those result positions — one extra set of
//! pairs folded into the same many-to-many round.

use hpf_distarray::{ArrayDesc, DimLayout};
use hpf_machine::collectives::alltoallv;
use hpf_machine::{Category, Proc, Wire};

use crate::error::PackError;
use crate::ranking::{rank_from_counts, slice_counts};
use crate::schemes::PackOptions;

use super::{decode_pairs, PackOutput};

/// Parallel `PACK(A, M, VECTOR)`.
///
/// `vec_local` is this processor's slice of the `VECTOR` argument under
/// `vec_layout` (a 1-D layout over all processors). The result vector has
/// `vec_layout.n()` elements and is distributed block (or block-cyclic
/// `opts.result_block_size`), like the two-argument form's result.
///
/// # Errors
/// Returns [`PackError::VectorTooShort`] (collectively) if `VECTOR` is
/// shorter than the number of selected elements.
pub fn pack_with_vector<T: Wire + Default>(
    proc: &mut Proc,
    desc: &ArrayDesc,
    a_local: &[T],
    m_local: &[bool],
    vec_local: &[T],
    vec_layout: &DimLayout,
    opts: &PackOptions,
) -> Result<PackOutput<T>, PackError> {
    let shape = super::validate(proc, desc, a_local, m_local)?;
    let me = proc.id();
    if vec_local.len() != vec_layout.local_len(me) {
        return Err(PackError::ArrayLenMismatch {
            expected: vec_layout.local_len(me),
            got: vec_local.len(),
        });
    }
    let n_out = vec_layout.n();

    // Ranking (counter-array storage; message format below is pair-based).
    let w0 = shape.w[0];
    let counts = proc.with_category(Category::LocalComp, |proc| {
        let counts = slice_counts(m_local, w0);
        proc.charge_ops(m_local.len());
        counts
    });
    let ranking = rank_from_counts(proc, &shape, counts, opts.prs);
    if ranking.size > n_out {
        return Err(PackError::VectorTooShort {
            size: ranking.size,
            capacity: n_out,
        });
    }

    // Result layout covers the whole VECTOR length.
    let result = super::result_layout(n_out, proc.nprocs(), opts.result_block_size)
        .expect("VECTOR is non-empty by layout construction");

    // Compose: selected elements (rank < Size) + my share of VECTOR's tail
    // (global positions Size..N'').
    let sends = proc.with_category(Category::LocalComp, |proc| {
        let nprocs = proc.nprocs();
        let mut sends: Vec<Vec<(u32, T)>> = (0..nprocs).map(|_| Vec::new()).collect();
        let mut ops = 0usize;
        // Selected elements, per slice (ranks are consecutive).
        for (k, &n) in slice_counts(m_local, w0).iter().enumerate() {
            if n == 0 {
                continue;
            }
            let r0 = ranking.ps_f[k] as usize;
            let mut j = 0usize;
            for (off, &sel) in m_local[k * w0..(k + 1) * w0].iter().enumerate() {
                if sel {
                    let rank = r0 + j;
                    let dest = result.owner(rank);
                    sends[dest].push((rank as u32, a_local[k * w0 + off]));
                    j += 1;
                    ops += 2;
                }
            }
            ops += w0; // slice scan
        }
        // VECTOR tail: positions >= Size keep VECTOR's values.
        for (l, &v) in vec_local.iter().enumerate() {
            let g = vec_layout.global_of(me, l);
            if g >= ranking.size {
                let dest = result.owner(g);
                sends[dest].push((g as u32, v));
                ops += 2;
            }
        }
        ops += vec_local.len();
        proc.charge_ops(ops);
        sends
    });

    let recvs = proc.with_category(Category::ManyToMany, |proc| {
        let world = proc.world();
        alltoallv(proc, &world, sends, opts.schedule)
    });

    let local_v = decode_pairs(proc, &result, recvs);
    Ok(PackOutput {
        local_v,
        size: ranking.size,
        v_layout: Some(result),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::MaskPattern;
    use crate::seq::pack_seq;
    use hpf_distarray::{Dist, GlobalArray};
    use hpf_machine::{CostModel, Machine, ProcGrid};

    fn run_case(n: usize, p: usize, w: usize, density: f64, n_pad: usize) {
        let grid = ProcGrid::line(p);
        let desc = ArrayDesc::new(&[n], &grid, &[Dist::BlockCyclic(w)]).unwrap();
        let pattern = MaskPattern::Random { density, seed: 3 };
        let a = GlobalArray::from_fn(&[n], |g| g[0] as i32 + 1);
        let m = pattern.global(&[n]);
        let pad: Vec<i32> = (0..n_pad as i32).map(|i| -100 - i).collect();
        let want = pack_seq(&a, &m, Some(&pad));

        let vec_layout = DimLayout::new_general(n_pad, p, n_pad.div_ceil(p)).unwrap();
        let (ap, mp) = (a.partition(&desc), m.partition(&desc));
        let machine = Machine::new(grid, CostModel::cm5());
        let (d, apr, mpr, vl, pr) = (&desc, &ap, &mp, &vec_layout, &pad);
        let out = machine.run(move |proc| {
            let vec_local: Vec<i32> = (0..vl.local_len(proc.id()))
                .map(|l| pr[vl.global_of(proc.id(), l)])
                .collect();
            pack_with_vector(
                proc,
                d,
                &apr[proc.id()],
                &mpr[proc.id()],
                &vec_local,
                vl,
                &PackOptions::default(),
            )
            .unwrap()
        });
        let layout = out.results[0].v_layout.unwrap();
        let mut got = vec![0i32; n_pad];
        for (pid, r) in out.results.iter().enumerate() {
            for (l, &x) in r.local_v.iter().enumerate() {
                got[layout.global_of(pid, l)] = x;
            }
        }
        assert_eq!(got, want, "n={n} p={p} w={w} density={density} pad={n_pad}");
    }

    #[test]
    fn vector_padding_matches_f90_semantics() {
        // ~50% of 64 selected, pad to 48 and 64.
        run_case(64, 4, 4, 0.5, 48);
        run_case(64, 4, 4, 0.5, 64);
        // Sparse: long tail of padding.
        run_case(64, 4, 2, 0.1, 40);
        // Full mask with exactly-sized vector: no padding used.
        run_case(32, 4, 8, 1.0, 32);
    }

    #[test]
    fn vector_too_short_is_a_collective_error() {
        let grid = ProcGrid::line(4);
        let desc = ArrayDesc::new(&[32], &grid, &[Dist::Block]).unwrap();
        let vec_layout = DimLayout::new_general(4, 4, 1).unwrap();
        let machine = Machine::new(grid, CostModel::zero());
        let (d, vl) = (&desc, &vec_layout);
        let out = machine.run(move |proc| {
            let a = vec![1i32; 8];
            let m = vec![true; 8]; // selects 32 > 4
            let v = vec![0i32; vl.local_len(proc.id())];
            pack_with_vector(proc, d, &a, &m, &v, vl, &PackOptions::default()).unwrap_err()
        });
        for e in out.results {
            assert_eq!(
                e,
                PackError::VectorTooShort {
                    size: 32,
                    capacity: 4
                }
            );
        }
    }
}
