//! The simple storage scheme (SSS) — Sections 6.1 / 6.4.1.
//!
//! During the initial scan, every selected element's bookkeeping is saved:
//! the paper lists `d + 3` items (a local index per dimension, the tile
//! number, the in-slice rank, and later the destination processor), costing
//! at least four memory read/write operations per selected element. The
//! final step replays the saved records against `PS_f` to produce the
//! global rank and destination of each element, and the message is a stream
//! of `(global rank, value)` pairs — `2·E_i` words.
//!
//! Local computation ∝ `L + C + 6E_i + 2E_a`: the cheapest scheme per
//! *slice* (single scan), the most expensive per *element* — which is why
//! it wins at cyclic distribution (many slices, `C = L`) and low mask
//! density, and loses as blocks grow and density rises.

use hpf_machine::collectives::alltoallv;
use hpf_machine::{Category, Proc, Wire};

use crate::ranking::{rank_from_counts, RankShape};
use crate::schemes::PackOptions;

use super::{decode_pairs, result_layout, PackOutput};

/// Bookkeeping saved per selected element during the initial scan.
#[derive(Debug, Clone, Copy)]
struct ElemRecord {
    /// Local linear index (stands in for the paper's per-dimension indices).
    local: u32,
    /// Slice number (determines the `PS_f` slot; on dimension 0 this is the
    /// tile number the paper stores).
    slice: u32,
    /// In-slice initial rank.
    init_rank: u32,
}

pub(crate) fn pack_sss<T: Wire + Default>(
    proc: &mut Proc,
    shape: &RankShape,
    a_local: &[T],
    m_local: &[bool],
    opts: &PackOptions,
) -> PackOutput<T> {
    let w0 = shape.w[0];

    // Initial step: one scan producing both the slice counts (PS_0/RS_0)
    // and the per-element records. Charged L for the scan plus 4 memory
    // operations per selected element for record maintenance (Section 6.4.1).
    let (counts, records) = proc.with_category(Category::LocalComp, |proc| {
        let mut counts = vec![0i32; m_local.len() / w0.max(1)];
        let mut records: Vec<ElemRecord> = Vec::new();
        for (l, &selected) in m_local.iter().enumerate() {
            if selected {
                let k = l / w0;
                records.push(ElemRecord {
                    local: l as u32,
                    slice: k as u32,
                    init_rank: counts[k] as u32,
                });
                counts[k] += 1;
            }
        }
        proc.charge_ops(m_local.len() + 4 * records.len());
        (counts, records)
    });

    // Ranking: intermediate steps + final base-rank combination.
    let ranking = rank_from_counts(proc, shape, counts, opts.prs);
    if ranking.size == 0 {
        return PackOutput {
            local_v: Vec::new(),
            size: 0,
            v_layout: None,
        };
    }
    let layout =
        result_layout(ranking.size, proc.nprocs(), opts.result_block_size).expect("size > 0");

    // Final step: replay the records to compute global ranks and compose
    // the (rank, value) pair messages — 2 ops per element.
    let sends = proc.with_category(Category::LocalComp, |proc| {
        let nprocs = proc.nprocs();
        let mut sends: Vec<Vec<(u32, T)>> = (0..nprocs).map(|_| Vec::new()).collect();
        for rec in &records {
            let rank = rec.init_rank as usize + ranking.ps_f[rec.slice as usize] as usize;
            let dest = layout.owner(rank);
            sends[dest].push((rank as u32, a_local[rec.local as usize]));
        }
        proc.charge_ops(2 * records.len());
        sends
    });

    // Redistribution: many-to-many personalized communication.
    let recvs = proc.with_category(Category::ManyToMany, |proc| {
        let world = proc.world();
        alltoallv(proc, &world, sends, opts.schedule)
    });

    let local_v = decode_pairs(proc, &layout, recvs);
    PackOutput {
        local_v,
        size: ranking.size,
        v_layout: Some(layout),
    }
}
