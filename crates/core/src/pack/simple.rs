//! The simple storage scheme (SSS) — Sections 6.1 / 6.4.1.
//!
//! During the initial scan, every selected element's bookkeeping is saved:
//! the paper lists `d + 3` items (a local index per dimension, the tile
//! number, the in-slice rank, and later the destination processor), costing
//! at least four memory read/write operations per selected element. The
//! composition step replays the saved records against `PS_f` to produce
//! the global rank and destination of each element, and the message is a
//! stream of `(global rank, value)` pairs — `2·E_i` words.
//!
//! Local computation ∝ `L + C + 6E_i + 2E_a`: the cheapest scheme per
//! *slice* (single scan), the most expensive per *element* — which is why
//! it wins at cyclic distribution (many slices, `C = L`) and low mask
//! density, and loses as blocks grow and density rises.
//!
//! Under the plan/execute split, the scan (`L + 4E`), the record replay
//! (`1/element`), and the ranking are plan-time; the value gather
//! (`1/element`) and the pair decode (`2/element`) are execute-time.

use crate::plan::composer::{Composer, SimpleComposer};

/// The SSS plan-time composer: per-element records, explicit ranks, one
/// replay operation per element (the gather costs another at execute,
/// matching the one-shot scheme's `2E` final step).
pub(crate) fn composer() -> Box<dyn Composer> {
    Box::new(SimpleComposer::new(1))
}
