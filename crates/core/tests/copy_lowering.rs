//! Kernel-identity properties for the plan-time copy-program lowering
//! (DESIGN.md §16): across scheme × layout (block / cyclic /
//! block-cyclic) × mask density × block width, the lowered bulk kernels
//! must be bit-identical to the sequential Fortran oracle — on the first
//! (cold, skeleton-building) execute *and* on steady-state refills of the
//! pooled buffers, where the program-driven positional overwrite is the
//! only thing touching the wire payloads.
//!
//! CI additionally runs the whole suite with `--features scalar-ref`,
//! which forces every walker back to the per-element reference loop; both
//! runs passing is the kernel-identity gate.

use proptest::prelude::*;

use hpf_core::{
    plan_pack, plan_unpack,
    seq::{pack_seq, unpack_seq},
    MaskPattern, PackOptions, PackScheme, ScanMethod, UnpackOptions, UnpackScheme,
};
use hpf_distarray::{local_from_fn, ArrayDesc, DimLayout, Dist, GlobalArray};
use hpf_machine::{CostModel, Machine, ProcGrid};

/// 1-D layout sweep: `(P, W, T)` with `N = P·W·T`. `T = 1` is a block
/// distribution, `W = 1` is cyclic, anything else is block-cyclic.
fn any_layout() -> impl Strategy<Value = (usize, usize, usize)> {
    (
        1usize..=4,
        prop::sample::select(vec![1usize, 2, 3, 8]),
        1usize..=4,
    )
}

fn any_pattern() -> impl Strategy<Value = MaskPattern> {
    prop_oneof![
        Just(MaskPattern::Full),
        Just(MaskPattern::Empty),
        Just(MaskPattern::FirstHalf),
        (0.05f64..0.95, 0u64..1000)
            .prop_map(|(density, seed)| MaskPattern::Random { density, seed }),
    ]
}

fn build(p: usize, w: usize, t: usize) -> (ProcGrid, ArrayDesc) {
    let grid = ProcGrid::new(&[p]);
    let desc = ArrayDesc::new(&[p * w * t], &grid, &[Dist::BlockCyclic(w)]).unwrap();
    (grid, desc)
}

/// Reassemble a distributed result vector into a dense global Vec.
fn assemble<T: Copy + Default>(layout: &DimLayout, locals: &[Vec<T>], size: usize) -> Vec<T> {
    let mut v = vec![T::default(); size];
    for (p, local) in locals.iter().enumerate() {
        for (l, &x) in local.iter().enumerate() {
            v[layout.global_of(p, l)] = x;
        }
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, .. ProptestConfig::default() })]

    /// Planned PACK through the lowered kernels equals the sequential
    /// oracle, both on the cold execute and on a warm pooled refill with
    /// fresh values.
    #[test]
    fn lowered_pack_matches_oracle(
        layout in any_layout(),
        pattern in any_pattern(),
        scheme in prop::sample::select(PackScheme::ALL.to_vec()),
        method in prop::sample::select(vec![ScanMethod::UntilCollected, ScanMethod::WholeSlice]),
        w_prime in prop::sample::select(vec![None, Some(1usize), Some(3)]),
    ) {
        let (p, w, t) = layout;
        let (grid, desc) = build(p, w, t);
        let n = p * w * t;
        let mut opts = PackOptions::new(scheme);
        opts.scan_method = method;
        opts.result_block_size = w_prime;
        let machine = Machine::new(grid, CostModel::cm5());
        let (d, o) = (&desc, &opts);
        let out = machine.run(move |proc| {
            let m = pattern.local(d, proc.id());
            let a = local_from_fn(d, proc.id(), |g| g[0] as i64 + 1);
            let b = local_from_fn(d, proc.id(), |g| -(g[0] as i64) - 1000);
            let plan = plan_pack(proc, d, &m, o).unwrap();
            // Four executes: cold (skeletons built), second slot cold,
            // then a fully warm positional refill; a final fresh execute
            // cross-checks that warm refills did not corrupt anything.
            let mut got = plan.execute(proc, &a).unwrap();
            plan.execute_into(proc, &a, &mut got).unwrap();
            plan.execute_into(proc, &b, &mut got).unwrap();
            let cold = plan.execute(proc, &b).unwrap();
            (got.local_v, cold.local_v)
        });
        let m = pattern.global(&[n]);
        let b_global = GlobalArray::from_fn(&[n], |g| -(g[0] as i64) - 1000);
        let want = pack_seq(&b_global, &m, None);
        for (warm, cold) in &out.results {
            prop_assert_eq!(warm, cold, "warm refill diverged from a fresh execute");
        }
        let locals: Vec<Vec<i64>> = out.results.into_iter().map(|r| r.0).collect();
        if want.is_empty() {
            prop_assert!(locals.iter().all(|l| l.is_empty()));
        } else {
            let layout = DimLayout::new_general(
                want.len(),
                p,
                w_prime.unwrap_or_else(|| want.len().div_ceil(p)).max(1),
            )
            .unwrap();
            prop_assert_eq!(assemble(&layout, &locals, want.len()), want);
        }
    }

    /// Planned UNPACK through the lowered serve/scatter kernels equals the
    /// sequential oracle, cold and warm.
    #[test]
    fn lowered_unpack_matches_oracle(
        layout in any_layout(),
        pattern in any_pattern(),
        scheme in prop::sample::select(UnpackScheme::ALL.to_vec()),
        slack in 0usize..4,
        w_prime in 1usize..=4,
    ) {
        let (p, w, t) = layout;
        let (grid, desc) = build(p, w, t);
        let n = p * w * t;
        let size = pattern.global(&[n]).data().iter().filter(|&&b| b).count();
        let v_layout = DimLayout::new_general((size + slack).max(1), p, w_prime).unwrap();
        let opts = UnpackOptions::new(scheme);
        let machine = Machine::new(grid, CostModel::cm5());
        let (d, vl, o) = (&desc, &v_layout, &opts);
        let out = machine.run(move |proc| {
            let m = pattern.local(d, proc.id());
            let f = local_from_fn(d, proc.id(), |g| g[0] as i64 + 7000);
            let mkv = |salt: i64| -> Vec<i64> {
                (0..vl.local_len(proc.id()))
                    .map(|l| salt + vl.global_of(proc.id(), l) as i64)
                    .collect()
            };
            let (va, vb) = (mkv(-40_000), mkv(90_000));
            let plan = plan_unpack(proc, d, &m, vl, o).unwrap();
            let mut got = plan.execute(proc, &f, &va).unwrap();
            plan.execute_into(proc, &f, &va, &mut got).unwrap();
            plan.execute_into(proc, &f, &vb, &mut got).unwrap();
            got
        });
        let m = pattern.global(&[n]);
        let f_global = GlobalArray::from_fn(&[n], |g| g[0] as i64 + 7000);
        let vb_global: Vec<i64> = (0..v_layout.n()).map(|g| 90_000 + g as i64).collect();
        let want = unpack_seq(&vb_global, &m, &f_global);
        let got = GlobalArray::assemble(&desc, &out.results);
        prop_assert_eq!(got.data(), want.data());
    }
}

/// Dense masks on block-dominant layouts must lower almost entirely to
/// bulk ops — the invariant the perf layer gates (`bulk-copy fraction ≥
/// 0.9` on dense workloads).
#[test]
fn dense_block_masks_lower_to_bulk() {
    let (grid, desc) = build(4, 32, 2);
    let machine = Machine::new(grid, CostModel::cm5());
    let d = &desc;
    let out = machine.run(move |proc| {
        let m = MaskPattern::FirstHalf.local(d, proc.id());
        let pack = plan_pack(proc, d, &m, &PackOptions::new(PackScheme::CompactMessage)).unwrap();
        let vl = pack.v_layout().unwrap();
        let unpack = plan_unpack(
            proc,
            d,
            &m,
            &vl,
            &UnpackOptions::new(UnpackScheme::CompactStorage),
        )
        .unwrap();
        (pack.copy_stats(), unpack.copy_stats())
    });
    for (ps, us) in out.results {
        assert!(ps.total_elements > 0, "dense mask must move elements");
        assert!(
            ps.bulk_fraction() >= 0.9,
            "pack bulk fraction {} < 0.9 ({ps:?})",
            ps.bulk_fraction()
        );
        assert!(
            us.bulk_fraction() >= 0.9,
            "unpack bulk fraction {} < 0.9 ({us:?})",
            us.bulk_fraction()
        );
    }
}

/// A periodic mask on a block layout gathers with a constant stride — the
/// `Strided` op must actually fire (cyclic-style access without bulk runs).
#[test]
fn periodic_masks_lower_to_strided() {
    let (grid, desc) = build(2, 64, 1);
    let machine = Machine::new(grid, CostModel::cm5());
    let d = &desc;
    let out = machine.run(move |proc| {
        let m: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        let plan = plan_pack(proc, d, &m, &PackOptions::new(PackScheme::Simple)).unwrap();
        plan.copy_stats()
    });
    for stats in out.results {
        assert!(stats.strided > 0, "expected strided ops, got {stats:?}");
    }
}
