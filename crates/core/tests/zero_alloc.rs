//! Steady-state allocation gate: from the third execution of a cached plan
//! onward (the two pool slots per destination are warmed alternately, so
//! warm-up is exactly two iterations), `execute_into` must perform **zero
//! heap allocations** on every worker thread — the whole gather → exchange
//! → decode loop runs out of pooled buffers and reused capacity.
//!
//! The gate is exact and deterministic: the test installs the counting
//! global allocator and asserts the per-thread allocation delta across the
//! steady-state iterations is literally zero, for every PACK scheme and
//! every UNPACK scheme, at both cyclic and wide block sizes.

use hpf_core::{
    plan_pack, plan_unpack, MaskPattern, PackOptions, PackOutput, PackScheme, UnpackOptions,
    UnpackScheme,
};
use hpf_distarray::{local_from_fn, ArrayDesc, DimLayout, Dist};
use hpf_machine::alloc_counter::{thread_totals, CountingAllocator};
use hpf_machine::{CostModel, Machine, ProcGrid};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Two warm-up executes fill both slots of every pool entry; the measured
/// window starts at the third.
const WARMUP: usize = 2;
/// Measured steady-state executes.
const STEADY: usize = 4;

const N: usize = 256;
const P: usize = 4;

fn desc(w: usize) -> ArrayDesc {
    ArrayDesc::new(&[N], &ProcGrid::line(P), &[Dist::BlockCyclic(w)]).unwrap()
}

fn mask() -> MaskPattern {
    MaskPattern::Random {
        density: 0.5,
        seed: 7,
    }
}

#[test]
fn pack_execute_is_allocation_free_in_steady_state() {
    for w in [1usize, 4] {
        for scheme in PackScheme::ALL {
            let d = desc(w);
            let opts = PackOptions::new(scheme);
            let (dr, o, pattern) = (&d, &opts, mask());
            let machine = Machine::new(ProcGrid::line(P), CostModel::cm5());
            let out = machine.run(move |proc| {
                let m = local_from_fn(dr, proc.id(), |g| pattern.value(g, &[N]));
                let a = local_from_fn(dr, proc.id(), |g| g[0] as i32);
                let plan = plan_pack(proc, dr, &m, o).unwrap();
                let mut out = PackOutput {
                    local_v: Vec::new(),
                    size: 0,
                    v_layout: None,
                };
                for _ in 0..WARMUP {
                    plan.execute_into(proc, &a, &mut out).unwrap();
                }
                let baseline = out.local_v.clone();
                let (c0, b0) = thread_totals();
                for _ in 0..STEADY {
                    plan.execute_into(proc, &a, &mut out).unwrap();
                }
                let (c1, b1) = thread_totals();
                assert_eq!(out.local_v, baseline, "steady-state result drifted");
                (c1 - c0, b1 - b0)
            });
            for (p, &(allocs, bytes)) in out.results.iter().enumerate() {
                assert_eq!(
                    (allocs, bytes),
                    (0, 0),
                    "{scheme:?} w={w}: proc {p} allocated {allocs} times \
                     ({bytes} bytes) in {STEADY} steady-state executes"
                );
            }
        }
    }
}

#[test]
fn unpack_execute_is_allocation_free_in_steady_state() {
    for w in [1usize, 4] {
        for scheme in UnpackScheme::ALL {
            let d = desc(w);
            let opts = UnpackOptions::new(scheme);
            let pattern = mask();
            let size = {
                let m = pattern.global(&[N]);
                m.data().iter().filter(|&&b| b).count()
            };
            let vl = DimLayout::new_general(size, P, size.div_ceil(P)).unwrap();
            let (dr, o, vlr) = (&d, &opts, &vl);
            let machine = Machine::new(ProcGrid::line(P), CostModel::cm5());
            let out = machine.run(move |proc| {
                let m = local_from_fn(dr, proc.id(), |g| pattern.value(g, &[N]));
                let f = local_from_fn(dr, proc.id(), |_| -1i32);
                let v: Vec<i32> = (0..vlr.local_len(proc.id()))
                    .map(|l| vlr.global_of(proc.id(), l) as i32)
                    .collect();
                let plan = plan_unpack(proc, dr, &m, vlr, o).unwrap();
                let mut out = Vec::new();
                for _ in 0..WARMUP {
                    plan.execute_into(proc, &f, &v, &mut out).unwrap();
                }
                let baseline = out.clone();
                let (c0, b0) = thread_totals();
                for _ in 0..STEADY {
                    plan.execute_into(proc, &f, &v, &mut out).unwrap();
                }
                let (c1, b1) = thread_totals();
                assert_eq!(out, baseline, "steady-state result drifted");
                (c1 - c0, b1 - b0)
            });
            for (p, &(allocs, bytes)) in out.results.iter().enumerate() {
                assert_eq!(
                    (allocs, bytes),
                    (0, 0),
                    "{scheme:?} w={w}: proc {p} allocated {allocs} times \
                     ({bytes} bytes) in {STEADY} steady-state executes"
                );
            }
        }
    }
}

/// Fault-free pooled execution never deep-copies a payload: the
/// `payload.clone_words` counter stays zero even with metrics on (metrics
/// runs allocate for bookkeeping, so this is a separate, counter-only
/// assertion).
#[test]
fn fault_free_execution_never_clones_payloads() {
    let d = desc(4);
    let opts = PackOptions::new(PackScheme::CompactStorage);
    let (dr, o, pattern) = (&d, &opts, mask());
    let machine = Machine::new(ProcGrid::line(P), CostModel::cm5()).with_metrics(true);
    let out = machine.run(move |proc| {
        let m = local_from_fn(dr, proc.id(), |g| pattern.value(g, &[N]));
        let a = local_from_fn(dr, proc.id(), |g| g[0] as i32);
        let plan = plan_pack(proc, dr, &m, o).unwrap();
        let mut out = PackOutput {
            local_v: Vec::new(),
            size: 0,
            v_layout: None,
        };
        for _ in 0..4 {
            plan.execute_into(proc, &a, &mut out).unwrap();
        }
        out.size
    });
    assert!(out.results[0] > 0);
    assert_eq!(
        out.merged_metrics().counter("payload.clone_words"),
        0,
        "fault-free run deep-copied a payload"
    );
}
