//! Crash-recovery sweep over a planned PACK → UNPACK roundtrip: for every
//! send step k (and every receive step k) at which a processor can crash,
//! the recovered run must be bit-exact — same results, same simulated
//! clocks — as the fault-free run, for every storage scheme.

use hpf_core::{
    plan_pack, plan_unpack, MaskPattern, PackOptions, PackScheme, UnpackOptions, UnpackScheme,
};
use hpf_distarray::{local_from_fn, ArrayDesc, DimLayout, Dist};
use hpf_machine::{Category, CostModel, FaultPlan, Machine, Proc, ProcGrid, RunOutput};

const P: usize = 4;

/// Checkpointed state threaded through the two epochs: the packed vector,
/// its replicated size/layout, and the unpacked result.
type St = (Vec<i32>, usize, Option<DimLayout>, Vec<i32>);

fn data_at(gidx: &[usize], salt: i32) -> i32 {
    gidx.iter()
        .fold(salt, |acc, &x| acc.wrapping_mul(31).wrapping_add(x as i32))
}

/// Epoch 0 packs a masked array; epoch 1 unpacks it back over a fresh
/// field. A crash in epoch 0 exercises the from-scratch resume (no
/// checkpoint exists yet); a crash in epoch 1 exercises snapshot restore
/// plus replay.
fn roundtrip(
    pack_opts: PackOptions,
    unpack_opts: UnpackOptions,
) -> impl Fn(&mut Proc) -> (Vec<i32>, Vec<i32>) + Sync {
    move |proc: &mut Proc| {
        let grid = ProcGrid::line(P);
        let desc = ArrayDesc::new(&[24], &grid, &[Dist::BlockCyclic(2)]).unwrap();
        let pattern = MaskPattern::Random {
            density: 0.55,
            seed: 9,
        };
        let mut st: St = (Vec::new(), 0, None, Vec::new());
        proc.epoch(&mut st, |proc, st| {
            let m = pattern.local(&desc, proc.id());
            let a = local_from_fn(&desc, proc.id(), |g| data_at(g, 17));
            let plan = plan_pack(proc, &desc, &m, &pack_opts).unwrap();
            let out = plan.execute(proc, &a).unwrap();
            st.0 = out.local_v;
            st.1 = out.size;
            st.2 = out.v_layout;
        });
        proc.epoch(&mut st, |proc, st| {
            let vl = st.2.expect("mask selects elements");
            let m = pattern.local(&desc, proc.id());
            let f = local_from_fn(&desc, proc.id(), |g| data_at(g, -5));
            let plan = plan_unpack(proc, &desc, &m, &vl, &unpack_opts).unwrap();
            st.3 = plan.execute(proc, &f, &st.0).unwrap();
        });
        (st.0.clone(), st.3.clone())
    }
}

fn machine(faults: FaultPlan) -> Machine {
    Machine::new(ProcGrid::line(P), CostModel::cm5()).with_faults(faults)
}

fn assert_bit_exact(
    clean: &RunOutput<(Vec<i32>, Vec<i32>)>,
    crashed: &RunOutput<(Vec<i32>, Vec<i32>)>,
    what: &str,
) {
    assert_eq!(clean.results, crashed.results, "{what}: results diverged");
    for (ca, cb) in clean.clocks.iter().zip(&crashed.clocks) {
        assert_eq!(ca.now_ms(), cb.now_ms(), "{what}: final clock diverged");
        for cat in Category::ALL {
            assert_eq!(ca.cat_ms(cat), cb.cat_ms(cat), "{what}: {cat:?} diverged");
        }
        assert_eq!(ca.ops, cb.ops, "{what}: ops diverged");
        assert_eq!(ca.words_sent, cb.words_sent, "{what}: words diverged");
    }
}

/// Sweep the crash over every send step and every receive step of one
/// victim until the schedule stops firing; each recovered run must match
/// the fault-free run bit-exactly.
fn sweep(pack_scheme: PackScheme, unpack_scheme: UnpackScheme) {
    let program = roundtrip(
        PackOptions::new(pack_scheme),
        UnpackOptions::new(unpack_scheme),
    );
    let clean = machine(FaultPlan::new(0))
        .run_recoverable(&program)
        .expect("fault-free run");
    let victim = 1usize;
    for recv_side in [false, true] {
        let mut fired = 0u64;
        for k in 1u64..500 {
            let plan = if recv_side {
                FaultPlan::new(0).with_crash_at_recv(victim, k)
            } else {
                FaultPlan::new(0).with_crash(victim, k)
            };
            let crashed = machine(plan)
                .run_recoverable(&program)
                .unwrap_or_else(|e| panic!("step {k} (recv={recv_side}) unrecovered: {e}"));
            let rec = crashed.recovery.as_ref().unwrap();
            if rec.replays == 0 {
                // Past the last send/receive step — the sweep is complete.
                assert!(fired > 0, "crash schedule never fired");
                break;
            }
            fired += 1;
            assert_eq!(rec.replays, 1, "step {k}: one crash, one recovery");
            assert_bit_exact(&clean, &crashed, &format!("step {k} recv={recv_side}"));
        }
        assert!(fired < 499, "sweep did not terminate");
    }
}

#[test]
fn simple_pack_simple_unpack_survive_any_crash_step() {
    sweep(PackScheme::Simple, UnpackScheme::Simple);
}

#[test]
fn compact_storage_roundtrip_survives_any_crash_step() {
    sweep(PackScheme::CompactStorage, UnpackScheme::CompactStorage);
}

#[test]
fn compact_message_pack_survives_any_crash_step() {
    sweep(PackScheme::CompactMessage, UnpackScheme::CompactStorage);
}
