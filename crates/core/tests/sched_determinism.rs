//! Scheduler invisibility at the algorithm level: a planned PACK → UNPACK
//! roundtrip — every storage scheme, on 1-D and 2-D grids — produces
//! bit-identical results and simulated clocks whatever the worker-pool
//! size. The machine-level suite (hpf-machine `tests/sched.rs`) covers the
//! substrate; this one covers the paper's actual algorithms end to end,
//! including their pooled exchanges and plan-phase collectives.

use hpf_core::{
    pack, plan_unpack, MaskPattern, PackOptions, PackScheme, UnpackOptions, UnpackScheme,
};
use hpf_distarray::{local_from_fn, ArrayDesc, Dist};
use hpf_machine::{Category, CostModel, Machine, Proc, ProcGrid, RunOutput};

fn data_at(gidx: &[usize], salt: i32) -> i32 {
    gidx.iter()
        .fold(salt, |acc, &x| acc.wrapping_mul(31).wrapping_add(x as i32))
}

/// PACK a masked block-cyclic array, then UNPACK the vector back over a
/// fresh field; returns both locals so every element's final placement is
/// part of the compared result.
fn roundtrip(
    grid: ProcGrid,
    dists: Vec<Dist>,
    extents: Vec<usize>,
    pack_opts: PackOptions,
    unpack_opts: UnpackOptions,
) -> impl Fn(&mut Proc) -> (Vec<i32>, Vec<i32>) + Sync {
    move |proc: &mut Proc| {
        let desc = ArrayDesc::new(&extents, &grid, &dists).unwrap();
        let pattern = MaskPattern::Random {
            density: 0.45,
            seed: 23,
        };
        let m = pattern.local(&desc, proc.id());
        let a = local_from_fn(&desc, proc.id(), |g| data_at(g, 17));
        let out = pack(proc, &desc, &a, &m, &pack_opts).unwrap();
        let vl = out.v_layout.expect("mask selects elements");
        let f = local_from_fn(&desc, proc.id(), |g| data_at(g, -5));
        let plan = plan_unpack(proc, &desc, &m, &vl, &unpack_opts).unwrap();
        let unpacked = plan.execute(proc, &f, &out.local_v).unwrap();
        (out.local_v, unpacked)
    }
}

fn assert_identical(
    a: &RunOutput<(Vec<i32>, Vec<i32>)>,
    b: &RunOutput<(Vec<i32>, Vec<i32>)>,
    what: &str,
) {
    assert_eq!(a.results, b.results, "{what}: results diverged");
    for (ca, cb) in a.clocks.iter().zip(&b.clocks) {
        assert_eq!(ca.now_ms(), cb.now_ms(), "{what}: final clock diverged");
        for cat in Category::ALL {
            assert_eq!(ca.cat_ms(cat), cb.cat_ms(cat), "{what}: {cat:?} diverged");
        }
        assert_eq!(ca.ops, cb.ops, "{what}: ops diverged");
        assert_eq!(ca.words_sent, cb.words_sent, "{what}: words diverged");
        assert_eq!(ca.startups, cb.startups, "{what}: startups diverged");
    }
    assert_eq!(a.comm_matrix, b.comm_matrix, "{what}: comm matrix diverged");
}

#[test]
fn every_scheme_and_grid_is_identical_across_pool_sizes() {
    let grids: Vec<(ProcGrid, Vec<Dist>, Vec<usize>)> = vec![
        (ProcGrid::line(4), vec![Dist::BlockCyclic(2)], vec![24]),
        (
            ProcGrid::new(&[2, 3]),
            vec![Dist::BlockCyclic(2), Dist::BlockCyclic(1)],
            vec![8, 9],
        ),
    ];
    for (grid, dists, extents) in grids {
        for pack_scheme in PackScheme::ALL {
            for unpack_scheme in UnpackScheme::ALL {
                let program = roundtrip(
                    grid.clone(),
                    dists.clone(),
                    extents.clone(),
                    PackOptions::new(pack_scheme),
                    UnpackOptions::new(unpack_scheme),
                );
                let build = |workers: usize| {
                    Machine::new(grid.clone(), CostModel::cm5())
                        .with_test_preset()
                        .with_workers(workers)
                };
                let reference = build(1).run(&program);
                for workers in [3usize, 8] {
                    let out = build(workers).run(&program);
                    assert_identical(
                        &reference,
                        &out,
                        &format!(
                            "{pack_scheme:?}/{unpack_scheme:?} on {:?} workers={workers}",
                            grid.dims()
                        ),
                    );
                }
            }
        }
    }
}
