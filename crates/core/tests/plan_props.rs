//! Property tests for the planner/executor split: over random layouts,
//! mask patterns, and schemes, `plan(...).execute(data)` must be
//! bit-identical to the one-shot `pack`/`unpack` entry points, and a
//! cached plan re-executed against *fresh* data must match a fresh direct
//! call — the plan is value-independent by construction.

use proptest::prelude::*;

use hpf_core::{
    pack, plan_pack, plan_unpack, unpack, MaskPattern, PackOptions, PackScheme, PlanCache,
    ScanMethod, UnpackOptions, UnpackScheme,
};
use hpf_distarray::{local_from_fn, ArrayDesc, DimLayout, Dist};
use hpf_machine::{CostModel, Machine, ProcGrid};

/// Layout plus a mask pattern valid for that layout's rank
/// (`FirstHalf` is 1-D only, `LowerTriangular` 2-D only).
#[allow(clippy::type_complexity)]
fn any_case() -> impl Strategy<Value = ((Vec<usize>, Vec<usize>, Vec<usize>), MaskPattern)> {
    any_desc().prop_flat_map(|layout| {
        let structured = if layout.0.len() == 1 {
            MaskPattern::FirstHalf
        } else {
            MaskPattern::LowerTriangular
        };
        (
            Just(layout),
            prop_oneof![
                Just(MaskPattern::Full),
                Just(MaskPattern::Empty),
                Just(structured),
                (0.05f64..0.95, 0u64..1000)
                    .prop_map(|(density, seed)| MaskPattern::Random { density, seed }),
            ],
        )
    })
}

fn any_pack_opts() -> impl Strategy<Value = PackOptions> {
    (
        prop::sample::select(PackScheme::ALL.to_vec()),
        prop::sample::select(vec![ScanMethod::UntilCollected, ScanMethod::WholeSlice]),
    )
        .prop_map(|(scheme, scan_method)| {
            let mut opts = PackOptions::new(scheme);
            opts.scan_method = scan_method;
            opts
        })
}

/// Random 1-D or 2-D descriptor: per-dimension `(P, W, T)` in `1..=3`.
fn any_desc() -> impl Strategy<Value = (Vec<usize>, Vec<usize>, Vec<usize>)> {
    prop::collection::vec((1usize..=3, 1usize..=3, 1usize..=3), 1..=2).prop_map(|dims| {
        let shape: Vec<usize> = dims.iter().map(|&(p, w, t)| p * w * t).collect();
        let grid: Vec<usize> = dims.iter().map(|&(p, _, _)| p).collect();
        let ws: Vec<usize> = dims.iter().map(|&(_, w, _)| w).collect();
        (shape, grid, ws)
    })
}

fn build(shape: &[usize], grid_dims: &[usize], ws: &[usize]) -> (ProcGrid, ArrayDesc) {
    let grid = ProcGrid::new(grid_dims);
    let dists: Vec<Dist> = ws.iter().map(|&w| Dist::BlockCyclic(w)).collect();
    let desc = ArrayDesc::new(shape, &grid, &dists).unwrap();
    (grid, desc)
}

fn data_at(gidx: &[usize], salt: i32) -> i32 {
    gidx.iter()
        .fold(salt, |acc, &x| acc.wrapping_mul(31).wrapping_add(x as i32))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// `plan_pack` + `execute` is bit-identical to the one-shot `pack`,
    /// and re-executing the cached plan against fresh values matches a
    /// fresh direct call.
    #[test]
    fn planned_pack_matches_direct(
        case in any_case(),
        opts in any_pack_opts(),
    ) {
        let ((shape, grid_dims, ws), pattern) = case;
        let (grid, desc) = build(&shape, &grid_dims, &ws);
        let machine = Machine::new(grid, CostModel::cm5());
        let (d, o, sh) = (&desc, &opts, shape.clone());
        let out = machine.run(move |proc| {
            let m = pattern.local(d, proc.id());
            let a = local_from_fn(d, proc.id(), |g| data_at(g, 17));
            let b = local_from_fn(d, proc.id(), |g| data_at(g, -5));

            let mut cache = PlanCache::new();
            let plan = cache
                .pack_plan(proc, d, &m, pattern.fingerprint(), o)
                .unwrap();
            let planned_a = plan.execute(proc, &a).unwrap();
            // Second lookup is a cache hit; fresh data through the same plan.
            let plan = cache
                .pack_plan(proc, d, &m, pattern.fingerprint(), o)
                .unwrap();
            let planned_b = plan.execute(proc, &b).unwrap();

            let direct_a = pack(proc, d, &a, &m, o).unwrap();
            let direct_b = pack(proc, d, &b, &m, o).unwrap();
            (planned_a, planned_b, direct_a, direct_b)
        });
        prop_assert_eq!(sh.len(), desc.shape().len());
        for (planned_a, planned_b, direct_a, direct_b) in out.results {
            prop_assert_eq!(planned_a, direct_a);
            prop_assert_eq!(planned_b, direct_b);
        }
    }

    /// `plan_unpack` + `execute` is bit-identical to the one-shot
    /// `unpack`, including cached re-execution against a fresh vector.
    #[test]
    fn planned_unpack_matches_direct(
        case in any_case(),
        scheme in prop::sample::select(UnpackScheme::ALL.to_vec()),
        slack in 0usize..4,
        w_prime in 1usize..=4,
    ) {
        let ((shape, grid_dims, ws), pattern) = case;
        let (grid, desc) = build(&shape, &grid_dims, &ws);
        let size = {
            let m = pattern.global(&shape);
            m.data().iter().filter(|&&b| b).count()
        };
        let n_prime = (size + slack).max(1);
        let v_layout = DimLayout::new_general(n_prime, grid.nprocs(), w_prime).unwrap();
        let opts = UnpackOptions::new(scheme);
        let machine = Machine::new(grid, CostModel::cm5());
        let (d, vl, o) = (&desc, &v_layout, &opts);
        let out = machine.run(move |proc| {
            let m = pattern.local(d, proc.id());
            let f = local_from_fn(d, proc.id(), |g| data_at(g, 23));
            let mkv = |salt: i32| -> Vec<i32> {
                (0..vl.local_len(proc.id()))
                    .map(|l| salt + vl.global_of(proc.id(), l) as i32)
                    .collect()
            };
            let (va, vb) = (mkv(7000), mkv(-9000));

            let mut cache = PlanCache::new();
            let plan = cache
                .unpack_plan(proc, d, &m, pattern.fingerprint(), vl, o)
                .unwrap();
            let planned_a = plan.execute(proc, &f, &va).unwrap();
            let plan = cache
                .unpack_plan(proc, d, &m, pattern.fingerprint(), vl, o)
                .unwrap();
            let planned_b = plan.execute(proc, &f, &vb).unwrap();

            let direct_a = unpack(proc, d, &m, &f, &va, vl, o).unwrap();
            let direct_b = unpack(proc, d, &m, &f, &vb, vl, o).unwrap();
            (planned_a, planned_b, direct_a, direct_b)
        });
        for (planned_a, planned_b, direct_a, direct_b) in out.results {
            prop_assert_eq!(planned_a, direct_a);
            prop_assert_eq!(planned_b, direct_b);
        }
    }

    /// The standalone planners agree with the cache-built plans on the
    /// replicated outputs (`size`, layout), for every scheme.
    #[test]
    fn standalone_planners_agree_with_cache(
        case in any_case(),
        opts in any_pack_opts(),
    ) {
        let ((shape, grid_dims, ws), pattern) = case;
        let (grid, desc) = build(&shape, &grid_dims, &ws);
        let n: usize = shape.iter().product();
        let v_layout = DimLayout::new_general(n.max(1), grid.nprocs(), 2).unwrap();
        let machine = Machine::new(grid, CostModel::cm5());
        let (d, vl, o) = (&desc, &v_layout, &opts);
        let out = machine.run(move |proc| {
            let m = pattern.local(d, proc.id());
            let p1 = plan_pack(proc, d, &m, o).unwrap();
            let mut cache = PlanCache::new();
            let p2 = cache
                .pack_plan(proc, d, &m, pattern.fingerprint(), o)
                .unwrap();
            let uo = UnpackOptions::new(UnpackScheme::CompactStorage);
            let u1 = plan_unpack(proc, d, &m, vl, &uo).unwrap();
            let u2 = cache
                .unpack_plan(proc, d, &m, pattern.fingerprint(), vl, &uo)
                .unwrap();
            (p1.size(), p2.size(), p1.v_layout(), p2.v_layout(), u1.size(), u2.size())
        });
        for (s1, s2, l1, l2, us1, us2) in out.results {
            prop_assert_eq!(s1, s2);
            prop_assert_eq!(l1, l2);
            prop_assert_eq!(us1, us2);
        }
    }
}
