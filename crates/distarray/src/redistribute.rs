//! Array redistribution between block-cyclic layouts (the substrate the
//! paper's Section 6.3 cites as [7]).
//!
//! Changing a distributed array's layout (e.g. cyclic → block before a PACK,
//! to minimise the tile count the ranking algorithm pays for) requires
//! *communication detection* — computing which local elements go where — and
//! a many-to-many personalized exchange. Two wire formats are provided:
//!
//! * [`RedistMode::Indexed`] — each element travels as an
//!   `(global index, value)` pair (2 words). Only the sender runs detection;
//!   the receiver places elements by decoding the carried index. This is the
//!   format the paper's *redistribution of selected data* scheme uses.
//! * [`RedistMode::Detected`] — elements travel value-only (1 word) in a
//!   canonical order (ascending global linear index). Both sender and
//!   receiver run a detection phase — "two phases of communication
//!   detection" exactly as the paper notes for *redistribution of whole
//!   arrays* — trading detection time for halved message volume.

use hpf_machine::collectives::{alltoallv, A2aSchedule};
use hpf_machine::{Category, Proc, Wire};

use crate::descriptor::ArrayDesc;

/// Wire format / detection strategy for [`redistribute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RedistMode {
    /// `(global index, value)` pairs; sender-side detection only.
    Indexed,
    /// Value-only messages in canonical order; detection on both sides.
    Detected,
}

/// Move a distributed array from layout `src` to layout `dst`.
///
/// Every processor calls this with its local data under `src`; it returns
/// the processor's local data under `dst`. The two descriptors must describe
/// the same global shape on grids with the same processor count (the grids
/// may differ in shape — e.g. a 2-D array moving onto a 1-D layout).
///
/// Charges communication detection to [`Category::RedistDetect`] and the
/// exchange to [`Category::RedistComm`].
///
/// # Panics
/// Panics on shape or processor-count mismatch, or if `local`'s length is
/// not `src.local_len(proc.id())`.
pub fn redistribute<T: Wire + Default>(
    proc: &mut Proc,
    src: &ArrayDesc,
    dst: &ArrayDesc,
    local: &[T],
    mode: RedistMode,
    schedule: A2aSchedule,
) -> Vec<T> {
    assert_eq!(
        src.shape(),
        dst.shape(),
        "source and target shapes must match"
    );
    assert_eq!(
        src.grid().nprocs(),
        dst.grid().nprocs(),
        "source and target must use the same processor count"
    );
    let me = proc.id();
    assert_eq!(local.len(), src.local_len(me), "local data length mismatch");

    match mode {
        RedistMode::Indexed => indexed(proc, src, dst, local, schedule),
        RedistMode::Detected => detected(proc, src, dst, local, schedule),
    }
}

fn indexed<T: Wire + Default>(
    proc: &mut Proc,
    src: &ArrayDesc,
    dst: &ArrayDesc,
    local: &[T],
    schedule: A2aSchedule,
) -> Vec<T> {
    let me = proc.id();
    let nprocs = src.grid().nprocs();

    // Sender-side detection + message composition: one pass over the local
    // data, computing each element's target and bucketing an
    // (index, value) pair.
    let sends = proc.with_stage("redist.detect", |proc| {
        proc.with_category(Category::RedistDetect, |proc| {
            let mut sends: Vec<Vec<(u32, T)>> = (0..nprocs).map(|_| Vec::new()).collect();
            src.for_each_local_global(me, |l, g| {
                let glin = src.global_linear(g);
                let (target, _) = dst.owner_of(g);
                sends[target].push((glin as u32, local[l]));
            });
            proc.charge_ops(2 * local.len()); // destination computation + pair store
            sends
        })
    });

    let recvs = proc.with_stage("redist.comm", |proc| {
        proc.with_category(Category::RedistComm, |proc| {
            let world = proc.world();
            alltoallv(proc, &world, sends, schedule)
        })
    });

    // Placement by decoding carried indices.
    proc.with_stage("redist.detect", |proc| {
        proc.with_category(Category::RedistDetect, |proc| {
            let mut out = vec![T::default(); dst.local_len(me)];
            let mut placed = 0usize;
            for msg in recvs {
                for (glin, v) in msg {
                    let (owner, llin) = dst.owner_of_linear(glin as usize);
                    debug_assert_eq!(owner, me, "misrouted element");
                    out[llin] = v;
                    placed += 1;
                }
            }
            proc.charge_ops(2 * placed); // index decode + store
            out
        })
    })
}

fn detected<T: Wire + Default>(
    proc: &mut Proc,
    src: &ArrayDesc,
    dst: &ArrayDesc,
    local: &[T],
    schedule: A2aSchedule,
) -> Vec<T> {
    let me = proc.id();
    let nprocs = src.grid().nprocs();

    // Phase 1 detection (send side): enumerate my elements in ascending
    // global linear order and bucket the bare values.
    let sends = proc.with_stage("redist.detect", |proc| {
        proc.with_category(Category::RedistDetect, |proc| {
            let mut order: Vec<(usize, usize)> = Vec::with_capacity(local.len());
            src.for_each_local_global(me, |l, g| order.push((src.global_linear(g), l)));
            order.sort_unstable();
            let mut sends: Vec<Vec<T>> = (0..nprocs).map(|_| Vec::new()).collect();
            for &(glin, l) in &order {
                let (target, _) = dst.owner_of_linear(glin);
                sends[target].push(local[l]);
            }
            proc.charge_ops(2 * local.len());
            sends
        })
    });

    let recvs = proc.with_stage("redist.comm", |proc| {
        proc.with_category(Category::RedistComm, |proc| {
            let world = proc.world();
            alltoallv(proc, &world, sends, schedule)
        })
    });

    // Phase 2 detection (receive side): enumerate my *target* slots in the
    // same canonical order, computing each slot's source processor, and
    // consume the per-source streams in lockstep.
    proc.with_stage("redist.detect", |proc| {
        proc.with_category(Category::RedistDetect, |proc| {
            let my_len = dst.local_len(me);
            let mut order: Vec<(usize, usize)> = Vec::with_capacity(my_len);
            dst.for_each_local_global(me, |l, g| order.push((dst.global_linear(g), l)));
            order.sort_unstable();
            let mut cursors = vec![0usize; nprocs];
            let mut out = vec![T::default(); my_len];
            for &(glin, l) in &order {
                let (source, _) = src.owner_of_linear(glin);
                out[l] = recvs[source][cursors[source]];
                cursors[source] += 1;
            }
            for (s, &c) in cursors.iter().enumerate() {
                debug_assert_eq!(c, recvs[s].len(), "stream from {s} not fully consumed");
            }
            proc.charge_ops(2 * my_len);
            out
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Dist;
    use crate::global::GlobalArray;
    use hpf_machine::{CostModel, Machine, ProcGrid};

    fn roundtrip_case(
        shape: &[usize],
        grid_dims: &[usize],
        src_dists: &[Dist],
        dst_dists: &[Dist],
        mode: RedistMode,
    ) {
        let grid = ProcGrid::new(grid_dims);
        let src = ArrayDesc::new_general(shape, &grid, src_dists).unwrap();
        let dst = ArrayDesc::new_general(shape, &grid, dst_dists).unwrap();
        let a = GlobalArray::from_fn(shape, |idx| {
            idx.iter()
                .enumerate()
                .map(|(i, &x)| (x * 7 + i) as i32)
                .sum::<i32>()
        });
        let locals = a.partition(&src);
        let machine = Machine::new(grid, CostModel::cm5());
        let locals_ref = &locals;
        let (src_ref, dst_ref) = (&src, &dst);
        let out = machine.run(move |proc| {
            let local = locals_ref[proc.id()].clone();
            redistribute(
                proc,
                src_ref,
                dst_ref,
                &local,
                mode,
                A2aSchedule::LinearPermutation,
            )
        });
        let back = GlobalArray::assemble(&dst, &out.results);
        assert_eq!(back, a, "{mode:?} {shape:?} {src_dists:?} -> {dst_dists:?}");
        // Detection work must have been charged.
        assert!(out.max_cat_ms(Category::RedistDetect) > 0.0);
    }

    #[test]
    fn cyclic_to_block_1d_indexed() {
        roundtrip_case(
            &[32],
            &[4],
            &[Dist::Cyclic],
            &[Dist::Block],
            RedistMode::Indexed,
        );
    }

    #[test]
    fn cyclic_to_block_1d_detected() {
        roundtrip_case(
            &[32],
            &[4],
            &[Dist::Cyclic],
            &[Dist::Block],
            RedistMode::Detected,
        );
    }

    #[test]
    fn block_cyclic_to_block_cyclic_2d_both_modes() {
        for mode in [RedistMode::Indexed, RedistMode::Detected] {
            roundtrip_case(
                &[8, 12],
                &[2, 3],
                &[Dist::BlockCyclic(2), Dist::Cyclic],
                &[Dist::Block, Dist::BlockCyclic(2)],
                mode,
            );
        }
    }

    #[test]
    fn identity_redistribution_is_supported() {
        roundtrip_case(
            &[16],
            &[4],
            &[Dist::BlockCyclic(2)],
            &[Dist::BlockCyclic(2)],
            RedistMode::Detected,
        );
    }

    #[test]
    fn non_divisible_extents_work() {
        roundtrip_case(
            &[19],
            &[4],
            &[Dist::Cyclic],
            &[Dist::Block],
            RedistMode::Indexed,
        );
        roundtrip_case(
            &[19],
            &[4],
            &[Dist::Cyclic],
            &[Dist::Block],
            RedistMode::Detected,
        );
    }

    #[test]
    fn grid_shape_may_change_if_proc_count_matches() {
        // 2-D array on a 2x2 grid -> same array on a 1x4 grid.
        let shape = [8, 8];
        let g_src = ProcGrid::new(&[2, 2]);
        let g_dst = ProcGrid::new(&[4, 1]);
        let src = ArrayDesc::new(&shape, &g_src, &[Dist::Block, Dist::Block]).unwrap();
        let dst = ArrayDesc::new(&shape, &g_dst, &[Dist::Block, Dist::Block]).unwrap();
        let a = GlobalArray::from_fn(&shape, |idx| (idx[0] * 8 + idx[1]) as i32);
        let locals = a.partition(&src);
        let machine = Machine::new(g_src, CostModel::cm5());
        let (locals_ref, src_ref, dst_ref) = (&locals, &src, &dst);
        let out = machine.run(move |proc| {
            let local = locals_ref[proc.id()].clone();
            redistribute(
                proc,
                src_ref,
                dst_ref,
                &local,
                RedistMode::Indexed,
                A2aSchedule::LinearPermutation,
            )
        });
        assert_eq!(GlobalArray::assemble(&dst, &out.results), a);
    }

    #[test]
    fn detected_mode_sends_half_the_words_of_indexed() {
        let shape = [64];
        let grid = ProcGrid::line(4);
        let src = ArrayDesc::new(&shape, &grid, &[Dist::Cyclic]).unwrap();
        let dst = ArrayDesc::new(&shape, &grid, &[Dist::Block]).unwrap();
        let a = GlobalArray::from_fn(&shape, |idx| idx[0] as i32);
        let locals = a.partition(&src);
        let words = |mode: RedistMode| {
            let machine = Machine::new(grid.clone(), CostModel::cm5());
            let (locals_ref, src_ref, dst_ref) = (&locals, &src, &dst);
            machine
                .run(move |proc| {
                    let local = locals_ref[proc.id()].clone();
                    redistribute(
                        proc,
                        src_ref,
                        dst_ref,
                        &local,
                        mode,
                        A2aSchedule::LinearPermutation,
                    );
                })
                .total_words_sent()
        };
        let w_idx = words(RedistMode::Indexed);
        let w_det = words(RedistMode::Detected);
        assert_eq!(w_idx, 2 * w_det, "indexed pairs are twice the volume");
    }
}
