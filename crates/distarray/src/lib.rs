//! # hpf-distarray — block-cyclic distributed multidimensional arrays
//!
//! The HPF runtime plumbing the PACK/UNPACK paper assumes: arrays of
//! arbitrary rank distributed block-cyclic along every dimension over a
//! logical processor grid, with the index arithmetic of the paper's
//! Section 3 ([`DimLayout`]: `L_i`, `S_i`, `T_i`), descriptors
//! ([`ArrayDesc`]), harness-side dense arrays for seeding and verification
//! ([`GlobalArray`]), and general layout-to-layout [`redistribute`]-ion with
//! communication detection (Section 6.3's substrate).
//!
//! Conventions (paper-faithful): dimension 0 is the fastest-varying; local
//! and global storage are row-major; a global index `g` on dimension `i`
//! lives on processor coordinate `(g / W_i) mod P_i` at local position
//! `(g / (W_i P_i))·W_i + (g mod W_i)`.
//!
//! ## Example
//!
//! ```
//! use hpf_machine::ProcGrid;
//! use hpf_distarray::{ArrayDesc, Dist, GlobalArray};
//!
//! // A 16-element vector, block-cyclic(2) over 4 processors (Figure 1).
//! let grid = ProcGrid::line(4);
//! let desc = ArrayDesc::new(&[16], &grid, &[Dist::BlockCyclic(2)]).unwrap();
//! assert_eq!(desc.dim(0).t(), 2); // two tiles
//! let a = GlobalArray::from_fn(&[16], |idx| idx[0] as i32);
//! let locals = a.partition(&desc);
//! assert_eq!(locals[1], vec![2, 3, 10, 11]); // proc 1's blocks
//! ```

#![warn(missing_docs)]

mod descriptor;
mod dist;
mod global;
pub mod index;
mod layout;
mod local;
mod redistribute;
mod track;

pub use descriptor::{ArrayDesc, DescError};
pub use dist::Dist;
pub use global::{global_index_of_linear, local_from_fn, local_global_indices, GlobalArray};
pub use layout::{DimLayout, LayoutError};
pub use local::LocalArray;
pub use redistribute::{redistribute, RedistMode};
pub use track::TrackArray;
