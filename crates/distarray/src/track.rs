//! Memory-accounting hook for user arrays.
//!
//! The machine layer tracks every word-carrying structure it can see —
//! mailbox packets, in-flight payloads, pooled buffers, replay logs — but
//! the arrays a program holds *between* communications are invisible to
//! it. [`TrackArray`] closes that gap: a program registers its local
//! portions against the `user` memory account of its [`Proc`]
//! (`mem.user.cur` gauge, `mem.user` Perfetto counter track), so measured
//! per-processor peaks cover the paper's full working set and not just the
//! redistribution traffic. Charges are pure bookkeeping — never charged to
//! the simulated clock — and a no-op when observability is off.

use hpf_machine::{MemAccount, Proc};

use crate::local::LocalArray;

/// A value whose processor-local footprint can be charged to the machine's
/// `user` memory account.
pub trait TrackArray {
    /// Bytes of local storage this value retains.
    fn tracked_bytes(&self) -> u64;

    /// Charge this value's local bytes to `proc`'s `user` account at the
    /// current simulated time.
    fn track(&self, proc: &mut Proc) {
        proc.mem_charge(MemAccount::User, self.tracked_bytes());
    }

    /// Release a previous [`TrackArray::track`] charge (e.g. when the
    /// array is dropped or rebuilt between phases).
    fn untrack(&self, proc: &mut Proc) {
        proc.mem_release(MemAccount::User, self.tracked_bytes());
    }
}

impl<T> TrackArray for Vec<T> {
    fn tracked_bytes(&self) -> u64 {
        (self.len() * size_of::<T>()) as u64
    }
}

impl<T> TrackArray for [T] {
    fn tracked_bytes(&self) -> u64 {
        std::mem::size_of_val(self) as u64
    }
}

impl<T> TrackArray for LocalArray<T> {
    fn tracked_bytes(&self) -> u64 {
        (self.len() * size_of::<T>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracked_bytes_cover_local_storage() {
        let v = vec![0u32; 10];
        assert_eq!(v.tracked_bytes(), 40);
        assert_eq!(v.as_slice().tracked_bytes(), 40);
        let a = LocalArray::from_vec(&[4], vec![0.0f64; 4]);
        assert_eq!(a.tracked_bytes(), 32);
        let mask = vec![true; 8];
        assert_eq!(mask.tracked_bytes(), 8);
    }
}
