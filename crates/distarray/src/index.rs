//! Row-major multi-index arithmetic with the paper's dimension convention:
//! dimension 0 is the fastest-varying (innermost), so a shape slice
//! `shape[i] = N_i` linearises as `lin = Σ idx[i] · Π_{k<i} shape[k]`.

/// Linearise `idx` (innermost dimension first) against `shape`.
#[inline]
pub fn linearize(idx: &[usize], shape: &[usize]) -> usize {
    debug_assert_eq!(idx.len(), shape.len());
    let mut lin = 0;
    let mut stride = 1;
    for (i, &n) in shape.iter().enumerate() {
        debug_assert!(
            idx[i] < n,
            "index {} out of bounds {} on dim {}",
            idx[i],
            n,
            i
        );
        lin += idx[i] * stride;
        stride *= n;
    }
    lin
}

/// Inverse of [`linearize`].
#[inline]
pub fn delinearize(mut lin: usize, shape: &[usize]) -> Vec<usize> {
    let mut idx = Vec::with_capacity(shape.len());
    for &n in shape {
        idx.push(lin % n);
        lin /= n;
    }
    debug_assert_eq!(lin, 0, "linear index out of bounds");
    idx
}

/// Write the delinearisation of `lin` into `out` without allocating.
#[inline]
pub fn delinearize_into(mut lin: usize, shape: &[usize], out: &mut [usize]) {
    debug_assert_eq!(out.len(), shape.len());
    for (o, &n) in out.iter_mut().zip(shape) {
        *o = lin % n;
        lin /= n;
    }
    debug_assert_eq!(lin, 0, "linear index out of bounds");
}

/// Total element count of a shape.
#[inline]
pub fn volume(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Iterator over all multi-indices of `shape` in row-major (dimension-0
/// fastest) order.
pub struct MultiIndexIter {
    shape: Vec<usize>,
    next: usize,
    total: usize,
}

impl MultiIndexIter {
    /// Iterate the index space of `shape`.
    pub fn new(shape: &[usize]) -> Self {
        MultiIndexIter {
            shape: shape.to_vec(),
            next: 0,
            total: volume(shape),
        }
    }
}

impl Iterator for MultiIndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.next >= self.total {
            return None;
        }
        let idx = delinearize(self.next, &self.shape);
        self.next += 1;
        Some(idx)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.total - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for MultiIndexIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearize_matches_paper_formula() {
        // A(i1, i0) with shape (N1=3, N0=4) stored innermost-first [4, 3]:
        // rank = i0 + i1*4.
        assert_eq!(linearize(&[2, 1], &[4, 3]), 6);
        assert_eq!(linearize(&[0, 0], &[4, 3]), 0);
        assert_eq!(linearize(&[3, 2], &[4, 3]), 11);
    }

    #[test]
    fn roundtrip_3d() {
        let shape = [3, 4, 5];
        for lin in 0..60 {
            let idx = delinearize(lin, &shape);
            assert_eq!(linearize(&idx, &shape), lin);
            let mut buf = [0usize; 3];
            delinearize_into(lin, &shape, &mut buf);
            assert_eq!(buf.to_vec(), idx);
        }
    }

    #[test]
    fn iterator_visits_row_major_dim0_fastest() {
        let got: Vec<Vec<usize>> = MultiIndexIter::new(&[2, 2]).collect();
        assert_eq!(got, vec![vec![0, 0], vec![1, 0], vec![0, 1], vec![1, 1]]);
        assert_eq!(MultiIndexIter::new(&[3, 4]).len(), 12);
    }

    #[test]
    fn empty_shape_yields_one_scalar_index() {
        let got: Vec<Vec<usize>> = MultiIndexIter::new(&[]).collect();
        assert_eq!(got, vec![Vec::<usize>::new()]);
        assert_eq!(volume(&[]), 1);
    }
}
