//! Descriptors tying an array shape to a processor grid and per-dimension
//! distributions.

use std::fmt;

use hpf_machine::ProcGrid;

use crate::dist::Dist;
use crate::index::{delinearize, linearize, volume};
use crate::layout::{DimLayout, LayoutError};

/// Error constructing an [`ArrayDesc`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DescError {
    /// Array rank and grid rank differ.
    RankMismatch {
        /// Array rank.
        array: usize,
        /// Grid rank.
        grid: usize,
    },
    /// A per-dimension layout failed to build.
    Layout {
        /// The dimension at fault.
        dim: usize,
        /// The underlying layout error.
        source: LayoutError,
    },
}

impl fmt::Display for DescError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DescError::RankMismatch { array, grid } => {
                write!(
                    f,
                    "array rank {array} does not match processor grid rank {grid}"
                )
            }
            DescError::Layout { dim, source } => write!(f, "dimension {dim}: {source}"),
        }
    }
}

impl std::error::Error for DescError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DescError::Layout { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Descriptor of a rank-`d` array of shape `(N_{d-1}, …, N_0)` distributed
/// block-cyclic `(W_{d-1}, …, W_0)` over a logical grid
/// `(P_{d-1}, …, P_0)`. All per-dimension slices are indexed with dimension 0
/// (the fastest-varying) first, matching the paper's row-major convention.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDesc {
    dims: Vec<DimLayout>,
    grid: ProcGrid,
}

impl ArrayDesc {
    /// Descriptor under the paper's divisibility assumptions
    /// (`P_i·W_i | N_i` on every dimension).
    pub fn new(shape: &[usize], grid: &ProcGrid, dists: &[Dist]) -> Result<Self, DescError> {
        Self::build(shape, grid, dists, true)
    }

    /// Descriptor without divisibility requirements (for the general
    /// redistribution substrate).
    pub fn new_general(
        shape: &[usize],
        grid: &ProcGrid,
        dists: &[Dist],
    ) -> Result<Self, DescError> {
        Self::build(shape, grid, dists, false)
    }

    fn build(
        shape: &[usize],
        grid: &ProcGrid,
        dists: &[Dist],
        divisible: bool,
    ) -> Result<Self, DescError> {
        if shape.len() != grid.ndims() || dists.len() != grid.ndims() {
            return Err(DescError::RankMismatch {
                array: shape.len(),
                grid: grid.ndims(),
            });
        }
        let mut dims = Vec::with_capacity(shape.len());
        for (i, (&n, &dist)) in shape.iter().zip(dists).enumerate() {
            let layout = if divisible {
                DimLayout::from_dist(n, grid.dim(i), dist)
            } else {
                DimLayout::from_dist_general(n, grid.dim(i), dist)
            }
            .map_err(|source| DescError::Layout { dim: i, source })?;
            dims.push(layout);
        }
        Ok(ArrayDesc {
            dims,
            grid: grid.clone(),
        })
    }

    /// Array rank `d`.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// The layout of dimension `i`.
    #[inline]
    pub fn dim(&self, i: usize) -> &DimLayout {
        &self.dims[i]
    }

    /// The processor grid.
    #[inline]
    pub fn grid(&self) -> &ProcGrid {
        &self.grid
    }

    /// Global shape, dimension 0 first.
    pub fn shape(&self) -> Vec<usize> {
        self.dims.iter().map(|d| d.n()).collect()
    }

    /// Global element count `N = Π N_i`.
    pub fn global_len(&self) -> usize {
        self.dims.iter().map(|d| d.n()).product()
    }

    /// True iff every dimension satisfies the paper's divisibility
    /// assumption.
    pub fn divisible(&self) -> bool {
        self.dims.iter().all(|d| d.divisible())
    }

    /// Local shape on processor `proc_id`, dimension 0 first.
    ///
    /// In the divisible case this is `(L_{d-1}, …, L_0)`, identical on every
    /// processor.
    pub fn local_shape(&self, proc_id: usize) -> Vec<usize> {
        self.dims
            .iter()
            .enumerate()
            .map(|(i, d)| d.local_len(self.grid.coord(proc_id, i)))
            .collect()
    }

    /// Local element count `L` on processor `proc_id`.
    pub fn local_len(&self, proc_id: usize) -> usize {
        volume(&self.local_shape(proc_id))
    }

    /// Owner processor id and local linear index of the element at global
    /// multi-index `gidx`.
    pub fn owner_of(&self, gidx: &[usize]) -> (usize, usize) {
        debug_assert_eq!(gidx.len(), self.ndims());
        let mut coords = Vec::with_capacity(self.ndims());
        let mut lidx = Vec::with_capacity(self.ndims());
        for (d, &g) in self.dims.iter().zip(gidx) {
            coords.push(d.owner(g));
            lidx.push(d.local_of(g));
        }
        let proc = self.grid.id(&coords);
        let lin = linearize(&lidx, &self.local_shape(proc));
        (proc, lin)
    }

    /// Owner of a global *linear* index.
    pub fn owner_of_linear(&self, glin: usize) -> (usize, usize) {
        self.owner_of(&delinearize(glin, &self.shape()))
    }

    /// Global multi-index of the element at local linear index `llin` on
    /// processor `proc_id`. Inverse of [`Self::owner_of`].
    pub fn global_of_local(&self, proc_id: usize, llin: usize) -> Vec<usize> {
        let lshape = self.local_shape(proc_id);
        let lidx = delinearize(llin, &lshape);
        self.dims
            .iter()
            .enumerate()
            .map(|(i, d)| d.global_of(self.grid.coord(proc_id, i), lidx[i]))
            .collect()
    }

    /// Global linear index of a global multi-index.
    #[inline]
    pub fn global_linear(&self, gidx: &[usize]) -> usize {
        linearize(gidx, &self.shape())
    }

    /// Stable 64-bit fingerprint of the whole descriptor — rank, every
    /// per-dimension `(N, P, W)` layout, and the grid shape — used as the
    /// descriptor half of a plan-cache key. Distinct distributions of the
    /// same global shape (different block sizes or grid factorizations)
    /// fingerprint differently.
    pub fn fingerprint(&self) -> u64 {
        let mut acc = crate::layout::mix64(0x4445_5343); // "DESC" salt
        acc = crate::layout::mix_into(acc, self.dims.len() as u64);
        for d in &self.dims {
            acc = crate::layout::mix_into(acc, d.fingerprint());
        }
        for i in 0..self.grid.ndims() {
            acc = crate::layout::mix_into(acc, self.grid.dim(i) as u64);
        }
        acc
    }

    /// Visit every local slot of processor `proc_id` in local linear order,
    /// passing `(local_linear, global_multi_index)` — without allocating per
    /// element.
    ///
    /// This is the hot path of communication detection (redistribution,
    /// shifts, spreads): an odometer increments the local multi-index and
    /// updates the matching global index incrementally, replacing the
    /// per-element `delinearize` + per-dimension `global_of` arithmetic of
    /// [`Self::global_of_local`].
    pub fn for_each_local_global(&self, proc_id: usize, mut f: impl FnMut(usize, &[usize])) {
        let d = self.ndims();
        let lshape = self.local_shape(proc_id);
        let total: usize = lshape.iter().product();
        if total == 0 {
            return;
        }
        let coords: Vec<usize> = (0..d).map(|i| self.grid.coord(proc_id, i)).collect();
        let mut lidx = vec![0usize; d];
        let mut gidx: Vec<usize> = (0..d)
            .map(|i| self.dims[i].global_of(coords[i], 0))
            .collect();
        for lin in 0..total {
            f(lin, &gidx);
            // Odometer step: bump dimension 0, carrying upward.
            for i in 0..d {
                lidx[i] += 1;
                if lidx[i] < lshape[i] {
                    // Within a block the global index steps by 1; crossing a
                    // block boundary jumps over the other processors' blocks.
                    gidx[i] = if lidx[i].is_multiple_of(self.dims[i].w()) {
                        self.dims[i].global_of(coords[i], lidx[i])
                    } else {
                        gidx[i] + 1
                    };
                    break;
                }
                lidx[i] = 0;
                gidx[i] = self.dims[i].global_of(coords[i], 0);
            }
        }
    }
}

impl fmt::Display for ArrayDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Paper order: outermost dimension first, e.g. "512x512 on 4x4 cyclic(8),cyclic(8)".
        let shape: Vec<String> = self.dims.iter().rev().map(|d| d.n().to_string()).collect();
        let dists: Vec<String> = self
            .dims
            .iter()
            .rev()
            .map(|d| format!("cyclic({})", d.w()))
            .collect();
        write!(
            f,
            "{} on {} [{}]",
            shape.join("x"),
            self.grid,
            dists.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc_2d() -> ArrayDesc {
        // Shape (N1=8, N0=8) on a 2x2 grid, cyclic(2) both dims.
        ArrayDesc::new(&[8, 8], &ProcGrid::new(&[2, 2]), &[Dist::BlockCyclic(2); 2]).unwrap()
    }

    #[test]
    fn local_shapes_are_uniform_when_divisible() {
        let d = desc_2d();
        assert!(d.divisible());
        for p in 0..4 {
            assert_eq!(d.local_shape(p), vec![4, 4]);
            assert_eq!(d.local_len(p), 16);
        }
        assert_eq!(d.global_len(), 64);
    }

    #[test]
    fn owner_of_and_back_roundtrip() {
        let d = desc_2d();
        for g1 in 0..8 {
            for g0 in 0..8 {
                let (proc, lin) = d.owner_of(&[g0, g1]);
                assert_eq!(d.global_of_local(proc, lin), vec![g0, g1]);
            }
        }
    }

    #[test]
    fn every_local_slot_is_owned_exactly_once() {
        let d = ArrayDesc::new_general(
            &[10, 6],
            &ProcGrid::new(&[2, 3]),
            &[Dist::BlockCyclic(3), Dist::Cyclic],
        )
        .unwrap();
        let mut seen = vec![false; d.global_len()];
        for p in 0..6 {
            for l in 0..d.local_len(p) {
                let g = d.global_of_local(p, l);
                let lin = d.global_linear(&g);
                assert!(!seen[lin], "duplicate owner for {g:?}");
                seen[lin] = true;
                assert_eq!(d.owner_of(&g), (p, l));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn for_each_local_global_matches_global_of_local() {
        for desc in [
            ArrayDesc::new(&[16], &ProcGrid::line(4), &[Dist::BlockCyclic(2)]).unwrap(),
            ArrayDesc::new(
                &[8, 12],
                &ProcGrid::new(&[2, 3]),
                &[Dist::BlockCyclic(2), Dist::Cyclic],
            )
            .unwrap(),
            ArrayDesc::new(
                &[4, 4, 6],
                &ProcGrid::new(&[2, 1, 3]),
                &[Dist::Cyclic, Dist::Block, Dist::BlockCyclic(2)],
            )
            .unwrap(),
            // Non-divisible general layout.
            ArrayDesc::new_general(&[19], &ProcGrid::line(4), &[Dist::BlockCyclic(3)]).unwrap(),
        ] {
            for p in 0..desc.grid().nprocs() {
                let mut visited = 0usize;
                desc.for_each_local_global(p, |lin, gidx| {
                    assert_eq!(lin, visited);
                    assert_eq!(gidx, desc.global_of_local(p, lin).as_slice(), "proc {p}");
                    visited += 1;
                });
                assert_eq!(visited, desc.local_len(p));
            }
        }
    }

    /// Distinct block-cyclic distributions of one global shape get distinct
    /// descriptor fingerprints on every tested grid size.
    #[test]
    fn descriptor_fingerprints_distinguish_distributions() {
        use std::collections::HashMap;
        let mut seen: HashMap<u64, String> = HashMap::new();
        for p in [2usize, 4] {
            for q in [1usize, 2] {
                let grid = ProcGrid::new(&[p, q]);
                for w0 in [1usize, 2, 4] {
                    for w1 in [1usize, 2, 4] {
                        let d = ArrayDesc::new_general(
                            &[16, 16],
                            &grid,
                            &[Dist::BlockCyclic(w0), Dist::BlockCyclic(w1)],
                        )
                        .unwrap();
                        let label = format!("{p}x{q} w=({w0},{w1})");
                        if let Some(prev) = seen.insert(d.fingerprint(), label.clone()) {
                            panic!("fingerprint collision: {prev} vs {label}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rank_mismatch_rejected() {
        let err = ArrayDesc::new(&[8], &ProcGrid::new(&[2, 2]), &[Dist::Block]).unwrap_err();
        assert!(matches!(err, DescError::RankMismatch { .. }));
    }

    #[test]
    fn indivisible_rejected_in_paper_mode_only() {
        let g = ProcGrid::line(4);
        assert!(ArrayDesc::new(&[18], &g, &[Dist::BlockCyclic(2)]).is_err());
        assert!(ArrayDesc::new_general(&[18], &g, &[Dist::BlockCyclic(2)]).is_ok());
    }

    #[test]
    fn display_shows_paper_order() {
        let d = ArrayDesc::new(
            &[8, 16],
            &ProcGrid::new(&[2, 4]),
            &[Dist::BlockCyclic(2), Dist::BlockCyclic(1)],
        )
        .unwrap();
        assert_eq!(d.to_string(), "16x8 on 4x2 [cyclic(1),cyclic(2)]");
    }
}
