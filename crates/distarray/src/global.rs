//! Dense global arrays: the harness-side view used to seed distributed
//! arrays deterministically and to verify parallel results against
//! sequential oracles.
//!
//! A [`GlobalArray`] lives *outside* the simulated machine. Experiments
//! seed each processor's local storage with [`GlobalArray::partition`] (or
//! build it in place with [`local_from_fn`], which needs no harness-side
//! dense array at all) and reassemble results with
//! [`GlobalArray::assemble`].

use crate::descriptor::ArrayDesc;
use crate::index::{delinearize, linearize, volume, MultiIndexIter};

/// A dense rank-`d` array stored row-major with dimension 0 fastest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalArray<T> {
    shape: Vec<usize>,
    data: Vec<T>,
}

impl<T: Copy> GlobalArray<T> {
    /// Build from a closure over global multi-indices.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(&[usize]) -> T) -> Self {
        let data = MultiIndexIter::new(shape).map(|idx| f(&idx)).collect();
        GlobalArray {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Wrap existing row-major data.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape's volume.
    pub fn from_vec(shape: &[usize], data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            volume(shape),
            "data length must match shape volume"
        );
        GlobalArray {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Array shape, dimension 0 first.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at a global multi-index.
    pub fn get(&self, idx: &[usize]) -> T {
        self.data[linearize(idx, &self.shape)]
    }

    /// Element at a global linear index.
    pub fn get_linear(&self, lin: usize) -> T {
        self.data[lin]
    }

    /// Set the element at a global multi-index.
    pub fn set(&mut self, idx: &[usize], v: T) {
        let lin = linearize(idx, &self.shape);
        self.data[lin] = v;
    }

    /// The raw row-major data.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Split into per-processor local arrays (local row-major order) under
    /// `desc`. `desc.shape()` must equal this array's shape.
    pub fn partition(&self, desc: &ArrayDesc) -> Vec<Vec<T>> {
        assert_eq!(desc.shape(), self.shape, "descriptor shape mismatch");
        let nprocs = desc.grid().nprocs();
        (0..nprocs)
            .map(|p| {
                (0..desc.local_len(p))
                    .map(|l| self.get(&desc.global_of_local(p, l)))
                    .collect()
            })
            .collect()
    }

    /// Rebuild a global array from per-processor locals under `desc`.
    /// Inverse of [`Self::partition`].
    pub fn assemble(desc: &ArrayDesc, locals: &[Vec<T>]) -> Self
    where
        T: Default,
    {
        assert_eq!(
            locals.len(),
            desc.grid().nprocs(),
            "one local array per processor"
        );
        let shape = desc.shape();
        let mut data = vec![T::default(); desc.global_len()];
        for (p, local) in locals.iter().enumerate() {
            assert_eq!(
                local.len(),
                desc.local_len(p),
                "local length mismatch on proc {p}"
            );
            for (l, &v) in local.iter().enumerate() {
                let g = desc.global_of_local(p, l);
                data[linearize(&g, &shape)] = v;
            }
        }
        GlobalArray { shape, data }
    }
}

/// Build processor `proc_id`'s local array directly from a closure over
/// global multi-indices — each processor can seed its own data without any
/// communication or harness-side dense array.
pub fn local_from_fn<T>(
    desc: &ArrayDesc,
    proc_id: usize,
    mut f: impl FnMut(&[usize]) -> T,
) -> Vec<T> {
    (0..desc.local_len(proc_id))
        .map(|l| f(&desc.global_of_local(proc_id, l)))
        .collect()
}

/// Global multi-index corresponding to each local slot, precomputed (used by
/// kernels that need repeated local→global translation).
pub fn local_global_indices(desc: &ArrayDesc, proc_id: usize) -> Vec<Vec<usize>> {
    (0..desc.local_len(proc_id))
        .map(|l| desc.global_of_local(proc_id, l))
        .collect()
}

/// Convenience: delinearize a global linear index against a descriptor's
/// shape.
pub fn global_index_of_linear(desc: &ArrayDesc, glin: usize) -> Vec<usize> {
    delinearize(glin, &desc.shape())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Dist;
    use hpf_machine::ProcGrid;

    fn desc() -> ArrayDesc {
        ArrayDesc::new(
            &[8, 4],
            &ProcGrid::new(&[2, 2]),
            &[Dist::BlockCyclic(2), Dist::Cyclic],
        )
        .unwrap()
    }

    #[test]
    fn partition_assemble_roundtrip() {
        let d = desc();
        let a = GlobalArray::from_fn(&[8, 4], |idx| (idx[0] * 10 + idx[1]) as i32);
        let locals = a.partition(&d);
        assert_eq!(locals.iter().map(Vec::len).sum::<usize>(), 32);
        let back = GlobalArray::assemble(&d, &locals);
        assert_eq!(back, a);
    }

    #[test]
    fn local_from_fn_matches_partition() {
        let d = desc();
        let a = GlobalArray::from_fn(&[8, 4], |idx| (idx[0] * 100 + idx[1] * 3) as i64);
        let locals = a.partition(&d);
        for (p, want) in locals.iter().enumerate() {
            let direct = local_from_fn(&d, p, |idx| (idx[0] * 100 + idx[1] * 3) as i64);
            assert_eq!(&direct, want, "proc {p}");
        }
    }

    #[test]
    fn get_set_roundtrip() {
        let mut a = GlobalArray::from_fn(&[3, 3], |_| 0i32);
        a.set(&[2, 1], 42);
        assert_eq!(a.get(&[2, 1]), 42);
        assert_eq!(a.get_linear(linearize(&[2, 1], &[3, 3])), 42);
    }

    #[test]
    #[should_panic(expected = "shape volume")]
    fn from_vec_checks_volume() {
        GlobalArray::from_vec(&[2, 2], vec![1i32, 2, 3]);
    }
}
