//! Distribution kinds for one array dimension.

use std::fmt;

/// HPF-style distribution of one array dimension over one grid dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dist {
    /// `BLOCK`: one contiguous block of `⌈N/P⌉` elements per processor.
    Block,
    /// `CYCLIC`: elements dealt round-robin, block size 1.
    Cyclic,
    /// `CYCLIC(W)`: block-cyclic with block size `W`. `BlockCyclic(1)` is
    /// `CYCLIC`; `BlockCyclic(⌈N/P⌉)` is `BLOCK`.
    BlockCyclic(usize),
}

impl Dist {
    /// The block size `W` this distribution induces for extent `n` over `p`
    /// processors.
    pub fn block_size(self, n: usize, p: usize) -> usize {
        match self {
            Dist::Block => n.div_ceil(p).max(1),
            Dist::Cyclic => 1,
            Dist::BlockCyclic(w) => w,
        }
    }
}

impl fmt::Display for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dist::Block => write!(f, "block"),
            Dist::Cyclic => write!(f, "cyclic"),
            Dist::BlockCyclic(w) => write!(f, "cyclic({w})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_size_of_each_kind() {
        assert_eq!(Dist::Block.block_size(16, 4), 4);
        assert_eq!(Dist::Block.block_size(17, 4), 5);
        assert_eq!(Dist::Cyclic.block_size(16, 4), 1);
        assert_eq!(Dist::BlockCyclic(2).block_size(16, 4), 2);
        // Degenerate: empty extent still gets a positive block size.
        assert_eq!(Dist::Block.block_size(0, 4), 1);
    }

    #[test]
    fn display() {
        assert_eq!(Dist::Block.to_string(), "block");
        assert_eq!(Dist::Cyclic.to_string(), "cyclic");
        assert_eq!(Dist::BlockCyclic(8).to_string(), "cyclic(8)");
    }
}
