//! A light local-array wrapper: per-processor storage with shape metadata
//! and the slice view the PACK/UNPACK kernels iterate over.
//!
//! Storage is row-major with dimension 0 fastest, mirroring the global
//! convention. Because dimension 0 is innermost and `W_0 | L_0`, a *slice*
//! (the paper's Section 5.2: a run of `W_0` consecutive dimension-0 elements
//! within one block) is simply a contiguous chunk of the backing vector, and
//! slice `k` of the local array is `data[k·W_0 .. (k+1)·W_0]`.

use crate::index::{delinearize, linearize, volume};

/// A processor-local dense array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalArray<T> {
    shape: Vec<usize>,
    data: Vec<T>,
}

impl<T: Copy> LocalArray<T> {
    /// Wrap existing row-major local data.
    ///
    /// # Panics
    /// Panics if the data length does not match the shape volume.
    pub fn from_vec(shape: &[usize], data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            volume(shape),
            "data length must match local shape volume"
        );
        LocalArray {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Build from a closure over local multi-indices.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(&[usize]) -> T) -> Self {
        let n = volume(shape);
        let data = (0..n).map(|lin| f(&delinearize(lin, shape))).collect();
        LocalArray {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Local shape, dimension 0 first.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Element at a local multi-index.
    pub fn get(&self, idx: &[usize]) -> T {
        self.data[linearize(idx, &self.shape)]
    }

    /// Set the element at a local multi-index.
    pub fn set(&mut self, idx: &[usize], v: T) {
        let lin = linearize(idx, &self.shape);
        self.data[lin] = v;
    }

    /// The backing row-major data.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable backing data.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the backing vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Iterate the paper's *slices*: contiguous runs of `w0` dimension-0
    /// elements. Slice `k` of processor-local data corresponds to the
    /// `PS_0`/`RS_0` slot `k`.
    ///
    /// # Panics
    /// Panics if `w0` does not divide the dimension-0 local extent.
    pub fn slices(&self, w0: usize) -> impl Iterator<Item = &[T]> {
        assert!(
            !self.shape.is_empty() && self.shape[0].is_multiple_of(w0),
            "W_0 must divide the local dimension-0 extent"
        );
        self.data.chunks_exact(w0)
    }
}

impl<T> LocalArray<T> {
    /// Local element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff there are no local elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_k_is_contiguous_chunk() {
        // Local shape (L1=2, L0=4), W0=2: 4 slices.
        let a = LocalArray::from_fn(&[4, 2], |idx| (idx[1] * 4 + idx[0]) as i32);
        let slices: Vec<&[i32]> = a.slices(2).collect();
        assert_eq!(slices, vec![&[0, 1][..], &[2, 3], &[4, 5], &[6, 7]]);
    }

    #[test]
    fn get_set() {
        let mut a = LocalArray::from_vec(&[2, 2], vec![0i32; 4]);
        a.set(&[1, 1], 5);
        assert_eq!(a.get(&[1, 1]), 5);
        assert_eq!(a.data(), &[0, 0, 0, 5]);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn slices_require_divisible_w0() {
        let a = LocalArray::from_vec(&[3], vec![0i32; 3]);
        let _ = a.slices(2).count();
    }
}
