//! Per-dimension block-cyclic layout arithmetic — the paper's Section 3
//! symbols made executable.
//!
//! For dimension `i` with global extent `N_i`, `P_i` processors and block
//! size `W_i`, the derived quantities are:
//!
//! * `L_i = N_i / P_i` — local extent per processor,
//! * `S_i = P_i · W_i` — *tile* size (one tile = `P_i` consecutive blocks,
//!   mapped one block to each processor),
//! * `T_i = N_i / S_i = L_i / W_i` — number of tiles, equal to the number of
//!   blocks each processor holds.
//!
//! The paper assumes `P_i | N_i`, `W_i | N_i`, and `P_i·W_i | N_i`
//! ([`DimLayout::new_divisible`]); [`DimLayout::new_general`] drops the
//! assumption for the redistribution substrate.

use std::fmt;

use crate::dist::Dist;

/// SplitMix64 finalizer: the avalanche step used for all stable layout
/// fingerprints in this crate. Deterministic across runs and platforms.
#[inline]
pub(crate) fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fold `word` into the running fingerprint `acc` (mix-then-combine, so
/// permutations and splits of the word stream land on different values).
#[inline]
pub(crate) fn mix_into(acc: u64, word: u64) -> u64 {
    mix64(acc ^ mix64(word))
}

/// Error constructing a layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// Extent, processor count, or block size was zero.
    ZeroParameter {
        /// The offending parameter's name.
        what: &'static str,
    },
    /// The paper's divisibility assumption `P·W | N` does not hold.
    NotDivisible {
        /// Global extent.
        n: usize,
        /// Processor count.
        p: usize,
        /// Block size.
        w: usize,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::ZeroParameter { what } => write!(f, "{what} must be positive"),
            LayoutError::NotDivisible { n, p, w } => write!(
                f,
                "block-cyclic layout requires P*W | N (got N={n}, P={p}, W={w}, tile={})",
                p * w
            ),
        }
    }
}

impl std::error::Error for LayoutError {}

/// Block-cyclic layout of one dimension: `N` elements over `P` processors
/// with block size `W`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DimLayout {
    n: usize,
    p: usize,
    w: usize,
}

impl DimLayout {
    /// Layout under the paper's divisibility assumption `P·W | N`.
    pub fn new_divisible(n: usize, p: usize, w: usize) -> Result<Self, LayoutError> {
        let l = Self::new_general(n, p, w)?;
        if !n.is_multiple_of(p * w) {
            return Err(LayoutError::NotDivisible { n, p, w });
        }
        Ok(l)
    }

    /// General layout: any positive `n`, `p`, `w`.
    pub fn new_general(n: usize, p: usize, w: usize) -> Result<Self, LayoutError> {
        if n == 0 {
            return Err(LayoutError::ZeroParameter { what: "extent N" });
        }
        if p == 0 {
            return Err(LayoutError::ZeroParameter {
                what: "processor count P",
            });
        }
        if w == 0 {
            return Err(LayoutError::ZeroParameter {
                what: "block size W",
            });
        }
        Ok(DimLayout { n, p, w })
    }

    /// Layout from a [`Dist`] kind (divisibility enforced, as the paper's
    /// algorithms require).
    pub fn from_dist(n: usize, p: usize, dist: Dist) -> Result<Self, LayoutError> {
        Self::new_divisible(n, p, dist.block_size(n, p))
    }

    /// Like [`Self::from_dist`] but without the divisibility requirement.
    pub fn from_dist_general(n: usize, p: usize, dist: Dist) -> Result<Self, LayoutError> {
        Self::new_general(n, p, dist.block_size(n, p))
    }

    /// Global extent `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Processor count `P` along this dimension.
    #[inline]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Block size `W`.
    #[inline]
    pub fn w(&self) -> usize {
        self.w
    }

    /// Tile size `S = P·W`.
    #[inline]
    pub fn s(&self) -> usize {
        self.p * self.w
    }

    /// Number of tiles `T = ⌈N / S⌉` (exactly `N/S` in the divisible case);
    /// also the number of blocks per processor.
    #[inline]
    pub fn t(&self) -> usize {
        self.n.div_ceil(self.s())
    }

    /// Local extent `L = N / P` in the divisible case.
    ///
    /// For general layouts this is the *maximum* local extent, `T·W`.
    #[inline]
    pub fn l(&self) -> usize {
        if self.n.is_multiple_of(self.p * self.w) {
            self.n / self.p
        } else {
            self.t() * self.w
        }
    }

    /// True iff the paper's assumption `P·W | N` holds.
    #[inline]
    pub fn divisible(&self) -> bool {
        self.n.is_multiple_of(self.s())
    }

    /// Exact number of elements owned by processor coordinate `c`.
    pub fn local_len(&self, c: usize) -> usize {
        debug_assert!(c < self.p);
        let full_tiles = self.n / self.s();
        let rem = self.n % self.s();
        let extra = rem.saturating_sub(c * self.w).min(self.w);
        full_tiles * self.w + extra
    }

    /// Owning processor coordinate of global index `g`: `(g / W) mod P`.
    #[inline]
    pub fn owner(&self, g: usize) -> usize {
        debug_assert!(g < self.n);
        (g / self.w) % self.p
    }

    /// Local index of global index `g` on its owner:
    /// `(g / (W·P))·W + (g mod W)`.
    #[inline]
    pub fn local_of(&self, g: usize) -> usize {
        (g / self.s()) * self.w + (g % self.w)
    }

    /// Global index of local index `l` on processor coordinate `c`:
    /// inverse of (`owner`, `local_of`).
    #[inline]
    pub fn global_of(&self, c: usize, l: usize) -> usize {
        let tile = l / self.w;
        let off = l % self.w;
        (tile * self.p + c) * self.w + off
    }

    /// Tile number of local index `l`: `l div W` (Section 5.4 uses this to
    /// address the final base-rank array).
    #[inline]
    pub fn tile_of_local(&self, l: usize) -> usize {
        l / self.w
    }

    /// Stable 64-bit fingerprint of `(N, P, W)` — the identity of this
    /// layout for plan-cache keys. Two layouts fingerprint equal iff they
    /// are the same layout (up to 64-bit hash collisions); the mixing keeps
    /// distinct block-cyclic splittings of the same `N` apart.
    pub fn fingerprint(&self) -> u64 {
        let mut acc = mix64(0x4c41_594f_5554); // "LAYOUT" salt
        acc = mix_into(acc, self.n as u64);
        acc = mix_into(acc, self.p as u64);
        acc = mix_into(acc, self.w as u64);
        acc
    }
}

impl fmt::Display for DimLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N={} over P={} cyclic({})", self.n, self.p, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_symbols() {
        // N=16, P=4, W=2: L=4, S=8, T=2 (the Figure 1 example).
        let d = DimLayout::new_divisible(16, 4, 2).unwrap();
        assert_eq!(d.l(), 4);
        assert_eq!(d.s(), 8);
        assert_eq!(d.t(), 2);
        assert!(d.divisible());
    }

    #[test]
    fn figure1_ownership() {
        // Block-cyclic(2) over 4 procs: global 0..16 owned as
        // 0011223300112233.
        let d = DimLayout::new_divisible(16, 4, 2).unwrap();
        let owners: Vec<usize> = (0..16).map(|g| d.owner(g)).collect();
        assert_eq!(owners, vec![0, 0, 1, 1, 2, 2, 3, 3, 0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn global_local_roundtrip_divisible() {
        let d = DimLayout::new_divisible(24, 3, 4).unwrap();
        for g in 0..24 {
            let c = d.owner(g);
            let l = d.local_of(g);
            assert_eq!(d.global_of(c, l), g);
            assert!(l < d.local_len(c));
        }
    }

    #[test]
    fn global_local_roundtrip_general() {
        // 17 elements, 3 procs, blocks of 2 — not divisible.
        let d = DimLayout::new_general(17, 3, 2).unwrap();
        assert!(!d.divisible());
        let mut per_proc = [0usize; 3];
        for g in 0..17 {
            let c = d.owner(g);
            let l = d.local_of(g);
            assert_eq!(d.global_of(c, l), g);
            per_proc[c] += 1;
        }
        for (c, &got) in per_proc.iter().enumerate() {
            assert_eq!(got, d.local_len(c), "coord {c}");
        }
        assert_eq!(per_proc.iter().sum::<usize>(), 17);
    }

    #[test]
    fn block_dist_owner_is_contiguous() {
        let d = DimLayout::from_dist(16, 4, Dist::Block).unwrap();
        assert_eq!(d.w(), 4);
        assert_eq!(d.t(), 1);
        for g in 0..16 {
            assert_eq!(d.owner(g), g / 4);
            assert_eq!(d.local_of(g), g % 4);
        }
    }

    #[test]
    fn cyclic_dist_deals_round_robin() {
        let d = DimLayout::from_dist(12, 4, Dist::Cyclic).unwrap();
        assert_eq!(d.w(), 1);
        assert_eq!(d.t(), 3);
        for g in 0..12 {
            assert_eq!(d.owner(g), g % 4);
            assert_eq!(d.local_of(g), g / 4);
        }
    }

    #[test]
    fn divisibility_violation_is_reported() {
        let err = DimLayout::new_divisible(16, 4, 3).unwrap_err();
        assert!(matches!(err, LayoutError::NotDivisible { .. }));
        assert!(err.to_string().contains("16"));
    }

    #[test]
    fn zero_parameters_rejected() {
        assert!(DimLayout::new_general(0, 1, 1).is_err());
        assert!(DimLayout::new_general(1, 0, 1).is_err());
        assert!(DimLayout::new_general(1, 1, 0).is_err());
    }

    /// Cache-key soundness: distinct block-cyclic layouts of the *same*
    /// global extent must never fingerprint equal on the tested grid sizes.
    #[test]
    fn fingerprints_of_same_extent_never_collide() {
        use std::collections::HashMap;
        let mut seen: HashMap<u64, (usize, usize, usize)> = HashMap::new();
        for n in [16usize, 64, 2048] {
            seen.clear();
            for p in 1..=16 {
                for w in 1..=32 {
                    let Ok(d) = DimLayout::new_general(n, p, w) else {
                        continue;
                    };
                    let fp = d.fingerprint();
                    if let Some(prev) = seen.insert(fp, (n, p, w)) {
                        panic!("fingerprint collision: {prev:?} vs {:?}", (n, p, w));
                    }
                }
            }
        }
    }

    #[test]
    fn fingerprint_is_stable_across_instances() {
        let a = DimLayout::new_divisible(16, 4, 2).unwrap();
        let b = DimLayout::new_divisible(16, 4, 2).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn general_block_distribution_of_awkward_size() {
        // HPF BLOCK of 10 over 4: blocks of ceil(10/4)=3 -> 3,3,3,1.
        let d = DimLayout::from_dist_general(10, 4, Dist::Block).unwrap();
        assert_eq!(
            (0..4).map(|c| d.local_len(c)).collect::<Vec<_>>(),
            vec![3, 3, 3, 1]
        );
        assert_eq!(d.owner(9), 3);
    }
}
