//! Property tests for the distributed-array substrate: layout maps are
//! bijections, partition/assemble invert each other, and redistribution
//! preserves content under arbitrary layout pairs.

use proptest::prelude::*;

use hpf_distarray::{
    redistribute, ArrayDesc, DimLayout, Dist, GlobalArray, LocalArray, RedistMode,
};
use hpf_machine::collectives::A2aSchedule;
use hpf_machine::{CostModel, Machine, ProcGrid};

fn any_dist() -> impl Strategy<Value = Dist> {
    prop_oneof![
        Just(Dist::Block),
        Just(Dist::Cyclic),
        (1usize..=5).prop_map(Dist::BlockCyclic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// owner/local_of and global_of are mutually inverse, ownership is a
    /// partition, and local lengths add up — for arbitrary (n, p, w).
    #[test]
    fn dim_layout_is_a_bijection(n in 1usize..200, p in 1usize..8, w in 1usize..10) {
        let l = DimLayout::new_general(n, p, w).unwrap();
        let mut counts = vec![0usize; p];
        for g in 0..n {
            let c = l.owner(g);
            let loc = l.local_of(g);
            prop_assert_eq!(l.global_of(c, loc), g);
            prop_assert!(loc < l.local_len(c));
            counts[c] += 1;
        }
        for (c, &got) in counts.iter().enumerate() {
            prop_assert_eq!(got, l.local_len(c));
        }
        prop_assert_eq!(counts.iter().sum::<usize>(), n);
    }

    /// Tile arithmetic: tile_of_local agrees with the global tile number.
    #[test]
    fn tile_numbers_agree(n_tiles in 1usize..6, p in 1usize..5, w in 1usize..5) {
        let n = n_tiles * p * w;
        let l = DimLayout::new_divisible(n, p, w).unwrap();
        prop_assert_eq!(l.t(), n_tiles);
        for g in 0..n {
            let c = l.owner(g);
            let loc = l.local_of(g);
            prop_assert_eq!(l.tile_of_local(loc), g / l.s());
            prop_assert_eq!(c, (g / w) % p);
        }
    }

    /// partition ∘ assemble is the identity for arbitrary 1–3-D descriptors.
    #[test]
    fn partition_assemble_identity(
        dims in prop::collection::vec((1usize..=3, 1usize..=3, 1usize..=3), 1..=3),
    ) {
        let shape: Vec<usize> = dims.iter().map(|&(p, w, t)| p * w * t).collect();
        let grid_dims: Vec<usize> = dims.iter().map(|&(p, _, _)| p).collect();
        let dists: Vec<Dist> = dims.iter().map(|&(_, w, _)| Dist::BlockCyclic(w)).collect();
        let grid = ProcGrid::new(&grid_dims);
        let desc = ArrayDesc::new(&shape, &grid, &dists).unwrap();
        let a = GlobalArray::from_fn(&shape, |idx| {
            idx.iter().fold(3i32, |acc, &x| acc.wrapping_mul(17).wrapping_add(x as i32))
        });
        let locals = a.partition(&desc);
        prop_assert_eq!(GlobalArray::assemble(&desc, &locals), a);
    }

    /// Redistribution preserves content between arbitrary general layouts
    /// (including non-divisible extents).
    #[test]
    fn redistribution_preserves_content_general(
        n in 1usize..60,
        p in 1usize..5,
        src_dist in any_dist(),
        dst_dist in any_dist(),
        indexed in any::<bool>(),
    ) {
        let grid = ProcGrid::line(p);
        let src = ArrayDesc::new_general(&[n], &grid, &[src_dist]).unwrap();
        let dst = ArrayDesc::new_general(&[n], &grid, &[dst_dist]).unwrap();
        let a = GlobalArray::from_fn(&[n], |g| g[0] as i32 * 3 + 1);
        let parts = a.partition(&src);
        let machine = Machine::new(grid, CostModel::cm5());
        let (s, d, pp) = (&src, &dst, &parts);
        let mode = if indexed { RedistMode::Indexed } else { RedistMode::Detected };
        let out = machine.run(move |proc| {
            redistribute(proc, s, d, &pp[proc.id()], mode, A2aSchedule::LinearPermutation)
        });
        prop_assert_eq!(GlobalArray::assemble(&dst, &out.results), a);
    }

    /// LocalArray slice iteration covers the data exactly once, in order.
    #[test]
    fn local_array_slices_tile_the_data(l0_blocks in 1usize..5, w0 in 1usize..5, l1 in 1usize..4) {
        let l0 = l0_blocks * w0;
        let a = LocalArray::from_fn(&[l0, l1], |idx| (idx[0] + 10 * idx[1]) as i32);
        let mut flat = Vec::new();
        for s in a.slices(w0) {
            prop_assert_eq!(s.len(), w0);
            flat.extend_from_slice(s);
        }
        prop_assert_eq!(flat.as_slice(), a.data());
    }
}
