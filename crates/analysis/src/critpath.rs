//! Critical-path extraction from structured event logs.
//!
//! A simulated run finishes when its slowest processor does, but *why* that
//! processor finished late is invisible in aggregate timings: its final
//! local time folds in every wait it absorbed from messages and barrier
//! syncs. This module recovers the actual dependency chain by walking
//! backward from the finish:
//!
//! * while a processor computed without waiting, time accrues as a **busy
//!   segment**, attributed to the innermost stage span covering it;
//! * a [`EventKind::Consume`] whose `waited_ns > 0` means the processor
//!   was blocked on the wire — the chain hops to the sender through the
//!   matching [`EventKind::Send`], found by exact `arrival_ns` equality
//!   (the consume copies the packet's arrival bit-for-bit precisely so
//!   this join never misses);
//! * a [`EventKind::Barrier`] means a clock sync jumped this processor
//!   forward — the chain hops to the recorded owner (the slowest member),
//!   at the same instant.
//!
//! The resulting segments tile `[0, T]` exactly (`T` = completion time):
//! every nanosecond of the run is on the path, attributed to a stage, a
//! link, or (under fault-injected delays) blocked time. A defensive step
//! limit guards against degenerate zero-cost models where hops stop
//! making progress.

use std::collections::{BTreeMap, HashMap};

use hpf_machine::{ClockReport, Event, EventKind, RunOutput};

/// One piece of the critical path, on one processor.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Processor the segment runs on.
    pub proc: usize,
    /// Segment start, simulated nanoseconds.
    pub start_ns: f64,
    /// Segment end, simulated nanoseconds (`>= start_ns`).
    pub end_ns: f64,
    /// What the processor was doing.
    pub kind: SegmentKind,
}

impl Segment {
    /// Segment length in nanoseconds.
    pub fn len_ns(&self) -> f64 {
        self.end_ns - self.start_ns
    }
}

/// What a critical-path [`Segment`] was spent on.
#[derive(Debug, Clone, PartialEq)]
pub enum SegmentKind {
    /// Local computation (or untraced work) on the processor.
    Busy,
    /// A message in flight on the `src → dst` link the path crossed;
    /// `src` is recorded here, `dst` is the segment's processor.
    Transfer {
        /// Sending processor.
        src: usize,
    },
    /// Blocked with no matching send event (only under partial traces).
    Blocked,
}

/// Per-processor accounting of the whole run (every processor, not just
/// those on the critical path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcBreakdown {
    /// Time advancing the local clock by charged work, ns.
    pub busy_ns: f64,
    /// Time blocked waiting for message arrivals, ns.
    pub blocked_ns: f64,
    /// Time absorbed jumping forward at clock syncs, ns.
    pub barrier_ns: f64,
    /// Time between this processor's finish and the machine's, ns.
    pub idle_ns: f64,
}

/// The extracted critical path plus whole-run load statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CritPath {
    /// Machine completion time (slowest processor), ns.
    pub total_ns: f64,
    /// Path nanoseconds spent computing.
    pub busy_ns: f64,
    /// Path nanoseconds spent on message transfers.
    pub transfer_ns: f64,
    /// Path nanoseconds blocked without an identifiable sender.
    pub blocked_ns: f64,
    /// Send→consume edges the path crossed.
    pub hops: usize,
    /// Barrier edges the path crossed.
    pub barriers: usize,
    /// Busy time attributed to each stage span, sorted by name;
    /// untraced busy time appears under `"(untracked)"`.
    pub by_stage_ns: Vec<(String, f64)>,
    /// Transfer time per `(src, dst)` link, sorted.
    pub by_link_ns: Vec<((usize, usize), f64)>,
    /// The path itself, in reverse chronological order (finish → start).
    pub segments: Vec<Segment>,
    /// Whole-run busy/blocked/barrier/idle per processor.
    pub procs: Vec<ProcBreakdown>,
}

/// Name under which busy time outside any stage span is attributed.
const UNTRACKED: &str = "(untracked)";

/// Dependency points on one processor, sorted by timestamp.
struct Dep {
    ts_ns: f64,
    kind: DepKind,
}

enum DepKind {
    Consume {
        src: usize,
        arrival_bits: u64,
        waited_ns: f64,
    },
    Barrier {
        owner: usize,
    },
}

impl CritPath {
    /// Extract the critical path from a finished run. Works on any run;
    /// without tracing the whole path is one untracked busy segment.
    pub fn from_run<R>(out: &RunOutput<R>) -> CritPath {
        CritPath::from_parts(&out.events, &out.clocks)
    }

    /// Extract from raw event logs and clock reports (both indexed by
    /// processor id; `events` may be empty or shorter than `clocks`).
    pub fn from_parts(events: &[Vec<Event>], clocks: &[ClockReport]) -> CritPath {
        let nprocs = clocks.len();
        let total_ns = clocks.iter().map(|c| c.now_ns).fold(0.0f64, f64::max);
        let evs = |p: usize| events.get(p).map(Vec::as_slice).unwrap_or(&[]);

        // --- Whole-run per-processor breakdown --------------------------
        let procs: Vec<ProcBreakdown> = (0..nprocs)
            .map(|p| {
                let mut blocked = 0.0;
                let mut barrier = 0.0;
                for e in evs(p) {
                    match e.kind {
                        EventKind::Consume { waited_ns, .. } => blocked += waited_ns,
                        EventKind::Barrier { waited_ns, .. } => barrier += waited_ns,
                        _ => {}
                    }
                }
                let now = clocks[p].now_ns;
                ProcBreakdown {
                    busy_ns: (now - blocked - barrier).max(0.0),
                    blocked_ns: blocked,
                    barrier_ns: barrier,
                    idle_ns: (total_ns - now).max(0.0),
                }
            })
            .collect();

        // --- Indexes for the backward walk ------------------------------
        // Dependency points per processor: consumes that actually waited,
        // and barrier jumps. Event logs are time-ordered per processor
        // (the clock is monotone), so these inherit sorted order.
        let deps: Vec<Vec<Dep>> = (0..nprocs)
            .map(|p| {
                evs(p)
                    .iter()
                    .filter_map(|e| match e.kind {
                        EventKind::Consume {
                            src,
                            waited_ns,
                            arrival_ns,
                            ..
                        } if waited_ns > 0.0 => Some(Dep {
                            ts_ns: e.ts_ns,
                            kind: DepKind::Consume {
                                src,
                                arrival_bits: arrival_ns.to_bits(),
                                waited_ns,
                            },
                        }),
                        EventKind::Barrier { owner, .. } => Some(Dep {
                            ts_ns: e.ts_ns,
                            kind: DepKind::Barrier { owner },
                        }),
                        _ => None,
                    })
                    .collect()
            })
            .collect();

        // (src, dst, arrival bits) → send completion time. The consume's
        // `arrival_ns` is copied bit-for-bit from the packet, so this
        // lookup is exact; keep the earliest on (theoretical) collisions.
        let mut sends: HashMap<(usize, usize, u64), f64> = HashMap::new();
        for (p, pe) in events.iter().enumerate() {
            for e in pe {
                if let EventKind::Send {
                    dst, arrival_ns, ..
                } = e.kind
                {
                    sends
                        .entry((p, dst, arrival_ns.to_bits()))
                        .and_modify(|t| *t = t.min(e.ts_ns))
                        .or_insert(e.ts_ns);
                }
            }
        }

        // Innermost stage spans per processor, as disjoint sorted
        // intervals (start, end, name).
        let stages: Vec<Vec<(f64, f64, &'static str)>> =
            (0..nprocs).map(|p| stage_intervals(evs(p))).collect();

        // --- Backward walk ----------------------------------------------
        let mut segments: Vec<Segment> = Vec::new();
        let mut by_stage: BTreeMap<String, f64> = BTreeMap::new();
        let mut by_link: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        let (mut busy_ns, mut transfer_ns, mut blocked_ns) = (0.0, 0.0, 0.0);
        let (mut hops, mut barriers) = (0usize, 0usize);

        // Start on the slowest processor (lowest id on ties, for
        // determinism).
        let mut p = (0..nprocs)
            .max_by(|&a, &b| {
                clocks[a]
                    .now_ns
                    .partial_cmp(&clocks[b].now_ns)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.cmp(&a))
            })
            .unwrap_or(0);
        let mut cur = total_ns;
        // Fault-free hops strictly decrease `cur`; the limit only matters
        // for degenerate zero-cost models where ties can cycle.
        let step_limit = 4 * events.iter().map(Vec::len).sum::<usize>() + nprocs + 16;

        let push_busy = |p: usize,
                         start: f64,
                         end: f64,
                         segments: &mut Vec<Segment>,
                         by_stage: &mut BTreeMap<String, f64>,
                         busy_ns: &mut f64| {
            if end <= start {
                return;
            }
            *busy_ns += end - start;
            attribute_stages(&stages[p], start, end, by_stage);
            segments.push(Segment {
                proc: p,
                start_ns: start,
                end_ns: end,
                kind: SegmentKind::Busy,
            });
        };

        for _ in 0..step_limit {
            if cur <= 0.0 {
                break;
            }
            let pd = &deps[p];
            let idx = pd.partition_point(|d| d.ts_ns <= cur);
            let Some(dep) = idx.checked_sub(1).map(|i| &pd[i]) else {
                // No dependency before `cur`: the processor computed from
                // time zero.
                push_busy(p, 0.0, cur, &mut segments, &mut by_stage, &mut busy_ns);
                cur = 0.0;
                break;
            };
            let d = dep.ts_ns;
            push_busy(p, d, cur, &mut segments, &mut by_stage, &mut busy_ns);
            match dep.kind {
                DepKind::Consume {
                    src,
                    arrival_bits,
                    waited_ns,
                } => match sends.get(&(src, p, arrival_bits)) {
                    Some(&send_ts) if send_ts <= d => {
                        transfer_ns += d - send_ts;
                        *by_link.entry((src, p)).or_insert(0.0) += d - send_ts;
                        segments.push(Segment {
                            proc: p,
                            start_ns: send_ts,
                            end_ns: d,
                            kind: SegmentKind::Transfer { src },
                        });
                        hops += 1;
                        cur = send_ts;
                        p = src;
                    }
                    _ => {
                        // Partial trace (e.g. the sender was muted): keep
                        // the chain on this processor through the wait.
                        let start = (d - waited_ns).max(0.0);
                        blocked_ns += d - start;
                        segments.push(Segment {
                            proc: p,
                            start_ns: start,
                            end_ns: d,
                            kind: SegmentKind::Blocked,
                        });
                        cur = start;
                    }
                },
                DepKind::Barrier { owner } => {
                    if owner == p {
                        // Cannot happen (the slowest member never jumps);
                        // bail rather than loop.
                        cur = 0.0;
                        break;
                    }
                    barriers += 1;
                    cur = d;
                    p = owner;
                }
            }
        }
        // If the step limit tripped mid-walk, close the path so segments
        // still tile [0, total].
        if cur > 0.0 {
            push_busy(p, 0.0, cur, &mut segments, &mut by_stage, &mut busy_ns);
        }

        CritPath {
            total_ns,
            busy_ns,
            transfer_ns,
            blocked_ns,
            hops,
            barriers,
            by_stage_ns: by_stage.into_iter().collect(),
            by_link_ns: by_link.into_iter().collect(),
            segments,
            procs,
        }
    }

    /// Completion time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns / 1e6
    }

    /// Path compute time in milliseconds.
    pub fn busy_ms(&self) -> f64 {
        self.busy_ns / 1e6
    }

    /// Path transfer time in milliseconds.
    pub fn transfer_ms(&self) -> f64 {
        self.transfer_ns / 1e6
    }

    /// Load imbalance: max over processors of whole-run busy time divided
    /// by the mean (1.0 = perfectly balanced, 0.0 = nothing ran).
    pub fn imbalance(&self) -> f64 {
        let sum: f64 = self.procs.iter().map(|b| b.busy_ns).sum();
        if sum <= 0.0 {
            return 0.0;
        }
        let max = self.procs.iter().map(|b| b.busy_ns).fold(0.0f64, f64::max);
        max * self.procs.len() as f64 / sum
    }

    /// The stage carrying the most critical-path busy time, with its
    /// nanoseconds. `None` on an empty path.
    pub fn top_stage(&self) -> Option<(&str, f64)> {
        self.by_stage_ns
            .iter()
            .fold(None, |best: Option<(&str, f64)>, (name, ns)| match best {
                Some((_, b)) if b >= *ns => best,
                _ => Some((name.as_str(), *ns)),
            })
    }

    /// Sum of all segment lengths, ns. Equals [`CritPath::total_ns`] up
    /// to floating-point rounding — the tiling invariant the property
    /// tests assert.
    pub fn path_ns(&self) -> f64 {
        self.segments.iter().map(Segment::len_ns).sum()
    }

    /// Render a human-readable report (what `results/critpath.txt`
    /// carries per workload).
    pub fn render(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{title}: total {:.3} ms = busy {:.3} + transfer {:.3} + blocked {:.3} \
             ({} hops, {} barriers)",
            self.total_ms(),
            self.busy_ms(),
            self.transfer_ms(),
            self.blocked_ns / 1e6,
            self.hops,
            self.barriers,
        );
        let mut stages: Vec<_> = self.by_stage_ns.iter().collect();
        stages.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        for (name, ns) in stages {
            let pct = if self.total_ns > 0.0 {
                100.0 * ns / self.total_ns
            } else {
                0.0
            };
            let _ = writeln!(s, "  stage {name:<24} {:>10.3} ms  {pct:>5.1}%", ns / 1e6);
        }
        let mut links: Vec<_> = self.by_link_ns.iter().collect();
        links.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        for ((src, dst), ns) in links.into_iter().take(8) {
            let _ = writeln!(s, "  link  {src} -> {dst:<18} {:>10.3} ms", ns / 1e6);
        }
        let _ = writeln!(s, "  imbalance {:.3}", self.imbalance());
        for (i, b) in self.procs.iter().enumerate() {
            let _ = writeln!(
                s,
                "  proc {i}: busy {:.3} ms  blocked {:.3} ms  barrier {:.3} ms  idle {:.3} ms",
                b.busy_ns / 1e6,
                b.blocked_ns / 1e6,
                b.barrier_ns / 1e6,
                b.idle_ns / 1e6,
            );
        }
        s
    }
}

/// Flatten span begin/end events into disjoint sorted intervals labelled
/// with the *innermost* active stage.
fn stage_intervals(events: &[Event]) -> Vec<(f64, f64, &'static str)> {
    let mut stack: Vec<(&'static str, f64)> = Vec::new();
    let mut out = Vec::new();
    for e in events {
        match e.kind {
            EventKind::SpanBegin { name } => {
                if let Some((inner, since)) = stack.last_mut() {
                    if e.ts_ns > *since {
                        out.push((*since, e.ts_ns, *inner));
                    }
                    *since = e.ts_ns;
                }
                stack.push((name, e.ts_ns));
            }
            EventKind::SpanEnd { .. } => {
                if let Some((name, since)) = stack.pop() {
                    if e.ts_ns > since {
                        out.push((since, e.ts_ns, name));
                    }
                    if let Some((_, outer_since)) = stack.last_mut() {
                        *outer_since = e.ts_ns;
                    }
                }
            }
            _ => {}
        }
    }
    // Unbalanced traces (crashed runs) leave open spans; close them at
    // their own start so they contribute nothing rather than panicking.
    out
}

/// Split the busy interval `[start, end)` across the stage intervals of
/// its processor; time outside any span goes to [`UNTRACKED`].
fn attribute_stages(
    intervals: &[(f64, f64, &'static str)],
    start: f64,
    end: f64,
    by_stage: &mut BTreeMap<String, f64>,
) {
    let mut covered = 0.0;
    let first = intervals.partition_point(|&(_, e, _)| e <= start);
    for &(s, e, name) in &intervals[first..] {
        if s >= end {
            break;
        }
        let len = e.min(end) - s.max(start);
        if len > 0.0 {
            covered += len;
            *by_stage.entry(name.to_string()).or_insert(0.0) += len;
        }
    }
    let rest = (end - start) - covered;
    if rest > 0.0 {
        *by_stage.entry(UNTRACKED.to_string()).or_insert(0.0) += rest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts_ns: f64, kind: EventKind) -> Event {
        Event { ts_ns, kind }
    }

    fn clock(now_ns: f64) -> ClockReport {
        ClockReport {
            now_ns,
            ..ClockReport::zero()
        }
    }

    #[test]
    fn stage_intervals_prefer_innermost() {
        let evs = vec![
            ev(0.0, EventKind::SpanBegin { name: "outer" }),
            ev(2.0, EventKind::SpanBegin { name: "inner" }),
            ev(5.0, EventKind::SpanEnd { name: "inner" }),
            ev(9.0, EventKind::SpanEnd { name: "outer" }),
        ];
        assert_eq!(
            stage_intervals(&evs),
            vec![
                (0.0, 2.0, "outer"),
                (2.0, 5.0, "inner"),
                (5.0, 9.0, "outer")
            ]
        );
    }

    #[test]
    fn untraced_run_is_one_busy_segment() {
        let cp = CritPath::from_parts(&[], &[clock(5e6), clock(3e6)]);
        assert_eq!(cp.total_ns, 5e6);
        assert_eq!(cp.segments.len(), 1);
        assert_eq!(cp.segments[0].proc, 0);
        assert_eq!(cp.busy_ns, 5e6);
        assert_eq!(cp.hops, 0);
        assert_eq!(cp.by_stage_ns, vec![(UNTRACKED.to_string(), 5e6)]);
        // Proc 1 finished 2 ms early: idle.
        assert_eq!(cp.procs[1].idle_ns, 2e6);
    }

    #[test]
    fn blocked_fallback_when_send_is_missing() {
        // Proc 0 consumed at t=10 after waiting 4, but no Send was traced.
        let events = vec![vec![ev(
            10.0,
            EventKind::Consume {
                src: 1,
                tag: 0,
                words: 1,
                waited_ns: 4.0,
                arrival_ns: 10.0,
            },
        )]];
        let cp = CritPath::from_parts(&events, &[clock(12.0), clock(6.0)]);
        assert_eq!(cp.blocked_ns, 4.0);
        assert_eq!(cp.busy_ns, 8.0); // [0,6] + [10,12]
        assert!((cp.path_ns() - cp.total_ns).abs() < 1e-9);
    }
}
