//! A minimal recursive-descent JSON parser — just enough to read the
//! versioned perf reports (`results/BENCH_*.json`) back in. The repo
//! deliberately carries no serde; reports are hand-rendered on the way
//! out and hand-parsed on the way in.
//!
//! Supports the full JSON value grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null). Numbers are read as `f64`, which is
//! exact for every integer the reports emit (they stay far below 2^53).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let b = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut s = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("invalid \\u escape")?;
                        // Surrogate pairs are not emitted by our writers;
                        // map lone surrogates to the replacement char.
                        s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through untouched).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                s.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_report_shape() {
        let doc = r#"{
            "schema_version": 2, "rev": "abc1234", "mode": "smoke",
            "workloads": [
                {"name": "pack.sss.w1", "total_ms": 1.25, "words": 4096,
                 "stages_ms": {"local": 0.5, "m2m": 0.75},
                 "critpath": null, "density": 0.5, "ok": true}
            ]
        }"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("schema_version").unwrap().as_f64(), Some(2.0));
        let w = &v.get("workloads").unwrap().as_arr().unwrap()[0];
        assert_eq!(w.get("name").unwrap().as_str(), Some("pack.sss.w1"));
        assert_eq!(w.get("total_ms").unwrap().as_f64(), Some(1.25));
        assert_eq!(
            w.get("stages_ms").unwrap().get("m2m").unwrap().as_f64(),
            Some(0.75)
        );
        assert_eq!(w.get("critpath"), Some(&Json::Null));
        assert_eq!(w.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn negative_and_exponent_numbers() {
        let v = Json::parse("[-1.5e3, 0.25, -0]").unwrap();
        let a = v.as_arr().unwrap();
        assert_eq!(a[0].as_f64(), Some(-1500.0));
        assert_eq!(a[1].as_f64(), Some(0.25));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }
}
