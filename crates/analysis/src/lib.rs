//! # hpf-analysis — offline analysis over simulated-machine runs
//!
//! Everything in this crate consumes the observability outputs of
//! [`hpf_machine`] (structured events, clock reports, perf-report JSON)
//! *after* a run finishes; nothing here touches the simulation itself.
//! Three questions it answers:
//!
//! 1. **Where did the time go?** [`CritPath`] walks the event log backward
//!    from the slowest processor's finish, hopping send→consume and
//!    barrier edges, and produces the critical path through the run —
//!    per-stage and per-link attribution plus a per-processor
//!    busy/blocked/idle breakdown ([`ProcBreakdown`]).
//! 2. **Does the implementation still match the paper's model?**
//!    [`Conformance`] checks measured local-operation counters against
//!    the closed-form Section 6.4 predictions of
//!    [`hpf_core::MaskStats`], per processor, and fails past a tolerance.
//! 3. **Did this revision get slower?** [`diff`] compares two versioned
//!    perf reports (`results/BENCH_*.json`) on simulated metrics only —
//!    never wall-clock — and renders a markdown delta table for CI.
//! 4. **Does the working set fit?** [`memory`] folds `MemSample` events
//!    into per-processor high-water marks and checks them against a
//!    closed-form predicted peak-memory model — the memory analogue of
//!    the conformance check, and the gate Red.2 feasibility hangs on.
//! 5. **Where does the *real* time go?** [`wallprof`] aggregates the
//!    wall-clock span profiles of a profiled run into a ranked hotspot
//!    report (exclusive time, bytes moved, bandwidth vs the memcpy roof)
//!    and gates wall-time medians across revisions with a noise band
//!    derived from repeated measurement — the only place wall-clock is
//!    ever gated, and never against simulated metrics.
//!
//! The [`json`] module carries the minimal recursive-descent JSON parser
//! the diff needs (the repo deliberately has no serde).

#![warn(missing_docs)]

pub mod conformance;
pub mod critpath;
pub mod diff;
pub mod json;
pub mod memory;
pub mod wallprof;

pub use conformance::{Conformance, ConformancePhases};
pub use critpath::{CritPath, ProcBreakdown, Segment, SegmentKind};
pub use diff::{DiffReport, DiffRow};
pub use json::Json;
pub use memory::{
    measured_peak, predict_pack_peak, predict_pack_redist_peak, predict_unpack_peak, MeasuredPeak,
    PeakMemory, MEM_RATIO_GATE,
};
pub use wallprof::{
    mad, median, memcpy_roof_gbps, Hotspot, HotspotReport, WallDiffReport, WallDiffRow,
    WallVerdict, WALL_NOISE_MADS,
};
