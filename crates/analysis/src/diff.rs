//! Cross-revision perf regression detection: compare two versioned perf
//! reports workload-by-workload and flag simulated-metric regressions.
//!
//! Only *simulated* quantities are compared — `total_ms`, the per-category
//! `stages_ms`, `words`, `startups`, and the `memory` group's measured and
//! predicted peak bytes. These are exactly reproducible
//! run-to-run, so any delta is a real behavioural change in the code, not
//! machine noise. `wall_ms` (harness wall-clock) is deliberately ignored:
//! it varies with load and would make the gate flaky.
//!
//! A workload present in the old report but absent from the new one is a
//! hard failure regardless of thresholds — losing coverage must never
//! look like a win.

use crate::json::Json;

/// One compared metric of one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Workload name, e.g. `"pack.css.w1"`.
    pub workload: String,
    /// Metric name, e.g. `"total_ms"` or `"stages_ms.m2m"`.
    pub metric: String,
    /// Old value.
    pub old: f64,
    /// New value.
    pub new: f64,
    /// Relative change in percent; positive = regression (all compared
    /// metrics are bigger-is-worse). Infinite when `old` is zero and
    /// `new` is not.
    pub delta_pct: f64,
}

/// The full comparison of two reports.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Per-metric rows, in report order.
    pub rows: Vec<DiffRow>,
    /// Workloads present in the old report but missing from the new —
    /// always a failure.
    pub missing: Vec<String>,
    /// Workloads new in the new report (informational).
    pub added: Vec<String>,
    /// `(old_mode, new_mode)` when the two reports ran different workload
    /// scales (smoke vs full) — deltas are then meaningless.
    pub mode_mismatch: Option<(String, String)>,
}

/// Scalar metrics compared on every workload, besides the stage breakdown.
const SCALARS: [&str; 3] = ["total_ms", "words", "startups"];

impl DiffReport {
    /// Compare two parsed perf reports (any schema version carrying a
    /// `workloads` array of named entries).
    pub fn from_reports(old: &Json, new: &Json) -> Result<DiffReport, String> {
        let old_w = workloads(old, "old")?;
        let new_w = workloads(new, "new")?;
        let mode = |r: &Json| {
            r.get("mode")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string()
        };
        let (om, nm) = (mode(old), mode(new));
        let mode_mismatch = (om != nm).then_some((om, nm));

        let mut rows = Vec::new();
        let mut missing = Vec::new();
        for (name, ow) in &old_w {
            let Some(nw) = new_w.iter().find(|(n, _)| n == name).map(|(_, w)| w) else {
                missing.push(name.clone());
                continue;
            };
            for metric in SCALARS {
                if let (Some(o), Some(n)) = (num(ow, metric), num(nw, metric)) {
                    rows.push(row(name, metric, o, n));
                }
            }
            if let (Some(os), Some(ns)) = (ow.get("stages_ms"), nw.get("stages_ms")) {
                for (stage, ov) in os.as_obj().unwrap_or(&[]) {
                    if let (Some(o), Some(n)) = (ov.as_f64(), ns.get(stage).and_then(Json::as_f64))
                    {
                        rows.push(row(name, &format!("stages_ms.{stage}"), o, n));
                    }
                }
            }
            // Peak-memory accounting (schema v6+) is simulated bookkeeping,
            // so its byte counts diff like any other deterministic metric.
            if let (Some(om), Some(nmem)) = (ow.get("memory"), nw.get("memory")) {
                for metric in ["measured_peak_bytes", "predicted_peak_bytes"] {
                    if let (Some(o), Some(n)) = (num(om, metric), num(nmem, metric)) {
                        rows.push(row(name, &format!("memory.{metric}"), o, n));
                    }
                }
            }
        }
        let added = new_w
            .iter()
            .filter(|(n, _)| !old_w.iter().any(|(o, _)| o == n))
            .map(|(n, _)| n.clone())
            .collect();
        Ok(DiffReport {
            rows,
            missing,
            added,
            mode_mismatch,
        })
    }

    /// The worst regression across all rows, percent (0 if nothing got
    /// worse).
    pub fn max_regression_pct(&self) -> f64 {
        self.rows.iter().map(|r| r.delta_pct).fold(0.0f64, f64::max)
    }

    /// Gate verdict: failed if any workload disappeared or any metric
    /// regressed by at least `fail_pct` percent.
    pub fn failed(&self, fail_pct: f64) -> bool {
        !self.missing.is_empty() || self.max_regression_pct() >= fail_pct
    }

    /// Render a markdown summary: a delta table of every changed metric
    /// (plus every `total_ms`), flagged against the two thresholds.
    pub fn markdown(&self, warn_pct: f64, fail_pct: f64) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        if let Some((om, nm)) = &self.mode_mismatch {
            let _ = writeln!(
                s,
                "> **warning**: comparing a `{om}` report against a `{nm}` report — \
                 workload scales differ, deltas are not meaningful.\n"
            );
        }
        for name in &self.missing {
            let _ = writeln!(s, "- **FAIL**: workload `{name}` missing from new report");
        }
        for name in &self.added {
            let _ = writeln!(s, "- new workload `{name}` (no baseline)");
        }
        s.push_str("\n| workload | metric | old | new | delta | |\n");
        s.push_str("|---|---|---:|---:|---:|---|\n");
        let mut shown = 0usize;
        for r in &self.rows {
            let changed = r.delta_pct.abs() > 1e-9;
            if !(changed || r.metric == "total_ms") {
                continue;
            }
            shown += 1;
            let flag = if r.delta_pct >= fail_pct {
                "FAIL"
            } else if r.delta_pct >= warn_pct {
                "warn"
            } else {
                ""
            };
            let delta = if r.delta_pct.is_infinite() {
                "new>0".to_string()
            } else {
                format!("{:+.2}%", r.delta_pct)
            };
            let _ = writeln!(
                s,
                "| {} | {} | {} | {} | {delta} | {flag} |",
                r.workload,
                r.metric,
                fmt_val(r.old),
                fmt_val(r.new),
            );
        }
        let _ = writeln!(
            s,
            "\n{} metrics compared, {shown} shown, worst regression {:+.2}%.",
            self.rows.len(),
            self.max_regression_pct()
        );
        s
    }
}

fn row(workload: &str, metric: &str, old: f64, new: f64) -> DiffRow {
    let delta_pct = if old.abs() > 0.0 {
        (new - old) / old * 100.0
    } else if new.abs() > 0.0 {
        f64::INFINITY
    } else {
        0.0
    };
    DiffRow {
        workload: workload.to_string(),
        metric: metric.to_string(),
        old,
        new,
        delta_pct,
    }
}

fn num(w: &Json, key: &str) -> Option<f64> {
    w.get(key).and_then(Json::as_f64)
}

fn fmt_val(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:.4}")
    }
}

fn workloads<'a>(report: &'a Json, which: &str) -> Result<Vec<(String, &'a Json)>, String> {
    let arr = report
        .get("workloads")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{which} report has no workloads array"))?;
    arr.iter()
        .map(|w| {
            w.get("name")
                .and_then(Json::as_str)
                .map(|n| (n.to_string(), w))
                .ok_or_else(|| format!("{which} report has an unnamed workload"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(entries: &[(&str, f64, f64)]) -> Json {
        // (name, total_ms, words); one stage mirrors total for coverage.
        let body: Vec<String> = entries
            .iter()
            .map(|(n, t, w)| {
                format!(
                    r#"{{"name":"{n}","total_ms":{t},"words":{w},"startups":10,
                        "stages_ms":{{"local":{t}}},"wall_ms":999.0}}"#
                )
            })
            .collect();
        Json::parse(&format!(
            r#"{{"schema_version":2,"mode":"smoke","workloads":[{}]}}"#,
            body.join(",")
        ))
        .unwrap()
    }

    #[test]
    fn identical_reports_diff_clean() {
        let a = report(&[("pack.sss.w1", 1.5, 4096.0)]);
        let d = DiffReport::from_reports(&a, &a).unwrap();
        assert_eq!(d.max_regression_pct(), 0.0);
        assert!(!d.failed(5.0));
        assert!(d.missing.is_empty() && d.added.is_empty());
    }

    #[test]
    fn regression_is_flagged_and_fails_past_threshold() {
        let old = report(&[("pack.sss.w1", 1.0, 1000.0)]);
        let new = report(&[("pack.sss.w1", 1.2, 1000.0)]);
        let d = DiffReport::from_reports(&old, &new).unwrap();
        assert!((d.max_regression_pct() - 20.0).abs() < 1e-9);
        assert!(d.failed(5.0));
        assert!(!d.failed(25.0));
        let md = d.markdown(5.0, 25.0);
        assert!(md.contains("| pack.sss.w1 | total_ms | 1 | 1.2000 | +20.00% | warn |"));
    }

    #[test]
    fn improvements_never_fail() {
        let old = report(&[("a", 2.0, 100.0)]);
        let new = report(&[("a", 1.0, 50.0)]);
        let d = DiffReport::from_reports(&old, &new).unwrap();
        assert_eq!(d.max_regression_pct(), 0.0);
        assert!(!d.failed(0.01));
    }

    #[test]
    fn missing_workload_is_a_hard_fail() {
        let old = report(&[("a", 1.0, 1.0), ("b", 1.0, 1.0)]);
        let new = report(&[("a", 1.0, 1.0)]);
        let d = DiffReport::from_reports(&old, &new).unwrap();
        assert_eq!(d.missing, vec!["b".to_string()]);
        assert!(d.failed(f64::INFINITY));
        assert!(d.markdown(1.0, 5.0).contains("missing from new report"));
    }

    #[test]
    fn memory_peaks_are_compared() {
        let mk = |measured: u64| {
            Json::parse(&format!(
                r#"{{"schema_version":6,"mode":"smoke","workloads":[
                    {{"name":"memory.pack.cms.w8","total_ms":1.0,"words":1,"startups":1,
                     "stages_ms":{{"local":1.0}},
                     "memory":{{"measured_peak_bytes":{measured},
                                "predicted_peak_bytes":3000,"ratio":1.1,"pass":true}},
                     "wall_ms":1.0}}]}}"#
            ))
            .unwrap()
        };
        let d = DiffReport::from_reports(&mk(2000), &mk(2400)).unwrap();
        let peak = d
            .rows
            .iter()
            .find(|r| r.metric == "memory.measured_peak_bytes")
            .expect("memory peak row");
        assert!((peak.delta_pct - 20.0).abs() < 1e-9);
        assert!(d.markdown(5.0, 25.0).contains("memory.measured_peak_bytes"));
    }

    #[test]
    fn wall_ms_is_ignored() {
        let old = report(&[("a", 1.0, 1.0)]);
        let new = Json::parse(
            r#"{"schema_version":2,"mode":"smoke","workloads":[
                {"name":"a","total_ms":1.0,"words":1,"startups":10,
                 "stages_ms":{"local":1.0},"wall_ms":123456.0}]}"#,
        )
        .unwrap();
        let d = DiffReport::from_reports(&old, &new).unwrap();
        assert_eq!(d.max_regression_pct(), 0.0);
        assert!(d.rows.iter().all(|r| r.metric != "wall_ms"));
    }
}
