//! Wall-clock hotspot attribution and noise-aware wall-time regression
//! gating — the real-time counterpart of [`crate::critpath`] (which ranks
//! *simulated* time) and [`crate::diff`] (which gates *simulated*
//! metrics).
//!
//! Two halves:
//!
//! 1. **Hotspot attribution.** [`HotspotReport`] folds the per-processor
//!    [`WallProfile`]s of a profiled run into per-stage *self* time
//!    (exclusive: a span's duration minus its direct children), ranked by
//!    wall share. Because self time partitions the measured total exactly,
//!    the ranked rows always account for 100% of the profiled wall time —
//!    [`HotspotReport::top_share`] tells how few stages cover how much,
//!    which is the worklist for local-operation kernel tuning. Stages that
//!    moved bytes also report effective copy bandwidth against the
//!    machine's [`memcpy_roof_gbps`] so "slow" separates into
//!    "bandwidth-bound" vs "overhead-bound".
//!
//! 2. **Noise-aware wall diffing.** Wall-clock medians jitter run-to-run,
//!    so a fixed-threshold gate is either deaf or flaky. [`WallDiffReport`]
//!    compares the per-workload `wall` objects of two perf reports
//!    (median/MAD/cv from repeated measurement) and fails only when the
//!    median moved beyond **max(noise band, fixed floor)**, where the
//!    noise band is [`WALL_NOISE_MADS`] robust deviations of the noisier
//!    report. Workloads whose `cv` is `null` (single-rep, unmeasured
//!    noise) are skipped, never failed; a workload that *disappeared*
//!    fails unconditionally, exactly like the simulated diff.

use std::collections::BTreeMap;
use std::time::Instant;

use hpf_machine::WallProfile;

use crate::json::Json;

/// Robust deviations of tolerated drift: the noise band of a wall
/// comparison is `WALL_NOISE_MADS * max(old MAD, new MAD)` around the old
/// median. 5 MADs ≈ 3.4σ for Gaussian noise (σ ≈ 1.4826 · MAD), wide
/// enough that a stable workload essentially never false-fails.
pub const WALL_NOISE_MADS: f64 = 5.0;

/// Median of a sample set (averaging the middle pair on even sizes).
/// Returns 0 on an empty slice.
pub fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Median absolute deviation from the median — the robust spread estimate
/// the wall gate's noise band is built from (unscaled: multiply by 1.4826
/// for a Gaussian σ estimate).
pub fn mad(samples: &[f64]) -> f64 {
    let m = median(samples);
    let dev: Vec<f64> = samples.iter().map(|x| (x - m).abs()).collect();
    median(&dev)
}

/// Measure this machine's large-copy memcpy bandwidth in GB/s (bytes per
/// nanosecond): best of a few 8 MiB `copy_from_slice` passes, which is the
/// practical roof any gather/scatter/fill stage can hope to reach.
pub fn memcpy_roof_gbps() -> f64 {
    const BYTES: usize = 8 << 20;
    let src = vec![0x5Au8; BYTES];
    let mut dst = vec![0u8; BYTES];
    let mut best = 0.0f64;
    for _ in 0..5 {
        let t0 = Instant::now();
        dst.copy_from_slice(&src);
        std::hint::black_box(&mut dst);
        let ns = t0.elapsed().as_nanos().max(1) as f64;
        best = best.max(BYTES as f64 / ns);
    }
    best
}

/// One stage's aggregate across all processors of a profiled run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hotspot {
    /// Span name, e.g. `"fill_segments"` or `"pack.execute"`.
    pub stage: String,
    /// Total *exclusive* wall time: span durations minus direct children.
    pub self_ns: u64,
    /// Bytes attributed to this stage via `Proc::wall_bytes`.
    pub bytes: u64,
    /// Number of span instances aggregated.
    pub calls: u64,
}

impl Hotspot {
    /// Effective copy bandwidth in GB/s (bytes per nanosecond), when the
    /// stage both moved bytes and took measurable time.
    pub fn gbps(&self) -> Option<f64> {
        (self.bytes > 0 && self.self_ns > 0).then(|| self.bytes as f64 / self.self_ns as f64)
    }
}

/// Ranked per-stage wall-time attribution for one profiled run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotspotReport {
    /// Total profiled wall time, summed over processors (root span
    /// durations; equals the sum of all rows' `self_ns`).
    pub total_ns: u64,
    /// Stages ranked by `self_ns` descending (ties broken by name).
    pub hotspots: Vec<Hotspot>,
}

impl HotspotReport {
    /// Aggregate the per-processor profiles of one run: self time, bytes,
    /// and call counts folded per stage name, ranked by self time.
    pub fn from_profiles(profiles: &[WallProfile]) -> HotspotReport {
        let mut agg: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
        let mut total_ns = 0u64;
        for p in profiles {
            total_ns += p.total_ns();
            for (i, s) in p.spans.iter().enumerate() {
                let e = agg.entry(s.name).or_default();
                e.0 += p.self_ns(i);
                e.1 += s.bytes;
                e.2 += 1;
            }
        }
        let mut hotspots: Vec<Hotspot> = agg
            .into_iter()
            .map(|(stage, (self_ns, bytes, calls))| Hotspot {
                stage: stage.to_string(),
                self_ns,
                bytes,
                calls,
            })
            .collect();
        hotspots.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.stage.cmp(&b.stage)));
        HotspotReport { total_ns, hotspots }
    }

    /// One stage's share of the total wall time, in [0, 1].
    pub fn share(&self, h: &Hotspot) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            h.self_ns as f64 / self.total_ns as f64
        }
    }

    /// Wall share of the top `n` ranked stages combined — the coverage
    /// statement "the top n stages account for this fraction of the run".
    pub fn top_share(&self, n: usize) -> f64 {
        self.hotspots.iter().take(n).map(|h| self.share(h)).sum()
    }

    /// Human-readable ranked table. `elements` scales ns/element (pass the
    /// workload's element count, or 0 to omit); `roof_gbps` adds a
    /// percent-of-memcpy-roof column for byte-moving stages.
    pub fn render(&self, title: &str, elements: u64, roof_gbps: f64) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "hotspots: {title}  total {:.3} ms  (memcpy roof {:.2} GB/s)",
            self.total_ns as f64 / 1e6,
            roof_gbps,
        );
        for h in &self.hotspots {
            let _ = write!(
                s,
                "  {:<22} {:>9.3} ms  {:>5.1}%  {:>6} calls",
                h.stage,
                h.self_ns as f64 / 1e6,
                self.share(h) * 100.0,
                h.calls,
            );
            if elements > 0 {
                let _ = write!(s, "  {:>8.2} ns/elem", h.self_ns as f64 / elements as f64);
            }
            if let Some(g) = h.gbps() {
                let _ = write!(s, "  {g:>6.2} GB/s");
                if roof_gbps > 0.0 {
                    let _ = write!(s, " ({:>4.1}% of roof)", g / roof_gbps * 100.0);
                }
            }
            s.push('\n');
        }
        s
    }
}

/// Verdict of one workload's wall comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WallVerdict {
    /// Median moved within the noise band (or improved).
    Pass,
    /// Median regressed beyond max(noise band, fixed floor).
    Fail,
    /// Noise unmeasured (`cv` null on either side) — no basis to gate.
    Skipped,
}

/// One workload's wall-time comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct WallDiffRow {
    /// Workload name.
    pub workload: String,
    /// Old median, milliseconds.
    pub old_median_ms: f64,
    /// New median, milliseconds.
    pub new_median_ms: f64,
    /// Relative median change in percent; positive = slower.
    pub delta_pct: f64,
    /// Tolerated band in percent: max(noise band, fixed floor).
    pub allowed_pct: f64,
    /// The gate's verdict for this row.
    pub verdict: WallVerdict,
}

/// Noise-aware wall-time comparison of two perf reports.
#[derive(Debug, Clone, PartialEq)]
pub struct WallDiffReport {
    /// Per-workload rows, old-report order.
    pub rows: Vec<WallDiffRow>,
    /// Workloads with measured wall stats in the old report but missing
    /// from the new — an unconditional failure.
    pub missing: Vec<String>,
    /// The fixed floor (percent) below which drift never fails.
    pub fixed_pct: f64,
}

impl WallDiffReport {
    /// Compare the `wall` objects of two parsed perf reports. `fixed_pct`
    /// is the drift floor always tolerated regardless of how quiet the
    /// noise measurement was.
    ///
    /// Gating rule per workload present in both reports:
    /// * either side's `wall` or `cv` null → [`WallVerdict::Skipped`];
    /// * else fail iff `delta_pct > max(fixed_pct, noise band)` where the
    ///   noise band is `100 · WALL_NOISE_MADS · max(MADs) / old median`.
    pub fn compare(old: &Json, new: &Json, fixed_pct: f64) -> Result<WallDiffReport, String> {
        let old_w = workloads(old, "old")?;
        let new_w = workloads(new, "new")?;
        let mut rows = Vec::new();
        let mut missing = Vec::new();
        for (name, ow) in &old_w {
            let Some(wall_old) = wall_stats(ow) else {
                continue; // old side never measured wall: nothing to gate
            };
            let Some(nw) = new_w.iter().find(|(n, _)| n == name).map(|(_, w)| *w) else {
                missing.push(name.clone());
                continue;
            };
            let (o_med, o_mad, o_cv) = wall_old;
            let row = match wall_stats(nw) {
                Some((n_med, n_mad, n_cv)) if o_cv.is_some() && n_cv.is_some() => {
                    let delta_pct = if o_med > 0.0 {
                        (n_med - o_med) / o_med * 100.0
                    } else if n_med > 0.0 {
                        f64::INFINITY
                    } else {
                        0.0
                    };
                    let noise_pct = if o_med > 0.0 {
                        100.0 * WALL_NOISE_MADS * o_mad.max(n_mad) / o_med
                    } else {
                        0.0
                    };
                    let allowed_pct = fixed_pct.max(noise_pct);
                    WallDiffRow {
                        workload: name.clone(),
                        old_median_ms: o_med,
                        new_median_ms: n_med,
                        delta_pct,
                        allowed_pct,
                        verdict: if delta_pct > allowed_pct {
                            WallVerdict::Fail
                        } else {
                            WallVerdict::Pass
                        },
                    }
                }
                Some((n_med, _, _)) => WallDiffRow {
                    workload: name.clone(),
                    old_median_ms: o_med,
                    new_median_ms: n_med,
                    delta_pct: 0.0,
                    allowed_pct: fixed_pct,
                    verdict: WallVerdict::Skipped,
                },
                None => WallDiffRow {
                    workload: name.clone(),
                    old_median_ms: o_med,
                    new_median_ms: 0.0,
                    delta_pct: 0.0,
                    allowed_pct: fixed_pct,
                    verdict: WallVerdict::Skipped,
                },
            };
            rows.push(row);
        }
        Ok(WallDiffReport {
            rows,
            missing,
            fixed_pct,
        })
    }

    /// True when any row failed or any measured workload went missing.
    pub fn failed(&self) -> bool {
        !self.missing.is_empty() || self.rows.iter().any(|r| r.verdict == WallVerdict::Fail)
    }

    /// Worst (most positive) gated regression, percent; 0 when none.
    pub fn max_regression_pct(&self) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.verdict != WallVerdict::Skipped)
            .map(|r| r.delta_pct)
            .fold(0.0, f64::max)
    }

    /// Markdown delta table for CI logs.
    pub fn markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        s.push_str("| workload | old ms | new ms | delta | allowed | verdict |\n");
        s.push_str("|---|---:|---:|---:|---:|---|\n");
        for r in &self.rows {
            let verdict = match r.verdict {
                WallVerdict::Pass => "pass",
                WallVerdict::Fail => "**FAIL**",
                WallVerdict::Skipped => "skip (cv null)",
            };
            let _ = writeln!(
                s,
                "| {} | {:.3} | {:.3} | {:+.2}% | {:.2}% | {} |",
                r.workload, r.old_median_ms, r.new_median_ms, r.delta_pct, r.allowed_pct, verdict,
            );
        }
        for m in &self.missing {
            let _ = writeln!(s, "| {m} | — | — | — | — | **MISSING** |");
        }
        s
    }
}

/// The `(name, workload)` pairs of a parsed report.
fn workloads<'a>(report: &'a Json, which: &str) -> Result<Vec<(String, &'a Json)>, String> {
    let arr = report
        .get("workloads")
        .and_then(|w| w.as_arr())
        .ok_or_else(|| format!("{which} report has no workloads array"))?;
    arr.iter()
        .map(|w| {
            w.get("name")
                .and_then(|n| n.as_str())
                .map(|n| (n.to_string(), w))
                .ok_or_else(|| format!("{which} report has an unnamed workload"))
        })
        .collect()
}

/// A workload's `(median_ms, mad_ms, cv)` wall stats, `None` when the
/// workload carries no measured `wall` object at all. `cv` stays `None`
/// when the report marked it null (single-rep: noise unmeasured).
fn wall_stats(w: &Json) -> Option<(f64, f64, Option<f64>)> {
    let wall = w.get("wall")?;
    let median = wall.get("median_ms")?.as_f64()?;
    let mad = wall.get("mad_ms")?.as_f64()?;
    let cv = wall.get("cv").and_then(|c| c.as_f64());
    Some((median, mad, cv))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_machine::WallProfiler;

    fn report(workloads: &str) -> Json {
        Json::parse(&format!(
            r#"{{"schema_version": 7, "mode": "full", "workloads": [{workloads}]}}"#
        ))
        .unwrap()
    }

    fn wl(name: &str, median: f64, mad: f64, cv: &str) -> String {
        format!(
            r#"{{"name": "{name}", "wall": {{"reps": 5, "warmup": 1,
                 "median_ms": {median}, "mad_ms": {mad}, "cv": {cv}}}}}"#
        )
    }

    #[test]
    fn within_noise_drift_passes() {
        // +4% drift, noise band 100·5·1.0/100 = 5% > fixed 2% → pass.
        let old = report(&wl("pack.sss.w1", 100.0, 1.0, "0.01"));
        let new = report(&wl("pack.sss.w1", 104.0, 1.0, "0.01"));
        let d = WallDiffReport::compare(&old, &new, 2.0).unwrap();
        assert_eq!(d.rows.len(), 1);
        assert_eq!(d.rows[0].verdict, WallVerdict::Pass);
        assert!(!d.failed());
    }

    #[test]
    fn beyond_noise_regression_fails() {
        // +20% drift against a 5% noise band and a 10% floor → fail.
        let old = report(&wl("pack.sss.w1", 100.0, 1.0, "0.01"));
        let new = report(&wl("pack.sss.w1", 120.0, 1.0, "0.01"));
        let d = WallDiffReport::compare(&old, &new, 10.0).unwrap();
        assert_eq!(d.rows[0].verdict, WallVerdict::Fail);
        assert!(d.failed());
        assert!((d.max_regression_pct() - 20.0).abs() < 1e-9);
        assert!(d.markdown().contains("**FAIL**"));
    }

    #[test]
    fn noisy_measurement_widens_the_band() {
        // Same +20% drift, but MAD 10 ms → band 100·5·10/100 = 50% → pass.
        let old = report(&wl("pack.sss.w1", 100.0, 10.0, "0.1"));
        let new = report(&wl("pack.sss.w1", 120.0, 10.0, "0.1"));
        let d = WallDiffReport::compare(&old, &new, 10.0).unwrap();
        assert_eq!(d.rows[0].verdict, WallVerdict::Pass);
    }

    #[test]
    fn missing_workload_fails_unconditionally() {
        let old = report(&format!(
            "{}, {}",
            wl("pack.sss.w1", 100.0, 1.0, "0.01"),
            wl("unpack.sss.w1", 50.0, 1.0, "0.01")
        ));
        let new = report(&wl("pack.sss.w1", 100.0, 1.0, "0.01"));
        let d = WallDiffReport::compare(&old, &new, 10.0).unwrap();
        assert_eq!(d.missing, vec!["unpack.sss.w1".to_string()]);
        assert!(d.failed());
        assert!(d.markdown().contains("**MISSING**"));
    }

    #[test]
    fn null_cv_skips_the_gate() {
        // Smoke reports mark cv null (reps=1): a 10x "regression" must
        // skip, not fail — there is no noise measurement to gate against.
        let old = report(&wl("pack.sss.w1", 10.0, 0.0, "null"));
        let new = report(&wl("pack.sss.w1", 100.0, 0.0, "null"));
        let d = WallDiffReport::compare(&old, &new, 10.0).unwrap();
        assert_eq!(d.rows[0].verdict, WallVerdict::Skipped);
        assert!(!d.failed());
        assert_eq!(d.max_regression_pct(), 0.0);
    }

    #[test]
    fn median_and_mad_are_robust() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        // One wild outlier barely moves either statistic.
        assert_eq!(median(&[10.0, 10.0, 10.0, 10.0, 500.0]), 10.0);
        assert_eq!(mad(&[10.0, 10.0, 10.0, 10.0, 500.0]), 0.0);
        assert_eq!(mad(&[9.0, 10.0, 11.0, 10.0, 10.0]), 0.0);
        assert_eq!(mad(&[8.0, 10.0, 12.0]), 2.0);
    }

    #[test]
    fn hotspots_rank_by_self_time_and_partition_the_total() {
        let mut w = WallProfiler::new();
        w.begin("execute");
        w.begin("gather");
        w.add_bytes(4096);
        std::thread::sleep(std::time::Duration::from_millis(2));
        w.end();
        w.begin("decode");
        std::thread::sleep(std::time::Duration::from_millis(1));
        w.end();
        w.end();
        let profile = w.finish();
        let r = HotspotReport::from_profiles(std::slice::from_ref(&profile));
        assert_eq!(r.hotspots.len(), 3);
        let self_sum: u64 = r.hotspots.iter().map(|h| h.self_ns).sum();
        assert_eq!(self_sum, r.total_ns, "self time partitions the total");
        assert!((r.top_share(3) - 1.0).abs() < 1e-12);
        let gather = r.hotspots.iter().find(|h| h.stage == "gather").unwrap();
        let decode = r.hotspots.iter().find(|h| h.stage == "decode").unwrap();
        assert!(gather.self_ns > decode.self_ns);
        assert_eq!(gather.bytes, 4096);
        assert!(gather.gbps().is_some());
        let rendered = r.render("test", 1024, 10.0);
        assert!(rendered.contains("gather"));
        assert!(rendered.contains("GB/s"));
    }

    #[test]
    fn memcpy_roof_is_positive() {
        assert!(memcpy_roof_gbps() > 0.0);
    }
}
