//! Section 6.4 cost-model conformance: measured local-operation counters
//! versus the paper's closed-form predictions.
//!
//! The clock counts elementary operations per [`Category`] independently
//! of the cost model (counts, not times), and
//! [`hpf_core::MaskStats`] recomputes the Section 6.4 formulas from the
//! global mask alone. Whenever the two drift apart, either the
//! implementation stopped doing what the paper says or the formulas were
//! transcribed wrong — both worth failing a build over. This module is
//! the comparison: per-processor relative error against a tolerance.
//!
//! [`Category`]: hpf_machine::Category

/// Outcome of checking one workload's measured `LocalComp` operation
/// counts against a Section 6.4 prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct Conformance {
    /// Scheme label, e.g. `"pack.css"`.
    pub scheme: String,
    /// Predicted per-processor operation counts.
    pub predicted: Vec<u64>,
    /// Measured per-processor operation counts.
    pub measured: Vec<u64>,
    /// Worst per-processor relative error, `|m - p| / max(p, 1)`.
    pub rel_error: f64,
    /// Tolerance the check ran with.
    pub tol: f64,
    /// `rel_error <= tol`.
    pub pass: bool,
}

impl Conformance {
    /// Compare measured against predicted counts. Vectors must have equal
    /// length (one entry per processor); a length mismatch fails with
    /// infinite error rather than panicking.
    pub fn evaluate(scheme: &str, predicted: &[u64], measured: &[u64], tol: f64) -> Conformance {
        let rel_error = if predicted.len() == measured.len() {
            predicted
                .iter()
                .zip(measured)
                .map(|(&p, &m)| p.abs_diff(m) as f64 / (p.max(1)) as f64)
                .fold(0.0f64, f64::max)
        } else {
            f64::INFINITY
        };
        Conformance {
            scheme: scheme.to_string(),
            predicted: predicted.to_vec(),
            measured: measured.to_vec(),
            rel_error,
            tol,
            pass: rel_error <= tol,
        }
    }

    /// Aggregate predicted operations (all processors).
    pub fn predicted_total(&self) -> u64 {
        self.predicted.iter().sum()
    }

    /// Aggregate measured operations (all processors).
    pub fn measured_total(&self) -> u64 {
        self.measured.iter().sum()
    }

    /// One-line summary, e.g. for the perf report's stdout.
    pub fn summary(&self) -> String {
        format!(
            "{}: predicted {} measured {} rel_error {:.2e} -> {}",
            self.scheme,
            self.predicted_total(),
            self.measured_total(),
            self.rel_error,
            if self.pass { "pass" } else { "FAIL" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_passes_at_zero_tolerance() {
        let c = Conformance::evaluate("pack.sss", &[10, 20], &[10, 20], 0.0);
        assert!(c.pass);
        assert_eq!(c.rel_error, 0.0);
        assert_eq!(c.predicted_total(), 30);
    }

    #[test]
    fn drift_is_measured_per_processor() {
        // Aggregates agree (30 vs 30) but processors disagree — the check
        // must not be fooled by compensating errors.
        let c = Conformance::evaluate("pack.css", &[10, 20], &[12, 18], 0.05);
        assert!(!c.pass);
        assert!((c.rel_error - 0.2).abs() < 1e-12);
    }

    #[test]
    fn length_mismatch_fails_not_panics() {
        let c = Conformance::evaluate("x", &[1, 2], &[1], 1e9);
        assert!(!c.pass);
        assert!(c.rel_error.is_infinite());
    }
}
