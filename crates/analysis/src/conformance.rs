//! Section 6.4 cost-model conformance: measured local-operation counters
//! versus the paper's closed-form predictions.
//!
//! The clock counts elementary operations per [`Category`] independently
//! of the cost model (counts, not times), and
//! [`hpf_core::MaskStats`] recomputes the Section 6.4 formulas from the
//! global mask alone. Whenever the two drift apart, either the
//! implementation stopped doing what the paper says or the formulas were
//! transcribed wrong — both worth failing a build over. This module is
//! the comparison: per-processor relative error against a tolerance.
//!
//! [`Category`]: hpf_machine::Category

/// Per-phase attribution of a conformance check: the same operation
/// counts, split between the planner (scans, ranking, composition, the
/// UNPACK request round) and the executor (gathers, decodes, scatters) —
/// the planner/executor boundary of `hpf_core::plan`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformancePhases {
    /// Predicted plan-phase operation counts per processor.
    pub predicted_plan: Vec<u64>,
    /// Predicted execute-phase operation counts per processor.
    pub predicted_execute: Vec<u64>,
    /// Measured plan-phase operation counts per processor.
    pub measured_plan: Vec<u64>,
    /// Measured execute-phase operation counts per processor.
    pub measured_execute: Vec<u64>,
}

/// Outcome of checking one workload's measured `LocalComp` operation
/// counts against a Section 6.4 prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct Conformance {
    /// Scheme label, e.g. `"pack.css"`.
    pub scheme: String,
    /// Predicted per-processor operation counts.
    pub predicted: Vec<u64>,
    /// Measured per-processor operation counts.
    pub measured: Vec<u64>,
    /// Worst per-processor relative error, `|m - p| / max(p, 1)` (over the
    /// phase vectors too, when present).
    pub rel_error: f64,
    /// Tolerance the check ran with.
    pub tol: f64,
    /// `rel_error <= tol`.
    pub pass: bool,
    /// Plan/execute attribution, when the check was phase-resolved.
    pub phases: Option<ConformancePhases>,
}

fn worst_rel_error(predicted: &[u64], measured: &[u64]) -> f64 {
    if predicted.len() == measured.len() {
        predicted
            .iter()
            .zip(measured)
            .map(|(&p, &m)| p.abs_diff(m) as f64 / (p.max(1)) as f64)
            .fold(0.0f64, f64::max)
    } else {
        f64::INFINITY
    }
}

impl Conformance {
    /// Compare measured against predicted counts. Vectors must have equal
    /// length (one entry per processor); a length mismatch fails with
    /// infinite error rather than panicking.
    pub fn evaluate(scheme: &str, predicted: &[u64], measured: &[u64], tol: f64) -> Conformance {
        let rel_error = worst_rel_error(predicted, measured);
        Conformance {
            scheme: scheme.to_string(),
            predicted: predicted.to_vec(),
            measured: measured.to_vec(),
            rel_error,
            tol,
            pass: rel_error <= tol,
            phases: None,
        }
    }

    /// Phase-resolved comparison: plan and execute operation counts are
    /// checked separately (each per processor), so an error that merely
    /// *moves* work across the plan/execute boundary without changing the
    /// total still fails. The headline `predicted`/`measured` vectors are
    /// the per-processor phase sums, and `rel_error` is the worst error
    /// over both phases and the totals.
    pub fn evaluate_split(
        scheme: &str,
        predicted: (&[u64], &[u64]),
        measured: (&[u64], &[u64]),
        tol: f64,
    ) -> Conformance {
        let (pp, pe) = predicted;
        let (mp, me) = measured;
        let sum = |a: &[u64], b: &[u64]| -> Vec<u64> {
            if a.len() == b.len() {
                a.iter().zip(b).map(|(&x, &y)| x + y).collect()
            } else {
                Vec::new()
            }
        };
        let (predicted, measured) = (sum(pp, pe), sum(mp, me));
        let rel_error = worst_rel_error(pp, mp)
            .max(worst_rel_error(pe, me))
            .max(worst_rel_error(&predicted, &measured));
        Conformance {
            scheme: scheme.to_string(),
            predicted,
            measured,
            rel_error,
            tol,
            pass: rel_error <= tol,
            phases: Some(ConformancePhases {
                predicted_plan: pp.to_vec(),
                predicted_execute: pe.to_vec(),
                measured_plan: mp.to_vec(),
                measured_execute: me.to_vec(),
            }),
        }
    }

    /// Aggregate predicted operations (all processors).
    pub fn predicted_total(&self) -> u64 {
        self.predicted.iter().sum()
    }

    /// Aggregate measured operations (all processors).
    pub fn measured_total(&self) -> u64 {
        self.measured.iter().sum()
    }

    /// One-line summary, e.g. for the perf report's stdout.
    pub fn summary(&self) -> String {
        let phase = match &self.phases {
            Some(ph) => format!(
                " (plan {}/{} execute {}/{})",
                ph.predicted_plan.iter().sum::<u64>(),
                ph.measured_plan.iter().sum::<u64>(),
                ph.predicted_execute.iter().sum::<u64>(),
                ph.measured_execute.iter().sum::<u64>()
            ),
            None => String::new(),
        };
        format!(
            "{}: predicted {} measured {} rel_error {:.2e}{} -> {}",
            self.scheme,
            self.predicted_total(),
            self.measured_total(),
            self.rel_error,
            phase,
            if self.pass { "pass" } else { "FAIL" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_passes_at_zero_tolerance() {
        let c = Conformance::evaluate("pack.sss", &[10, 20], &[10, 20], 0.0);
        assert!(c.pass);
        assert_eq!(c.rel_error, 0.0);
        assert_eq!(c.predicted_total(), 30);
    }

    #[test]
    fn drift_is_measured_per_processor() {
        // Aggregates agree (30 vs 30) but processors disagree — the check
        // must not be fooled by compensating errors.
        let c = Conformance::evaluate("pack.css", &[10, 20], &[12, 18], 0.05);
        assert!(!c.pass);
        assert!((c.rel_error - 0.2).abs() < 1e-12);
    }

    #[test]
    fn length_mismatch_fails_not_panics() {
        let c = Conformance::evaluate("x", &[1, 2], &[1], 1e9);
        assert!(!c.pass);
        assert!(c.rel_error.is_infinite());
    }

    #[test]
    fn split_catches_cross_phase_compensation() {
        // Totals agree (30, 40) but five operations moved from plan to
        // execute on processor 0 — the flat check passes, the split fails.
        let c = Conformance::evaluate("pack.sss", &[30, 40], &[30, 40], 0.0);
        assert!(c.pass);
        let c = Conformance::evaluate_split(
            "pack.sss",
            (&[20, 25], &[10, 15]),
            (&[15, 25], &[15, 15]),
            0.0,
        );
        assert!(!c.pass);
        assert_eq!(c.predicted, vec![30, 40]);
        assert_eq!(c.measured, vec![30, 40]);
        assert!(c.phases.is_some());
        let exact = Conformance::evaluate_split(
            "pack.sss",
            (&[20, 25], &[10, 15]),
            (&[20, 25], &[10, 15]),
            0.0,
        );
        assert!(exact.pass);
        assert!(exact.summary().contains("plan 45/45 execute 25/25"));
    }
}
