//! Peak per-processor memory: measured high-water marks from `MemSample`
//! events versus a closed-form predicted model (DESIGN.md §13).
//!
//! The machine charges every word-carrying structure to a named
//! [`MemAccount`] in *simulated* time; [`measured_peak`] folds those
//! samples into a per-processor running total and reports the machine-wide
//! high-water mark — which processor, at what simulated time, under which
//! enclosing stage, and which account held the most bytes at that instant.
//!
//! The predicted side mirrors [`crate::Conformance`]: the same
//! [`MaskStats`] quantities that drive the Section 6.4 operation model
//! also bound every account's footprint in closed form (see the
//! `predict_*` functions), and [`PeakMemory::evaluate`] gates
//! `predicted >= measured` with a bounded over-estimation ratio
//! ([`MEM_RATIO_GATE`]). Red.2's real cost is exactly this number — the
//! paper's Table II charges its *time*, but whole-array redistribution is
//! only feasible when the peak footprint fits — so the model is the
//! prerequisite for memory-bounded redistribution planning.

use hpf_core::{MaskStats, PackScheme, RedistScheme, UnpackScheme};
use hpf_machine::{Event, EventKind, MemAccount};

/// Maximum allowed over-estimation: `predicted / measured` must not exceed
/// this (and must be at least 1 — the model is an upper bound).
pub const MEM_RATIO_GATE: f64 = 1.25;

/// The machine-wide measured memory high-water mark of one traced run.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredPeak {
    /// Peak bytes on the peak processor (all accounts summed).
    pub bytes: u64,
    /// The processor that held the peak.
    pub proc: usize,
    /// Simulated time of the peak, nanoseconds.
    pub ts_ns: f64,
    /// The account holding the most bytes at the peak instant.
    pub account: MemAccount,
    /// Innermost stage span enclosing the peak on the peak processor
    /// (`"-"` when the peak falls outside every span).
    pub stage: String,
}

impl MeasuredPeak {
    fn zero() -> MeasuredPeak {
        MeasuredPeak {
            bytes: 0,
            proc: 0,
            ts_ns: 0.0,
            account: MemAccount::Mailbox,
            stage: "-".to_string(),
        }
    }
}

/// Extract the measured peak from per-processor event logs (a traced run's
/// [`RunOutput::events`]). `MemSample` owners are machine-global — a
/// sender records its destination's replay-log growth — so samples are
/// pooled across all logs, grouped by owner, and integrated in simulated
/// time. Equal-timestamp charges apply before releases (the same
/// pessimistic order the Perfetto counter tracks use), so the reported
/// peak matches what the trace viewer shows.
///
/// [`RunOutput::events`]: hpf_machine::RunOutput
pub fn measured_peak(events: &[Vec<Event>]) -> MeasuredPeak {
    let nprocs = events.len();
    // (ts, release?, account, delta) per owner; pooled across recorders.
    let mut samples: Vec<Vec<(f64, u8, MemAccount, i64)>> = vec![Vec::new(); nprocs];
    for evs in events {
        for e in evs {
            if let EventKind::MemSample {
                account,
                owner,
                delta_bytes,
            } = &e.kind
            {
                // The mailbox ring is a constant pre-reserve charged once at
                // startup, not workload-driven memory: it would shift every
                // peak by the same additive constant and is gated separately,
                // byte-exactly, by `ring_accounting`.
                if *account == MemAccount::MailboxRing {
                    continue;
                }
                samples[*owner].push((e.ts_ns, u8::from(*delta_bytes < 0), *account, *delta_bytes));
            }
        }
    }
    let mut best = MeasuredPeak::zero();
    for (proc, procsamples) in samples.iter_mut().enumerate() {
        procsamples.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut by_account = [0i64; MemAccount::ALL.len()];
        let mut total = 0i64;
        let (mut peak, mut peak_ts, mut peak_account) = (0i64, 0.0f64, MemAccount::Mailbox);
        for &(ts, _, account, delta) in procsamples.iter() {
            by_account[account as usize] += delta;
            total += delta;
            if total > peak {
                peak = total;
                peak_ts = ts;
                peak_account = MemAccount::ALL[argmax(&by_account)];
            }
        }
        if peak as u64 > best.bytes {
            best = MeasuredPeak {
                bytes: peak as u64,
                proc,
                ts_ns: peak_ts,
                account: peak_account,
                stage: enclosing_stage(&events[proc], peak_ts),
            };
        }
    }
    best
}

/// Mailbox-ring accounting of one traced run: total `MailboxRing` bytes
/// charged across all processors, and whether every processor charged
/// exactly `expected_per_proc` — `capacity × size_of::<Frame>()`, i.e.
/// `hpf_machine::ring_bytes(machine.chan_capacity())`. The ring is a
/// constant pre-reserve, so unlike the workload peak (ratio-gated against
/// a closed-form bound) it is asserted byte-exactly. Single-spawn runs
/// only: a crash-recovery respawn charges its ring again.
pub fn ring_accounting(events: &[Vec<Event>], expected_per_proc: u64) -> (u64, bool) {
    let mut per_proc = vec![0i64; events.len()];
    for evs in events {
        for e in evs {
            if let EventKind::MemSample {
                account: MemAccount::MailboxRing,
                owner,
                delta_bytes,
            } = &e.kind
            {
                per_proc[*owner] += delta_bytes;
            }
        }
    }
    let exact = per_proc
        .iter()
        .all(|&b| b >= 0 && b as u64 == expected_per_proc);
    let total: i64 = per_proc.iter().map(|&b| b.max(0)).sum();
    (total as u64, exact)
}

fn argmax(xs: &[i64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// The innermost stage span open at `ts_ns` in one processor's log.
/// Spans beginning at or before the peak instant enclose it; spans ending
/// exactly at it have already closed (releases recorded at a span
/// boundary belong to the span that did the work).
fn enclosing_stage(events: &[Event], ts_ns: f64) -> String {
    let mut stack: Vec<&'static str> = Vec::new();
    for e in events {
        if e.ts_ns > ts_ns {
            break;
        }
        match e.kind {
            EventKind::SpanBegin { name } => stack.push(name),
            EventKind::SpanEnd { .. } => {
                stack.pop();
            }
            _ => {}
        }
    }
    stack
        .last()
        .map_or_else(|| "-".to_string(), |s| s.to_string())
}

// ---------------------------------------------------------------------------
// Predicted model (bytes per processor, closed-form from MaskStats).
//
// Accounts at the execute-phase peak (just before the exchange decode, when
// staged pool buffers, the plan, and the user arrays coexist):
//
//   user     what the workload registers: 4L data + L mask words→bytes
//   plan     the retained route/flag buffers plus the lowered copy
//            programs (PackPlan/UnpackPlan mem_bytes; the program bytes
//            come exact from MaskStats, which runs the same lowering)
//   pool     staged wire bytes (self-destined slot included: an upper
//            bound — the executor never stages the self share, but that
//            share has no closed form on block-cyclic layouts)
//   transport  a two-message in-flight allowance; the alltoallv schedules
//            are permutations and the decode loop consumes each inbound
//            message as it arrives, so the mailbox never holds the full
//            inbound volume — at most one message being consumed plus one
//            delivered early by schedule skew (verified against traced
//            runs; see DESIGN.md §13)
//
// Plan-phase collective transients (scan/ranking PRS, the flag or request
// round) are strictly dominated by the execute-phase terms for any mask
// dense enough to communicate, so they need no term of their own.
// ---------------------------------------------------------------------------

const W: u64 = 4; // simulated word size, bytes

/// Messages the transport holds per processor beyond steady state: one
/// being consumed plus one delivered early by schedule skew.
const INFLIGHT_MSGS: u64 = 2;

/// Transport allowance in bytes for an exchange moving `volume_words`
/// split across `p` peers: [`INFLIGHT_MSGS`] average-size messages.
fn allowance(volume_words: u64, p: u64) -> u64 {
    INFLIGHT_MSGS * W * volume_words.div_ceil(p)
}

/// Predicted peak bytes per processor for PACK under `scheme` (no
/// preliminary redistribution). The workload is assumed to register its
/// data and mask arrays (`TrackArray`), 4 bytes per element plus 1 mask
/// byte.
pub fn predict_pack_peak(stats: &MaskStats, scheme: PackScheme) -> Vec<u64> {
    let p = stats.e.len() as u64;
    (0..stats.e.len())
        .map(|i| {
            let user = 5 * stats.l as u64;
            user + pack_exchange_bytes(stats, scheme, i, p, 0)
        })
        .collect()
}

/// The non-user PACK terms (plan + pool + transport) — shared with the
/// redistribution models, which run the same exchange on a block layout
/// where `overlap` ranks are already resident on their owner and never
/// staged (zero on block-cyclic layouts, where the self share has no
/// closed form and the full volume is the bound).
fn pack_exchange_bytes(
    stats: &MaskStats,
    scheme: PackScheme,
    i: usize,
    p: u64,
    overlap: u64,
) -> u64 {
    let (e, r, gs, gr) = (
        stats.e[i] as u64,
        stats.r[i] as u64,
        stats.gs[i] as u64,
        stats.gr[i] as u64,
    );
    match scheme {
        // Pair messages: (u32 rank, value) = 2 words per element. Routes
        // keep 4 bytes per explicit rank + 4 per slot; staged buffers
        // carry 2 words per element.
        PackScheme::Simple | PackScheme::CompactStorage => {
            let plan = 2 * W * e + 2 * p + stats.pack_prog_bytes[i];
            let pool = 2 * W * (e - overlap);
            plan + pool + allowance(2 * r, p)
        }
        // Compact messages: E values + 2-word header per segment. Routes
        // keep 8 bytes per run + 4 per slot.
        PackScheme::CompactMessage => {
            let plan = W * e + 2 * W * gs + 2 * p + stats.pack_prog_bytes[i];
            let pool = W * (e - overlap) + 2 * W * gs;
            plan + pool + allowance(r + 2 * gr, p)
        }
    }
}

/// Predicted peak bytes per processor for UNPACK under `scheme`. The
/// workload registers field (4L), mask (L), and its local vector slice
/// (4R_i); the plan keeps targets (4 per element) + serve indices (4 per
/// owned rank); replies stage 4R_i out and deliver 4E_i back in. Both
/// schemes retain the same execute-phase structures — they differ only in
/// the plan-time request encoding, a transient the peak never sees.
pub fn predict_unpack_peak(stats: &MaskStats, _scheme: UnpackScheme) -> Vec<u64> {
    let p = stats.e.len() as u64;
    (0..stats.e.len())
        .map(|i| {
            let (e, r) = (stats.e[i] as u64, stats.r[i] as u64);
            let user = 5 * stats.l as u64 + W * r;
            let plan = W * e + W * r + 2 * p + stats.unpack_prog_bytes[i];
            let pool = W * r;
            user + plan + pool + allowance(e, p)
        })
        .collect()
}

/// Predicted peak bytes per processor for PACK with a preliminary
/// redistribution. `src` describes the mask on the original (cyclic)
/// layout, `blk` the same mask on the block layout the data moves to; the
/// peak is whichever phase holds more on top of the registered arrays —
/// the redistribution's in-flight traffic or the block-layout PACK
/// exchange:
///
/// * **Red.1** moves only selected elements as 2-word pairs — in-flight
///   payload on the `2W·E_src_i` outbound plus mailbox on the
///   `2W·E_blk_i` inbound.
/// * **Red.2** moves both whole arrays with value-only messages, one
///   array at a time — in-flight payload plus mailbox on `W·L` each way.
///
/// On the block layout the selected ranks of processor `i` are the
/// contiguous run `[ΣE_j<i, ΣE_j<i + E_i)` while it owns ranks
/// `[i·W', (i+1)·W')`; the intersection stays home, so only the boundary
/// spill is ever staged — the term that makes Red.2's footprint (and the
/// Table II trade-off) honest.
pub fn predict_pack_redist_peak(
    src: &MaskStats,
    blk: &MaskStats,
    scheme: PackScheme,
    redist: RedistScheme,
) -> Vec<u64> {
    let p = blk.e.len() as u64;
    let mut scan = 0u64; // ranks before processor i on the block layout
    (0..blk.e.len())
        .map(|i| {
            let user = 5 * src.l as u64;
            let redist_phase = match redist {
                RedistScheme::SelectedData => {
                    allowance(2 * src.e[i] as u64, p) + allowance(2 * blk.e[i] as u64, p)
                }
                RedistScheme::WholeArrays => 2 * allowance(src.l as u64, p),
            };
            let owned_lo = (i * blk.w_prime) as u64;
            let owned_hi = owned_lo + blk.r[i] as u64;
            let e = blk.e[i] as u64;
            let overlap = (scan + e).min(owned_hi).saturating_sub(scan.max(owned_lo));
            scan += e;
            let pack_phase = pack_exchange_bytes(blk, scheme, i, p, overlap);
            user + redist_phase.max(pack_phase)
        })
        .collect()
}

/// Outcome of checking one workload's measured peak memory against the
/// closed-form prediction — the memory analogue of [`crate::Conformance`].
#[derive(Debug, Clone, PartialEq)]
pub struct PeakMemory {
    /// Scheme label, e.g. `"pack.cms"`.
    pub scheme: String,
    /// Predicted machine-wide peak bytes (max over processors).
    pub predicted_bytes: u64,
    /// Measured machine-wide peak bytes.
    pub measured_bytes: u64,
    /// `predicted / measured` (measured floored at one byte).
    pub ratio: f64,
    /// Processor holding the measured peak.
    pub peak_proc: usize,
    /// Account holding the most bytes at the measured peak.
    pub peak_account: String,
    /// Innermost stage enclosing the measured peak.
    pub peak_stage: String,
    /// Total mailbox-ring bytes charged across all processors (excluded
    /// from the workload peak above; see [`ring_accounting`]).
    pub ring_bytes: u64,
    /// Every processor charged its ring byte-exactly.
    pub ring_exact: bool,
    /// `predicted >= measured && ratio <= MEM_RATIO_GATE && ring_exact`.
    pub pass: bool,
}

impl PeakMemory {
    /// Gate a traced run's measured peak against per-processor predictions,
    /// and the constant mailbox-ring pre-reserve against its byte-exact
    /// expectation (`ring_bytes_per_proc`, from
    /// `hpf_machine::ring_bytes(machine.chan_capacity())`).
    pub fn evaluate(
        scheme: &str,
        predicted: &[u64],
        events: &[Vec<Event>],
        ring_bytes_per_proc: u64,
    ) -> PeakMemory {
        let peak = measured_peak(events);
        let (ring_bytes, ring_exact) = ring_accounting(events, ring_bytes_per_proc);
        let predicted_bytes = predicted.iter().copied().max().unwrap_or(0);
        let ratio = predicted_bytes as f64 / peak.bytes.max(1) as f64;
        PeakMemory {
            scheme: scheme.to_string(),
            predicted_bytes,
            measured_bytes: peak.bytes,
            ratio,
            peak_proc: peak.proc,
            peak_account: peak.account.name().to_string(),
            peak_stage: peak.stage,
            ring_bytes,
            ring_exact,
            pass: predicted_bytes >= peak.bytes && ratio <= MEM_RATIO_GATE && ring_exact,
        }
    }

    /// One-line report, e.g.
    /// `pack.cms: peak 1234 B on proc 2 (mailbox, pack.execute), predicted 1300 B, ratio 1.05, ring 8192 B exact [pass]`.
    pub fn summary(&self) -> String {
        format!(
            "{}: peak {} B on proc {} ({}, {}), predicted {} B, ratio {:.2}, ring {} B {} [{}]",
            self.scheme,
            self.measured_bytes,
            self.peak_proc,
            self.peak_account,
            self.peak_stage,
            self.predicted_bytes,
            self.ratio,
            self.ring_bytes,
            if self.ring_exact { "exact" } else { "INEXACT" },
            if self.pass { "pass" } else { "FAIL" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts_ns: f64, kind: EventKind) -> Event {
        Event { ts_ns, kind }
    }

    fn sample(ts_ns: f64, account: MemAccount, owner: usize, delta_bytes: i64) -> Event {
        ev(
            ts_ns,
            EventKind::MemSample {
                account,
                owner,
                delta_bytes,
            },
        )
    }

    #[test]
    fn peak_integrates_across_accounts_and_recorders() {
        // Proc 0 charges its own mailbox; proc 1 charges proc 0's replay
        // log from its own (earlier) clock. Owner pooling must combine
        // them; proc 1's own small charge must not win.
        let events = vec![
            vec![
                ev(0.0, EventKind::SpanBegin { name: "outer" }),
                ev(5.0, EventKind::SpanBegin { name: "inner" }),
                sample(10.0, MemAccount::Mailbox, 0, 100),
                sample(20.0, MemAccount::Mailbox, 0, -100),
                ev(30.0, EventKind::SpanEnd { name: "inner" }),
                ev(31.0, EventKind::SpanEnd { name: "outer" }),
            ],
            vec![
                sample(8.0, MemAccount::ReplayLog, 0, 60),
                sample(9.0, MemAccount::Pool, 1, 50),
            ],
        ];
        let peak = measured_peak(&events);
        assert_eq!(peak.bytes, 160, "mailbox 100 + replay log 60");
        assert_eq!(peak.proc, 0);
        assert_eq!(peak.ts_ns, 10.0);
        assert_eq!(peak.account, MemAccount::Mailbox);
        assert_eq!(peak.stage, "inner");
    }

    #[test]
    fn equal_timestamp_charges_apply_before_releases() {
        // At t=10 a release and a charge coincide; counting the charge
        // first (like the counter tracks) makes the peak 150, not 100.
        let events = vec![vec![
            sample(0.0, MemAccount::Pool, 0, 100),
            sample(10.0, MemAccount::Pool, 0, -100),
            sample(10.0, MemAccount::Mailbox, 0, 50),
        ]];
        assert_eq!(measured_peak(&events).bytes, 150);
    }

    #[test]
    fn no_samples_is_a_zero_peak() {
        let peak = measured_peak(&[vec![], vec![]]);
        assert_eq!(peak.bytes, 0);
        assert_eq!(peak.stage, "-");
    }

    #[test]
    fn mailbox_ring_is_excluded_from_the_workload_peak() {
        // The constant startup pre-reserve must not shift the peak; it is
        // summed (and byte-checked) by ring_accounting instead.
        let events = vec![
            vec![
                sample(0.0, MemAccount::MailboxRing, 0, 4096),
                sample(10.0, MemAccount::Mailbox, 0, 100),
            ],
            vec![sample(0.0, MemAccount::MailboxRing, 1, 4096)],
        ];
        let peak = measured_peak(&events);
        assert_eq!(peak.bytes, 100);
        assert_eq!(peak.account, MemAccount::Mailbox);
        assert_eq!(ring_accounting(&events, 4096), (8192, true));
        assert_eq!(
            ring_accounting(&events, 2048),
            (8192, false),
            "per-proc mismatch must flag inexact"
        );
        // A processor that never charged its ring is inexact too.
        assert_eq!(ring_accounting(&events[..1], 4096), (4096, true));
        let missing = vec![events[0].clone(), vec![]];
        assert_eq!(ring_accounting(&missing, 4096), (4096, false));
    }

    #[test]
    fn predictions_scale_with_selection() {
        let dense: Vec<bool> = (0..64).map(|g| g % 2 == 0).collect();
        let sparse: Vec<bool> = (0..64).map(|g| g % 8 == 0).collect();
        let sd = MaskStats::from_mask(&dense, 4, 4, None);
        let ss = MaskStats::from_mask(&sparse, 4, 4, None);
        for scheme in [
            PackScheme::Simple,
            PackScheme::CompactStorage,
            PackScheme::CompactMessage,
        ] {
            let d = predict_pack_peak(&sd, scheme);
            let s = predict_pack_peak(&ss, scheme);
            assert_eq!(d.len(), 4);
            assert!(
                d.iter().max() > s.iter().max(),
                "{scheme:?}: denser masks need more memory"
            );
            // Every processor at least holds its registered arrays.
            assert!(d.iter().all(|&b| b > 5 * sd.l as u64));
        }
        let u = predict_unpack_peak(&sd, UnpackScheme::Simple);
        assert_eq!(u, predict_unpack_peak(&sd, UnpackScheme::CompactStorage));
        assert!(u.iter().all(|&b| b > 5 * sd.l as u64));
    }

    #[test]
    fn redist_prediction_covers_both_phases() {
        let mask: Vec<bool> = (0..64).map(|g| g % 2 == 0).collect();
        let src = MaskStats::from_mask(&mask, 4, 1, None); // cyclic
        let blk = MaskStats::from_mask(&mask, 4, 16, None); // block
        let r1 = predict_pack_redist_peak(
            &src,
            &blk,
            PackScheme::CompactMessage,
            RedistScheme::SelectedData,
        );
        let r2 = predict_pack_redist_peak(
            &src,
            &blk,
            PackScheme::CompactMessage,
            RedistScheme::WholeArrays,
        );
        // Every processor at least holds its registered arrays, and Red.2
        // carries its mask-independent in-flight floor (two messages each
        // way of L/P words) on top.
        let user = 5 * src.l as u64;
        assert!(r1.iter().all(|&b| b > user));
        let floor = user + 2 * 2 * W * (src.l as u64).div_ceil(4);
        assert!(r2.iter().all(|&b| b >= floor));
        // On the block layout a dense mask's ranks mostly stay home, so
        // the redistribution peak sits below the plain block-cyclic-style
        // full-volume PACK bound — the saving the overlap term models.
        let plain = predict_pack_peak(&blk, PackScheme::CompactMessage);
        assert!(r1.iter().max() < plain.iter().max());
        // Sparser masks can only shrink either phase.
        let sparse: Vec<bool> = (0..64).map(|g| g % 16 == 0).collect();
        let ssrc = MaskStats::from_mask(&sparse, 4, 1, None);
        let sblk = MaskStats::from_mask(&sparse, 4, 16, None);
        let r1s = predict_pack_redist_peak(
            &ssrc,
            &sblk,
            PackScheme::CompactMessage,
            RedistScheme::SelectedData,
        );
        let r2s = predict_pack_redist_peak(
            &ssrc,
            &sblk,
            PackScheme::CompactMessage,
            RedistScheme::WholeArrays,
        );
        assert!(r1s.iter().max() <= r1.iter().max());
        assert!(r2s.iter().max() <= r2.iter().max());
    }

    #[test]
    fn evaluate_gates_ratio_and_direction() {
        let events = vec![vec![
            sample(0.0, MemAccount::MailboxRing, 0, 4096),
            sample(1.0, MemAccount::User, 0, 1000),
        ]];
        let good = PeakMemory::evaluate("pack.sss", &[1100], &events, 4096);
        assert!(good.pass, "{}", good.summary());
        assert!((good.ratio - 1.1).abs() < 1e-9);
        assert_eq!(good.ring_bytes, 4096);
        assert!(good.ring_exact);
        let under = PeakMemory::evaluate("pack.sss", &[900], &events, 4096);
        assert!(!under.pass, "under-prediction must fail");
        let over = PeakMemory::evaluate("pack.sss", &[2000], &events, 4096);
        assert!(!over.pass, "sloppy over-prediction must fail");
        assert!(over.summary().contains("FAIL"));
        let wrong_ring = PeakMemory::evaluate("pack.sss", &[1100], &events, 8192);
        assert!(!wrong_ring.pass, "inexact ring must fail the gate");
        assert!(wrong_ring.summary().contains("INEXACT"));
    }
}
