//! Section 6.4 conformance, asserted *exactly*: the closed-form predicted
//! local-operation counts must equal the measured per-processor counters
//! for every scheme, on the CM-5 cost model itself (operation counters are
//! cost-model independent, so no special δ=1 run is needed).

use hpf_analysis::Conformance;
use hpf_core::{
    pack, plan_pack, plan_unpack, unpack, MaskPattern, MaskStats, PackOptions, PackScheme,
    ScanMethod, UnpackOptions, UnpackScheme,
};
use hpf_distarray::{local_from_fn, ArrayDesc, DimLayout, Dist};
use hpf_machine::{Category, CostModel, Machine, ProcGrid};

/// Measured per-processor `LocalComp` operation counts for one PACK run.
fn measured_pack(n: usize, p: usize, w: usize, density: f64, opts: PackOptions) -> Vec<u64> {
    let grid = ProcGrid::line(p);
    let desc = ArrayDesc::new(&[n], &grid, &[Dist::BlockCyclic(w)]).unwrap();
    let pattern = MaskPattern::Random { density, seed: 77 };
    let machine = Machine::new(grid, CostModel::cm5());
    let d = &desc;
    let out = machine.run(move |proc| {
        let a = local_from_fn(d, proc.id(), |g| g[0] as i32);
        let m = local_from_fn(d, proc.id(), |g| pattern.value(g, &[n]));
        pack(proc, d, &a, &m, &opts).unwrap().size
    });
    out.cat_ops_per_proc(Category::LocalComp)
}

/// Measured per-processor `LocalComp` operation counts for one UNPACK run
/// (block-distributed input vector sized to the mask, as in the paper).
fn measured_unpack(n: usize, p: usize, w: usize, density: f64, opts: UnpackOptions) -> Vec<u64> {
    let grid = ProcGrid::line(p);
    let desc = ArrayDesc::new(&[n], &grid, &[Dist::BlockCyclic(w)]).unwrap();
    let pattern = MaskPattern::Random { density, seed: 77 };
    let size = pattern.global(&[n]).data().iter().filter(|&&b| b).count();
    let v_layout = DimLayout::new_general(size.max(1), p, size.div_ceil(p).max(1)).unwrap();
    let machine = Machine::new(grid, CostModel::cm5());
    let (d, vl) = (&desc, &v_layout);
    let out = machine.run(move |proc| {
        let m = local_from_fn(d, proc.id(), |g| pattern.value(g, &[n]));
        let f = local_from_fn(d, proc.id(), |_| -1i32);
        let v: Vec<i32> = (0..vl.local_len(proc.id()))
            .map(|l| vl.global_of(proc.id(), l) as i32)
            .collect();
        unpack(proc, d, &m, &f, &v, vl, &opts).unwrap().len()
    });
    out.cat_ops_per_proc(Category::LocalComp)
}

/// Measured plan-phase `LocalComp` ops: run the planner alone. The
/// simulation is deterministic, so execute-phase ops are exactly the
/// full-run counts minus these.
fn measured_pack_plan(n: usize, p: usize, w: usize, density: f64, opts: PackOptions) -> Vec<u64> {
    let grid = ProcGrid::line(p);
    let desc = ArrayDesc::new(&[n], &grid, &[Dist::BlockCyclic(w)]).unwrap();
    let pattern = MaskPattern::Random { density, seed: 77 };
    let machine = Machine::new(grid, CostModel::cm5());
    let d = &desc;
    let out = machine.run(move |proc| {
        let m = local_from_fn(d, proc.id(), |g| pattern.value(g, &[n]));
        plan_pack(proc, d, &m, &opts).unwrap().size()
    });
    out.cat_ops_per_proc(Category::LocalComp)
}

fn measured_unpack_plan(
    n: usize,
    p: usize,
    w: usize,
    density: f64,
    opts: UnpackOptions,
) -> Vec<u64> {
    let grid = ProcGrid::line(p);
    let desc = ArrayDesc::new(&[n], &grid, &[Dist::BlockCyclic(w)]).unwrap();
    let pattern = MaskPattern::Random { density, seed: 77 };
    let size = pattern.global(&[n]).data().iter().filter(|&&b| b).count();
    let v_layout = DimLayout::new_general(size.max(1), p, size.div_ceil(p).max(1)).unwrap();
    let machine = Machine::new(grid, CostModel::cm5());
    let (d, vl) = (&desc, &v_layout);
    let out = machine.run(move |proc| {
        let m = local_from_fn(d, proc.id(), |g| pattern.value(g, &[n]));
        plan_unpack(proc, d, &m, vl, &opts).unwrap().size()
    });
    out.cat_ops_per_proc(Category::LocalComp)
}

fn stats(n: usize, p: usize, w: usize, density: f64) -> MaskStats {
    let mask = MaskPattern::Random { density, seed: 77 }.global(&[n]);
    MaskStats::from_mask(mask.data(), p, w, None)
}

/// Every PACK scheme × scan method × layout must conform with *zero*
/// error: the Table I workload shape (block and cyclic) at 50% density.
#[test]
fn pack_conformance_is_exact_for_all_schemes() {
    for (n, p, w) in [(256usize, 4usize, 8usize), (64, 4, 1)] {
        let s = stats(n, p, w, 0.5);
        for scheme in PackScheme::ALL {
            for method in [ScanMethod::UntilCollected, ScanMethod::WholeSlice] {
                let mut opts = PackOptions::new(scheme);
                opts.scan_method = method;
                let measured = measured_pack(n, p, w, 0.5, opts);
                let predicted = s.predict_pack_ops(scheme, method);
                let c = Conformance::evaluate(
                    &format!("pack.{scheme:?}.{method:?}.w{w}"),
                    &predicted,
                    &measured,
                    0.0,
                );
                assert!(c.pass, "{}", c.summary());
            }
        }
    }
}

/// Both UNPACK schemes conform exactly on the same workloads.
#[test]
fn unpack_conformance_is_exact_for_all_schemes() {
    for (n, p, w) in [(256usize, 4usize, 8usize), (64, 4, 1)] {
        let s = stats(n, p, w, 0.5);
        for scheme in UnpackScheme::ALL {
            let measured = measured_unpack(n, p, w, 0.5, UnpackOptions::new(scheme));
            let predicted = s.predict_unpack_ops(scheme);
            let c = Conformance::evaluate(
                &format!("unpack.{scheme:?}.w{w}"),
                &predicted,
                &measured,
                0.0,
            );
            assert!(c.pass, "{}", c.summary());
        }
    }
}

/// Sparse and dense masks stay exact too (the formulas' E/K/G terms all
/// collapse or saturate at the extremes).
#[test]
fn conformance_is_exact_at_density_extremes() {
    let (n, p, w) = (128usize, 4usize, 4usize);
    for density in [0.05, 0.95] {
        let mask = MaskPattern::Random { density, seed: 77 }.global(&[n]);
        let s = MaskStats::from_mask(mask.data(), p, w, None);
        let opts = PackOptions::new(PackScheme::CompactMessage);
        let measured = measured_pack(n, p, w, density, opts);
        let predicted = s.predict_pack_ops(PackScheme::CompactMessage, ScanMethod::UntilCollected);
        let c = Conformance::evaluate("pack.cms", &predicted, &measured, 0.0);
        assert!(c.pass, "density {density}: {}", c.summary());
    }
}

/// Phase-resolved conformance: the plan/execute attribution of every
/// scheme's operation count must match the split predictions exactly —
/// work may not silently migrate across the planner/executor boundary
/// even when the totals still balance.
#[test]
fn conformance_split_is_exact_for_all_schemes() {
    let sub = |total: &[u64], plan: &[u64]| -> Vec<u64> {
        total.iter().zip(plan).map(|(&t, &p)| t - p).collect()
    };
    for (n, p, w) in [(256usize, 4usize, 8usize), (64, 4, 1)] {
        let s = stats(n, p, w, 0.5);
        for scheme in PackScheme::ALL {
            for method in [ScanMethod::UntilCollected, ScanMethod::WholeSlice] {
                let mut opts = PackOptions::new(scheme);
                opts.scan_method = method;
                let plan_meas = measured_pack_plan(n, p, w, 0.5, opts);
                let total_meas = measured_pack(n, p, w, 0.5, opts);
                let exec_meas = sub(&total_meas, &plan_meas);
                let (pp, pe) = s.predict_pack_ops_split(scheme, method);
                let c = Conformance::evaluate_split(
                    &format!("pack.{scheme:?}.{method:?}.w{w}"),
                    (&pp, &pe),
                    (&plan_meas, &exec_meas),
                    0.0,
                );
                assert!(c.pass, "{}", c.summary());
            }
        }
        for scheme in UnpackScheme::ALL {
            let opts = UnpackOptions::new(scheme);
            let plan_meas = measured_unpack_plan(n, p, w, 0.5, opts);
            let total_meas = measured_unpack(n, p, w, 0.5, opts);
            let exec_meas = sub(&total_meas, &plan_meas);
            let (pp, pe) = s.predict_unpack_ops_split(scheme);
            let c = Conformance::evaluate_split(
                &format!("unpack.{scheme:?}.w{w}"),
                (&pp, &pe),
                (&plan_meas, &exec_meas),
                0.0,
            );
            assert!(c.pass, "{}", c.summary());
        }
    }
}

/// A deliberately wrong prediction must fail — the gate actually gates.
#[test]
fn conformance_detects_drift() {
    let (n, p, w) = (256usize, 4usize, 8usize);
    let s = stats(n, p, w, 0.5);
    let measured = measured_pack(n, p, w, 0.5, PackOptions::new(PackScheme::Simple));
    let mut wrong = s.predict_pack_ops(PackScheme::Simple, ScanMethod::UntilCollected);
    wrong[0] += 5;
    let c = Conformance::evaluate("pack.sss", &wrong, &measured, 1e-3);
    assert!(!c.pass);
    assert!(c.rel_error > 1e-3);
}
