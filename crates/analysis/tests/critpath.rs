//! Critical-path extraction: an exact hand-built trace with a known
//! longest chain, invariants on real traced PACK runs, and determinism.

use proptest::prelude::*;

use hpf_analysis::{CritPath, SegmentKind};
use hpf_core::{pack, MaskPattern, PackOptions, PackScheme};
use hpf_distarray::{local_from_fn, ArrayDesc, Dist};
use hpf_machine::{ClockReport, CostModel, Event, EventKind, Machine, ProcGrid, RunOutput};

fn ev(ts_ns: f64, kind: EventKind) -> Event {
    Event { ts_ns, kind }
}

fn clock(now_ns: f64) -> ClockReport {
    ClockReport {
        now_ns,
        ..ClockReport::zero()
    }
}

/// Two processors, one message, known chain:
///
/// ```text
/// proc 1: [0 ──── busy ──── 1000] send ──╮ (arrives 1500)  ends at 1200
/// proc 0: [0 busy 500] ...blocked...  [1500 ── busy ── 2000]
/// ```
///
/// The longest chain is busy(1, 0→1000) + transfer(500) + busy(0,
/// 1500→2000): proc 0's early 500 ns of work is off the path.
#[test]
fn hand_built_trace_yields_the_known_chain() {
    let events = vec![
        // proc 0: worked 500 ns, then waited 1000 ns for the message.
        vec![
            ev(0.0, EventKind::SpanBegin { name: "setup" }),
            ev(500.0, EventKind::SpanEnd { name: "setup" }),
            ev(
                1500.0,
                EventKind::Consume {
                    src: 1,
                    tag: 9,
                    words: 4,
                    waited_ns: 1000.0,
                    arrival_ns: 1500.0,
                },
            ),
            ev(1500.0, EventKind::SpanBegin { name: "finish" }),
            ev(2000.0, EventKind::SpanEnd { name: "finish" }),
        ],
        // proc 1: computed 1000 ns inside a span, sent, idled out at 1200.
        vec![
            ev(0.0, EventKind::SpanBegin { name: "compute" }),
            ev(1000.0, EventKind::SpanEnd { name: "compute" }),
            ev(
                1000.0,
                EventKind::Send {
                    dst: 0,
                    tag: 9,
                    words: 4,
                    seq: None,
                    arrival_ns: 1500.0,
                },
            ),
        ],
    ];
    let cp = CritPath::from_parts(&events, &[clock(2000.0), clock(1200.0)]);

    assert_eq!(cp.total_ns, 2000.0);
    assert_eq!(cp.busy_ns, 1500.0, "1000 on proc 1 + 500 on proc 0");
    assert_eq!(cp.transfer_ns, 500.0, "send at 1000, consumed at 1500");
    assert_eq!(cp.blocked_ns, 0.0);
    assert_eq!((cp.hops, cp.barriers), (1, 0));
    assert_eq!(cp.path_ns(), cp.total_ns, "segments tile [0, T]");

    // Finish → start: busy on 0, transfer on link 1→0, busy on 1.
    assert_eq!(cp.segments.len(), 3);
    assert_eq!(
        (cp.segments[0].proc, cp.segments[0].kind.clone()),
        (0, SegmentKind::Busy)
    );
    assert_eq!(
        (cp.segments[1].proc, cp.segments[1].kind.clone()),
        (0, SegmentKind::Transfer { src: 1 })
    );
    assert_eq!(
        (cp.segments[2].proc, cp.segments[2].kind.clone()),
        (1, SegmentKind::Busy)
    );
    assert_eq!(cp.by_link_ns, vec![((1, 0), 500.0)]);

    // Stage attribution covers the path's busy time: proc 1's "compute"
    // span and proc 0's "finish" span; "setup" is off the path.
    assert_eq!(
        cp.by_stage_ns,
        vec![
            ("compute".to_string(), 1000.0),
            ("finish".to_string(), 500.0)
        ]
    );
    assert_eq!(cp.top_stage(), Some(("compute", 1000.0)));

    // Whole-run breakdown: proc 0 blocked 1000, proc 1 idle 800.
    assert_eq!(cp.procs[0].blocked_ns, 1000.0);
    assert_eq!(cp.procs[0].busy_ns, 1000.0);
    assert_eq!(cp.procs[1].idle_ns, 800.0);
    assert_eq!(cp.procs[1].busy_ns, 1200.0);
}

/// A barrier event hops the path to the recorded owner at the same time.
#[test]
fn barrier_hops_to_the_owner() {
    let events = vec![
        vec![ev(
            900.0,
            EventKind::Barrier {
                owner: 1,
                waited_ns: 600.0,
            },
        )],
        vec![],
    ];
    let cp = CritPath::from_parts(&events, &[clock(900.0), clock(900.0)]);
    assert_eq!(cp.barriers, 1);
    // The path is proc 1's 900 ns of work; proc 0's 300 ns are hidden.
    assert_eq!(cp.busy_ns, 900.0);
    assert_eq!(cp.segments.len(), 1);
    assert_eq!(cp.segments[0].proc, 1);
    assert_eq!(cp.procs[0].barrier_ns, 600.0);
    assert_eq!(cp.procs[0].busy_ns, 300.0);
}

fn traced_pack(n: usize, p: usize, w: usize, density: f64, scheme: PackScheme) -> RunOutput<usize> {
    let grid = ProcGrid::line(p);
    let desc = ArrayDesc::new(&[n], &grid, &[Dist::BlockCyclic(w)]).unwrap();
    let pattern = MaskPattern::Random { density, seed: 7 };
    let machine = Machine::new(grid, CostModel::cm5()).with_tracing(true);
    let d = &desc;
    machine.run(move |proc| {
        let a = local_from_fn(d, proc.id(), |g| g[0] as i32);
        let m = local_from_fn(d, proc.id(), |g| pattern.value(g, &[n]));
        pack(proc, d, &a, &m, &PackOptions::new(scheme))
            .unwrap()
            .size
    })
}

fn assert_invariants(cp: &CritPath) {
    let tol = 1e-6 * cp.total_ns.max(1.0);
    // The path tiles [0, T] exactly.
    assert!(
        (cp.path_ns() - cp.total_ns).abs() <= tol,
        "path {} != total {}",
        cp.path_ns(),
        cp.total_ns
    );
    // ... and decomposes into its three kinds.
    let sum = cp.busy_ns + cp.transfer_ns + cp.blocked_ns;
    assert!((sum - cp.total_ns).abs() <= tol, "{sum} != {}", cp.total_ns);
    // Path busy time is attributed to stages without loss.
    let staged: f64 = cp.by_stage_ns.iter().map(|(_, ns)| ns).sum();
    assert!((staged - cp.busy_ns).abs() <= tol);
    // Links account for all transfer time.
    let linked: f64 = cp.by_link_ns.iter().map(|(_, ns)| ns).sum();
    assert!((linked - cp.transfer_ns).abs() <= tol);
    // The completion time bounds every processor's busy time.
    for b in &cp.procs {
        assert!(b.busy_ns <= cp.total_ns + tol);
        assert!(b.idle_ns >= -tol);
    }
    // Segments are contiguous finish → start.
    for pair in cp.segments.windows(2) {
        assert!((pair[0].start_ns - pair[1].end_ns).abs() <= tol);
    }
}

/// Real traced PACK runs satisfy every structural invariant, and repeated
/// runs produce identical critical paths (the simulation is deterministic,
/// so the analysis must be too).
#[test]
fn real_runs_are_deterministic_and_well_formed() {
    for scheme in PackScheme::ALL {
        let a = CritPath::from_run(&traced_pack(256, 4, 8, 0.5, scheme));
        let b = CritPath::from_run(&traced_pack(256, 4, 8, 0.5, scheme));
        assert_invariants(&a);
        assert!(a.total_ns > 0.0 && a.busy_ns > 0.0);
        assert_eq!(a, b, "{scheme:?}: critical path must be reproducible");
        // A PACK exercises communication: the path crosses the wire or a
        // sync (on this workload every scheme sends).
        assert!(
            a.hops + a.barriers > 0,
            "{scheme:?}: path never left one processor"
        );
        // Stage attribution names real PACK stages, not just (untracked).
        assert!(
            a.by_stage_ns
                .iter()
                .any(|(name, _)| name.starts_with("pack.") || name.starts_with("rank.")),
            "{scheme:?}: stages = {:?}",
            a.by_stage_ns
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Tiling and bounds hold across machine sizes, block sizes, and mask
    /// densities.
    #[test]
    fn critpath_invariants_hold(
        p in 1usize..=6,
        wsel in 0usize..3,
        density_pct in 0usize..=100,
    ) {
        let w = [1, 4, 8][wsel];
        let n = 16 * p * w; // divisible by P·W with several slices each
        let out = traced_pack(n, p, w, density_pct as f64 / 100.0, PackScheme::CompactMessage);
        let cp = CritPath::from_run(&out);
        assert_invariants(&cp);
        // The path can never be shorter than any processor's busy time.
        let max_busy = cp.procs.iter().map(|b| b.busy_ns).fold(0.0f64, f64::max);
        prop_assert!(cp.total_ns >= max_busy - 1e-6);
        prop_assert!((cp.total_ns - out.max_time_ms() * 1e6).abs() <= 1e-6 * cp.total_ns.max(1.0));
    }
}
