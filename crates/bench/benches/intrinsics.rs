//! Wall-time benchmark of the companion intrinsics (extension layer):
//! global reductions, dimension scans, and shifts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpf_distarray::{local_from_fn, ArrayDesc, Dist};
use hpf_intrinsics::{cshift_dim, sum_all, sum_prefix_dim, ScanKind};
use hpf_machine::collectives::{A2aSchedule, PrsAlgorithm};
use hpf_machine::{CostModel, Machine, ProcGrid};

fn bench_intrinsics(c: &mut Criterion) {
    let mut g = c.benchmark_group("intrinsics");
    g.sample_size(10);
    let n = 16384usize;
    let grid = ProcGrid::line(8);
    let desc = ArrayDesc::new(&[n], &grid, &[Dist::BlockCyclic(16)]).unwrap();
    let machine = Machine::new(grid, CostModel::cm5());

    g.bench_function(BenchmarkId::new("sum_all", n), |b| {
        b.iter(|| {
            let d = &desc;
            machine.run(move |proc| {
                let a = local_from_fn(d, proc.id(), |gi| gi[0] as i64);
                sum_all(proc, d, &a)
            })
        });
    });

    g.bench_function(BenchmarkId::new("sum_prefix", n), |b| {
        b.iter(|| {
            let d = &desc;
            machine.run(move |proc| {
                let a = local_from_fn(d, proc.id(), |gi| gi[0] as i64);
                sum_prefix_dim(proc, d, &a, 0, ScanKind::Inclusive, PrsAlgorithm::Auto).len()
            })
        });
    });

    g.bench_function(BenchmarkId::new("cshift", n), |b| {
        b.iter(|| {
            let d = &desc;
            machine.run(move |proc| {
                let a = local_from_fn(d, proc.id(), |gi| gi[0] as i64);
                cshift_dim(proc, d, &a, 0, 17, A2aSchedule::LinearPermutation).len()
            })
        });
    });

    g.finish();
}

criterion_group!(benches, bench_intrinsics);
criterion_main!(benches);
