//! Wall-time benchmark of parallel UNPACK under both schemes
//! (the Figure 5 kernels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpf_core::{unpack, MaskPattern, UnpackOptions, UnpackScheme};
use hpf_distarray::{local_from_fn, ArrayDesc, DimLayout, Dist};
use hpf_machine::{CostModel, Machine, ProcGrid};

fn bench_unpack(c: &mut Criterion) {
    let mut g = c.benchmark_group("unpack");
    g.sample_size(10);
    let n = 16384usize;
    let p = 8usize;
    let pattern = MaskPattern::Random {
        density: 0.5,
        seed: 5,
    };
    let size = pattern.global(&[n]).data().iter().filter(|&&b| b).count();
    for scheme in UnpackScheme::ALL {
        for (dist_label, w) in [("block", n / p), ("cyclic8", 8)] {
            let id = BenchmarkId::new(scheme.label(), dist_label);
            g.bench_with_input(id, &w, |b, &w| {
                let grid = ProcGrid::line(p);
                let desc = ArrayDesc::new(&[n], &grid, &[Dist::BlockCyclic(w)]).unwrap();
                let v_layout = DimLayout::new_general(size, p, size.div_ceil(p)).unwrap();
                let machine = Machine::new(grid, CostModel::cm5());
                let opts = UnpackOptions::new(scheme);
                b.iter(|| {
                    let (desc_ref, vl, opts_ref) = (&desc, &v_layout, &opts);
                    machine.run(move |proc| {
                        let m = local_from_fn(desc_ref, proc.id(), |g| pattern.value(g, &[n]));
                        let f = vec![0i32; desc_ref.local_len(proc.id())];
                        let v = vec![1i32; vl.local_len(proc.id())];
                        unpack(proc, desc_ref, &m, &f, &v, vl, opts_ref)
                            .unwrap()
                            .len()
                    })
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_unpack);
criterion_main!(benches);
