//! Wall-time benchmark of array redistribution (the Section 6.3 substrate):
//! cyclic → block in the two wire formats, and the two preliminary
//! redistribution schemes end-to-end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpf_bench::ExpConfig;
use hpf_core::{pack_redistributed, MaskPattern, PackOptions, RedistScheme};
use hpf_distarray::{local_from_fn, redistribute, ArrayDesc, Dist, RedistMode};
use hpf_machine::collectives::A2aSchedule;
use hpf_machine::{CostModel, Machine, ProcGrid};

fn bench_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("redistribute_cyclic_to_block");
    g.sample_size(10);
    for mode in [RedistMode::Indexed, RedistMode::Detected] {
        g.bench_with_input(
            BenchmarkId::new(format!("{mode:?}"), 16384),
            &16384usize,
            |b, &n| {
                let grid = ProcGrid::line(8);
                let src = ArrayDesc::new(&[n], &grid, &[Dist::Cyclic]).unwrap();
                let dst = ArrayDesc::new(&[n], &grid, &[Dist::Block]).unwrap();
                let machine = Machine::new(grid, CostModel::cm5());
                b.iter(|| {
                    let (src_ref, dst_ref) = (&src, &dst);
                    machine.run(move |proc| {
                        let local = local_from_fn(src_ref, proc.id(), |g| g[0] as i32);
                        redistribute(
                            proc,
                            src_ref,
                            dst_ref,
                            &local,
                            mode,
                            A2aSchedule::LinearPermutation,
                        )
                        .len()
                    })
                });
            },
        );
    }
    g.finish();
}

fn bench_redist_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack_redistributed");
    g.sample_size(10);
    for scheme in [RedistScheme::SelectedData, RedistScheme::WholeArrays] {
        g.bench_with_input(
            BenchmarkId::new(scheme.label(), 16384),
            &16384usize,
            |b, &n| {
                let cfg = ExpConfig::new(
                    &[n],
                    &[8],
                    1,
                    MaskPattern::Random {
                        density: 0.3,
                        seed: 9,
                    },
                );
                let desc = cfg.desc();
                let machine = cfg.machine();
                let opts = PackOptions::default();
                let shape = cfg.shape.clone();
                b.iter(|| {
                    let (desc_ref, shape_ref, opts_ref) = (&desc, &shape, &opts);
                    let pattern = cfg.pattern;
                    machine.run(move |proc| {
                        let a = local_from_fn(desc_ref, proc.id(), ExpConfig::value_at);
                        let m = local_from_fn(desc_ref, proc.id(), |g| pattern.value(g, shape_ref));
                        pack_redistributed(proc, desc_ref, &a, &m, scheme, opts_ref)
                            .unwrap()
                            .size
                    })
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_modes, bench_redist_schemes);
criterion_main!(benches);
