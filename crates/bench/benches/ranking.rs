//! Wall-time benchmark of the ranking stage (Section 5) — real execution
//! time of the threaded simulation, complementary to the simulated-clock
//! tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpf_core::ranking::{rank_from_counts, slice_counts, RankShape};
use hpf_core::MaskPattern;
use hpf_distarray::{local_from_fn, ArrayDesc, Dist};
use hpf_machine::collectives::PrsAlgorithm;
use hpf_machine::{CostModel, Machine, ProcGrid};

fn bench_ranking(c: &mut Criterion) {
    let mut g = c.benchmark_group("ranking");
    g.sample_size(10);
    for (label, n, w) in [("block", 16384usize, 2048usize), ("cyclic16", 16384, 16)] {
        g.bench_with_input(BenchmarkId::new("1d_p8", label), &(n, w), |b, &(n, w)| {
            let grid = ProcGrid::line(8);
            let desc = ArrayDesc::new(&[n], &grid, &[Dist::BlockCyclic(w)]).unwrap();
            let machine = Machine::new(grid, CostModel::cm5());
            let pattern = MaskPattern::Random {
                density: 0.5,
                seed: 7,
            };
            b.iter(|| {
                let desc_ref = &desc;
                machine.run(move |proc| {
                    let shape = RankShape::from_desc(desc_ref);
                    let m = local_from_fn(desc_ref, proc.id(), |g| pattern.value(g, &[n]));
                    let counts = slice_counts(&m, shape.w[0]);
                    rank_from_counts(proc, &shape, counts, PrsAlgorithm::Auto).size
                })
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ranking);
criterion_main!(benches);
