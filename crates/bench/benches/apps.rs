//! Wall-time benchmark of the mini-applications: sparse compression + SpMV
//! and one compaction step.

use criterion::{criterion_group, criterion_main, Criterion};
use hpf_apps::{run_compaction, SparseMatrix};
use hpf_core::PackOptions;
use hpf_distarray::{local_from_fn, ArrayDesc, DimLayout, Dist};
use hpf_machine::collectives::A2aSchedule;
use hpf_machine::{CostModel, Machine, ProcGrid};

fn tridiag(col: usize, row: usize) -> f64 {
    match row.abs_diff(col) {
        0 => 2.0,
        1 => -1.0,
        _ => 0.0,
    }
}

fn bench_apps(c: &mut Criterion) {
    let mut g = c.benchmark_group("apps");
    g.sample_size(10);

    let n = 64usize;
    let grid = ProcGrid::new(&[2, 2]);
    let desc = ArrayDesc::new(
        &[n, n],
        &grid,
        &[Dist::BlockCyclic(4), Dist::BlockCyclic(4)],
    )
    .unwrap();
    let machine = Machine::new(grid.clone(), CostModel::cm5());
    let x_layout = DimLayout::new_general(n, 4, n.div_ceil(4)).unwrap();

    g.bench_function("spmv_compress_and_multiply", |b| {
        b.iter(|| {
            let (d, xl) = (&desc, &x_layout);
            machine.run(move |proc| {
                let dense = local_from_fn(d, proc.id(), |gi| tridiag(gi[0], gi[1]));
                let a = SparseMatrix::compress(proc, d, &dense, &PackOptions::default()).unwrap();
                let x = vec![1.0f64; xl.local_len(proc.id())];
                a.spmv(proc, &x, xl, A2aSchedule::LinearPermutation).0.len()
            })
        });
    });

    let machine1d = Machine::new(ProcGrid::line(8), CostModel::cm5());
    g.bench_function("compaction_4_steps", |b| {
        b.iter(|| {
            machine1d.run(move |proc| {
                run_compaction(
                    proc,
                    4096,
                    4,
                    |p, _| p.wrapping_mul(7).wrapping_add(1) % 10_000,
                    |p, step| !(p as usize + step).is_multiple_of(3),
                    &PackOptions::default(),
                )
                .unwrap()
                .len()
            })
        });
    });

    g.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
