//! Wall-time benchmark of parallel PACK under all three schemes
//! (the Figure 3/4 kernels, measured as real execution time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpf_bench::ExpConfig;
use hpf_core::{pack, MaskPattern, PackOptions, PackScheme};
use hpf_distarray::local_from_fn;

fn bench_pack(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack");
    g.sample_size(10);
    for scheme in PackScheme::ALL {
        for (dist_label, w) in [("block", 2048usize), ("cyclic8", 8)] {
            let id = BenchmarkId::new(scheme.label(), dist_label);
            g.bench_with_input(id, &w, |b, &w| {
                let cfg = ExpConfig::new(
                    &[16384],
                    &[8],
                    w,
                    MaskPattern::Random {
                        density: 0.5,
                        seed: 3,
                    },
                );
                let desc = cfg.desc();
                let machine = cfg.machine();
                let opts = PackOptions::new(scheme);
                let shape = cfg.shape.clone();
                b.iter(|| {
                    let (desc_ref, shape_ref, opts_ref) = (&desc, &shape, &opts);
                    let pattern = cfg.pattern;
                    machine.run(move |proc| {
                        let a = local_from_fn(desc_ref, proc.id(), ExpConfig::value_at);
                        let m = local_from_fn(desc_ref, proc.id(), |g| pattern.value(g, shape_ref));
                        pack(proc, desc_ref, &a, &m, opts_ref).unwrap().size
                    })
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_pack);
criterion_main!(benches);
