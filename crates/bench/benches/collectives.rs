//! Wall-time benchmark of the communication primitives: the fused
//! prefix-reduction-sum (direct vs split) and many-to-many personalized
//! communication (linear permutation vs naive push).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpf_machine::collectives::{alltoallv, prefix_reduction_sum, A2aSchedule, PrsAlgorithm};
use hpf_machine::{CostModel, Machine, ProcGrid};

fn bench_prs(c: &mut Criterion) {
    let mut g = c.benchmark_group("prefix_reduction_sum");
    g.sample_size(10);
    for algo in [PrsAlgorithm::Direct, PrsAlgorithm::Split] {
        for m in [64usize, 4096] {
            let id = BenchmarkId::new(format!("{algo:?}"), m);
            g.bench_with_input(id, &m, |b, &m| {
                let machine = Machine::new(ProcGrid::line(8), CostModel::cm5());
                b.iter(|| {
                    machine.run(move |proc| {
                        let world = proc.world();
                        let v = vec![proc.id() as i32 + 1; m];
                        prefix_reduction_sum(proc, &world, &v, algo).1[0]
                    })
                });
            });
        }
    }
    g.finish();
}

fn bench_alltoall(c: &mut Criterion) {
    let mut g = c.benchmark_group("alltoallv");
    g.sample_size(10);
    for schedule in [A2aSchedule::LinearPermutation, A2aSchedule::NaivePush] {
        for m in [64usize, 4096] {
            let id = BenchmarkId::new(format!("{schedule:?}"), m);
            g.bench_with_input(id, &m, |b, &m| {
                let machine = Machine::new(ProcGrid::line(8), CostModel::cm5());
                b.iter(|| {
                    machine.run(move |proc| {
                        let world = proc.world();
                        let sends: Vec<Vec<i32>> = (0..8).map(|j| vec![j; m / 8]).collect();
                        alltoallv(proc, &world, sends, schedule).len()
                    })
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_prs, bench_alltoall);
criterion_main!(benches);
