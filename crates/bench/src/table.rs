//! Minimal fixed-width table rendering for experiment output.

/// A simple right-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render to a string with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                // First column left-aligned (labels), the rest right-aligned.
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name", "ms"]);
        t.row(vec!["a", "1.00"]);
        t.row(vec!["longer", "12.34"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].starts_with("longer"));
        // Right-aligned numeric column.
        assert!(lines[2].ends_with(" 1.00"));
    }

    #[test]
    #[should_panic(expected = "width")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }
}
