//! # hpf-bench — experiment harness for the PACK/UNPACK paper
//!
//! Shared machinery for the binaries that regenerate the paper's tables and
//! figures (`table1`, `table2`, `fig3`, `fig4`, `fig5`, `prs`, `scaling`,
//! `ablations`) and for the Criterion wall-time benches.
//!
//! All paper-style numbers come from the **simulated clock** (milliseconds
//! under the CM-5-flavoured cost model), which is what makes the shapes
//! comparable to the paper's CM-5 measurements; Criterion separately
//! measures real wall time of the same kernels.

pub mod experiments;
pub mod table;

pub use experiments::*;
pub use table::Table;
