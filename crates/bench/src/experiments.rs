//! Shared experiment runners: build a machine, seed distributed data, run
//! PACK/UNPACK under a scheme, and report the simulated-time breakdown.

use hpf_core::{
    pack, pack_redistributed, plan_pack, plan_unpack, unpack, CopyStats, MaskPattern, PackOptions,
    PackScheme, PlanCache, RedistScheme, UnpackOptions, UnpackScheme,
};
use hpf_distarray::{local_from_fn, ArrayDesc, DimLayout, Dist, GlobalArray, TrackArray};
use hpf_machine::{Breakdown, Category, CostModel, Machine, ProcGrid, RunOutput, WallProfile};

/// One experiment point: an array shape distributed with a uniform block
/// size over a grid, masked by a pattern.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Global shape (dimension 0 first).
    pub shape: Vec<usize>,
    /// Grid extents (dimension 0 first).
    pub grid: Vec<usize>,
    /// Block size, applied to every dimension (the paper fixes the
    /// dimension-0 and dimension-1 block sizes equal in 2-D sweeps).
    pub w: usize,
    /// Mask pattern.
    pub pattern: MaskPattern,
    /// Cost model (defaults to CM-5 constants).
    pub cost: CostModel,
}

impl ExpConfig {
    /// Config with CM-5 cost constants.
    pub fn new(shape: &[usize], grid: &[usize], w: usize, pattern: MaskPattern) -> Self {
        ExpConfig {
            shape: shape.to_vec(),
            grid: grid.to_vec(),
            w,
            pattern,
            cost: CostModel::cm5(),
        }
    }

    /// The machine for this config.
    pub fn machine(&self) -> Machine {
        Machine::new(ProcGrid::new(&self.grid), self.cost)
    }

    /// The machine for this config, optionally with event tracing enabled
    /// (for critical-path extraction; tracing never changes simulated
    /// time, only records it).
    pub fn machine_traced(&self, traced: bool) -> Machine {
        self.machine().with_tracing(traced)
    }

    /// The array descriptor for this config.
    pub fn desc(&self) -> ArrayDesc {
        let grid = ProcGrid::new(&self.grid);
        let dists: Vec<Dist> = self
            .shape
            .iter()
            .map(|_| Dist::BlockCyclic(self.w))
            .collect();
        ArrayDesc::new(&self.shape, &grid, &dists)
            .unwrap_or_else(|e| panic!("invalid experiment config {self:?}: {e}"))
    }

    /// Local extent per processor along each dimension.
    pub fn local_len(&self) -> usize {
        self.shape
            .iter()
            .zip(&self.grid)
            .map(|(n, p)| n / p)
            .product()
    }

    /// Deterministic element value at a global index.
    pub fn value_at(gidx: &[usize]) -> i32 {
        gidx.iter()
            .fold(17i32, |acc, &x| acc.wrapping_mul(31).wrapping_add(x as i32))
    }
}

/// Valid uniform block sizes for a config: powers of two from 1 to the
/// local extent of the *smallest* dimension (so `P·W | N` holds everywhere).
pub fn block_sizes(shape: &[usize], grid: &[usize]) -> Vec<usize> {
    let max_w = shape.iter().zip(grid).map(|(n, p)| n / p).min().unwrap();
    let mut sizes = Vec::new();
    let mut w = 1;
    while w <= max_w {
        sizes.push(w);
        w *= 2;
    }
    sizes
}

/// Simulated-time measurement of one operation.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Per-category critical-path breakdown.
    pub breakdown: Breakdown,
    /// `Size` (packed element count).
    pub size: usize,
    /// Total message words sent by all processors.
    pub words: u64,
    /// Total message start-ups.
    pub startups: u64,
    /// Total reliable-transport retransmissions (0 on a fault-free machine).
    pub retransmits: u64,
    /// Total duplicate frames dropped by receivers.
    pub dup_drops: u64,
    /// Retransmitted fraction of all data-frame transmissions.
    pub retry_overhead: f64,
}

impl Measurement {
    /// Local computation time (what Figure 3 plots): ranking local work plus
    /// message composition/decomposition.
    pub fn local_ms(&self) -> f64 {
        self.breakdown.cat_ms(Category::LocalComp)
    }

    /// Prefix-reduction-sum time.
    pub fn prs_ms(&self) -> f64 {
        self.breakdown.cat_ms(Category::PrefixReductionSum)
    }

    /// Many-to-many personalized communication time.
    pub fn m2m_ms(&self) -> f64 {
        self.breakdown.cat_ms(Category::ManyToMany)
    }

    /// Preliminary-redistribution time (detection + traffic).
    pub fn redist_ms(&self) -> f64 {
        self.breakdown.cat_ms(Category::RedistDetect) + self.breakdown.cat_ms(Category::RedistComm)
    }

    /// Total execution time (what Figures 4 and 5 plot).
    pub fn total_ms(&self) -> f64 {
        self.breakdown.total_ms()
    }
}

/// Measurement from a finished run (`size` comes from the caller, since
/// result types differ between runners).
pub fn measure_run<R>(out: &RunOutput<R>, size: usize) -> Measurement {
    Measurement {
        breakdown: out.breakdown(),
        size,
        words: out.total_words_sent(),
        startups: out.total_startups(),
        retransmits: out.total_retransmits(),
        dup_drops: out.total_dup_drops(),
        retry_overhead: out.retry_overhead(),
    }
}

/// Amortized plan-reuse measurement: one cached plan executed `executes`
/// times (fresh data every iteration) versus `executes` independent full
/// calls — the mask, and therefore the plan, is fixed across iterations.
#[derive(Debug, Clone, Copy)]
pub struct ReuseMeasurement {
    /// Number of operations in each arm.
    pub executes: usize,
    /// `executes` independent full calls (plan + execute every time).
    pub fresh: Measurement,
    /// One planning pass + `executes` cached executes.
    pub cached: Measurement,
    /// `plan.cache.hit` summed over all processors after the cached arm.
    pub cache_hits: u64,
    /// `plan.cache.miss` summed over all processors after the cached arm.
    pub cache_misses: u64,
}

impl ReuseMeasurement {
    /// Amortized simulated cost per call of the fresh arm.
    pub fn fresh_per_exec_ms(&self) -> f64 {
        self.fresh.total_ms() / self.executes as f64
    }

    /// Amortized simulated cost per call of the cached arm (the single
    /// planning pass is spread over all executes).
    pub fn cached_per_exec_ms(&self) -> f64 {
        self.cached.total_ms() / self.executes as f64
    }

    /// Cached over fresh amortized cost; below 1 means reuse pays.
    pub fn reuse_ratio(&self) -> f64 {
        self.cached_per_exec_ms() / self.fresh_per_exec_ms().max(f64::MIN_POSITIVE)
    }
}

/// Measure PACK plan reuse under `opts`: `executes` fresh `pack` calls
/// versus one [`PlanCache`]d plan executed `executes` times, each
/// iteration on different element values. The cached arm runs with
/// metrics so the `plan.cache.{hit,miss}` counters are observable.
pub fn time_pack_reuse(cfg: &ExpConfig, opts: &PackOptions, executes: usize) -> ReuseMeasurement {
    let desc = cfg.desc();
    let (desc_ref, pattern) = (&desc, cfg.pattern);
    let data_at = move |it: usize, g: &[usize]| ExpConfig::value_at(g).wrapping_add(it as i32);

    let shape = cfg.shape.clone();
    let out = cfg.machine().run(move |proc| {
        let m = local_from_fn(desc_ref, proc.id(), |g| pattern.value(g, &shape));
        let data: Vec<Vec<i32>> = (0..executes)
            .map(|it| local_from_fn(desc_ref, proc.id(), |g| data_at(it, g)))
            .collect();
        proc.clock().reset();
        let mut size = 0;
        for a in &data {
            size = pack(proc, desc_ref, a, &m, opts).unwrap().size;
        }
        size
    });
    let fresh = measure_run(&out, out.results[0]);

    let shape = cfg.shape.clone();
    let out = cfg.machine().with_metrics(true).run(move |proc| {
        let m = local_from_fn(desc_ref, proc.id(), |g| pattern.value(g, &shape));
        let data: Vec<Vec<i32>> = (0..executes)
            .map(|it| local_from_fn(desc_ref, proc.id(), |g| data_at(it, g)))
            .collect();
        let mut plans = PlanCache::new();
        proc.clock().reset();
        let mut size = 0;
        for a in &data {
            let plan = plans
                .pack_plan(proc, desc_ref, &m, pattern.fingerprint(), opts)
                .unwrap();
            size = plan.execute(proc, a).unwrap().size;
        }
        size
    });
    let cached = measure_run(&out, out.results[0]);
    let metrics = out.merged_metrics();
    ReuseMeasurement {
        executes,
        fresh,
        cached,
        cache_hits: metrics.counter("plan.cache.hit"),
        cache_misses: metrics.counter("plan.cache.miss"),
    }
}

/// Measure UNPACK plan reuse under `opts`; see [`time_pack_reuse`]. Each
/// iteration unpacks a different input vector through the same mask.
pub fn time_unpack_reuse(
    cfg: &ExpConfig,
    opts: &UnpackOptions,
    executes: usize,
) -> ReuseMeasurement {
    let desc = cfg.desc();
    let size = {
        let m = cfg.pattern.global(&cfg.shape);
        m.data().iter().filter(|&&b| b).count()
    };
    let nprocs: usize = cfg.grid.iter().product();
    let n_prime = size.max(1);
    let v_layout = DimLayout::new_general(n_prime, nprocs, n_prime.div_ceil(nprocs)).unwrap();
    let (desc_ref, pattern, vl) = (&desc, cfg.pattern, &v_layout);
    let vdata = move |me: usize, it: usize, vl: &DimLayout| -> Vec<i32> {
        (0..vl.local_len(me))
            .map(|l| (vl.global_of(me, l) as i32).wrapping_add(1000 * it as i32))
            .collect()
    };

    let shape = cfg.shape.clone();
    let out = cfg.machine().run(move |proc| {
        let m = local_from_fn(desc_ref, proc.id(), |g| pattern.value(g, &shape));
        let f = local_from_fn(desc_ref, proc.id(), |_| -1i32);
        let vs: Vec<Vec<i32>> = (0..executes).map(|it| vdata(proc.id(), it, vl)).collect();
        proc.clock().reset();
        for v in &vs {
            unpack(proc, desc_ref, &m, &f, v, vl, opts).unwrap();
        }
    });
    let fresh = measure_run(&out, size);

    let shape = cfg.shape.clone();
    let out = cfg.machine().with_metrics(true).run(move |proc| {
        let m = local_from_fn(desc_ref, proc.id(), |g| pattern.value(g, &shape));
        let f = local_from_fn(desc_ref, proc.id(), |_| -1i32);
        let vs: Vec<Vec<i32>> = (0..executes).map(|it| vdata(proc.id(), it, vl)).collect();
        let mut plans = PlanCache::new();
        proc.clock().reset();
        for v in &vs {
            let plan = plans
                .unpack_plan(proc, desc_ref, &m, pattern.fingerprint(), vl, opts)
                .unwrap();
            plan.execute(proc, &f, v).unwrap();
        }
    });
    let cached = measure_run(&out, size);
    let metrics = out.merged_metrics();
    ReuseMeasurement {
        executes,
        fresh,
        cached,
        cache_hits: metrics.counter("plan.cache.hit"),
        cache_misses: metrics.counter("plan.cache.miss"),
    }
}

/// Warm-up executes before the hot window: the two pool slots per
/// destination alternate, so both are grown after exactly two iterations
/// and every later execute is allocation-free.
pub const HOT_WARMUP: usize = 2;

/// Real (wall-clock) measurement of the steady-state execute path: one plan,
/// `executes` timed iterations after warm-up, with heap allocations counted
/// per worker thread. Allocation counts are only non-zero when the harness
/// binary installs [`hpf_machine::alloc_counter::CountingAllocator`] as its
/// global allocator (the `perf` binary does).
#[derive(Debug, Clone, Copy)]
pub struct HotMeasurement {
    /// Timed executes (after [`HOT_WARMUP`] untimed ones).
    pub executes: usize,
    /// Packed element count moved per execute.
    pub elements: usize,
    /// Wall-clock nanoseconds per execute: the slowest processor thread's
    /// timed window divided by `executes`.
    pub wall_ns_per_exec: f64,
    /// Heap allocations per execute, summed over all processor threads.
    /// Zero in steady state — gated by `validate_bench.py`.
    pub allocs_per_execute: f64,
    /// Heap bytes allocated per execute, summed over all processor threads.
    pub alloc_bytes_per_execute: f64,
    /// `payload.clone_words` from a separate metrics-enabled run of the
    /// same workload: deep-copied payload words, zero on fault-free runs.
    pub clone_words: u64,
    /// Op breakdown of the plan's lowered copy programs, merged across
    /// processors (DESIGN.md §16): how much of the hot loop's value
    /// movement runs as bulk copies instead of scalar indexing.
    pub copy_ops: CopyStats,
}

impl HotMeasurement {
    /// Wall-clock nanoseconds per packed element per execute.
    pub fn ns_per_element(&self) -> f64 {
        self.wall_ns_per_exec / self.elements.max(1) as f64
    }
}

/// Measure the PACK hot path: plan once, execute `executes` times after
/// warm-up, timing the steady-state window and counting its allocations.
/// Returns the real-time measurement plus the simulated [`Measurement`] of
/// the whole plan + execute loop (deterministic, so usable as a perf-diff
/// baseline). The timed run keeps metrics and tracing off — stage timers
/// allocate their metric keys when metrics are on — and a second, small
/// metrics-enabled run supplies the `payload.clone_words` counter.
pub fn time_pack_hot(
    cfg: &ExpConfig,
    opts: &PackOptions,
    executes: usize,
) -> (HotMeasurement, Measurement) {
    use hpf_core::PackOutput;
    use hpf_machine::alloc_counter::thread_totals;

    let desc = cfg.desc();
    let (desc_ref, pattern, shape) = (&desc, cfg.pattern, cfg.shape.clone());
    let out = cfg.machine().run(move |proc| {
        let a = local_from_fn(desc_ref, proc.id(), ExpConfig::value_at);
        let m = local_from_fn(desc_ref, proc.id(), |g| pattern.value(g, &shape));
        proc.clock().reset();
        let plan = plan_pack(proc, desc_ref, &m, opts).unwrap();
        let mut out = PackOutput {
            local_v: Vec::new(),
            size: 0,
            v_layout: None,
        };
        for _ in 0..HOT_WARMUP {
            plan.execute_into(proc, &a, &mut out).unwrap();
        }
        let (c0, b0) = thread_totals();
        let t0 = std::time::Instant::now();
        for _ in 0..executes {
            plan.execute_into(proc, &a, &mut out).unwrap();
        }
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let (c1, b1) = thread_totals();
        (out.size, wall_ns, c1 - c0, b1 - b0, plan.copy_stats())
    });
    let size = out.results[0].0;
    let sim = measure_run(&out, size);
    let hot = hot_from_runs(&out.results, size, executes, {
        let shape = cfg.shape.clone();
        let machine = cfg.machine().with_metrics(true);
        let out = machine.run(move |proc| {
            let a = local_from_fn(desc_ref, proc.id(), ExpConfig::value_at);
            let m = local_from_fn(desc_ref, proc.id(), |g| pattern.value(g, &shape));
            let plan = plan_pack(proc, desc_ref, &m, opts).unwrap();
            let mut out = PackOutput {
                local_v: Vec::new(),
                size: 0,
                v_layout: None,
            };
            for _ in 0..HOT_WARMUP {
                plan.execute_into(proc, &a, &mut out).unwrap();
            }
        });
        out.merged_metrics().counter("payload.clone_words")
    });
    (hot, sim)
}

/// Measure the UNPACK hot path; see [`time_pack_hot`].
pub fn time_unpack_hot(
    cfg: &ExpConfig,
    opts: &UnpackOptions,
    executes: usize,
) -> (HotMeasurement, Measurement) {
    use hpf_machine::alloc_counter::thread_totals;

    let desc = cfg.desc();
    let size = {
        let m = cfg.pattern.global(&cfg.shape);
        m.data().iter().filter(|&&b| b).count()
    };
    let nprocs: usize = cfg.grid.iter().product();
    let n_prime = size.max(1);
    let v_layout = DimLayout::new_general(n_prime, nprocs, n_prime.div_ceil(nprocs)).unwrap();
    let (desc_ref, pattern, shape, vl) = (&desc, cfg.pattern, cfg.shape.clone(), &v_layout);
    let out = cfg.machine().run(move |proc| {
        let m = local_from_fn(desc_ref, proc.id(), |g| pattern.value(g, &shape));
        let f = local_from_fn(desc_ref, proc.id(), |_| -1i32);
        let v: Vec<i32> = (0..vl.local_len(proc.id()))
            .map(|l| vl.global_of(proc.id(), l) as i32)
            .collect();
        proc.clock().reset();
        let plan = plan_unpack(proc, desc_ref, &m, vl, opts).unwrap();
        let mut out = Vec::new();
        for _ in 0..HOT_WARMUP {
            plan.execute_into(proc, &f, &v, &mut out).unwrap();
        }
        let (c0, b0) = thread_totals();
        let t0 = std::time::Instant::now();
        for _ in 0..executes {
            plan.execute_into(proc, &f, &v, &mut out).unwrap();
        }
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let (c1, b1) = thread_totals();
        (out.len(), wall_ns, c1 - c0, b1 - b0, plan.copy_stats())
    });
    let sim = measure_run(&out, size);
    let hot = hot_from_runs(&out.results, size, executes, {
        let shape = cfg.shape.clone();
        let machine = cfg.machine().with_metrics(true);
        let out = machine.run(move |proc| {
            let m = local_from_fn(desc_ref, proc.id(), |g| pattern.value(g, &shape));
            let f = local_from_fn(desc_ref, proc.id(), |_| -1i32);
            let v: Vec<i32> = (0..vl.local_len(proc.id()))
                .map(|l| vl.global_of(proc.id(), l) as i32)
                .collect();
            let plan = plan_unpack(proc, desc_ref, &m, vl, opts).unwrap();
            let mut out = Vec::new();
            for _ in 0..HOT_WARMUP {
                plan.execute_into(proc, &f, &v, &mut out).unwrap();
            }
        });
        out.merged_metrics().counter("payload.clone_words")
    });
    (hot, sim)
}

/// Fold per-processor `(len, wall_ns, allocs, bytes, copy stats)` tuples
/// into a [`HotMeasurement`]: slowest thread bounds the wall clock,
/// allocations and copy-program stats are summed across threads.
fn hot_from_runs(
    results: &[(usize, u64, u64, u64, CopyStats)],
    elements: usize,
    executes: usize,
    clone_words: u64,
) -> HotMeasurement {
    let wall = results.iter().map(|r| r.1).max().unwrap_or(0);
    let allocs: u64 = results.iter().map(|r| r.2).sum();
    let bytes: u64 = results.iter().map(|r| r.3).sum();
    let mut copy_ops = CopyStats::default();
    for r in results {
        copy_ops.merge(&r.4);
    }
    HotMeasurement {
        executes,
        elements,
        wall_ns_per_exec: wall as f64 / executes.max(1) as f64,
        allocs_per_execute: allocs as f64 / executes.max(1) as f64,
        alloc_bytes_per_execute: bytes as f64 / executes.max(1) as f64,
        clone_words,
        copy_ops,
    }
}

/// Per-processor wall-clock span profiles of the steady-state PACK
/// execute loop: the same plan-once / execute-N program as
/// [`time_pack_hot`], re-run on a wall-profiling machine. Profiling is
/// deliberately kept *out* of the timed, allocation-counted pass — the
/// counting-allocator measurement stays pristine — so hotspot attribution
/// always comes from this separate run.
pub fn profile_pack_hot(cfg: &ExpConfig, opts: &PackOptions, executes: usize) -> Vec<WallProfile> {
    use hpf_core::PackOutput;

    let desc = cfg.desc();
    let (desc_ref, pattern, shape) = (&desc, cfg.pattern, cfg.shape.clone());
    let out = cfg.machine().with_wall_profiling(true).run(move |proc| {
        let a = local_from_fn(desc_ref, proc.id(), ExpConfig::value_at);
        let m = local_from_fn(desc_ref, proc.id(), |g| pattern.value(g, &shape));
        let plan = plan_pack(proc, desc_ref, &m, opts).unwrap();
        let mut out = PackOutput {
            local_v: Vec::new(),
            size: 0,
            v_layout: None,
        };
        for _ in 0..HOT_WARMUP + executes {
            plan.execute_into(proc, &a, &mut out).unwrap();
        }
    });
    out.wall_profiles
}

/// Per-processor wall-clock span profiles of the steady-state UNPACK
/// execute loop; see [`profile_pack_hot`].
pub fn profile_unpack_hot(
    cfg: &ExpConfig,
    opts: &UnpackOptions,
    executes: usize,
) -> Vec<WallProfile> {
    let desc = cfg.desc();
    let size = {
        let m = cfg.pattern.global(&cfg.shape);
        m.data().iter().filter(|&&b| b).count()
    };
    let nprocs: usize = cfg.grid.iter().product();
    let n_prime = size.max(1);
    let v_layout = DimLayout::new_general(n_prime, nprocs, n_prime.div_ceil(nprocs)).unwrap();
    let (desc_ref, pattern, shape, vl) = (&desc, cfg.pattern, cfg.shape.clone(), &v_layout);
    let out = cfg.machine().with_wall_profiling(true).run(move |proc| {
        let m = local_from_fn(desc_ref, proc.id(), |g| pattern.value(g, &shape));
        let f = local_from_fn(desc_ref, proc.id(), |_| -1i32);
        let v: Vec<i32> = (0..vl.local_len(proc.id()))
            .map(|l| vl.global_of(proc.id(), l) as i32)
            .collect();
        let plan = plan_unpack(proc, desc_ref, &m, vl, opts).unwrap();
        let mut out = Vec::new();
        for _ in 0..HOT_WARMUP + executes {
            plan.execute_into(proc, &f, &v, &mut out).unwrap();
        }
    });
    out.wall_profiles
}

/// Per-processor `LocalComp` operation counts of the PACK planning phase
/// alone. The simulation is deterministic, so a full run's counts minus
/// these are exactly the execute phase's — used for phase-resolved
/// Section 6.4 conformance.
pub fn pack_plan_ops(cfg: &ExpConfig, opts: &PackOptions) -> Vec<u64> {
    let desc = cfg.desc();
    let (desc_ref, pattern, shape) = (&desc, cfg.pattern, cfg.shape.clone());
    let out = cfg.machine().run(move |proc| {
        let m = local_from_fn(desc_ref, proc.id(), |g| pattern.value(g, &shape));
        plan_pack(proc, desc_ref, &m, opts).unwrap().size()
    });
    out.cat_ops_per_proc(Category::LocalComp)
}

/// Per-processor `LocalComp` operation counts of the UNPACK planning
/// phase alone; see [`pack_plan_ops`].
pub fn unpack_plan_ops(cfg: &ExpConfig, opts: &UnpackOptions) -> Vec<u64> {
    let desc = cfg.desc();
    let size = {
        let m = cfg.pattern.global(&cfg.shape);
        m.data().iter().filter(|&&b| b).count()
    };
    let nprocs: usize = cfg.grid.iter().product();
    let n_prime = size.max(1);
    let v_layout = DimLayout::new_general(n_prime, nprocs, n_prime.div_ceil(nprocs)).unwrap();
    let (desc_ref, pattern, shape, vl) = (&desc, cfg.pattern, cfg.shape.clone(), &v_layout);
    let out = cfg.machine().run(move |proc| {
        let m = local_from_fn(desc_ref, proc.id(), |g| pattern.value(g, &shape));
        plan_unpack(proc, desc_ref, &m, vl, opts).unwrap().size()
    });
    out.cat_ops_per_proc(Category::LocalComp)
}

/// Run PACK under `opts` and measure.
pub fn time_pack(cfg: &ExpConfig, opts: &PackOptions) -> Measurement {
    run_pack(cfg, opts, false).0
}

/// Run PACK under `opts`, returning the measurement *and* the full run
/// output (events, clocks, per-category op counters) for offline
/// analysis. `traced` enables structured event recording.
pub fn run_pack(
    cfg: &ExpConfig,
    opts: &PackOptions,
    traced: bool,
) -> (Measurement, RunOutput<usize>) {
    let desc = cfg.desc();
    let machine = cfg.machine_traced(traced);
    let (desc_ref, pattern, shape) = (&desc, cfg.pattern, cfg.shape.clone());
    let out = machine.run(move |proc| {
        let a = local_from_fn(desc_ref, proc.id(), ExpConfig::value_at);
        let m = local_from_fn(desc_ref, proc.id(), |g| pattern.value(g, &shape));
        proc.clock().reset(); // setup is not part of the timed operation
        pack(proc, desc_ref, &a, &m, opts)
            .expect("valid experiment config")
            .size
    });
    let m = measure_run(&out, out.results[0]);
    (m, out)
}

/// Memory-accounting run of PACK: tracing and metrics on, with the
/// workload's arrays registered against the `user` memory account
/// ([`TrackArray`]) at simulated time zero, so the traced `MemSample`
/// stream covers the full working set — user arrays, plan buffers, pooled
/// sends, mailbox backlog. Simulated time and traffic are bit-identical
/// to [`run_pack`]; memory accounting is never clock-charged.
pub fn run_pack_mem(cfg: &ExpConfig, opts: &PackOptions) -> (Measurement, RunOutput<usize>) {
    let desc = cfg.desc();
    let machine = cfg.machine_traced(true).with_metrics(true);
    let (desc_ref, pattern, shape) = (&desc, cfg.pattern, cfg.shape.clone());
    let out = machine.run(move |proc| {
        let a = local_from_fn(desc_ref, proc.id(), ExpConfig::value_at);
        let m = local_from_fn(desc_ref, proc.id(), |g| pattern.value(g, &shape));
        proc.clock().reset();
        a.track(proc);
        m.track(proc);
        pack(proc, desc_ref, &a, &m, opts)
            .expect("valid experiment config")
            .size
    });
    let m = measure_run(&out, out.results[0]);
    (m, out)
}

/// Memory-accounting run of PACK with a preliminary redistribution; see
/// [`run_pack_mem`].
pub fn run_pack_redist_mem(
    cfg: &ExpConfig,
    scheme: RedistScheme,
    opts: &PackOptions,
) -> (Measurement, RunOutput<usize>) {
    let desc = cfg.desc();
    let machine = cfg.machine_traced(true).with_metrics(true);
    let (desc_ref, pattern, shape) = (&desc, cfg.pattern, cfg.shape.clone());
    let out = machine.run(move |proc| {
        let a = local_from_fn(desc_ref, proc.id(), ExpConfig::value_at);
        let m = local_from_fn(desc_ref, proc.id(), |g| pattern.value(g, &shape));
        proc.clock().reset();
        a.track(proc);
        m.track(proc);
        pack_redistributed(proc, desc_ref, &a, &m, scheme, opts)
            .expect("valid experiment config")
            .size
    });
    let m = measure_run(&out, out.results[0]);
    (m, out)
}

/// Memory-accounting run of UNPACK: field, mask, and the local vector
/// slice are registered against the `user` account; see [`run_pack_mem`].
pub fn run_unpack_mem(cfg: &ExpConfig, opts: &UnpackOptions) -> (Measurement, RunOutput<()>) {
    let desc = cfg.desc();
    let size = {
        let m = cfg.pattern.global(&cfg.shape);
        m.data().iter().filter(|&&b| b).count()
    };
    let nprocs: usize = cfg.grid.iter().product();
    let n_prime = size.max(1);
    let v_layout = DimLayout::new_general(n_prime, nprocs, n_prime.div_ceil(nprocs)).unwrap();
    let machine = cfg.machine_traced(true).with_metrics(true);
    let (desc_ref, pattern, shape, vl) = (&desc, cfg.pattern, cfg.shape.clone(), &v_layout);
    let out = machine.run(move |proc| {
        let m = local_from_fn(desc_ref, proc.id(), |g| pattern.value(g, &shape));
        let f = local_from_fn(desc_ref, proc.id(), |_| -1i32);
        let v: Vec<i32> = (0..vl.local_len(proc.id()))
            .map(|l| vl.global_of(proc.id(), l) as i32)
            .collect();
        proc.clock().reset();
        f.track(proc);
        m.track(proc);
        v.track(proc);
        unpack(proc, desc_ref, &m, &f, &v, vl, opts).expect("valid experiment config");
    });
    let m = measure_run(&out, size);
    (m, out)
}

/// Run PACK with a preliminary redistribution (Red.1 / Red.2) and measure.
pub fn time_pack_redist(cfg: &ExpConfig, scheme: RedistScheme, opts: &PackOptions) -> Measurement {
    run_pack_redist(cfg, scheme, opts, false).0
}

/// Traced variant of [`time_pack_redist`]; see [`run_pack`].
pub fn run_pack_redist(
    cfg: &ExpConfig,
    scheme: RedistScheme,
    opts: &PackOptions,
    traced: bool,
) -> (Measurement, RunOutput<usize>) {
    let desc = cfg.desc();
    let machine = cfg.machine_traced(traced);
    let (desc_ref, pattern, shape) = (&desc, cfg.pattern, cfg.shape.clone());
    let out = machine.run(move |proc| {
        let a = local_from_fn(desc_ref, proc.id(), ExpConfig::value_at);
        let m = local_from_fn(desc_ref, proc.id(), |g| pattern.value(g, &shape));
        proc.clock().reset();
        pack_redistributed(proc, desc_ref, &a, &m, scheme, opts)
            .expect("valid experiment config")
            .size
    });
    let m = measure_run(&out, out.results[0]);
    (m, out)
}

/// Run UNPACK with the (deliberately infeasible, Section 6.3) preliminary
/// redistribution and measure — used by the ablation that demonstrates the
/// paper's "not a feasible option for UNPACK" claim.
pub fn time_unpack_redist(cfg: &ExpConfig, opts: &UnpackOptions) -> Measurement {
    run_unpack(cfg, opts, true, false).0
}

/// Run UNPACK under `opts` and measure. The input vector is sized exactly to
/// the mask's selected count and block-distributed (the paper's setup).
pub fn time_unpack(cfg: &ExpConfig, opts: &UnpackOptions) -> Measurement {
    run_unpack(cfg, opts, false, false).0
}

/// Traced variant of [`time_unpack`] / [`time_unpack_redist`]; see
/// [`run_pack`].
pub fn run_unpack(
    cfg: &ExpConfig,
    opts: &UnpackOptions,
    redist: bool,
    traced: bool,
) -> (Measurement, RunOutput<()>) {
    let desc = cfg.desc();
    // Size is a property of the mask alone; compute it harness-side.
    let size = {
        let m = cfg.pattern.global(&cfg.shape);
        m.data().iter().filter(|&&b| b).count()
    };
    let nprocs: usize = cfg.grid.iter().product();
    let n_prime = size.max(1);
    let v_layout = DimLayout::new_general(n_prime, nprocs, n_prime.div_ceil(nprocs)).unwrap();

    let machine = cfg.machine_traced(traced);
    let (desc_ref, pattern, shape, vl) = (&desc, cfg.pattern, cfg.shape.clone(), &v_layout);
    let out = machine.run(move |proc| {
        let m = local_from_fn(desc_ref, proc.id(), |g| pattern.value(g, &shape));
        let f = local_from_fn(desc_ref, proc.id(), |_| -1i32);
        let v: Vec<i32> = (0..vl.local_len(proc.id()))
            .map(|l| vl.global_of(proc.id(), l) as i32)
            .collect();
        proc.clock().reset();
        if redist {
            hpf_core::unpack_redistributed(proc, desc_ref, &m, &f, &v, vl, opts)
                .expect("valid experiment config");
        } else {
            unpack(proc, desc_ref, &m, &f, &v, vl, opts).expect("valid experiment config");
        }
    });
    let m = measure_run(&out, size);
    (m, out)
}

/// The masks used throughout Section 7: five random densities plus the
/// structured mask for the given rank.
pub fn paper_masks(ndims: usize, seed: u64) -> Vec<MaskPattern> {
    let mut masks: Vec<MaskPattern> = MaskPattern::DENSITIES
        .iter()
        .map(|&density| MaskPattern::Random { density, seed })
        .collect();
    masks.push(if ndims == 1 {
        MaskPattern::FirstHalf
    } else {
        MaskPattern::LowerTriangular
    });
    masks
}

/// Format milliseconds like the paper's tables.
pub fn ms(x: f64) -> String {
    format!("{x:.2}")
}

/// Correctness backstop used by the binaries: PACK result equals the
/// sequential oracle for this config (cheap insurance that the numbers
/// describe a *correct* run).
pub fn verify_pack(cfg: &ExpConfig, opts: &PackOptions) {
    let desc = cfg.desc();
    let a = GlobalArray::from_fn(&cfg.shape, ExpConfig::value_at);
    let m = cfg.pattern.global(&cfg.shape);
    let want = hpf_core::seq::pack_seq(&a, &m, None);
    let a_parts = a.partition(&desc);
    let m_parts = m.partition(&desc);
    let machine = cfg.machine();
    let (desc_ref, a_ref, m_ref) = (&desc, &a_parts, &m_parts);
    let out = machine
        .run(move |proc| pack(proc, desc_ref, &a_ref[proc.id()], &m_ref[proc.id()], opts).unwrap());
    let mut got = vec![0i32; want.len()];
    if let Some(layout) = out.results[0].v_layout {
        for (p, o) in out.results.iter().enumerate() {
            for (l, &x) in o.local_v.iter().enumerate() {
                got[layout.global_of(p, l)] = x;
            }
        }
    }
    assert_eq!(got, want, "pack verification failed for {cfg:?}");
}

/// All three pack schemes with default options.
pub fn pack_scheme_opts() -> Vec<(PackScheme, PackOptions)> {
    PackScheme::ALL
        .iter()
        .map(|&s| (s, PackOptions::new(s)))
        .collect()
}

/// Both unpack schemes with default options.
pub fn unpack_scheme_opts() -> Vec<(UnpackScheme, UnpackOptions)> {
    UnpackScheme::ALL
        .iter()
        .map(|&s| (s, UnpackOptions::new(s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_sizes_are_powers_of_two_up_to_local() {
        assert_eq!(block_sizes(&[64], &[4]), vec![1, 2, 4, 8, 16]);
        assert_eq!(block_sizes(&[16, 64], &[2, 2]), vec![1, 2, 4, 8]);
    }

    #[test]
    fn time_pack_produces_consistent_measurement() {
        let cfg = ExpConfig::new(
            &[256],
            &[4],
            4,
            MaskPattern::Random {
                density: 0.5,
                seed: 1,
            },
        );
        let m = time_pack(&cfg, &PackOptions::new(PackScheme::CompactMessage));
        assert!(m.size > 80 && m.size < 180, "size {}", m.size);
        assert!(m.local_ms() > 0.0);
        assert!(m.prs_ms() > 0.0);
        assert!(m.total_ms() >= m.local_ms());
    }

    #[test]
    fn verify_pack_passes_for_all_schemes() {
        let cfg = ExpConfig::new(
            &[16, 16],
            &[2, 2],
            2,
            MaskPattern::Random {
                density: 0.4,
                seed: 2,
            },
        );
        for (_, opts) in pack_scheme_opts() {
            verify_pack(&cfg, &opts);
        }
    }

    #[test]
    fn time_unpack_runs() {
        let cfg = ExpConfig::new(
            &[128],
            &[4],
            8,
            MaskPattern::Random {
                density: 0.3,
                seed: 3,
            },
        );
        let m = time_unpack(&cfg, &UnpackOptions::new(UnpackScheme::CompactStorage));
        assert!(m.total_ms() > 0.0);
        assert!(m.m2m_ms() > 0.0);
    }

    #[test]
    fn plan_reuse_amortizes_and_counts_hits() {
        let cfg = ExpConfig::new(
            &[256],
            &[4],
            1,
            MaskPattern::Random {
                density: 0.5,
                seed: 5,
            },
        );
        let r = time_pack_reuse(&cfg, &PackOptions::default(), 8);
        assert_eq!(r.cache_misses, 4, "one planning miss per processor");
        assert_eq!(r.cache_hits, 7 * 4, "executes-1 hits per processor");
        assert!(r.reuse_ratio() < 1.0, "ratio {}", r.reuse_ratio());
        let r = time_unpack_reuse(&cfg, &UnpackOptions::new(UnpackScheme::CompactStorage), 8);
        assert_eq!(r.cache_misses, 4);
        assert_eq!(r.cache_hits, 7 * 4);
        assert!(r.reuse_ratio() < 1.0, "ratio {}", r.reuse_ratio());
    }

    #[test]
    fn hot_measurements_report_clean_steady_state() {
        let cfg = ExpConfig::new(
            &[256],
            &[4],
            4,
            MaskPattern::Random {
                density: 0.5,
                seed: 4,
            },
        );
        let (hot, sim) = time_pack_hot(&cfg, &PackOptions::default(), 4);
        assert_eq!(hot.executes, 4);
        assert!(hot.elements > 80 && hot.elements < 180, "{}", hot.elements);
        assert!(hot.wall_ns_per_exec > 0.0);
        assert!(hot.ns_per_element() > 0.0);
        assert_eq!(hot.clone_words, 0, "fault-free run deep-copied a payload");
        assert!(sim.total_ms() > 0.0);
        // This test binary does not install the counting allocator, so the
        // counters must read as trivially clean (the real gate runs in the
        // `perf` binary, which does install it).
        assert_eq!(hot.allocs_per_execute, 0.0);
        let (hot, sim) = time_unpack_hot(&cfg, &UnpackOptions::default(), 4);
        assert!(hot.wall_ns_per_exec > 0.0);
        assert_eq!(hot.clone_words, 0);
        assert!(sim.total_ms() > 0.0);
    }

    #[test]
    fn wall_profiling_is_opt_in_and_well_formed() {
        let cfg = ExpConfig::new(
            &[256],
            &[4],
            4,
            MaskPattern::Random {
                density: 0.5,
                seed: 4,
            },
        );
        // Off by default: no wall profiles may leak into a normal run's
        // output, so the timed / allocation-counted passes stay pristine.
        let (_, out) = run_pack(&cfg, &PackOptions::default(), false);
        assert!(
            out.wall_profiles.is_empty(),
            "wall profiles leaked into an unprofiled run"
        );
        // The dedicated profiled pass: one profile per processor, spans
        // recorded and properly nested, with execute frames in the folded
        // export.
        let profiles = profile_pack_hot(&cfg, &PackOptions::default(), 3);
        assert_eq!(profiles.len(), 4);
        for (pid, p) in profiles.iter().enumerate() {
            assert!(p.total_ns() > 0, "proc {pid} recorded no wall time");
            p.well_formed().expect("pack wall spans nest");
        }
        let folded = hpf_machine::folded_stacks(&profiles);
        assert!(
            folded.lines().any(|l| l.contains("pack.execute")),
            "folded export missing execute frames:\n{folded}"
        );
        let profiles = profile_unpack_hot(&cfg, &UnpackOptions::default(), 3);
        for p in &profiles {
            p.well_formed().expect("unpack wall spans nest");
        }
    }

    #[test]
    fn plan_ops_are_a_lower_slice_of_full_run_ops() {
        let cfg = ExpConfig::new(
            &[128],
            &[4],
            4,
            MaskPattern::Random {
                density: 0.5,
                seed: 6,
            },
        );
        for (_, opts) in pack_scheme_opts() {
            let plan = pack_plan_ops(&cfg, &opts);
            let (_, out) = run_pack(&cfg, &opts, false);
            let total = out.cat_ops_per_proc(Category::LocalComp);
            for (p, (&pl, &t)) in plan.iter().zip(&total).enumerate() {
                assert!(pl > 0 && pl < t, "proc {p}: plan {pl} vs total {t}");
            }
        }
        for (_, opts) in unpack_scheme_opts() {
            let plan = unpack_plan_ops(&cfg, &opts);
            let (_, out) = run_unpack(&cfg, &opts, false, false);
            let total = out.cat_ops_per_proc(Category::LocalComp);
            for (p, (&pl, &t)) in plan.iter().zip(&total).enumerate() {
                assert!(pl > 0 && pl < t, "proc {p}: plan {pl} vs total {t}");
            }
        }
    }

    #[test]
    fn paper_masks_have_six_entries() {
        assert_eq!(paper_masks(1, 1).len(), 6);
        assert!(matches!(paper_masks(1, 1)[5], MaskPattern::FirstHalf));
        assert!(matches!(paper_masks(2, 1)[5], MaskPattern::LowerTriangular));
    }
}
