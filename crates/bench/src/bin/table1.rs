//! Table I — β₁ values: the smallest block size at which the compact
//! storage scheme's local computation beats the simple storage scheme's,
//! per local array size and mask density. `inf` means CSS never catches up
//! within the sweep (the paper reports `∞` for 10% density on small 2-D
//! arrays). A companion table reports β₂: where the compact *message*
//! scheme beats the compact storage scheme on total time (Section 6.4.2's
//! comparison is communication-inclusive).
//!
//! Paper setup: 1-D local sizes 1024–8192 on 16 processors; 2-D local sizes
//! 16–128 per dimension on 4×4.

use hpf_bench::{block_sizes, paper_masks, time_pack, ExpConfig, Table};
use hpf_core::{MaskPattern, PackOptions, PackScheme};

fn beta(
    shape: &[usize],
    grid: &[usize],
    pattern: MaskPattern,
    better: impl Fn(&ExpConfig) -> bool,
) -> Option<usize> {
    for w in block_sizes(shape, grid) {
        let cfg = ExpConfig::new(shape, grid, w, pattern);
        if better(&cfg) {
            return Some(w);
        }
    }
    None
}

fn fmt_beta(b: Option<usize>) -> String {
    match b {
        Some(w) => w.to_string(),
        None => "inf".into(),
    }
}

fn beta1(shape: &[usize], grid: &[usize], pattern: MaskPattern) -> Option<usize> {
    beta(shape, grid, pattern, |cfg| {
        let sss = time_pack(cfg, &PackOptions::new(PackScheme::Simple));
        let css = time_pack(cfg, &PackOptions::new(PackScheme::CompactStorage));
        css.local_ms() <= sss.local_ms()
    })
}

fn beta2(shape: &[usize], grid: &[usize], pattern: MaskPattern) -> Option<usize> {
    beta(shape, grid, pattern, |cfg| {
        let css = time_pack(cfg, &PackOptions::new(PackScheme::CompactStorage));
        let cms = time_pack(cfg, &PackOptions::new(PackScheme::CompactMessage));
        cms.total_ms() <= css.total_ms()
    })
}

fn run_panel(
    title: &str,
    sizes: &[usize],
    shape_of: impl Fn(usize) -> Vec<usize>,
    grid: &[usize],
    beta_fn: impl Fn(&[usize], &[usize], MaskPattern) -> Option<usize>,
) {
    println!("\n{title}");
    let ndims = shape_of(sizes[0]).len();
    let masks = paper_masks(ndims, 42);
    let mut headers = vec!["Local Size".to_string()];
    headers.extend(masks.iter().map(|m| m.label()));
    let mut t = Table::new(headers);
    for &ls in sizes {
        let shape = shape_of(ls);
        let mut row = vec![ls.to_string()];
        for &mask in &masks {
            row.push(fmt_beta(beta_fn(&shape, grid, mask)));
        }
        t.row(row);
    }
    t.print();
}

fn main() {
    println!("Table I: beta_1 — smallest block size where CSS local computation <= SSS");
    println!("(paper: 16 procs for 1-D, 4x4 for 2-D; densities 10..90% plus the LT mask)");

    let p1d = 16usize;
    let sizes_1d = [1024usize, 2048, 4096, 8192];
    run_panel(
        "1-D arrays (P = 16):",
        &sizes_1d,
        |ls| vec![ls * p1d],
        &[p1d],
        beta1,
    );

    let sizes_2d = [16usize, 32, 64, 128];
    run_panel(
        "2-D arrays (P = 4x4), local size per dimension:",
        &sizes_2d,
        |ls| vec![ls * 4, ls * 4],
        &[4, 4],
        beta1,
    );

    println!("\nCompanion: beta_2 — smallest block size where CMS total time <= CSS");
    run_panel(
        "1-D arrays (P = 16):",
        &sizes_1d,
        |ls| vec![ls * p1d],
        &[p1d],
        beta2,
    );
    run_panel(
        "2-D arrays (P = 4x4), local size per dimension:",
        &sizes_2d,
        |ls| vec![ls * 4, ls * 4],
        &[4, 4],
        beta2,
    );
}
