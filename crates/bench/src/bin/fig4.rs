//! Figure 4 — total execution time (msec) for the three PACK schemes as a
//! function of block size, at several mask densities, with the breakdown
//! into local computation, prefix-reduction-sum, and many-to-many
//! communication.
//!
//! Expected shape: CMS best overall; the PRS term only dominates the
//! many-to-many term at very small block sizes (especially block size 1).

use hpf_bench::{block_sizes, ms, pack_scheme_opts, paper_masks, time_pack, ExpConfig, Table};

fn run_panel(title: &str, shape: &[usize], grid: &[usize], seed: u64) {
    let masks = paper_masks(shape.len(), seed);
    for mask in [masks[0], masks[2], masks[4], masks[5]] {
        println!("\n{title}, mask {}:", mask.label());
        let mut t = Table::new(vec![
            "Block Size",
            "SSS",
            "CSS",
            "CMS",
            "CMS local",
            "CMS prs",
            "CMS m2m",
        ]);
        for w in block_sizes(shape, grid) {
            let cfg = ExpConfig::new(shape, grid, w, mask);
            let mut row = vec![w.to_string()];
            let mut cms_detail = (0.0, 0.0, 0.0);
            for (scheme, opts) in pack_scheme_opts() {
                let m = time_pack(&cfg, &opts);
                row.push(ms(m.total_ms()));
                if scheme == hpf_core::PackScheme::CompactMessage {
                    cms_detail = (m.local_ms(), m.prs_ms(), m.m2m_ms());
                }
            }
            row.push(ms(cms_detail.0));
            row.push(ms(cms_detail.1));
            row.push(ms(cms_detail.2));
            t.row(row);
        }
        t.print();
    }
}

fn main() {
    println!("Figure 4: total execution time (msec) for three schemes in PACK");
    println!("(totals per scheme, plus the CMS stage breakdown)");

    run_panel("1-D, N = 65536, P = 16", &[65536], &[16], 42);
    run_panel("2-D, 512 x 512, P = 4x4", &[512, 512], &[4, 4], 42);
}
