//! Prefix-reduction-sum study (Section 5.1, Section 7's "Vector
//! Prefix-Reduction-Sum" paragraph, and the comparison the paper defers
//! to [6]): direct vs. split algorithm time across processor counts and
//! vector sizes, plus the PRS time inside a PACK as a function of block
//! size (the vector the ranking performs PRS on has one entry per tile, so
//! halving the block size doubles the PRS vector).

use hpf_bench::{block_sizes, ms, time_pack, ExpConfig, Table};
use hpf_core::{MaskPattern, PackOptions, PackScheme};
use hpf_machine::collectives::{prefix_reduction_sum, PrsAlgorithm};
use hpf_machine::{Category, CostModel, Machine, ProcGrid};

fn time_prs(p: usize, m: usize, algo: PrsAlgorithm) -> f64 {
    let machine = Machine::new(ProcGrid::line(p), CostModel::cm5());
    let out = machine.run(move |proc| {
        proc.clock().set_category(Category::PrefixReductionSum);
        let world = proc.world();
        let v = vec![1i32; m];
        let (prefix, total) = prefix_reduction_sum(proc, &world, &v, algo);
        // Sanity inside the run: totals must equal P.
        assert!(total.iter().all(|&t| t as usize == p));
        assert!(prefix.len() == m);
    });
    out.max_cat_ms(Category::PrefixReductionSum)
}

fn main() {
    println!("Vector prefix-reduction-sum: direct vs split algorithm (msec)");
    println!("(direct ~ (tau + mu*M) log P; split ~ P*tau + mu*M; auto = paper's CM-5 rule)");

    for p in [4usize, 16, 64, 256] {
        println!("\nP = {p}:");
        let mut t = Table::new(vec![
            "Vector M",
            "direct",
            "split",
            "hardware",
            "auto",
            "auto picks",
        ]);
        for m in [1usize, 16, 128, 1024, 8192, 65536] {
            let d = time_prs(p, m, PrsAlgorithm::Direct);
            let s = time_prs(p, m, PrsAlgorithm::Split);
            let h = time_prs(p, m, PrsAlgorithm::Hardware);
            let a = time_prs(p, m, PrsAlgorithm::Auto);
            let picks = match PrsAlgorithm::Auto.resolve(p, m) {
                PrsAlgorithm::Direct => "direct",
                PrsAlgorithm::Split => "split",
                _ => unreachable!(),
            };
            t.row(vec![
                m.to_string(),
                ms(d),
                ms(s),
                ms(h),
                ms(a),
                picks.to_string(),
            ]);
        }
        t.print();
    }

    println!("\nPRS time inside PACK vs block size (1-D, N = 65536, P = 16, density 50%):");
    let shape = [65536usize];
    let grid = [16usize];
    let mut t = Table::new(vec!["Block Size", "PRS ms", "m2m ms", "local ms"]);
    for w in block_sizes(&shape, &grid) {
        let cfg = ExpConfig::new(
            &shape,
            &grid,
            w,
            MaskPattern::Random {
                density: 0.5,
                seed: 42,
            },
        );
        let m = time_pack(&cfg, &PackOptions::new(PackScheme::CompactMessage));
        t.row(vec![
            w.to_string(),
            ms(m.prs_ms()),
            ms(m.m2m_ms()),
            ms(m.local_ms()),
        ]);
    }
    t.print();
    println!("\n(expected: PRS exceeds m2m only at the smallest block sizes, per Section 7)");
}
