//! Ablations for the design choices Sections 6.1–6.2 call out:
//!
//! 1. **Second-scan method** (Section 6.1): scan a slice only until all its
//!    packed elements are collected (method 1) vs. scanning the whole slice
//!    (method 2). The paper found method 1 better, "although the difference
//!    was not significantly large".
//! 2. **Many-to-many schedule**: linear permutation [9] vs. naive push.
//!    Under the contention-free two-level model the difference is small by
//!    construction — the interesting output is message-count parity.
//! 3. **Result-vector block size `W'`** (Section 6.2's footnote): CMS
//!    segments split at destination-block boundaries, so shrinking `W'`
//!    inflates the segment count `Gs` and erodes CMS's advantage.

use hpf_bench::{ms, time_pack, time_unpack, time_unpack_redist, ExpConfig, Table};
use hpf_core::{MaskPattern, PackOptions, PackScheme, ScanMethod, UnpackOptions, UnpackScheme};
use hpf_machine::collectives::A2aSchedule;

fn main() {
    let shape = [65536usize];
    let grid = [16usize];

    println!("Ablation 1: second-scan method (CSS local computation, msec)");
    let mut t = Table::new(vec!["Density", "W", "until-collected", "whole-slice"]);
    for density in [0.1, 0.5, 0.9] {
        for w in [16usize, 256, 4096] {
            let pattern = MaskPattern::Random { density, seed: 42 };
            let cfg = ExpConfig::new(&shape, &grid, w, pattern);
            let mut m1 = PackOptions::new(PackScheme::CompactStorage);
            m1.scan_method = ScanMethod::UntilCollected;
            let mut m2 = m1;
            m2.scan_method = ScanMethod::WholeSlice;
            t.row(vec![
                format!("{:.0}%", density * 100.0),
                w.to_string(),
                ms(time_pack(&cfg, &m1).local_ms()),
                ms(time_pack(&cfg, &m2).local_ms()),
            ]);
        }
    }
    t.print();
    println!("(expected: method 1 <= method 2, larger gap at low density)");

    println!("\nAblation 2: many-to-many schedule (CMS, density 50%, msec / words / startups)");
    let mut t = Table::new(vec![
        "W",
        "linperm ms",
        "naive ms",
        "linperm words",
        "naive words",
    ]);
    for w in [16usize, 256, 4096] {
        let cfg = ExpConfig::new(
            &shape,
            &grid,
            w,
            MaskPattern::Random {
                density: 0.5,
                seed: 42,
            },
        );
        let mut lin = PackOptions::new(PackScheme::CompactMessage);
        lin.schedule = A2aSchedule::LinearPermutation;
        let mut naive = lin;
        naive.schedule = A2aSchedule::NaivePush;
        let ml = time_pack(&cfg, &lin);
        let mn = time_pack(&cfg, &naive);
        t.row(vec![
            w.to_string(),
            ms(ml.m2m_ms()),
            ms(mn.m2m_ms()),
            ml.words.to_string(),
            mn.words.to_string(),
        ]);
    }
    t.print();
    println!(
        "(expected: identical volume; near-identical time — the two-level model is \
         contention-free by assumption, which is where the schedules would differ)"
    );

    println!("\nAblation 3: result-vector block size W' (CMS vs CSS total, density 90%, W=4096)");
    let mut t = Table::new(vec!["W'", "CMS ms", "CSS ms", "CMS words", "CSS words"]);
    let cfg = ExpConfig::new(
        &shape,
        &grid,
        4096,
        MaskPattern::Random {
            density: 0.9,
            seed: 42,
        },
    );
    for w_prime in [1usize, 4, 16, 64, 256, 2048] {
        let mut cms = PackOptions::new(PackScheme::CompactMessage);
        cms.result_block_size = Some(w_prime);
        let mut css = PackOptions::new(PackScheme::CompactStorage);
        css.result_block_size = Some(w_prime);
        let mc = time_pack(&cfg, &cms);
        let ms_ = time_pack(&cfg, &css);
        t.row(vec![
            w_prime.to_string(),
            ms(mc.total_ms()),
            ms(ms_.total_ms()),
            mc.words.to_string(),
            ms_.words.to_string(),
        ]);
    }
    t.print();
    println!(
        "(expected: CMS volume approaches 3x values at W'=1 — every segment holds one \
         element — and approaches 1x values as W' grows; CSS volume is flat at 2x)"
    );

    println!(
        "\nAblation 4: preliminary redistribution for UNPACK (Section 6.3: \"not a \
         feasible option\")"
    );
    let mut t = Table::new(vec!["Density", "plain CSS ms", "redistributed ms"]);
    for density in [0.1, 0.5, 0.9] {
        let cfg = ExpConfig::new(
            &shape,
            &grid,
            1, // cyclic: the case that would benefit most
            MaskPattern::Random { density, seed: 42 },
        );
        let opts = UnpackOptions::new(UnpackScheme::CompactStorage);
        let plain = time_unpack(&cfg, &opts);
        let redist = time_unpack_redist(&cfg, &opts);
        t.row(vec![
            format!("{:.0}%", density * 100.0),
            ms(plain.total_ms()),
            ms(redist.total_ms()),
        ]);
    }
    t.print();
    println!(
        "(expected: the two forward moves (M, F) plus the backward move of the result \
         outweigh the ranking savings — the paper's reason for ruling this out)"
    );

    println!("\nAblation 5: sparse all-to-many — direct vs two-phase (row-column) schedule");
    println!("(P = 64, every processor sends one m-word message to every other)");
    let mut t = Table::new(vec![
        "msg words",
        "direct ms",
        "two-phase ms",
        "direct startups",
        "two-phase startups",
    ]);
    for m in [1usize, 4, 16, 64, 256, 1024] {
        let run = |two_phase: bool| {
            use hpf_machine::collectives::{alltoallv, alltoallv_two_phase};
            use hpf_machine::{CostModel, Machine, ProcGrid};
            let p = 64usize;
            let machine = Machine::new(ProcGrid::line(p), CostModel::cm5());
            let out = machine.run(move |proc| {
                let g = proc.world();
                let sends: Vec<Vec<i32>> = (0..p).map(|j| vec![j as i32; m]).collect();
                if two_phase {
                    alltoallv_two_phase(proc, &g, sends, A2aSchedule::LinearPermutation);
                } else {
                    alltoallv(proc, &g, sends, A2aSchedule::LinearPermutation);
                }
            });
            (out.max_time_ms(), out.total_startups())
        };
        let (td, sd) = run(false);
        let (t2, s2) = run(true);
        t.row(vec![
            m.to_string(),
            ms(td),
            ms(t2),
            sd.to_string(),
            s2.to_string(),
        ]);
    }
    t.print();
    println!(
        "(expected: two-phase wins while messages are start-up bound — it pays ~2x \
         volume for ~sqrt(P) start-ups — and loses once mu*m dominates tau)"
    );
}
