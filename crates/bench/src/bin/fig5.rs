//! Figure 5 — total execution time (msec) for the two UNPACK schemes as a
//! function of block size, at several mask densities.
//!
//! UNPACK's redistribution is a READ: two communication stages
//! (request + reply), so its many-to-many time runs up to twice PACK's
//! (Section 4.2). CSS compresses the request stage to (base, count) runs.

use hpf_bench::{block_sizes, ms, paper_masks, time_unpack, unpack_scheme_opts, ExpConfig, Table};

fn run_panel(title: &str, shape: &[usize], grid: &[usize], seed: u64) {
    let masks = paper_masks(shape.len(), seed);
    for mask in [masks[0], masks[2], masks[4], masks[5]] {
        println!("\n{title}, mask {}:", mask.label());
        let mut t = Table::new(vec![
            "Block Size",
            "SSS",
            "CSS",
            "CSS local",
            "CSS prs",
            "CSS m2m",
        ]);
        for w in block_sizes(shape, grid) {
            let cfg = ExpConfig::new(shape, grid, w, mask);
            let mut row = vec![w.to_string()];
            let mut css_detail = (0.0, 0.0, 0.0);
            for (scheme, opts) in unpack_scheme_opts() {
                let m = time_unpack(&cfg, &opts);
                row.push(ms(m.total_ms()));
                if scheme == hpf_core::UnpackScheme::CompactStorage {
                    css_detail = (m.local_ms(), m.prs_ms(), m.m2m_ms());
                }
            }
            row.push(ms(css_detail.0));
            row.push(ms(css_detail.1));
            row.push(ms(css_detail.2));
            t.row(row);
        }
        t.print();
    }
}

fn main() {
    println!("Figure 5: total execution time (msec) for two schemes in UNPACK");
    println!("(SSS: simple storage, CSS: compact storage; input vector block-distributed)");

    run_panel("1-D, N = 65536, P = 16", &[65536], &[16], 42);
    run_panel("2-D, 512 x 512, P = 4x4", &[512, 512], &[4, 4], 42);
}
