//! Communication-balance study: where does the redistribution traffic go?
//!
//! Quantifies the paper's Section 7 observation: "when an input array is
//! distributed in block, each processor will send most parts of the message
//! to itself" (for random masks with a block result vector) — so the
//! *remote* volume collapses at block distribution — "if the elements to be
//! packed are not randomly distributed, that will not happen", which the
//! structured mask demonstrates.

use hpf_bench::{block_sizes, Table};
use hpf_core::{pack, MaskPattern, PackOptions, PackScheme};
use hpf_distarray::{local_from_fn, ArrayDesc, Dist};
use hpf_machine::{CostModel, Machine, ProcGrid};

fn measure(n: usize, p: usize, w: usize, pattern: MaskPattern) -> (u64, f64, String) {
    let grid = ProcGrid::line(p);
    let desc = ArrayDesc::new(&[n], &grid, &[Dist::BlockCyclic(w)]).unwrap();
    let machine = Machine::new(grid, CostModel::cm5());
    let d = &desc;
    let out = machine.run(move |proc| {
        let a = local_from_fn(d, proc.id(), |g| g[0] as i32);
        let m = local_from_fn(d, proc.id(), |g| pattern.value(g, &[n]));
        pack(
            proc,
            d,
            &a,
            &m,
            &PackOptions::new(PackScheme::CompactMessage),
        )
        .unwrap();
    });
    let words = out.total_words_sent();
    let imbalance = out.send_imbalance();
    let heaviest = out
        .heaviest_flow()
        .map(|(s, t, w)| format!("{s}->{t}:{w}"))
        .unwrap_or_else(|| "-".into());
    (words, imbalance, heaviest)
}

fn main() {
    let (n, p) = (65536usize, 16usize);
    println!("Communication balance of PACK/CMS, N = {n}, P = {p}");
    println!("(remote words only — self-messages are free and excluded)\n");

    for pattern in [
        MaskPattern::Random {
            density: 0.5,
            seed: 42,
        },
        MaskPattern::FirstHalf,
    ] {
        println!("mask {}:", pattern.label());
        let mut t = Table::new(vec![
            "Block Size",
            "remote words",
            "imbalance",
            "heaviest flow",
        ]);
        for w in block_sizes(&[n], &[p]) {
            let (words, imb, heavy) = measure(n, p, w, pattern);
            t.row(vec![
                w.to_string(),
                words.to_string(),
                format!("{imb:.2}"),
                heavy,
            ]);
        }
        t.print();
        println!();
    }
    println!(
        "(expected: for the random mask, remote volume collapses at full block \
         distribution — ranks align with owners; for the structured first-half mask \
         it does not, and the send imbalance spikes instead: only the first half of \
         the processors hold selected elements)"
    );
}
