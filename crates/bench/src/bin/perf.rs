//! Machine-readable perf report: the paper's headline workloads (Table I /
//! Table II / Figure 5 configurations) plus the four application kernels,
//! measured on the simulated CM-5 cost model and emitted as versioned JSON
//! for regression tracking across revisions.
//!
//! Every entry reports the simulated per-category stage times (the six
//! [`Category`] labels), total simulated time, traffic volume (words and
//! start-ups), reliable-transport overhead counters, the harness
//! wall-clock time of the run, a **critical-path summary** extracted from
//! the traced run, and (for the plain 1-D PACK/UNPACK workloads) the
//! **Section 6.4 conformance** verdict of measured local-operation
//! counters against the paper's closed-form model.
//!
//! Usage:
//! ```sh
//! cargo run -p hpf-bench --release --bin perf -- \
//!     [--smoke] [--filter GROUP] [--out FILE] [--critpath-out FILE] \
//!     [--reps N] [--warmup M] [--folded-out FILE]
//! # default output: results/BENCH_<rev>.json (rev = short git hash)
//! # --filter runs only the named workload group (pack, redist, unpack,
//! #   plan_reuse, exec_hot, recovery, apps, memory, scale) and records
//! #   the filter in the report
//! ```
//!
//! Wall-clock is measured statistically: every workload runs `--warmup`
//! untimed passes then `--reps` timed ones (full default 5/1), and the
//! report's per-workload `wall` object carries the median, the MAD, and
//! the coefficient of variation — the noise model `perfdiff --wall`
//! gates against. `--smoke` forces `reps=1` and marks `cv` null
//! (unmeasured, not "perfectly stable"). Simulated metrics are untouched
//! by repetition: the simulation is deterministic, so only the *last*
//! rep's simulated measurement is reported and it is bit-identical to
//! every other rep's.
//!
//! The binary installs the counting global allocator, so the `exec_hot`
//! workloads report *real* per-thread heap allocation counts for the
//! steady-state execute loop — `validate_bench.py` gates them at zero.
//! Wall-span profiles come from a *separate* profiled pass of the same
//! plan-once/execute-N program (profiling is off during the counted
//! pass), aggregated into a ranked hotspot report on stdout and, with
//! `--folded-out`, exported as flamegraph-compatible folded stacks.
//!
//! Exits nonzero if any conformance check fails — the implementation
//! drifted from the paper's cost model — or if a `memory` workload's
//! measured peak escapes its predicted bound (DESIGN.md §13).

use std::fmt::Write as _;
use std::time::Instant;

use hpf_analysis::{
    mad, median, memcpy_roof_gbps, predict_pack_peak, predict_pack_redist_peak,
    predict_unpack_peak, Conformance, CritPath, HotspotReport, PeakMemory,
};
use hpf_apps::{gather_global, run_compaction, sample_sort, SparseMatrix};
use hpf_bench::{
    pack_plan_ops, profile_pack_hot, profile_unpack_hot, run_pack, run_pack_mem, run_pack_redist,
    run_pack_redist_mem, run_unpack, run_unpack_mem, time_pack_hot, time_pack_reuse,
    time_unpack_hot, time_unpack_reuse, unpack_plan_ops, ExpConfig, HotMeasurement, Measurement,
    ReuseMeasurement,
};
use hpf_core::{
    plan_pack, plan_unpack, MaskPattern, MaskStats, PackOptions, PackScheme, RedistScheme,
    UnpackOptions, UnpackScheme,
};
use hpf_distarray::{local_from_fn, ArrayDesc, DimLayout, Dist};
use hpf_machine::alloc_counter::CountingAllocator;
use hpf_machine::collectives::A2aSchedule;
use hpf_machine::{
    folded_stacks, tags, Category, CostModel, FaultPlan, Machine, ProcGrid, RecoveryStats,
    RunOutput,
};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Schema version of the emitted JSON (bump on breaking field changes;
/// `scripts/bench-schema.json` must match).
const SCHEMA_VERSION: u32 = 9;

/// Timed wall-clock repetitions per workload in full mode (`--reps`
/// overrides; `--smoke` forces 1). Seven reps keep the median/MAD
/// estimate stable against a single preemption-hit rep, which five
/// occasionally let past the validator's cv gate.
const DEFAULT_REPS: usize = 7;

/// Untimed warm-up passes per workload in full mode (`--warmup`
/// overrides; `--smoke` forces 0).
const DEFAULT_WARMUP: usize = 2;

/// Executes per plan in the `plan_reuse` workloads (plan once, execute N).
const REUSE_EXECUTES: usize = 16;

/// Timed steady-state executes per `exec_hot` workload (after warm-up).
const HOT_EXECUTES: usize = 16;

/// The workload groups `--filter` accepts, in report order.
const GROUPS: [&str; 9] = [
    "pack",
    "redist",
    "unpack",
    "plan_reuse",
    "exec_hot",
    "recovery",
    "apps",
    "memory",
    "scale",
];

/// Conformance tolerance: the Section 6.4 formulas are exact, so any
/// drift at all is a model violation.
const CONFORMANCE_TOL: f64 = 0.0;

struct Entry {
    name: String,
    group: &'static str,
    shape: Vec<usize>,
    grid: Vec<usize>,
    w: Option<usize>,
    density: Option<f64>,
    m: Measurement,
    wall: WallStats,
    critpath: Option<CritPath>,
    conformance: Option<Conformance>,
    reuse: Option<ReuseMeasurement>,
    hot: Option<HotMeasurement>,
    recovery: Option<RecoveryReport>,
    memory: Option<PeakMemory>,
    scale: Option<ScaleReport>,
}

/// Scale-sweep verdict for one machine shape: the same program run under
/// a single-permit worker pool and under `workers_high` permits, compared
/// bit-exactly (results, per-processor simulated clocks, communication
/// matrix), plus the wall-side scheduling cost of one simulated processor
/// step (local op or message start-up) — the metric that says what a
/// virtual processor costs the host as P grows.
struct ScaleReport {
    workers_low: usize,
    workers_high: usize,
    identical: bool,
    ns_per_proc_step: f64,
}

/// Wall-clock samples of one workload's repeated measurement, summarized
/// robustly (median/MAD) so one descheduled rep cannot skew the report.
struct WallStats {
    reps: usize,
    warmup: usize,
    samples_ms: Vec<f64>,
}

impl WallStats {
    fn median_ms(&self) -> f64 {
        median(&self.samples_ms)
    }

    fn mad_ms(&self) -> f64 {
        mad(&self.samples_ms)
    }

    /// Coefficient of variation (MAD / median). `None` when only one rep
    /// ran — noise was *unmeasured*, which the report must distinguish
    /// from "measured and perfectly stable" (0.0).
    fn cv(&self) -> Option<f64> {
        let med = self.median_ms();
        (self.reps > 1 && med > 0.0).then(|| self.mad_ms() / med)
    }
}

/// A measured batch whose cv lands above this is considered polluted by
/// host noise (a preemption burst during the rep window) and re-measured;
/// sits under the validator's 0.15 gate so an accepted batch has margin.
const RETRY_CV: f64 = 0.12;

/// Measurement batches attempted before accepting the quietest one.
const MAX_BATCHES: usize = 3;

/// Run `f` `warmup` untimed passes then `reps` timed ones; returns the
/// last rep's value (the simulation is deterministic, so every rep's
/// simulated outputs are identical) and the wall samples.
///
/// Noise rejection: when multiple reps run and the batch's cv exceeds
/// [`RETRY_CV`], the whole batch is re-measured (up to [`MAX_BATCHES`]
/// attempts) and the quietest batch is kept — a cv that high means the
/// rep window caught a scheduler burst, not that the workload got slower,
/// and re-running is the honest correction.
fn timed<T>(reps: usize, warmup: usize, mut f: impl FnMut() -> T) -> (T, WallStats) {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut best: Option<(T, WallStats)> = None;
    for _ in 0..MAX_BATCHES {
        let mut samples_ms = Vec::with_capacity(reps);
        let mut out = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let r = f();
            samples_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            out = Some(r);
        }
        let stats = WallStats {
            reps,
            warmup,
            samples_ms,
        };
        let cv = stats.cv();
        let quieter = match &best {
            Some((_, b)) => cv < b.cv(),
            None => true,
        };
        if quieter {
            best = Some((out.expect("reps >= 1"), stats));
        }
        match best.as_ref().and_then(|(_, b)| b.cv()) {
            Some(c) if c > RETRY_CV => continue, // polluted batch; re-measure
            _ => break,                          // quiet enough, or unmeasured (reps == 1)
        }
    }
    best.expect("at least one batch ran")
}

/// Crash-recovery accounting for a `recovery` workload: the recovered run's
/// replay statistics plus its wall-clock cost relative to the fault-free
/// recoverable run of the same program.
struct RecoveryReport {
    stats: RecoveryStats,
    overhead_wall_ms: f64,
    clean_wall_ms: f64,
}

fn main() {
    let mut smoke = false;
    let mut filter: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut critpath_out: Option<String> = None;
    let mut folded_out: Option<String> = None;
    let mut reps_arg: Option<usize> = None;
    let mut warmup_arg: Option<usize> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--reps" => {
                let n = args.get(i + 1).and_then(|s| s.parse::<usize>().ok());
                reps_arg = Some(n.filter(|&n| n >= 1).unwrap_or_else(|| {
                    eprintln!("--reps requires an integer >= 1");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--warmup" => {
                warmup_arg = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse::<usize>().ok())
                        .unwrap_or_else(|| {
                            eprintln!("--warmup requires a non-negative integer");
                            std::process::exit(2);
                        }),
                );
                i += 2;
            }
            "--folded-out" => {
                folded_out = Some(args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--folded-out requires a path");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--filter" => {
                let g = args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--filter requires a group name ({})", GROUPS.join(", "));
                    std::process::exit(2);
                });
                if !GROUPS.contains(&g.as_str()) {
                    eprintln!("unknown group {g}; expected one of: {}", GROUPS.join(", "));
                    std::process::exit(2);
                }
                filter = Some(g);
                i += 2;
            }
            "--out" => {
                out_path = Some(args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--critpath-out" => {
                critpath_out = Some(args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--critpath-out requires a path");
                    std::process::exit(2);
                }));
                i += 2;
            }
            other => {
                eprintln!(
                    "unknown argument {other}; \
                     usage: perf [--smoke] [--filter GROUP] [--out FILE] [--critpath-out FILE] \
                     [--reps N] [--warmup M] [--folded-out FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    let want = |g: &str| filter.as_deref().is_none_or(|f| f == g);

    // Smoke explicitly pins reps=1 (cv comes out null: unmeasured, not
    // "perfectly stable") so CI smoke runs stay single-pass and cheap.
    let (reps, warmup) = if smoke {
        (1, 0)
    } else {
        (
            reps_arg.unwrap_or(DEFAULT_REPS),
            warmup_arg.unwrap_or(DEFAULT_WARMUP),
        )
    };

    let rev = git_rev();
    let out_path = out_path.unwrap_or_else(|| format!("results/BENCH_{rev}.json"));

    // Workload scale: the full sizes mirror the paper's Section 7 setup
    // (local size 1024 on 16 processors); smoke mode shrinks everything so
    // CI finishes in seconds.
    let (n1d, p1d, wide_w) = if smoke { (2048, 8, 8) } else { (16384, 16, 64) };
    let density = 0.5;
    let pattern = MaskPattern::Random { density, seed: 42 };

    let mut entries: Vec<Entry> = Vec::new();

    // Wall-span profiles of the `exec_hot` workloads, from the separate
    // profiled passes: `(workload name, elements, per-proc profiles)`.
    // Aggregated after the run into the ranked hotspot report and the
    // optional `--folded-out` flamegraph export.
    let mut hot_profiles: Vec<(String, usize, Vec<hpf_machine::WallProfile>)> = Vec::new();

    // ---- PACK schemes (Table I / Figures 3-4 workload) ------------------
    // Cyclic (W = 1, worst ranking overhead) and wide blocks for each of
    // SSS / CSS / CMS.
    if want("pack") {
        for w in [1usize, wide_w] {
            let cfg = ExpConfig::new(&[n1d], &[p1d], w, pattern);
            let stats = MaskStats::from_mask(pattern.global(&[n1d]).data(), p1d, w, None);
            for scheme in PackScheme::ALL {
                let label = match scheme {
                    PackScheme::Simple => "sss",
                    PackScheme::CompactStorage => "css",
                    PackScheme::CompactMessage => "cms",
                };
                let opts = PackOptions::new(scheme);
                let ((m, out), wall) = timed(reps, warmup, || run_pack(&cfg, &opts, true));
                // Phase-resolved conformance: planner ops measured alone, the
                // executor's are the full run's minus them (deterministic
                // simulation), each checked against its own split prediction.
                let plan_ops = pack_plan_ops(&cfg, &opts);
                let exec_ops = sub_ops(&out.cat_ops_per_proc(Category::LocalComp), &plan_ops);
                let (pred_plan, pred_exec) = stats.predict_pack_ops_split(scheme, opts.scan_method);
                let conformance = Conformance::evaluate_split(
                    &format!("pack.{label}"),
                    (&pred_plan, &pred_exec),
                    (&plan_ops, &exec_ops),
                    CONFORMANCE_TOL,
                );
                entries.push(Entry {
                    name: format!("pack.{label}.w{w}"),
                    group: "pack",
                    shape: cfg.shape.clone(),
                    grid: cfg.grid.clone(),
                    w: Some(w),
                    density: Some(density),
                    m,
                    wall,
                    critpath: Some(CritPath::from_run(&out)),
                    conformance: Some(conformance),
                    reuse: None,
                    hot: None,
                    recovery: None,
                    memory: None,
                    scale: None,
                });
            }
        }
    }

    // ---- Preliminary redistribution (Table II workload) -----------------
    // Cyclic input, the case redistribution exists for. No conformance:
    // the Section 6.4 formulas do not model the redistribution phase.
    if want("redist") {
        let cfg = ExpConfig::new(&[n1d], &[p1d], 1, pattern);
        for (scheme, label) in [
            (RedistScheme::SelectedData, "red1"),
            (RedistScheme::WholeArrays, "red2"),
        ] {
            let opts = PackOptions::default();
            let ((m, out), wall) =
                timed(reps, warmup, || run_pack_redist(&cfg, scheme, &opts, true));
            entries.push(Entry {
                name: format!("pack.{label}"),
                group: "redist",
                shape: cfg.shape.clone(),
                grid: cfg.grid.clone(),
                w: Some(1),
                density: Some(density),
                m,
                wall,
                critpath: Some(CritPath::from_run(&out)),
                conformance: None,
                reuse: None,
                hot: None,
                recovery: None,
                memory: None,
                scale: None,
            });
        }
    }

    // ---- UNPACK schemes (Figure 5 workload) -----------------------------
    if want("unpack") {
        for w in [1usize, wide_w] {
            let cfg = ExpConfig::new(&[n1d], &[p1d], w, pattern);
            let stats = MaskStats::from_mask(pattern.global(&[n1d]).data(), p1d, w, None);
            for scheme in UnpackScheme::ALL {
                let label = match scheme {
                    UnpackScheme::Simple => "sss",
                    UnpackScheme::CompactStorage => "css",
                };
                let opts = UnpackOptions::new(scheme);
                let ((m, out), wall) = timed(reps, warmup, || run_unpack(&cfg, &opts, false, true));
                let plan_ops = unpack_plan_ops(&cfg, &opts);
                let exec_ops = sub_ops(&out.cat_ops_per_proc(Category::LocalComp), &plan_ops);
                let (pred_plan, pred_exec) = stats.predict_unpack_ops_split(scheme);
                let conformance = Conformance::evaluate_split(
                    &format!("unpack.{label}"),
                    (&pred_plan, &pred_exec),
                    (&plan_ops, &exec_ops),
                    CONFORMANCE_TOL,
                );
                entries.push(Entry {
                    name: format!("unpack.{label}.w{w}"),
                    group: "unpack",
                    shape: cfg.shape.clone(),
                    grid: cfg.grid.clone(),
                    w: Some(w),
                    density: Some(density),
                    m,
                    wall,
                    critpath: Some(CritPath::from_run(&out)),
                    conformance: Some(conformance),
                    reuse: None,
                    hot: None,
                    recovery: None,
                    memory: None,
                    scale: None,
                });
            }
        }
    }

    // ---- Plan reuse (plan once, execute N — the planner/executor split's
    // payoff, amortized) --------------------------------------------------
    if want("plan_reuse") {
        for w in [1usize, wide_w] {
            let cfg = ExpConfig::new(&[n1d], &[p1d], w, pattern);
            let mut reuse_runs: Vec<(String, ReuseMeasurement, WallStats)> = Vec::new();
            for scheme in PackScheme::ALL {
                let label = match scheme {
                    PackScheme::Simple => "sss",
                    PackScheme::CompactStorage => "css",
                    PackScheme::CompactMessage => "cms",
                };
                let (r, wall) = timed(reps, warmup, || {
                    time_pack_reuse(&cfg, &PackOptions::new(scheme), REUSE_EXECUTES)
                });
                reuse_runs.push((format!("plan_reuse.pack.{label}.w{w}"), r, wall));
            }
            for scheme in UnpackScheme::ALL {
                let label = match scheme {
                    UnpackScheme::Simple => "sss",
                    UnpackScheme::CompactStorage => "css",
                };
                let (r, wall) = timed(reps, warmup, || {
                    time_unpack_reuse(&cfg, &UnpackOptions::new(scheme), REUSE_EXECUTES)
                });
                reuse_runs.push((format!("plan_reuse.unpack.{label}.w{w}"), r, wall));
            }
            for (name, r, wall) in reuse_runs {
                entries.push(Entry {
                    name,
                    group: "plan_reuse",
                    shape: cfg.shape.clone(),
                    grid: cfg.grid.clone(),
                    w: Some(w),
                    density: Some(density),
                    m: r.cached,
                    wall,
                    critpath: None,
                    conformance: None,
                    reuse: Some(r),
                    hot: None,
                    recovery: None,
                    memory: None,
                    scale: None,
                });
            }
        }
    }

    // ---- Steady-state execute hot path (real time + real allocations) ---
    // Plan once, execute N: wall-clock time per element and heap
    // allocations per execute, measured under the counting global
    // allocator. Steady-state allocations must be zero — the pooled
    // buffers absorb the whole gather → exchange → decode loop.
    if want("exec_hot") {
        // Random-mask workloads at cyclic and wide-block widths, plus a
        // dense (contiguous-mask) wide-block variant: the `.dense` rows
        // are where the copy-program lowering must reach its bulk-copy
        // fraction (gated >= 0.9 by validate_bench.py) and its memcpy-rate
        // ns/element.
        let hot_variants = [
            (1usize, pattern, ""),
            (wide_w, pattern, ""),
            (wide_w, MaskPattern::FirstHalf, ".dense"),
        ];
        for (w, hot_pattern, suffix) in hot_variants {
            let cfg = ExpConfig::new(&[n1d], &[p1d], w, hot_pattern);
            for scheme in PackScheme::ALL {
                let label = match scheme {
                    PackScheme::Simple => "sss",
                    PackScheme::CompactStorage => "css",
                    PackScheme::CompactMessage => "cms",
                };
                let name = format!("exec_hot.pack.{label}.w{w}{suffix}");
                let ((hot, m), wall) = timed(reps, warmup, || {
                    time_pack_hot(&cfg, &PackOptions::new(scheme), HOT_EXECUTES)
                });
                // Wall-span attribution comes from its own profiled pass:
                // the counted pass above must stay profiler-free so its
                // zero-allocation and timing measurements are undisturbed.
                let profiles = profile_pack_hot(&cfg, &PackOptions::new(scheme), HOT_EXECUTES);
                hot_profiles.push((name.clone(), hot.elements, profiles));
                entries.push(Entry {
                    name,
                    group: "exec_hot",
                    shape: cfg.shape.clone(),
                    grid: cfg.grid.clone(),
                    w: Some(w),
                    density: Some(density),
                    m,
                    wall,
                    critpath: None,
                    conformance: None,
                    reuse: None,
                    hot: Some(hot),
                    recovery: None,
                    memory: None,
                    scale: None,
                });
            }
            for scheme in UnpackScheme::ALL {
                let label = match scheme {
                    UnpackScheme::Simple => "sss",
                    UnpackScheme::CompactStorage => "css",
                };
                let name = format!("exec_hot.unpack.{label}.w{w}{suffix}");
                let ((hot, m), wall) = timed(reps, warmup, || {
                    time_unpack_hot(&cfg, &UnpackOptions::new(scheme), HOT_EXECUTES)
                });
                let profiles = profile_unpack_hot(&cfg, &UnpackOptions::new(scheme), HOT_EXECUTES);
                hot_profiles.push((name.clone(), hot.elements, profiles));
                entries.push(Entry {
                    name,
                    group: "exec_hot",
                    shape: cfg.shape.clone(),
                    grid: cfg.grid.clone(),
                    w: Some(w),
                    density: Some(density),
                    m,
                    wall,
                    critpath: None,
                    conformance: None,
                    reuse: None,
                    hot: Some(hot),
                    recovery: None,
                    memory: None,
                    scale: None,
                });
            }
        }
    }

    // ---- Crash recovery (epoch checkpointing + deterministic replay) ----
    // Each workload runs an epoch-structured program through the
    // recoverable runner twice: fault-free, and with a crash scheduled
    // inside the second epoch so the respawn restores the epoch-0
    // checkpoint and replays the peers' logged frames. Results and
    // simulated clocks must match bit-exactly; the report carries the
    // replay accounting and the wall-clock price of recovering.
    if want("recovery") {
        for (name, kind) in [
            ("recovery.pack.sss", RecKind::Pack(PackScheme::Simple)),
            (
                "recovery.pack.cms",
                RecKind::Pack(PackScheme::CompactMessage),
            ),
            ("recovery.unpack.sss", RecKind::Unpack(UnpackScheme::Simple)),
        ] {
            entries.push(recovery_workload(
                name, n1d, p1d, pattern, kind, reps, warmup,
            ));
        }
    }

    // ---- Application kernels --------------------------------------------
    if want("apps") {
        entries.push(app_compaction(smoke, reps, warmup));
        entries.push(app_sort(smoke, reps, warmup));
        entries.push(app_spmv(smoke, reps, warmup));
        entries.push(app_gather(smoke, reps, warmup));
    }

    // ---- Peak memory (DESIGN.md §13) ------------------------------------
    // Traced runs with the workload arrays registered against the `user`
    // account; the measured machine-wide high-water mark is gated against
    // the closed-form predicted peak (upper bound, over-estimation
    // bounded by MEM_RATIO_GATE). Simulated times match the untracked
    // runs bit-exactly — memory accounting is never clock-charged.
    if want("memory") {
        let mask = pattern.global(&[n1d]);
        let cfg = ExpConfig::new(&[n1d], &[p1d], wide_w, pattern);
        let stats = MaskStats::from_mask(mask.data(), p1d, wide_w, None);
        // Constant per-proc mailbox-ring pre-reserve, asserted byte-exactly
        // (it is excluded from the workload peak the ratio gate covers).
        let ring = hpf_machine::ring_bytes(hpf_machine::default_capacity(p1d));
        for scheme in PackScheme::ALL {
            let label = match scheme {
                PackScheme::Simple => "sss",
                PackScheme::CompactStorage => "css",
                PackScheme::CompactMessage => "cms",
            };
            let ((m, out), wall) = timed(reps, warmup, || {
                run_pack_mem(&cfg, &PackOptions::new(scheme))
            });
            let predicted = predict_pack_peak(&stats, scheme);
            let peak =
                PeakMemory::evaluate(&format!("pack.{label}"), &predicted, &out.events, ring);
            entries.push(Entry {
                name: format!("memory.pack.{label}.w{wide_w}"),
                group: "memory",
                shape: cfg.shape.clone(),
                grid: cfg.grid.clone(),
                w: Some(wide_w),
                density: Some(density),
                m,
                wall,
                critpath: None,
                conformance: None,
                reuse: None,
                hot: None,
                recovery: None,
                memory: Some(peak),
                scale: None,
            });
        }
        for scheme in UnpackScheme::ALL {
            let label = match scheme {
                UnpackScheme::Simple => "sss",
                UnpackScheme::CompactStorage => "css",
            };
            let ((m, out), wall) = timed(reps, warmup, || {
                run_unpack_mem(&cfg, &UnpackOptions::new(scheme))
            });
            let predicted = predict_unpack_peak(&stats, scheme);
            let peak =
                PeakMemory::evaluate(&format!("unpack.{label}"), &predicted, &out.events, ring);
            entries.push(Entry {
                name: format!("memory.unpack.{label}.w{wide_w}"),
                group: "memory",
                shape: cfg.shape.clone(),
                grid: cfg.grid.clone(),
                w: Some(wide_w),
                density: Some(density),
                m,
                wall,
                critpath: None,
                conformance: None,
                reuse: None,
                hot: None,
                recovery: None,
                memory: Some(peak),
                scale: None,
            });
        }
        // Preliminary redistribution on cyclic input — Red.2's peak
        // footprint is the whole point of tracking this group.
        let cfg_cyc = ExpConfig::new(&[n1d], &[p1d], 1, pattern);
        let src = MaskStats::from_mask(mask.data(), p1d, 1, None);
        let blk = MaskStats::from_mask(mask.data(), p1d, n1d / p1d, None);
        for (scheme, label) in [
            (RedistScheme::SelectedData, "red1"),
            (RedistScheme::WholeArrays, "red2"),
        ] {
            let opts = PackOptions::default();
            let ((m, out), wall) = timed(reps, warmup, || {
                run_pack_redist_mem(&cfg_cyc, scheme, &opts)
            });
            let predicted = predict_pack_redist_peak(&src, &blk, opts.scheme, scheme);
            let peak =
                PeakMemory::evaluate(&format!("pack.{label}"), &predicted, &out.events, ring);
            entries.push(Entry {
                name: format!("memory.pack.{label}"),
                group: "memory",
                shape: cfg_cyc.shape.clone(),
                grid: cfg_cyc.grid.clone(),
                w: Some(1),
                density: Some(density),
                m,
                wall,
                critpath: None,
                conformance: None,
                reuse: None,
                hot: None,
                recovery: None,
                memory: Some(peak),
                scale: None,
            });
        }
    }

    // ---- Scale sweep (DESIGN.md §15: worker-pool scheduler) -------------
    // A Table-I-style masked PACK → UNPACK roundtrip swept to machine
    // shapes the paper could never run. Every entry runs the identical
    // program under worker-pool sizes 1 and max(2, ncores) and reports the
    // bit-identity verdict — the pool-size-invariance gate — plus the
    // wall cost per simulated proc step. The local extent is fixed, so P
    // itself is the swept variable.
    if want("scale") {
        let ps: &[usize] = if smoke {
            &[64, 1024, 4096]
        } else {
            &[64, 256, 1024, 4096]
        };
        for &p in ps {
            // The dense plan-time exchanges make the big shapes
            // scheduler-handoff-bound (Θ(P²) frames; minutes of wall per
            // run at P=4096 on one core): cap repetitions there so the
            // sweep stays affordable. The simulated metrics are
            // deterministic regardless of reps, and validate_bench.py
            // knows large-P scale entries may be single-rep.
            let (s_reps, s_warmup) = if p >= 2048 {
                (1, 0)
            } else if p >= 1024 {
                (reps.min(3), warmup.min(1))
            } else {
                (reps, warmup)
            };
            entries.push(scale_workload(p, s_reps, s_warmup));
        }
    }

    let json = render_json(&rev, smoke, filter.as_deref(), &entries);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write perf report");

    if let Some(path) = &critpath_out {
        let mut txt = String::new();
        for e in &entries {
            if let Some(cp) = &e.critpath {
                txt.push_str(&cp.render(&e.name));
                txt.push('\n');
            }
        }
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create critpath output directory");
            }
        }
        std::fs::write(path, &txt).expect("write critical-path report");
        println!("critical-path report -> {path}");
    }

    // Human summary on stdout, one line per workload.
    println!("perf report ({} workloads) -> {out_path}", entries.len());
    for e in &entries {
        println!(
            "  {:<18} total {:>9.3} ms  local {:>9.3}  prs {:>8.3}  m2m {:>8.3}  \
             words {:>9}  wall {:>7.1} ms",
            e.name,
            e.m.total_ms(),
            e.m.local_ms(),
            e.m.prs_ms(),
            e.m.m2m_ms(),
            e.m.words,
            e.wall.median_ms(),
        );
    }
    for e in &entries {
        if let Some(h) = &e.hot {
            println!(
                "  {:<26} {:>10.0} ns/exec  {:>7.2} ns/elem  allocs/exec {:>5.1}  \
                 bytes/exec {:>7.0}  clone_words {}",
                e.name,
                h.wall_ns_per_exec,
                h.ns_per_element(),
                h.allocs_per_execute,
                h.alloc_bytes_per_execute,
                h.clone_words,
            );
        }
    }

    // Ranked hotspot attribution from the profiled exec_hot passes: the
    // combined report is the kernel-tuning worklist; the per-workload
    // lines say how concentrated each workload's wall time is.
    if !hot_profiles.is_empty() {
        let roof = memcpy_roof_gbps();
        let all: Vec<hpf_machine::WallProfile> = hot_profiles
            .iter()
            .flat_map(|(_, _, p)| p.iter().cloned())
            .collect();
        let combined = HotspotReport::from_profiles(&all);
        print!("{}", combined.render("exec_hot (all workloads)", 0, roof));
        for (name, _, profiles) in &hot_profiles {
            let r = HotspotReport::from_profiles(profiles);
            let top = r.hotspots.first();
            println!(
                "  {:<26} wall {:>9.3} ms  top {} ({:.1}%)  top-3 cover {:.1}%",
                name,
                r.total_ns as f64 / 1e6,
                top.map(|h| h.stage.as_str()).unwrap_or("-"),
                top.map(|h| r.share(h) * 100.0).unwrap_or(0.0),
                r.top_share(3) * 100.0,
            );
        }
    }
    if let Some(path) = &folded_out {
        // Folded stacks, one export across every profiled workload, each
        // stack prefixed with its workload name (flamegraph.pl/inferno
        // merge identical lines, so the prefix keeps workloads separate).
        let mut txt = String::new();
        for (name, _, profiles) in &hot_profiles {
            for line in folded_stacks(profiles).lines() {
                txt.push_str(name);
                txt.push(';');
                txt.push_str(line);
                txt.push('\n');
            }
        }
        if hot_profiles.is_empty() {
            eprintln!(
                "--folded-out: no exec_hot workloads ran (filtered out?); writing empty file"
            );
        }
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create folded output directory");
            }
        }
        std::fs::write(path, &txt).expect("write folded stacks");
        println!("folded stacks -> {path}");
    }

    for e in &entries {
        if let Some(r) = &e.reuse {
            println!(
                "  {:<26} fresh {:>8.3} ms/exec  cached {:>8.3} ms/exec  ratio {:.2}  \
                 hits {}  misses {}",
                e.name,
                r.fresh_per_exec_ms(),
                r.cached_per_exec_ms(),
                r.reuse_ratio(),
                r.cache_hits,
                r.cache_misses,
            );
        }
    }

    for e in &entries {
        if let Some(r) = &e.recovery {
            println!(
                "  {:<26} epochs {:>3}  replays {}  frames {:>3}  \
                 log-high-water {:>6} words  replay {:>6.2} ms  \
                 wall overhead {:>6.1} ms",
                e.name,
                r.stats.epochs,
                r.stats.replays,
                r.stats.replayed_frames,
                r.stats.log_high_water_words,
                r.stats.replay_ms,
                r.overhead_wall_ms,
            );
        }
    }

    for e in &entries {
        if let Some(p) = &e.memory {
            println!("  {}", p.summary());
        }
    }

    for e in &entries {
        if let Some(sc) = &e.scale {
            println!(
                "  {:<26} workers {}→{}  identical {}  {:>8.1} ns/proc-step  \
                 wall {:>9.1} ms",
                e.name,
                sc.workers_low,
                sc.workers_high,
                sc.identical,
                sc.ns_per_proc_step,
                e.wall.median_ms(),
            );
        }
    }

    // Conformance gate: any drift from the Section 6.4 model fails the run.
    // The memory gate is its twin: the predicted peak must bound the
    // measured one without over-estimating past MEM_RATIO_GATE. The scale
    // gate is the scheduler's: pool sizes must be invisible bit-for-bit.
    let mut drifted = false;
    for e in &entries {
        if let Some(c) = &e.conformance {
            if !c.pass {
                eprintln!("conformance FAIL: {}", c.summary());
                drifted = true;
            }
        }
        if let Some(p) = &e.memory {
            if !p.pass {
                eprintln!("memory FAIL: {}", p.summary());
                drifted = true;
            }
        }
        if let Some(sc) = &e.scale {
            if !sc.identical {
                eprintln!(
                    "scale FAIL: {} diverged between worker-pool sizes {} and {}",
                    e.name, sc.workers_low, sc.workers_high
                );
                drifted = true;
            }
        }
    }
    if drifted {
        std::process::exit(1);
    }
}

/// Which collective a `recovery` workload crashes and recovers.
enum RecKind {
    Pack(PackScheme),
    Unpack(UnpackScheme),
}

/// One crash-recovery workload: a two-epoch program (a one-message ring
/// warm-up establishing the checkpoint, then the measured collective) run
/// fault-free and with processor 1 crashing at its fourth program-level
/// send — the first send is the warm-up message, so the crash always lands
/// inside the measured epoch, deep enough that peers have logged frames to
/// replay, and the respawn exercises snapshot restore plus frame replay.
/// The entry's simulated measurement comes from the crashed run;
/// bit-identity with the fault-free run is asserted here, so a recovery
/// bug fails the perf run itself.
fn recovery_workload(
    name: &str,
    n: usize,
    p: usize,
    pattern: MaskPattern,
    kind: RecKind,
    reps: usize,
    warmup: usize,
) -> Entry {
    let w = 4usize;
    let grid = ProcGrid::line(p);
    let desc = ArrayDesc::new(&[n], &grid, &[Dist::BlockCyclic(w)]).unwrap();
    let size = pattern.global(&[n]).data().iter().filter(|&&b| b).count();
    let v_layout = DimLayout::new_general(size.max(1), p, size.max(1).div_ceil(p)).unwrap();
    let (d, vl, pat, kind) = (&desc, &v_layout, &pattern, &kind);
    let program = move |proc: &mut hpf_machine::Proc<'_>| {
        // The checkpointed state threads through every epoch (the epoch-0
        // snapshot is restored into the resume epoch's state argument, so
        // all epochs must share one state value).
        let mut st: (i32, Vec<i32>) = (0, Vec::new());
        // Epoch 0: a one-send ring exchange, so a checkpoint exists before
        // the measured collective.
        proc.epoch(&mut st, |p, st| {
            let np = p.nprocs();
            p.send((p.id() + 1) % np, tags::USER, vec![p.id() as i32]);
            let got: Vec<i32> = p.recv((p.id() + np - 1) % np, tags::USER);
            st.0 = got[0];
        });
        // Epoch 1: the measured PACK or UNPACK — the crash fires in here.
        proc.epoch(&mut st, |proc, st| {
            let m = pat.local(d, proc.id());
            match kind {
                RecKind::Pack(scheme) => {
                    let a = local_from_fn(d, proc.id(), |g| g[0] as i32 * 3 - 50);
                    let plan = plan_pack(proc, d, &m, &PackOptions::new(*scheme)).unwrap();
                    st.1 = plan.execute(proc, &a).unwrap().local_v;
                }
                RecKind::Unpack(scheme) => {
                    let f = local_from_fn(d, proc.id(), |g| -(g[0] as i32));
                    let v_local: Vec<i32> = (0..vl.local_len(proc.id()))
                        .map(|l| vl.global_of(proc.id(), l) as i32 + 7000)
                        .collect();
                    let plan = plan_unpack(proc, d, &m, vl, &UnpackOptions::new(*scheme)).unwrap();
                    st.1 = plan.execute(proc, &f, &v_local).unwrap();
                }
            }
        });
        st.1
    };
    let machine = Machine::new(grid, CostModel::cm5());
    let t0 = Instant::now();
    let clean = machine
        .clone()
        .with_faults(FaultPlan::new(5))
        .run_recoverable(program)
        .expect("fault-free recoverable run");
    let clean_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (crashed, wall) = timed(reps, warmup, || {
        machine
            .clone()
            .with_faults(FaultPlan::new(5).with_crash(1, 4))
            .run_recoverable(program)
            .expect("scheduled crash must recover")
    });
    assert_eq!(
        crashed.results, clean.results,
        "{name}: recovered results diverged from the fault-free run"
    );
    for (cc, cr) in clean.clocks.iter().zip(&crashed.clocks) {
        assert_eq!(
            cc.now_ns, cr.now_ns,
            "{name}: recovered simulated clocks diverged"
        );
    }
    let stats = crashed
        .recovery
        .clone()
        .expect("recoverable run reports stats");
    assert!(
        stats.replays >= 1,
        "{name}: the scheduled crash never fired"
    );
    let elems = crashed.results.iter().map(|v| v.len()).sum();
    Entry {
        name: name.into(),
        group: "recovery",
        shape: vec![n],
        grid: vec![p],
        w: Some(w),
        density: Some(0.5),
        m: measure(&crashed, elems),
        critpath: None,
        conformance: None,
        reuse: None,
        hot: None,
        recovery: Some(RecoveryReport {
            stats,
            overhead_wall_ms: (wall.median_ms() - clean_wall_ms).max(0.0),
            clean_wall_ms,
        }),
        wall,
        memory: None,
        scale: None,
    }
}

/// One `scale` workload: a masked PACK → UNPACK roundtrip at `p`
/// processors with a fixed local extent, run under worker-pool sizes 1
/// and max(2, ncores) and compared bit-exactly. Tracing and metrics stay
/// off (pure scheduler + algorithm cost), and the dense plan-time
/// exchanges use the push schedule over a `p`-frame ring: round-paced
/// schedules cost ~2.6× more wall for the same simulated numbers, because
/// on a single host the sweep is bound by scheduler handoffs, not data.
fn scale_workload(p: usize, reps: usize, warmup: usize) -> Entry {
    let n = p * 16;
    let w = 4usize;
    let grid = ProcGrid::line(p);
    let pattern = MaskPattern::Random {
        density: 0.5,
        seed: 42,
    };
    let g = grid.clone();
    let program = move |proc: &mut hpf_machine::Proc<'_>| {
        let desc = ArrayDesc::new(&[n], &g, &[Dist::BlockCyclic(w)]).unwrap();
        let m = pattern.local(&desc, proc.id());
        let a = local_from_fn(&desc, proc.id(), |gi| gi[0] as i32 * 3 - 50);
        let popts = PackOptions {
            schedule: A2aSchedule::NaivePush,
            ..PackOptions::new(PackScheme::Simple)
        };
        let plan = plan_pack(proc, &desc, &m, &popts).unwrap();
        let out = plan.execute(proc, &a).unwrap();
        let vl = out.v_layout.expect("mask selects elements");
        let f = local_from_fn(&desc, proc.id(), |gi| -(gi[0] as i32));
        let uopts = UnpackOptions {
            schedule: A2aSchedule::NaivePush,
            ..UnpackOptions::new(UnpackScheme::Simple)
        };
        let uplan = plan_unpack(proc, &desc, &m, &vl, &uopts).unwrap();
        let unpacked = uplan.execute(proc, &f, &out.local_v).unwrap();
        (out.local_v, unpacked)
    };
    let workers_high = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1)
        .max(2);
    let build = |workers: usize| {
        Machine::new(grid.clone(), CostModel::cm5())
            .with_workers(workers)
            .with_chan_capacity(p)
    };
    let low = build(1).run(&program);
    let (high, wall) = timed(reps, warmup, || build(workers_high).run(&program));
    let identical = low.results == high.results
        && low.comm_matrix == high.comm_matrix
        && low.clocks.iter().zip(&high.clocks).all(|(a, b)| {
            a.now_ns == b.now_ns
                && a.ops == b.ops
                && a.words_sent == b.words_sent
                && a.startups == b.startups
                && Category::ALL.iter().all(|c| a.cat_ms(*c) == b.cat_ms(*c))
        });
    let steps: u64 = high.clocks.iter().map(|c| c.ops).sum::<u64>() + high.total_startups();
    let elems: usize = high.results.iter().map(|r| r.0.len()).sum();
    let ns_per_proc_step = wall.median_ms() * 1e6 / steps.max(1) as f64;
    Entry {
        name: format!("scale.roundtrip.p{p}"),
        group: "scale",
        shape: vec![n],
        grid: vec![p],
        w: Some(w),
        density: Some(0.5),
        m: measure(&high, elems),
        wall,
        critpath: None,
        conformance: None,
        reuse: None,
        hot: None,
        recovery: None,
        memory: None,
        scale: Some(ScaleReport {
            workers_low: 1,
            workers_high,
            identical,
            ns_per_proc_step,
        }),
    }
}

/// Elementwise `total - plan` per-processor op counts (execute phase).
fn sub_ops(total: &[u64], plan: &[u64]) -> Vec<u64> {
    total.iter().zip(plan).map(|(&t, &p)| t - p).collect()
}

/// Short git revision, or "unknown" outside a git checkout.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Measurement from a raw run (used by the app workloads, which don't go
/// through the `ExpConfig` runners).
fn measure<R>(out: &RunOutput<R>, size: usize) -> Measurement {
    Measurement {
        breakdown: out.breakdown(),
        size,
        words: out.total_words_sent(),
        startups: out.total_startups(),
        retransmits: out.total_retransmits(),
        dup_drops: out.total_dup_drops(),
        retry_overhead: out.retry_overhead(),
    }
}

fn app_compaction(smoke: bool, reps: usize, warmup: usize) -> Entry {
    let (p, steps) = if smoke { (4, 3) } else { (8, 6) };
    let n = 512 * p;
    let machine = Machine::new(ProcGrid::line(p), CostModel::cm5()).with_tracing(true);
    let (out, wall) = timed(reps, warmup, || {
        machine.clone().run(move |proc| {
            let advance = |x: i64, _| x.wrapping_mul(31).wrapping_add(17) % 100_000;
            let survive =
                |x: i64, step: usize| !(x.unsigned_abs() as usize + step).is_multiple_of(4);
            let stats = run_compaction(
                proc,
                n,
                steps,
                advance,
                survive,
                &PackOptions::new(PackScheme::CompactMessage),
            )
            .unwrap();
            stats.last().map(|s| s.alive).unwrap_or(0)
        })
    });
    let survivors = out.results[0];
    Entry {
        name: "apps.compaction".into(),
        group: "apps",
        shape: vec![n],
        grid: vec![p],
        w: None,
        density: None,
        m: measure(&out, survivors),
        wall,
        critpath: Some(CritPath::from_run(&out)),
        conformance: None,
        reuse: None,
        hot: None,
        recovery: None,
        memory: None,
        scale: None,
    }
}

fn app_sort(smoke: bool, reps: usize, warmup: usize) -> Entry {
    let p = 8usize;
    let per_proc = if smoke { 256 } else { 2048 };
    let machine = Machine::new(ProcGrid::line(p), CostModel::cm5()).with_tracing(true);
    let (out, wall) = timed(reps, warmup, || {
        machine.clone().run(move |proc| {
            // Deterministic pseudo-random keys, distinct per processor.
            let mut x = 0x9E37_79B9u64.wrapping_mul(proc.id() as u64 + 1);
            let v: Vec<i64> = (0..per_proc)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (x >> 33) as i64
                })
                .collect();
            let (sorted, _) = sample_sort(proc, &v, true, A2aSchedule::LinearPermutation);
            sorted.len()
        })
    });
    let total: usize = out.results.iter().sum();
    Entry {
        name: "apps.sort".into(),
        group: "apps",
        shape: vec![p * per_proc],
        grid: vec![p],
        w: None,
        density: None,
        m: measure(&out, total),
        wall,
        critpath: Some(CritPath::from_run(&out)),
        conformance: None,
        reuse: None,
        hot: None,
        recovery: None,
        memory: None,
        scale: None,
    }
}

fn app_spmv(smoke: bool, reps: usize, warmup: usize) -> Entry {
    let dim = if smoke { 64 } else { 256 };
    let (ncols, nrows) = (dim, dim);
    let grid = ProcGrid::new(&[4, 2]);
    let desc = ArrayDesc::new(
        &[ncols, nrows],
        &grid,
        &[Dist::BlockCyclic(2), Dist::BlockCyclic(2)],
    )
    .unwrap();
    let nprocs = grid.nprocs();
    let x_layout = DimLayout::new_general(ncols, nprocs, ncols.div_ceil(nprocs)).unwrap();
    let machine = Machine::new(grid, CostModel::cm5()).with_tracing(true);
    let (d, xl) = (&desc, &x_layout);
    // Banded matrix: nonzero iff |row - col| <= 4 — the uneven-density
    // pattern the module documentation motivates.
    let entry = move |col: usize, row: usize| {
        if row.abs_diff(col) <= 4 {
            (row * dim + col + 1) as f64
        } else {
            0.0
        }
    };
    let (out, wall) = timed(reps, warmup, || {
        machine.clone().run(move |proc| {
            let dense = local_from_fn(d, proc.id(), |g| entry(g[0], g[1]));
            let a = SparseMatrix::compress(proc, d, &dense, &PackOptions::default()).unwrap();
            let x_local: Vec<f64> = (0..xl.local_len(proc.id()))
                .map(|l| xl.global_of(proc.id(), l) as f64 * 0.25)
                .collect();
            let (y, _) = a.spmv(proc, &x_local, xl, A2aSchedule::LinearPermutation);
            (a.nnz, y.len())
        })
    });
    let nnz = out.results[0].0;
    Entry {
        name: "apps.spmv".into(),
        group: "apps",
        shape: vec![ncols, nrows],
        grid: vec![4, 2],
        w: None,
        density: None,
        m: measure(&out, nnz),
        wall,
        critpath: Some(CritPath::from_run(&out)),
        conformance: None,
        reuse: None,
        hot: None,
        recovery: None,
        memory: None,
        scale: None,
    }
}

fn app_gather(smoke: bool, reps: usize, warmup: usize) -> Entry {
    let p = 8usize;
    let n = if smoke { 512 } else { 4096 };
    let per_proc_requests = if smoke { 64 } else { 512 };
    let layout = DimLayout::new_general(n, p, n.div_ceil(p)).unwrap();
    let machine = Machine::new(ProcGrid::line(p), CostModel::cm5());
    let l = &layout;
    let (out, wall) = timed(reps, warmup, || {
        machine.clone().run(move |proc| {
            let v_local: Vec<i64> = (0..l.local_len(proc.id()))
                .map(|k| l.global_of(proc.id(), k) as i64)
                .collect();
            // Scattered request pattern touching every owner.
            let indices: Vec<usize> = (0..per_proc_requests)
                .map(|k| (k * 2654435761 + proc.id() * 97) % n)
                .collect();
            let got = gather_global(proc, &v_local, l, &indices, A2aSchedule::LinearPermutation);
            for (k, &g) in indices.iter().enumerate() {
                assert_eq!(got[k], g as i64, "gather fetched the wrong element");
            }
            got.len()
        })
    });
    let fetched: usize = out.results.iter().sum();
    Entry {
        name: "apps.gather".into(),
        group: "apps",
        shape: vec![n],
        grid: vec![p],
        w: None,
        density: None,
        m: measure(&out, fetched),
        wall,
        critpath: Some(CritPath::from_run(&out)),
        conformance: None,
        reuse: None,
        hot: None,
        recovery: None,
        memory: None,
        scale: None,
    }
}

// ---- JSON rendering (hand-rolled; the repo carries no serde) -------------

fn render_json(rev: &str, smoke: bool, filter: Option<&str>, entries: &[Entry]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(s, "  \"rev\": \"{rev}\",");
    let _ = writeln!(
        s,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    match filter {
        Some(f) => {
            let _ = writeln!(s, "  \"filter\": \"{f}\",");
        }
        None => s.push_str("  \"filter\": null,\n"),
    }
    s.push_str("  \"cost_model\": \"cm5\",\n");
    let _ = writeln!(
        s,
        "  \"memcpy_roof_gbps\": {},",
        json_f64(memcpy_roof_gbps())
    );
    s.push_str("  \"workloads\": [\n");
    for (i, e) in entries.iter().enumerate() {
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"name\": \"{}\",", e.name);
        let _ = writeln!(s, "      \"group\": \"{}\",", e.group);
        let _ = writeln!(s, "      \"shape\": {},", json_usize_array(&e.shape));
        let _ = writeln!(s, "      \"grid\": {},", json_usize_array(&e.grid));
        match e.w {
            Some(w) => {
                let _ = writeln!(s, "      \"w\": {w},");
            }
            None => s.push_str("      \"w\": null,\n"),
        }
        match e.density {
            Some(d) => {
                let _ = writeln!(s, "      \"density\": {d},");
            }
            None => s.push_str("      \"density\": null,\n"),
        }
        s.push_str("      \"stages_ms\": {");
        for (j, cat) in Category::ALL.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "\"{}\": {}",
                cat.label(),
                json_f64(e.m.breakdown.cat_ms(*cat))
            );
        }
        s.push_str("},\n");
        let _ = writeln!(s, "      \"total_ms\": {},", json_f64(e.m.total_ms()));
        let _ = writeln!(s, "      \"size\": {},", e.m.size);
        let _ = writeln!(s, "      \"words\": {},", e.m.words);
        let _ = writeln!(s, "      \"startups\": {},", e.m.startups);
        let _ = writeln!(s, "      \"retransmits\": {},", e.m.retransmits);
        let _ = writeln!(s, "      \"dup_drops\": {},", e.m.dup_drops);
        let _ = writeln!(
            s,
            "      \"retry_overhead\": {},",
            json_f64(e.m.retry_overhead)
        );
        match &e.critpath {
            Some(cp) => {
                let (top, top_ns) = cp.top_stage().unwrap_or(("", 0.0));
                let _ = writeln!(
                    s,
                    "      \"critpath\": {{\"total_ms\": {}, \"busy_ms\": {}, \
                     \"transfer_ms\": {}, \"hops\": {}, \"barriers\": {}, \
                     \"imbalance\": {}, \"top_stage\": \"{top}\", \
                     \"top_stage_ms\": {}}},",
                    json_f64(cp.total_ms()),
                    json_f64(cp.busy_ms()),
                    json_f64(cp.transfer_ms()),
                    cp.hops,
                    cp.barriers,
                    json_f64(cp.imbalance()),
                    json_f64(top_ns / 1e6),
                );
            }
            None => s.push_str("      \"critpath\": null,\n"),
        }
        match &e.conformance {
            Some(c) => {
                // Every conformance the binary emits is phase-resolved;
                // render zeros defensively if one ever is not.
                let sum = |v: &[u64]| v.iter().sum::<u64>();
                let (pp, pe, mp, me) = match &c.phases {
                    Some(ph) => (
                        sum(&ph.predicted_plan),
                        sum(&ph.predicted_execute),
                        sum(&ph.measured_plan),
                        sum(&ph.measured_execute),
                    ),
                    None => (0, 0, 0, 0),
                };
                let _ = writeln!(
                    s,
                    "      \"conformance\": {{\"scheme\": \"{}\", \
                     \"predicted_ops\": {}, \"measured_ops\": {}, \
                     \"predicted_plan_ops\": {pp}, \"predicted_execute_ops\": {pe}, \
                     \"measured_plan_ops\": {mp}, \"measured_execute_ops\": {me}, \
                     \"rel_error\": {}, \"pass\": {}}},",
                    c.scheme,
                    c.predicted_total(),
                    c.measured_total(),
                    json_f64(c.rel_error),
                    c.pass,
                );
            }
            None => s.push_str("      \"conformance\": null,\n"),
        }
        match &e.reuse {
            Some(r) => {
                let _ = writeln!(
                    s,
                    "      \"reuse\": {{\"executes\": {}, \"fresh_total_ms\": {}, \
                     \"cached_total_ms\": {}, \"fresh_per_exec_ms\": {}, \
                     \"cached_per_exec_ms\": {}, \"ratio\": {}, \
                     \"cache_hits\": {}, \"cache_misses\": {}}},",
                    r.executes,
                    json_f64(r.fresh.total_ms()),
                    json_f64(r.cached.total_ms()),
                    json_f64(r.fresh_per_exec_ms()),
                    json_f64(r.cached_per_exec_ms()),
                    json_f64(r.reuse_ratio()),
                    r.cache_hits,
                    r.cache_misses,
                );
            }
            None => s.push_str("      \"reuse\": null,\n"),
        }
        match &e.hot {
            Some(h) => {
                let _ = writeln!(
                    s,
                    "      \"hot\": {{\"executes\": {}, \"elements\": {}, \
                     \"wall_ns_per_exec\": {}, \"ns_per_element\": {}, \
                     \"allocs_per_execute\": {}, \"alloc_bytes_per_execute\": {}, \
                     \"clone_words\": {}, \"copy_ops\": {{\
                     \"contig\": {}, \"strided\": {}, \"scatter\": {}, \
                     \"bulk_elements\": {}, \"total_elements\": {}, \
                     \"bulk_fraction\": {}}}}},",
                    h.executes,
                    h.elements,
                    json_f64(h.wall_ns_per_exec),
                    json_f64(h.ns_per_element()),
                    json_f64(h.allocs_per_execute),
                    json_f64(h.alloc_bytes_per_execute),
                    h.clone_words,
                    h.copy_ops.contig,
                    h.copy_ops.strided,
                    h.copy_ops.scatter,
                    h.copy_ops.bulk_elements,
                    h.copy_ops.total_elements,
                    json_f64(h.copy_ops.bulk_fraction()),
                );
            }
            None => s.push_str("      \"hot\": null,\n"),
        }
        match &e.recovery {
            Some(r) => {
                let _ = writeln!(
                    s,
                    "      \"recovery\": {{\"recovered\": true, \"epochs\": {}, \
                     \"replays\": {}, \"replayed_frames\": {}, \
                     \"replay_log_high_water_words\": {}, \"replay_ms\": {}, \
                     \"overhead_wall_ms\": {}, \"clean_wall_ms\": {}}},",
                    r.stats.epochs,
                    r.stats.replays,
                    r.stats.replayed_frames,
                    r.stats.log_high_water_words,
                    json_f64(r.stats.replay_ms),
                    json_f64(r.overhead_wall_ms),
                    json_f64(r.clean_wall_ms),
                );
            }
            None => s.push_str("      \"recovery\": null,\n"),
        }
        match &e.memory {
            Some(p) => {
                let _ = writeln!(
                    s,
                    "      \"memory\": {{\"scheme\": \"{}\", \
                     \"measured_peak_bytes\": {}, \"predicted_peak_bytes\": {}, \
                     \"ratio\": {}, \"peak_proc\": {}, \
                     \"peak_account\": \"{}\", \"peak_stage\": \"{}\", \
                     \"ring_bytes\": {}, \"ring_exact\": {}, \
                     \"pass\": {}}},",
                    p.scheme,
                    p.measured_bytes,
                    p.predicted_bytes,
                    json_f64(p.ratio),
                    p.peak_proc,
                    p.peak_account,
                    p.peak_stage,
                    p.ring_bytes,
                    p.ring_exact,
                    p.pass,
                );
            }
            None => s.push_str("      \"memory\": null,\n"),
        }
        match &e.scale {
            Some(sc) => {
                let _ = writeln!(
                    s,
                    "      \"scale\": {{\"workers_low\": {}, \"workers_high\": {}, \
                     \"identical\": {}, \"ns_per_proc_step\": {}}},",
                    sc.workers_low,
                    sc.workers_high,
                    sc.identical,
                    json_f64(sc.ns_per_proc_step),
                );
            }
            None => s.push_str("      \"scale\": null,\n"),
        }
        let cv = match e.wall.cv() {
            Some(c) => json_f64(c),
            None => "null".into(),
        };
        let _ = writeln!(
            s,
            "      \"wall\": {{\"reps\": {}, \"warmup\": {}, \"median_ms\": {}, \
             \"mad_ms\": {}, \"cv\": {}}},",
            e.wall.reps,
            e.wall.warmup,
            json_f64(e.wall.median_ms()),
            json_f64(e.wall.mad_ms()),
            cv,
        );
        let _ = writeln!(s, "      \"wall_ms\": {}", json_f64(e.wall.median_ms()));
        s.push_str(if i + 1 < entries.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

fn json_usize_array(v: &[usize]) -> String {
    let inner: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("[{}]", inner.join(", "))
}

/// Finite float as JSON (JSON has no NaN/Infinity; clamp defensively).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}
