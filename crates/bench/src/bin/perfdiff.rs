//! Cross-revision perf regression gate.
//!
//! Compares two versioned perf reports (as written by the `perf` binary)
//! on *simulated* metrics only — `total_ms`, per-category `stages_ms`,
//! `words`, `startups` — and never on wall-clock, so the verdict is
//! deterministic. Prints a markdown delta table and exits nonzero when
//! any metric regresses by at least the fail threshold or a workload
//! disappeared.
//!
//! With `--wall`, a second, *noise-aware* gate also compares the
//! per-workload `wall` objects (median/MAD/cv from `--reps` repetition):
//! a workload fails only when its wall median regressed beyond
//! max(noise band, `--wall-fixed-pct`). Workloads whose `cv` is null
//! (single rep, noise unmeasured) are skipped, never failed. The two
//! gates are independent by design — simulated drift is a behavioural
//! change, wall drift is a real-machine performance change.
//!
//! With `--hot-band PCT`, a third gate compares `hot.ns_per_element` of
//! every workload present in both reports with a *fixed* tolerance band.
//! Unlike `--wall` it does not need repetition statistics, so it still
//! bites in smoke mode where `cv` is null and every `--wall` row is
//! skipped. The band is deliberately wide (scheduler overhead dominates
//! tiny smoke shapes and is noisy) — its job is to catch losing a bulk
//! kernel outright (a 4× slowdown is +300%), not percent-level drift.
//! Workloads without a hot measurement on either side are skipped.
//!
//! Usage:
//! ```sh
//! cargo run -p hpf-bench --bin perfdiff -- OLD.json NEW.json \
//!     [--warn-above PCT] [--fail-above PCT] [--wall] [--wall-fixed-pct PCT] \
//!     [--hot-band PCT]
//! ```
//!
//! Exit codes: 0 = clean (or warnings only), 1 = regression at or above
//! the fail threshold / missing workload (either gate), 2 = usage or
//! parse error.

use hpf_analysis::{DiffReport, Json, WallDiffReport};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut warn_above = 2.0f64;
    let mut fail_above = 10.0f64;
    let mut wall = false;
    let mut wall_fixed_pct = 10.0f64;
    let mut hot_band: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--warn-above" => {
                warn_above = parse_pct(args.get(i + 1), "--warn-above");
                i += 2;
            }
            "--fail-above" => {
                fail_above = parse_pct(args.get(i + 1), "--fail-above");
                i += 2;
            }
            "--wall" => {
                wall = true;
                i += 1;
            }
            "--wall-fixed-pct" => {
                wall_fixed_pct = parse_pct(args.get(i + 1), "--wall-fixed-pct");
                i += 2;
            }
            "--hot-band" => {
                hot_band = Some(parse_pct(args.get(i + 1), "--hot-band"));
                i += 2;
            }
            flag if flag.starts_with("--") => usage(&format!("unknown flag {flag}")),
            path => {
                paths.push(path.to_string());
                i += 1;
            }
        }
    }
    if paths.len() != 2 {
        usage("expected exactly two report paths");
    }

    let old = load(&paths[0]);
    let new = load(&paths[1]);
    let diff = DiffReport::from_reports(&old, &new).unwrap_or_else(|e| {
        eprintln!("perfdiff: {e}");
        std::process::exit(2);
    });

    println!("## perfdiff: {} -> {}\n", paths[0], paths[1]);
    print!("{}", diff.markdown(warn_above, fail_above));

    let mut failed = false;
    if diff.failed(fail_above) {
        eprintln!(
            "perfdiff: FAIL (worst regression {:+.2}%, threshold {fail_above}%, \
             {} workloads missing)",
            diff.max_regression_pct(),
            diff.missing.len()
        );
        failed = true;
    } else if diff.max_regression_pct() >= warn_above {
        eprintln!(
            "perfdiff: warnings only (worst regression {:+.2}% < fail threshold {fail_above}%)",
            diff.max_regression_pct()
        );
    }

    if wall {
        let wd = WallDiffReport::compare(&old, &new, wall_fixed_pct).unwrap_or_else(|e| {
            eprintln!("perfdiff: {e}");
            std::process::exit(2);
        });
        println!("\n## wall-clock (noise-aware, floor {wall_fixed_pct}%)\n");
        print!("{}", wd.markdown());
        if wd.failed() {
            eprintln!(
                "perfdiff: wall FAIL (worst gated regression {:+.2}%, \
                 {} workloads missing)",
                wd.max_regression_pct(),
                wd.missing.len()
            );
            failed = true;
        }
    }

    if let Some(band) = hot_band {
        let (table, worst, breaches) = hot_band_gate(&old, &new, band).unwrap_or_else(|e| {
            eprintln!("perfdiff: {e}");
            std::process::exit(2);
        });
        println!("\n## hot ns/element (fixed band {band}%)\n");
        print!("{table}");
        if breaches > 0 {
            eprintln!(
                "perfdiff: hot FAIL ({breaches} workloads beyond the {band}% band, \
                 worst {worst:+.2}%)"
            );
            failed = true;
        }
    }

    if failed {
        std::process::exit(1);
    }
}

/// Fixed-band comparison of `hot.ns_per_element` between two reports.
/// Returns `(markdown table, worst delta pct, breach count)`. Workloads
/// lacking a finite hot measurement on either side are skipped (a
/// *missing workload* is already an unconditional `DiffReport` failure).
fn hot_band_gate(old: &Json, new: &Json, band_pct: f64) -> Result<(String, f64, usize), String> {
    let hot_ns = |report: &Json, which: &str| -> Result<Vec<(String, f64)>, String> {
        let workloads = report
            .get("workloads")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{which} report has no workloads array"))?;
        let mut out = Vec::new();
        for w in workloads {
            let Some(name) = w.get("name").and_then(Json::as_str) else {
                continue;
            };
            let Some(ns) = w
                .get("hot")
                .and_then(|h| h.get("ns_per_element"))
                .and_then(Json::as_f64)
            else {
                continue;
            };
            if ns.is_finite() && ns > 0.0 {
                out.push((name.to_string(), ns));
            }
        }
        Ok(out)
    };
    let old_hot = hot_ns(old, "old")?;
    let new_hot = hot_ns(new, "new")?;

    let mut table = String::from(
        "| workload | old ns/elem | new ns/elem | delta | verdict |\n\
         |---|---|---|---|---|\n",
    );
    let mut worst = f64::NEG_INFINITY;
    let mut breaches = 0usize;
    for (name, o) in &old_hot {
        let Some(n) = new_hot.iter().find(|(nm, _)| nm == name).map(|&(_, v)| v) else {
            continue;
        };
        let delta_pct = 100.0 * (n - o) / o;
        worst = worst.max(delta_pct);
        let verdict = if delta_pct > band_pct {
            breaches += 1;
            "**FAIL**"
        } else {
            "ok"
        };
        use std::fmt::Write as _;
        let _ = writeln!(
            table,
            "| {name} | {o:.2} | {n:.2} | {delta_pct:+.2}% | {verdict} |"
        );
    }
    Ok((table, worst, breaches))
}

fn parse_pct(arg: Option<&String>, flag: &str) -> f64 {
    arg.and_then(|s| s.parse::<f64>().ok())
        .unwrap_or_else(|| usage(&format!("{flag} requires a numeric percent")))
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perfdiff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("perfdiff: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "perfdiff: {msg}\nusage: perfdiff OLD.json NEW.json [--warn-above PCT] \
         [--fail-above PCT] [--wall] [--wall-fixed-pct PCT] [--hot-band PCT]"
    );
    std::process::exit(2);
}
