//! Section 7's scaled experiment: increase the processor count 16× (16→256
//! for 1-D, 4×4→16×16 for 2-D) while growing the array 16× so the local
//! array size stays fixed, and watch the time shift from local computation
//! to communication ("in a large number of processors the most time is
//! spent for communication").

use hpf_bench::{ms, pack_scheme_opts, time_pack, ExpConfig, Table};
use hpf_core::MaskPattern;

fn run_case(title: &str, shape: &[usize], grid: &[usize], w: usize, density: f64) {
    println!("\n{title}");
    let mut t = Table::new(vec!["Scheme", "local", "prs", "m2m", "total"]);
    for (scheme, opts) in pack_scheme_opts() {
        let cfg = ExpConfig::new(shape, grid, w, MaskPattern::Random { density, seed: 42 });
        let m = time_pack(&cfg, &opts);
        t.row(vec![
            scheme.label().to_string(),
            ms(m.local_ms()),
            ms(m.prs_ms()),
            ms(m.m2m_ms()),
            ms(m.total_ms()),
        ]);
    }
    t.print();
}

fn main() {
    println!("Scaled experiment: 16x more processors, 16x larger arrays (fixed local size)");
    println!("(density 50%, block size 16; PACK, all three schemes)");

    // 1-D: N = 65536 on 16 procs  ->  N = 2^20 on 256 procs (local 4096).
    run_case("1-D, N = 65536, P = 16:", &[65536], &[16], 16, 0.5);
    run_case("1-D, N = 1048576, P = 256:", &[1 << 20], &[256], 16, 0.5);

    // 2-D: 512^2 on 4x4  ->  2048^2 on 16x16 (local 128x128).
    run_case("2-D, 512 x 512, P = 4x4:", &[512, 512], &[4, 4], 16, 0.5);
    run_case(
        "2-D, 2048 x 2048, P = 16x16:",
        &[2048, 2048],
        &[16, 16],
        16,
        0.5,
    );

    println!(
        "\n(expected: with fixed local size, local computation stays flat while \
         prefix-reduction-sum and many-to-many communication grow with P)"
    );
}
