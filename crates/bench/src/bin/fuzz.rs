//! Differential fuzzing driver: random configurations (shape, grid, block
//! sizes, density, scheme, schedule, vector block size) of parallel PACK
//! and UNPACK against the sequential Fortran 90 oracle.
//!
//! Usage:
//! ```sh
//! cargo run -p hpf-bench --release --bin fuzz -- [--cases N] [--seed N] \
//!     [--reuse-plans] [--trace-out FILE]
//! # defaults: 500 cases, seed 1; bare positionals [cases] [seed] also work
//! # --reuse-plans routes every operation through the explicit
//! # plan-then-execute path (hpf_core::plan) instead of the one-shot
//! # wrappers — results must stay bit-identical to the oracle either way
//! # --trace-out additionally traces one representative PACK and writes it
//! # as Chrome trace_event JSON (open in Perfetto / chrome://tracing)
//! ```
//!
//! Every failure message names the seed, so any reported mismatch is
//! reproducible with `--seed`.
//!
//! Complements the proptest suites with a long-running, user-controllable
//! sweep (proptest shrinks nicely but runs a fixed case budget in CI).

use hpf_core::seq::{count_seq, pack_seq, unpack_seq};
use hpf_core::{
    pack, plan_pack, plan_unpack, unpack, PackOptions, PackScheme, UnpackOptions, UnpackScheme,
};
use hpf_distarray::{ArrayDesc, DimLayout, Dist, GlobalArray};
use hpf_machine::collectives::A2aSchedule;
use hpf_machine::{CostModel, Machine, ProcGrid};

/// SplitMix64 for reproducible pseudo-random draws.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn main() {
    let mut cases: usize = 500;
    let mut seed: u64 = 1;
    let mut reuse_plans = false;
    let mut trace_out: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = 0usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--cases" => {
                cases = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--cases requires an integer");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed requires an integer");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--reuse-plans" => {
                reuse_plans = true;
                i += 1;
            }
            "--trace-out" => {
                trace_out = Some(args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--trace-out requires a path");
                    std::process::exit(2);
                }));
                i += 2;
            }
            bare => {
                // Back-compat positionals: [cases] [seed].
                match (positional, bare.parse::<u64>()) {
                    (0, Ok(v)) => cases = v as usize,
                    (1, Ok(v)) => seed = v,
                    _ => {
                        eprintln!(
                            "unknown argument {bare}; usage: \
                             fuzz [--cases N] [--seed N] [--reuse-plans] [--trace-out FILE]"
                        );
                        std::process::exit(2);
                    }
                }
                positional += 1;
                i += 1;
            }
        }
    }
    let mut rng = Rng(seed);

    let schemes = PackScheme::ALL;
    let schedules = [
        A2aSchedule::LinearPermutation,
        A2aSchedule::NaivePush,
        A2aSchedule::PairwiseExchange,
    ];

    let mut pack_cases = 0usize;
    let mut unpack_cases = 0usize;
    for case in 0..cases {
        // Random rank 1..=3, per-dim (P, W, T) in 1..=3.
        let rank = 1 + rng.below(3);
        let mut grid_dims = Vec::new();
        let mut dists = Vec::new();
        let mut shape = Vec::new();
        for _ in 0..rank {
            let (p, w, t) = (1 + rng.below(3), 1 + rng.below(3), 1 + rng.below(3));
            grid_dims.push(p);
            dists.push(Dist::BlockCyclic(w));
            shape.push(p * w * t);
        }
        let n: usize = shape.iter().product();
        let grid = ProcGrid::new(&grid_dims);
        let desc = ArrayDesc::new(&shape, &grid, &dists).unwrap();

        let mask_bits: Vec<bool> = (0..n).map(|_| rng.below(100) < 35 + case % 50).collect();
        let values: Vec<i32> = (0..n).map(|_| rng.below(2000) as i32 - 1000).collect();
        let a = GlobalArray::from_vec(&shape, values);
        let m = GlobalArray::from_vec(&shape, mask_bits);

        let mut opts = PackOptions::new(schemes[rng.below(3)]);
        opts.schedule = schedules[rng.below(3)];
        if rng.below(2) == 0 {
            opts.result_block_size = Some(1 + rng.below(7));
        }

        // PACK differential check.
        let want = pack_seq(&a, &m, None);
        let (ap, mp) = (a.partition(&desc), m.partition(&desc));
        let machine = Machine::new(grid.clone(), CostModel::cm5());
        let (d, apr, mpr, o) = (&desc, &ap, &mp, &opts);
        let out = machine.run(move |proc| {
            if reuse_plans {
                let plan = plan_pack(proc, d, &mpr[proc.id()], o).unwrap();
                plan.execute(proc, &apr[proc.id()]).unwrap()
            } else {
                pack(proc, d, &apr[proc.id()], &mpr[proc.id()], o).unwrap()
            }
        });
        let mut got = vec![0i32; out.results[0].size];
        if let Some(layout) = out.results[0].v_layout {
            for (p, r) in out.results.iter().enumerate() {
                for (l, &x) in r.local_v.iter().enumerate() {
                    got[layout.global_of(p, l)] = x;
                }
            }
        }
        assert_eq!(
            got, want,
            "PACK mismatch at case {case} (reproduce with --seed {seed}): shape {shape:?}, \
             grid {grid_dims:?}, opts {opts:?}"
        );
        pack_cases += 1;

        // UNPACK differential check on the same mask.
        let size = count_seq(&m);
        let n_prime = (size + rng.below(4)).max(1);
        let w_prime = 1 + rng.below(6);
        let v: Vec<i32> = (0..n_prime as i32).map(|i| 7000 + i).collect();
        let want = unpack_seq(&v, &m, &a);
        let v_layout = DimLayout::new_general(n_prime, grid.nprocs(), w_prime).unwrap();
        let v_locals: Vec<Vec<i32>> = (0..grid.nprocs())
            .map(|p| {
                (0..v_layout.local_len(p))
                    .map(|l| v[v_layout.global_of(p, l)])
                    .collect()
            })
            .collect();
        let uscheme = UnpackScheme::ALL[rng.below(2)];
        let uopts = UnpackOptions::new(uscheme);
        let (vpr, vl, uo) = (&v_locals, &v_layout, &uopts);
        let out = machine.run(move |proc| {
            if reuse_plans {
                let plan = plan_unpack(proc, d, &mpr[proc.id()], vl, uo).unwrap();
                plan.execute(proc, &apr[proc.id()], &vpr[proc.id()])
                    .unwrap()
            } else {
                unpack(
                    proc,
                    d,
                    &mpr[proc.id()],
                    &apr[proc.id()],
                    &vpr[proc.id()],
                    vl,
                    uo,
                )
                .unwrap()
            }
        });
        assert_eq!(
            GlobalArray::assemble(&desc, &out.results),
            want,
            "UNPACK mismatch at case {case} (reproduce with --seed {seed}): shape {shape:?}, \
             scheme {uscheme:?}, W'={w_prime}"
        );
        unpack_cases += 1;

        if (case + 1) % 100 == 0 {
            println!("  {} / {cases} cases passed", case + 1);
        }
    }
    if let Some(path) = &trace_out {
        write_trace(path);
    }
    println!(
        "fuzz: all {pack_cases} PACK and {unpack_cases} UNPACK differential cases passed \
         (seed {seed}{})",
        if reuse_plans {
            ", plan-then-execute path"
        } else {
            ""
        }
    );
}

/// Trace one representative PACK (CMS, cyclic-ish layout on 4 processors)
/// and write it as Chrome trace_event JSON.
fn write_trace(path: &str) {
    let grid = ProcGrid::new(&[4]);
    let desc = ArrayDesc::new(&[96], &grid, &[Dist::BlockCyclic(2)]).unwrap();
    let a = GlobalArray::from_fn(&[96], |g| g[0] as i32);
    let m = GlobalArray::from_fn(&[96], |g| g[0] % 2 == 0);
    let machine = Machine::new(grid, CostModel::cm5())
        .with_tracing(true)
        .with_metrics(true);
    let (ap, mp) = (a.partition(&desc), m.partition(&desc));
    let (d, apr, mpr) = (&desc, &ap, &mp);
    let opts = PackOptions::new(PackScheme::CompactMessage);
    let o = &opts;
    let out = machine.run(move |proc| {
        pack(proc, d, &apr[proc.id()], &mpr[proc.id()], o)
            .unwrap()
            .size
    });
    std::fs::write(path, out.chrome_trace_json()).expect("write trace file");
    println!(
        "trace written to {path} ({} events) — load in Perfetto or chrome://tracing",
        out.total_events()
    );
}
