//! Table II — preliminary redistribution schemes for cyclically distributed
//! input: total PACK time (msec) for the plain simple storage scheme on the
//! cyclic layout vs. Red.1 (redistribute selected data) and Red.2
//! (redistribute whole arrays), each followed by the compact message scheme
//! on the block layout.
//!
//! Paper setup: 16 processors for 1-D (N = 16384, 65536), 4×4 for 2-D
//! (256×256, 512×512), densities 10–90%.

use hpf_bench::{ms, time_pack, time_pack_redist, ExpConfig, Table};
use hpf_core::{MaskPattern, PackOptions, PackScheme, RedistScheme};
use hpf_machine::collectives::PrsAlgorithm;

fn run_case(title: &str, shape: &[usize], grid: &[usize], prs: PrsAlgorithm) {
    println!("\n{title}");
    let mut t = Table::new(vec!["Mask Density", "SSS", "Red. 1", "Red. 2"]);
    for density in MaskPattern::DENSITIES {
        let pattern = MaskPattern::Random { density, seed: 42 };
        let cfg = ExpConfig::new(shape, grid, 1, pattern); // cyclic input
        let mut sss_opts = PackOptions::new(PackScheme::Simple);
        sss_opts.prs = prs;
        let sss = time_pack(&cfg, &sss_opts);
        let mut cms = PackOptions::new(PackScheme::CompactMessage);
        cms.prs = prs;
        let red1 = time_pack_redist(&cfg, RedistScheme::SelectedData, &cms);
        let red2 = time_pack_redist(&cfg, RedistScheme::WholeArrays, &cms);
        t.row(vec![
            format!("{:.0}%", density * 100.0),
            ms(sss.total_ms()),
            ms(red1.total_ms()),
            ms(red2.total_ms()),
        ]);
    }
    t.print();
}

fn main() {
    println!("Table II: execution time (msec) for two redistribution schemes in parallel PACK");
    println!("(input distributed cyclicly; Red.x = redistribution + CMS pack on block layout)");

    println!("\n--- software prefix-reduction-sum (data network only) ---");
    run_case(
        "1-D, N = 16384, P = 16:",
        &[16384],
        &[16],
        PrsAlgorithm::Auto,
    );
    run_case(
        "1-D, N = 65536, P = 16:",
        &[65536],
        &[16],
        PrsAlgorithm::Auto,
    );
    run_case(
        "2-D, 256 x 256, P = 4x4:",
        &[256, 256],
        &[4, 4],
        PrsAlgorithm::Auto,
    );
    run_case(
        "2-D, 512 x 512, P = 4x4:",
        &[512, 512],
        &[4, 4],
        PrsAlgorithm::Auto,
    );

    println!(
        "\n--- CM-5-style control-network scans (PrsAlgorithm::Hardware) ---\n\
         On the CM-5 the 1-D experiments used hardware global operations \n\
         (paper, Section 7), making cyclic ranking cheap enough that neither \n\
         redistribution scheme beat plain SSS in 1-D — the shape this panel \n\
         reproduces."
    );
    run_case(
        "1-D, N = 16384, P = 16:",
        &[16384],
        &[16],
        PrsAlgorithm::Hardware,
    );
    run_case(
        "1-D, N = 65536, P = 16:",
        &[65536],
        &[16],
        PrsAlgorithm::Hardware,
    );
    run_case(
        "2-D, 256 x 256, P = 4x4:",
        &[256, 256],
        &[4, 4],
        PrsAlgorithm::Hardware,
    );
    run_case(
        "2-D, 512 x 512, P = 4x4:",
        &[512, 512],
        &[4, 4],
        PrsAlgorithm::Hardware,
    );
}
