//! Chaos harness: PACK→UNPACK roundtrips under randomized fault schedules.
//!
//! Each iteration draws a random array configuration and a random
//! [`FaultPlan`] (per-link drop / duplicate / delay / reorder, all ≤ 20 %),
//! runs the full pipeline on a clean machine and on a faulted machine, and
//! asserts that
//!
//! * both runs agree bit-exactly with the sequential Fortran 90 oracle,
//! * drop/duplicate/reorder faults leave the *simulated* clocks bit-identical
//!   to the clean run (the reliable transport hides them completely),
//! * injected delays change simulated time deterministically (two faulted
//!   runs agree with each other), and
//! * a scheduled processor crash surfaces as a typed
//!   [`hpf_machine::MachineError`] naming the crashed processor, never as a
//!   hang — or, under `--recover`, is absorbed by
//!   [`hpf_machine::Machine::run_recoverable`] with results bit-identical to
//!   the clean run and clocks bit-identical between recovered runs.
//!
//! The sweep cycles through all three PACK schemes (SSS / CSS / CMS), both
//! UNPACK schemes, and both redistribution variants (Red.1 / Red.2), and
//! reports the transport's retry/latency overhead at the end.
//!
//! Usage:
//! ```sh
//! cargo run -p hpf-bench --release --bin chaos -- [--seed N] [--iters N] \
//!     [--reuse-plans] [--recover] [--workers N] [--trace-out FILE]
//! # defaults: seed 1, 20 iterations
//! # --workers pins the cooperative scheduler's pool size for every machine
//! # in the sweep (default: one permit per core); results and simulated
//! # clocks are pool-size-invariant, so running the same seed under
//! # --workers 1 and --workers N is itself a determinism drill
//! # --recover replaces the fail-fast crash drill with a recovery drill on
//! # every iteration: a crash is scheduled (send-side on even iterations,
//! # receive-side on odd), the run goes through run_recoverable, and the
//! # recovered results must match the clean run bit-exactly while two
//! # recovered runs must also agree on their simulated clocks
//! # --reuse-plans routes plain PACK/UNPACK through the explicit
//! # plan-then-execute path, executing each plan three times through the
//! # pooled zero-copy buffers (the redistribution variants keep their
//! # one-shot entry points); every execute must produce bit-identical
//! # results even when the fault schedule forces retransmission of
//! # Arc-shared pooled payloads
//! # --trace-out additionally runs one traced fault-injected PACK and writes
//! # it as Chrome trace_event JSON (open in Perfetto / chrome://tracing);
//! # the trace carries send/recv, retransmit, dup-drop, and fault-verdict
//! # annotations.
//! ```

use hpf_core::seq::{count_seq, pack_seq, unpack_seq};
use hpf_core::{
    pack, pack_redistributed, plan_pack, plan_unpack, unpack, PackOptions, PackScheme,
    RedistScheme, UnpackOptions, UnpackScheme,
};
use hpf_distarray::{ArrayDesc, DimLayout, Dist, GlobalArray};
use hpf_machine::{CostModel, FaultPlan, Machine, MachineError, ProcGrid, RunOutput};

/// SplitMix64 for reproducible pseudo-random draws.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
    /// Uniform draw in `[0, hi]`.
    fn prob(&mut self, hi: f64) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64 * hi
    }
}

fn main() {
    let mut seed: u64 = 1;
    let mut iters: usize = 20;
    let mut reuse_plans = false;
    let mut recover = false;
    let mut workers: Option<usize> = None;
    let mut trace_out: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed requires an integer");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--iters" => {
                iters = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--iters requires an integer");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--reuse-plans" => {
                reuse_plans = true;
                i += 1;
            }
            "--recover" => {
                recover = true;
                i += 1;
            }
            "--workers" => {
                workers = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| {
                            eprintln!("--workers requires an integer");
                            std::process::exit(2);
                        }),
                );
                i += 2;
            }
            "--trace-out" => {
                trace_out = Some(args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--trace-out requires a path");
                    std::process::exit(2);
                }));
                i += 2;
            }
            other => {
                eprintln!(
                    "unknown argument {other}; usage: \
                     chaos [--seed N] [--iters N] [--reuse-plans] [--recover] \
                     [--workers N] [--trace-out FILE]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut rng = Rng(seed);
    let mut stats = Stats::default();
    for iter in 0..iters {
        // On any panic the iteration context is printed first, so a failure
        // is reproducible with `--seed`.
        println!("iter {iter} (seed {seed}):");
        run_iteration(
            &mut rng,
            seed,
            iter,
            reuse_plans,
            recover,
            workers,
            &mut stats,
        );
    }
    if let Some(path) = &trace_out {
        write_trace(seed, path);
    }
    println!(
        "chaos: {iters} iterations passed (seed {seed}): {} roundtrips, {} crash drills, \
         {} recoveries ({} frames replayed), {} retransmissions, {} duplicates dropped, \
         mean retry overhead {:.1}%, mean simulated latency overhead {:.1}%",
        stats.roundtrips,
        stats.crash_drills,
        stats.recoveries,
        stats.replayed_frames,
        stats.retransmits,
        stats.dup_drops,
        100.0 * stats.retry_overhead_sum / stats.roundtrips.max(1) as f64,
        100.0 * stats.latency_overhead_sum / stats.roundtrips.max(1) as f64,
    );
}

#[derive(Default)]
struct Stats {
    roundtrips: usize,
    crash_drills: usize,
    recoveries: usize,
    replayed_frames: u64,
    retransmits: u64,
    dup_drops: u64,
    retry_overhead_sum: f64,
    latency_overhead_sum: f64,
}

fn run_iteration(
    rng: &mut Rng,
    seed: u64,
    iter: usize,
    reuse_plans: bool,
    recover: bool,
    workers: Option<usize>,
    stats: &mut Stats,
) {
    // Random rank-1 or rank-2 configuration; every dimension P·W | N.
    let rank = 1 + rng.below(2);
    let mut grid_dims = Vec::new();
    let mut dists = Vec::new();
    let mut shape = Vec::new();
    for _ in 0..rank {
        let (p, w, t) = (1 + rng.below(3), 1 + rng.below(3), 1 + rng.below(3));
        grid_dims.push(p);
        dists.push(Dist::BlockCyclic(w));
        shape.push(p * w * t);
    }
    let n: usize = shape.iter().product();
    let grid = ProcGrid::new(&grid_dims);
    let desc = ArrayDesc::new(&shape, &grid, &dists).unwrap();
    let density = 10 + rng.below(80);
    let mask_bits: Vec<bool> = (0..n).map(|_| rng.below(100) < density).collect();
    let values: Vec<i32> = (0..n).map(|_| rng.below(2000) as i32 - 1000).collect();
    let a = GlobalArray::from_vec(&shape, values);
    let m = GlobalArray::from_vec(&shape, mask_bits);

    // Sweep the schemes: each iteration exercises one PACK scheme, one
    // UNPACK scheme, and (on redistribution iterations) one Red variant.
    let pscheme = PackScheme::ALL[iter % PackScheme::ALL.len()];
    let uscheme = UnpackScheme::ALL[iter % UnpackScheme::ALL.len()];
    let redist = match iter % 4 {
        1 => Some(RedistScheme::SelectedData),
        3 => Some(RedistScheme::WholeArrays),
        _ => None,
    };
    let opts = PackOptions::new(pscheme);
    let uopts = UnpackOptions::new(uscheme);

    // A non-crash fault plan: every probability ≤ 20 %.
    let has_delay = rng.below(2) == 0;
    let plan = FaultPlan::new(rng.next())
        .with_drop(rng.prob(0.2))
        .with_duplicate(rng.prob(0.2))
        .with_reorder(rng.prob(0.2))
        .with_delay(if has_delay { rng.prob(0.2) } else { 0.0 }, 200_000.0);
    let ctx = format!(
        "seed {seed} iter {iter}: shape {shape:?}, grid {grid_dims:?}, density {density}%, \
         {pscheme:?}/{uscheme:?}, redist {redist:?}, plan {plan:?}"
    );
    println!("  {ctx}");

    let mut clean = Machine::new(grid.clone(), CostModel::cm5()).with_test_preset();
    if let Some(w) = workers {
        clean = clean.with_workers(w);
    }
    let faulty = clean.clone().with_faults(plan.clone());

    // ---- PACK: oracle, clean, faulted, faulted-again (determinism) ------
    let want_v = pack_seq(&a, &m, None);
    let (ap, mp) = (a.partition(&desc), m.partition(&desc));
    let (d, apr, mpr, o) = (&desc, &ap, &mp, &opts);
    let pack_prog = move |proc: &mut hpf_machine::Proc<'_>| match redist {
        None if reuse_plans => {
            let plan = plan_pack(proc, d, &mpr[proc.id()], o).unwrap();
            let mut out = hpf_core::PackOutput {
                local_v: Vec::new(),
                size: 0,
                v_layout: None,
            };
            plan.execute_into(proc, &apr[proc.id()], &mut out).unwrap();
            let first = out.local_v.clone();
            // Two more executes rotate through both pool slots, so the fault
            // schedule gets to retransmit an Arc-shared pooled payload while
            // its slot is being reused.
            for _ in 0..2 {
                plan.execute_into(proc, &apr[proc.id()], &mut out).unwrap();
                assert_eq!(out.local_v, first, "re-execute diverged under faults");
            }
            out
        }
        None => pack(proc, d, &apr[proc.id()], &mpr[proc.id()], o).unwrap(),
        Some(r) => pack_redistributed(proc, d, &apr[proc.id()], &mpr[proc.id()], r, o).unwrap(),
    };
    let pack_base = clean
        .try_run(pack_prog)
        .unwrap_or_else(|e| panic!("clean PACK failed: {e}\n{ctx}"));
    let got = assemble_packed(&pack_base);
    assert_eq!(got, want_v, "clean PACK diverged from oracle\n{ctx}");
    let fa = faulty
        .try_run(pack_prog)
        .unwrap_or_else(|e| panic!("faulted PACK failed: {e}\n{ctx}"));
    let fb = faulty
        .try_run(pack_prog)
        .unwrap_or_else(|e| panic!("faulted PACK failed: {e}\n{ctx}"));
    check_against_clean(&pack_base, &fa, &fb, has_delay, &ctx, stats);
    assert_eq!(
        fa.results, pack_base.results,
        "faults changed PACK results\n{ctx}"
    );

    // ---- UNPACK the packed vector back under the same mask --------------
    let size = count_seq(&m);
    let n_prime = (size + rng.below(4)).max(1);
    let w_prime = 1 + rng.below(6);
    let v: Vec<i32> = (0..n_prime as i32).map(|i| 7000 + i).collect();
    let want_u = unpack_seq(&v, &m, &a);
    let v_layout = DimLayout::new_general(n_prime, grid.nprocs(), w_prime).unwrap();
    let v_locals: Vec<Vec<i32>> = (0..grid.nprocs())
        .map(|p| {
            (0..v_layout.local_len(p))
                .map(|l| v[v_layout.global_of(p, l)])
                .collect()
        })
        .collect();
    let (vpr, vl, uo) = (&v_locals, &v_layout, &uopts);
    let unpack_prog = move |proc: &mut hpf_machine::Proc<'_>| {
        if reuse_plans {
            let plan = plan_unpack(proc, d, &mpr[proc.id()], vl, uo).unwrap();
            let mut out = Vec::new();
            plan.execute_into(proc, &apr[proc.id()], &vpr[proc.id()], &mut out)
                .unwrap();
            let first = out.clone();
            for _ in 0..2 {
                plan.execute_into(proc, &apr[proc.id()], &vpr[proc.id()], &mut out)
                    .unwrap();
                assert_eq!(out, first, "re-execute diverged under faults");
            }
            out
        } else {
            unpack(
                proc,
                d,
                &mpr[proc.id()],
                &apr[proc.id()],
                &vpr[proc.id()],
                vl,
                uo,
            )
            .unwrap()
        }
    };
    let base = clean
        .try_run(unpack_prog)
        .unwrap_or_else(|e| panic!("clean UNPACK failed: {e}\n{ctx}"));
    assert_eq!(
        GlobalArray::assemble(&desc, &base.results),
        want_u,
        "clean UNPACK diverged from oracle\n{ctx}"
    );
    let fa = faulty
        .try_run(unpack_prog)
        .unwrap_or_else(|e| panic!("faulted UNPACK failed: {e}\n{ctx}"));
    let fb = faulty
        .try_run(unpack_prog)
        .unwrap_or_else(|e| panic!("faulted UNPACK failed: {e}\n{ctx}"));
    check_against_clean(&base, &fa, &fb, has_delay, &ctx, stats);
    assert_eq!(
        fa.results, base.results,
        "faults changed UNPACK results\n{ctx}"
    );
    stats.roundtrips += 1;

    // ---- crash drill ----------------------------------------------------
    if recover {
        // Recovery drill, every iteration: a scheduled crash (send-side on
        // even iterations, receive-side on odd) goes through the
        // recoverable runner. Recovered results must match the clean run
        // bit-exactly; two recovered runs must also agree on their
        // simulated clocks (clocks are not compared against the
        // non-recoverable run because recovery routes sync frames through
        // the sequenced transport, shifting the per-sequence delay draws).
        let victim = rng.below(grid.nprocs());
        let step = 1 + rng.below(3) as u64;
        let crash_plan = if iter.is_multiple_of(2) {
            plan.with_crash(victim, step)
        } else {
            plan.with_crash_at_recv(victim, step)
        };
        // Metrics ride along so the drill can check the replay-log memory
        // floor below; they are bookkeeping only and must not perturb the
        // simulated clocks or results.
        let crashing = clean.clone().with_faults(crash_plan).with_metrics(true);
        let ra = crashing
            .run_recoverable(pack_prog)
            .unwrap_or_else(|e| panic!("recovery drill failed: {e}\n{ctx}"));
        let rb = crashing
            .run_recoverable(pack_prog)
            .unwrap_or_else(|e| panic!("recovery drill failed: {e}\n{ctx}"));
        assert_eq!(
            ra.results, pack_base.results,
            "recovered PACK diverged from the clean run\n{ctx}"
        );
        assert_eq!(ra.results, rb.results, "recovered runs disagree\n{ctx}");
        for (ca, cb) in ra.clocks.iter().zip(&rb.clocks) {
            assert_eq!(
                ca.now_ns, cb.now_ns,
                "recovered runs' simulated clocks diverged\n{ctx}"
            );
        }
        // Post-recovery memory floor: every epoch boundary truncates the
        // replay log down to the frames its fresh checkpoint does not yet
        // cover, so once the run completes — crash or no crash — each
        // processor's `mem.replay_log.cur` gauge must sit at zero. A
        // nonzero residue means a replay re-charged frames it never
        // released (double-counting) or a boundary skipped truncation.
        for (pid, snap) in ra.metrics.iter().enumerate() {
            let g = &snap.gauges["mem.replay_log.cur"];
            assert_eq!(
                g.last, 0,
                "proc {pid}: replay log retains {} bytes past its \
                 truncation floor after recovery\n{ctx}",
                g.last
            );
        }
        let rec = ra.recovery.as_ref().expect("recoverable run reports stats");
        if rec.replays > 0 {
            stats.recoveries += 1;
            stats.replayed_frames += rec.replayed_frames;
        }
        return;
    }

    // Fail-fast drill: a scheduled crash must surface as a typed error,
    // never as a hang.
    if iter.is_multiple_of(3) {
        let victim = rng.below(grid.nprocs());
        let step = 1 + rng.below(3) as u64;
        let crashing = clean.clone().with_faults(plan.with_crash(victim, step));
        match crashing.try_run(pack_prog) {
            // The victim never reached its crash step (few sends): fine,
            // but the results must still be correct.
            Ok(out) => assert_eq!(
                out.results, pack_base.results,
                "crash-free run must still be correct\n{ctx}"
            ),
            Err(e) => match e.root_cause() {
                MachineError::ProcCrashed { proc, step: s } => {
                    assert_eq!(
                        (*proc, *s),
                        (victim, step),
                        "wrong crash attribution\n{ctx}"
                    );
                    stats.crash_drills += 1;
                }
                other => panic!("crash drill produced {other} instead of ProcCrashed\n{ctx}"),
            },
        }
    }
}

/// Run one dedicated fault-injected PACK with event tracing and metrics on,
/// and write it as Chrome trace_event JSON. The plan's drop and duplicate
/// rates are high enough that retransmit / dup-drop / fault-verdict
/// annotations are guaranteed to appear alongside the send/recv events.
fn write_trace(seed: u64, path: &str) {
    let grid = ProcGrid::line(4);
    let desc = ArrayDesc::new(&[64], &grid, &[Dist::BlockCyclic(2)]).unwrap();
    let n = 64usize;
    let values: Vec<i32> = (0..n as i32).map(|i| i * 3 - 50).collect();
    let mask_bits: Vec<bool> = (0..n).map(|i| i % 3 != 0).collect();
    let a = GlobalArray::from_vec(&[n], values);
    let m = GlobalArray::from_vec(&[n], mask_bits);
    let plan = FaultPlan::new(seed)
        .with_drop(0.3)
        .with_duplicate(0.3)
        .with_reorder(0.2);
    let machine = Machine::new(grid, CostModel::cm5())
        .with_test_preset()
        .with_tracing(true)
        .with_metrics(true)
        .with_faults(plan);
    let (ap, mp) = (a.partition(&desc), m.partition(&desc));
    let (d, apr, mpr) = (&desc, &ap, &mp);
    let opts = PackOptions::new(PackScheme::CompactMessage);
    let o = &opts;
    let out = machine.run(move |proc| {
        pack(proc, d, &apr[proc.id()], &mpr[proc.id()], o)
            .unwrap()
            .size
    });
    std::fs::write(path, out.chrome_trace_json()).expect("write trace file");
    let metrics = out.merged_metrics();
    println!(
        "trace written to {path} ({} events, {} retransmits, {} dup drops) — \
         load in Perfetto or chrome://tracing",
        out.total_events(),
        metrics.counter("transport.retransmits"),
        metrics.counter("transport.dup_drops"),
    );
}

/// Gather a distributed PACK result into the global vector.
fn assemble_packed(out: &RunOutput<hpf_core::PackOutput<i32>>) -> Vec<i32> {
    let mut got = vec![0i32; out.results[0].size];
    if let Some(layout) = out.results[0].v_layout {
        for (p, r) in out.results.iter().enumerate() {
            for (l, &x) in r.local_v.iter().enumerate() {
                got[layout.global_of(p, l)] = x;
            }
        }
    }
    got
}

/// Shared assertions for a pair of faulted runs against the clean run:
/// deterministic clocks, and bit-identical clocks when no delay is injected.
fn check_against_clean<R: PartialEq + std::fmt::Debug>(
    base: &RunOutput<R>,
    fa: &RunOutput<R>,
    fb: &RunOutput<R>,
    has_delay: bool,
    ctx: &str,
    stats: &mut Stats,
) {
    assert_eq!(
        fa.results, fb.results,
        "faulted runs disagree with each other\n{ctx}"
    );
    for (ca, cb) in fa.clocks.iter().zip(&fb.clocks) {
        assert_eq!(
            ca.now_ns, cb.now_ns,
            "injected delays are not deterministic\n{ctx}"
        );
    }
    if !has_delay {
        for (cc, cf) in base.clocks.iter().zip(&fa.clocks) {
            assert_eq!(
                cc.now_ns, cf.now_ns,
                "drop/dup/reorder faults must not change simulated time\n{ctx}"
            );
        }
    }
    stats.retransmits += fa.total_retransmits();
    stats.dup_drops += fa.total_dup_drops();
    stats.retry_overhead_sum += fa.retry_overhead();
    let base_ms = base.max_time_ms();
    if base_ms > 0.0 {
        stats.latency_overhead_sum += (fa.max_time_ms() - base_ms) / base_ms;
    }
}
