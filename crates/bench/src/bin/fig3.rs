//! Figure 3 — local computation time (msec) for the three PACK schemes as a
//! function of block size, at several mask densities.
//!
//! "Local computation" is the ranking-stage local work (excluding the
//! prefix-reduction-sum) plus message composition/decomposition in the
//! redistribution stage — exactly the paper's measurement. Expected shape:
//! time grows as the block size shrinks (tile count grows); SSS is flattest
//! (best at cyclic), CSS/CMS win from β₁/β₂ onward, most clearly at high
//! density.

use hpf_bench::{block_sizes, ms, pack_scheme_opts, paper_masks, time_pack, ExpConfig, Table};

fn run_panel(title: &str, shape: &[usize], grid: &[usize], seed: u64) {
    let masks = paper_masks(shape.len(), seed);
    for mask in [masks[0], masks[2], masks[4], masks[5]] {
        println!("\n{title}, mask {}:", mask.label());
        let mut t = Table::new(vec!["Block Size", "SSS", "CSS", "CMS"]);
        for w in block_sizes(shape, grid) {
            let cfg = ExpConfig::new(shape, grid, w, mask);
            let mut row = vec![w.to_string()];
            for (_, opts) in pack_scheme_opts() {
                row.push(ms(time_pack(&cfg, &opts).local_ms()));
            }
            t.row(row);
        }
        t.print();
    }
}

fn main() {
    println!("Figure 3: local computation time (msec) for three schemes in PACK");
    println!("(SSS: simple storage, CSS: compact storage, CMS: compact message)");

    run_panel("1-D, N = 65536, P = 16", &[65536], &[16], 42);
    run_panel("2-D, 512 x 512, P = 4x4", &[512, 512], &[4, 4], 42);
}
