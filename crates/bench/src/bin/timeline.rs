//! Timeline view: per-processor Gantt charts of a PACK and an UNPACK run,
//! showing where simulated time goes — the local scan, the per-dimension
//! prefix-reduction-sum wavefront, and the many-to-many exchange.
//!
//! Usage:
//! ```sh
//! cargo run -p hpf-bench --release --bin timeline -- [N] [P] [W] [density%] \
//!     [--trace-out FILE]
//! # defaults: N = 16384, P = 8, W = 16, 50%
//! # --trace-out writes the PACK run as Chrome trace_event JSON
//! # (open in Perfetto / chrome://tracing)
//! ```

use hpf_core::{pack, unpack, MaskPattern, PackOptions, PackScheme, UnpackOptions, UnpackScheme};
use hpf_distarray::{local_from_fn, ArrayDesc, DimLayout, Dist};
use hpf_machine::{CostModel, Machine, ProcGrid};

fn main() {
    let mut trace_out: Option<String> = None;
    let mut positionals: Vec<String> = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--trace-out" {
            trace_out = Some(args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("--trace-out requires a path");
                std::process::exit(2);
            }));
            i += 2;
        } else {
            positionals.push(args[i].clone());
            i += 1;
        }
    }
    let n: usize = positionals
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16384);
    let p: usize = positionals.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let w: usize = positionals
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let pct: f64 = positionals
        .get(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50.0);
    assert!(n.is_multiple_of(p * w), "need P*W | N");

    let grid = ProcGrid::line(p);
    let machine = Machine::new(grid.clone(), CostModel::cm5()).with_tracing(true);
    let desc = ArrayDesc::new(&[n], &grid, &[Dist::BlockCyclic(w)]).unwrap();
    let pattern = MaskPattern::Random {
        density: pct / 100.0,
        seed: 42,
    };

    println!("PACK (CMS), N = {n}, P = {p}, block-cyclic({w}), density {pct}%:");
    let d = &desc;
    let out = machine.run(move |proc| {
        let a = local_from_fn(d, proc.id(), |g| g[0] as i32);
        let m = local_from_fn(d, proc.id(), |g| pattern.value(g, &[n]));
        pack(
            proc,
            d,
            &a,
            &m,
            &PackOptions::new(PackScheme::CompactMessage),
        )
        .unwrap()
        .size
    });
    print!("{}", out.gantt(100));
    if let Some(path) = &trace_out {
        std::fs::write(path, out.chrome_trace_json()).expect("write trace file");
        println!("(PACK trace written to {path} — load in Perfetto or chrome://tracing)");
    }

    let size = out.results[0];
    let v_layout = DimLayout::new_general(size, p, size.div_ceil(p)).unwrap();
    println!("\nUNPACK (CSS), same mask (note the doubled M phase — request + reply):");
    let vl = &v_layout;
    let out2 = machine.run(move |proc| {
        let m = local_from_fn(d, proc.id(), |g| pattern.value(g, &[n]));
        let f = vec![0i32; d.local_len(proc.id())];
        let v = vec![1i32; vl.local_len(proc.id())];
        unpack(
            proc,
            d,
            &m,
            &f,
            &v,
            vl,
            &UnpackOptions::new(UnpackScheme::CompactStorage),
        )
        .unwrap()
        .len()
    });
    print!("{}", out2.gantt(100));
}
