//! Typed failures of the simulated machine.
//!
//! The paper's two-level model assumes a perfect network and immortal
//! processors; this module is what the simulator reports when those
//! assumptions are deliberately broken (fault injection, see
//! [`crate::fault`]) or when an SPMD program misbehaves. Every failure mode
//! that used to hang or panic deep inside a processor thread is converted
//! into a [`MachineError`] naming the processor (and, where it exists, the
//! peer/tag) at fault, and [`crate::Machine::try_run`] returns it as a
//! structured `Err` after aborting all peers via a poison broadcast.

use std::fmt;
use std::time::Duration;

/// A structured machine-level failure, as returned by
/// [`crate::Machine::try_run`].
///
/// The variant always names the processor where the failure originated;
/// [`MachineError::proc`] extracts it uniformly.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// The SPMD program closure panicked on one processor.
    ProcPanicked {
        /// The panicking processor.
        proc: usize,
        /// The panic payload rendered as text.
        msg: String,
    },
    /// A fault plan crashed this processor at a scheduled send or receive
    /// step (see [`crate::fault::FaultPlan::with_crash`] and
    /// [`crate::fault::FaultPlan::with_crash_at_recv`]).
    ProcCrashed {
        /// The crashed processor.
        proc: usize,
        /// The 1-based send or receive count at which the crash fired.
        step: u64,
    },
    /// A receive posted by `proc` saw nothing matching from `src` within the
    /// machine's receive timeout — almost always a deadlocked or mismatched
    /// program, or a crashed peer.
    RecvTimeout {
        /// The waiting processor.
        proc: usize,
        /// The expected source processor.
        src: usize,
        /// The expected tag.
        tag: u64,
        /// The configured timeout that expired.
        timeout: Duration,
    },
    /// The reliable transport exhausted its retries for one message: the
    /// destination never acknowledged despite repeated retransmission.
    Unreachable {
        /// The sending processor.
        proc: usize,
        /// The unresponsive destination.
        dst: usize,
        /// The sequence number of the undeliverable message.
        seq: u64,
        /// Transmission attempts made (including the original send).
        attempts: u32,
    },
    /// A processor finished with unconsumed messages in its mailbox,
    /// indicating mismatched send/recv structure.
    LeftoverMessages {
        /// The processor with leftover traffic.
        proc: usize,
        /// Number of unconsumed messages.
        count: usize,
    },
    /// This processor was aborted because a peer failed first; `cause` is
    /// the originating failure.
    Poisoned {
        /// The aborted (innocent) processor.
        proc: usize,
        /// The root failure on the originating processor.
        cause: Box<MachineError>,
    },
}

impl MachineError {
    /// The processor on which this error was raised.
    pub fn proc(&self) -> usize {
        match *self {
            MachineError::ProcPanicked { proc, .. }
            | MachineError::ProcCrashed { proc, .. }
            | MachineError::RecvTimeout { proc, .. }
            | MachineError::Unreachable { proc, .. }
            | MachineError::LeftoverMessages { proc, .. }
            | MachineError::Poisoned { proc, .. } => proc,
        }
    }

    /// Follow [`MachineError::Poisoned`] links to the originating failure.
    pub fn root_cause(&self) -> &MachineError {
        match self {
            MachineError::Poisoned { cause, .. } => cause.root_cause(),
            other => other,
        }
    }

    /// True iff this is a secondary (poison) abort rather than the origin.
    pub fn is_poisoned(&self) -> bool {
        matches!(self, MachineError::Poisoned { .. })
    }
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::ProcPanicked { proc, msg } => {
                write!(f, "proc {proc} panicked: {msg}")
            }
            MachineError::ProcCrashed { proc, step } => {
                write!(f, "proc {proc} crashed (fault-injected) at step {step}")
            }
            MachineError::RecvTimeout {
                proc,
                src,
                tag,
                timeout,
            } => write!(
                f,
                "proc {proc}: receive from {src} tag {tag} timed out after {timeout:?} — \
                 deadlock or crashed peer?"
            ),
            MachineError::Unreachable {
                proc,
                dst,
                seq,
                attempts,
            } => write!(
                f,
                "proc {proc}: message seq {seq} to {dst} unacknowledged after {attempts} \
                 attempts — peer unreachable"
            ),
            MachineError::LeftoverMessages { proc, count } => write!(
                f,
                "proc {proc} finished with {count} unconsumed message(s) — mismatched send/recv"
            ),
            MachineError::Poisoned { proc, cause } => {
                write!(f, "proc {proc} aborted by peer failure: {cause}")
            }
        }
    }
}

impl std::error::Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_and_root_cause_unwrap_poison_chains() {
        let origin = MachineError::RecvTimeout {
            proc: 3,
            src: 1,
            tag: 7,
            timeout: Duration::from_secs(5),
        };
        let poisoned = MachineError::Poisoned {
            proc: 0,
            cause: Box::new(origin.clone()),
        };
        assert_eq!(poisoned.proc(), 0);
        assert_eq!(poisoned.root_cause(), &origin);
        assert!(poisoned.is_poisoned());
        assert!(!origin.is_poisoned());
        assert_eq!(origin.proc(), 3);
    }

    #[test]
    fn displays_name_the_failing_parties() {
        let e = MachineError::RecvTimeout {
            proc: 2,
            src: 5,
            tag: 9,
            timeout: Duration::from_millis(50),
        };
        let s = e.to_string();
        assert!(
            s.contains("proc 2") && s.contains("from 5") && s.contains("tag 9"),
            "{s}"
        );
        assert!(s.contains("deadlock"), "{s}");
        let u = MachineError::Unreachable {
            proc: 1,
            dst: 4,
            seq: 17,
            attempts: 30,
        }
        .to_string();
        assert!(u.contains("seq 17") && u.contains("unreachable"), "{u}");
        let l = MachineError::LeftoverMessages { proc: 0, count: 2 }.to_string();
        assert!(l.contains("unconsumed"), "{l}");
    }
}
