//! Typed message transport between virtual processors.
//!
//! Each processor owns one unbounded MPSC channel; every other processor
//! holds a sender clone. Messages are matched on `(source, tag)`;
//! out-of-order arrivals (possible because different sources interleave) are
//! buffered in a per-processor mailbox. Per-source FIFO order is guaranteed
//! by the channel, so `(source, tag)` plus deterministic phase structure is
//! enough to disambiguate every algorithm in this workspace.
//!
//! Payloads travel as `Arc<dyn Any>`: the sender wraps the value once, and
//! every party that needs to keep it — the reliable transport's retransmit
//! buffer, a broadcast fan-out, a pooled send slot — holds a refcount
//! instead of a deep copy. The typed receive unwraps the `Arc` when it is
//! the last holder (the fault-free common case) and only falls back to
//! [`Payload::clone_payload`] when the transport still holds the buffer for
//! a possible retransmission; those rare copies are surfaced through the
//! `payload.clone_words` metric.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::cost::Words;
use crate::obs::Gauge;

/// A sender-side memory charge riding with a packet: the payload's bytes
/// are added to the owning sender's `mem.payload.cur` gauge on creation
/// and released when the *last* holder of the charge drops — wire copies,
/// the retransmit buffer, the crash-recovery replay log, and mailbox
/// checkpoints all share it by refcount, so the payload is charged exactly
/// once, at the owning sender, for exactly as long as any copy is alive.
pub(crate) struct PayloadCharge {
    gauge: Arc<Gauge>,
    bytes: u64,
}

impl PayloadCharge {
    /// Charge `bytes` against `gauge`, releasing on drop.
    pub(crate) fn new(gauge: Arc<Gauge>, bytes: u64) -> Self {
        gauge.add(bytes);
        PayloadCharge { gauge, bytes }
    }
}

impl Drop for PayloadCharge {
    fn drop(&mut self) {
        self.gauge.sub(self.bytes);
    }
}

/// Plain-old-data element that can travel in a message.
///
/// `WORDS` is the element's size in 4-byte machine words — the unit the cost
/// model's `μ` is charged per. The paper's arrays hold 4-byte elements, so
/// `i32::WORDS == 1`, while an `(index, value)` pair costs 2 words, which is
/// exactly how Section 6.4.1 counts the simple-scheme message size `2·E_i`.
pub trait Wire: Copy + Send + Sync + std::fmt::Debug + 'static {
    /// Size of one element in 4-byte words.
    const WORDS: Words;
}

macro_rules! impl_wire {
    ($($t:ty => $w:expr),* $(,)?) => {
        $(impl Wire for $t { const WORDS: Words = $w; })*
    };
}

impl_wire! {
    u8 => 1,   // sub-word payloads still pay a word on the wire
    bool => 1,
    i32 => 1,
    u32 => 1,
    f32 => 1,
    i64 => 2,
    u64 => 2,
    f64 => 2,
    usize => 2,
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    const WORDS: Words = A::WORDS + B::WORDS;
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    const WORDS: Words = A::WORDS + B::WORDS + C::WORDS;
}

impl<T: Wire, const N: usize> Wire for [T; N] {
    const WORDS: Words = T::WORDS * N;
}

/// A payload that knows its own size on the wire.
///
/// Blanket-implemented for `Vec<T: Wire>`; message-format structs (e.g. the
/// compact message scheme's segment stream) implement it directly so that
/// the charged volume matches the paper's accounting exactly.
pub trait Payload: Send + Sync + 'static {
    /// Message volume in 4-byte words.
    fn wire_words(&self) -> Words;

    /// A type-erased copy of the payload. Only used when a typed receive
    /// finds the `Arc` still shared (the transport is holding the buffer
    /// for a possible retransmission); implementations are one
    /// `Box::new(self.clone())` line.
    fn clone_payload(&self) -> Box<dyn Any + Send>;
}

impl<T: Wire> Payload for Vec<T> {
    fn wire_words(&self) -> Words {
        self.len() * T::WORDS
    }

    fn clone_payload(&self) -> Box<dyn Any + Send> {
        Box::new(self.clone())
    }
}

impl Payload for () {
    fn wire_words(&self) -> Words {
        0
    }

    fn clone_payload(&self) -> Box<dyn Any + Send> {
        Box::new(())
    }
}

/// `Arc<P>` is itself a payload: cloning is a refcount bump, so fan-out
/// paths (broadcast) wrap their buffer once and share it across all child
/// sends while each packet still carries a unique outer value.
impl<P: Payload> Payload for Arc<P> {
    fn wire_words(&self) -> Words {
        (**self).wire_words()
    }

    fn clone_payload(&self) -> Box<dyn Any + Send> {
        Box::new(Arc::clone(self))
    }
}

/// One in-flight message.
pub struct Packet {
    /// Sender's global processor id.
    pub src: usize,
    /// Algorithm-chosen tag; disambiguates concurrent conversations.
    pub tag: u64,
    /// Simulated time at which the message is fully available at the
    /// receiver (`sender_time_at_send + τ + μ·words`). Zero-cost for
    /// self-messages.
    pub arrival_ns: f64,
    /// Charged message volume.
    pub words: Words,
    /// The payload, shared by refcount with any party that must keep it
    /// (retransmit buffer, pooled slot); downcast by the typed receive.
    pub data: Arc<dyn Any + Send + Sync>,
    /// Memory-accounting charge against the sender's payload gauge, shared
    /// by every copy of the packet and released when the last drops. `None`
    /// when the sending machine has no metrics (or the send is free:
    /// self-sends, zero-word padding, pooled slots charged to `pool`).
    pub(crate) charge: Option<Arc<PayloadCharge>>,
}

/// Cloning a packet bumps the payload refcount — the property the crash
/// recovery replay log (see [`crate::recovery`]) relies on to retain frames
/// for one epoch at a refcount bump per frame.
impl Clone for Packet {
    fn clone(&self) -> Self {
        Packet {
            src: self.src,
            tag: self.tag,
            arrival_ns: self.arrival_ns,
            words: self.words,
            data: Arc::clone(&self.data),
            charge: self.charge.clone(),
        }
    }
}

/// What actually travels on a processor's channel: either a data packet
/// (raw on the fault-free fast path, sequence-numbered under a
/// [`crate::fault::FaultPlan`]) or control traffic. Control frames model the
/// CM-5's separate control network: they are never fault-injected, never
/// charged, and never counted as application traffic.
pub(crate) enum Frame {
    /// An unsequenced data packet (fault-free fast path; also carries the
    /// uncharged clock-synchronisation traffic).
    Raw(Packet),
    /// A sequence-numbered data packet on the reliable transport. `seq`
    /// orders all data from one sender, across tags.
    Data {
        /// Per-link sequence number, starting at 0.
        seq: u64,
        /// The packet itself.
        pkt: Packet,
    },
    /// Control-network acknowledgement of `Data { seq }` from processor
    /// `from`.
    Ack {
        /// The acknowledging processor (the data packet's destination).
        from: usize,
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// Abort broadcast: some processor failed with the carried error; all
    /// receivers must stop promptly instead of waiting out their timeouts.
    Poison(crate::error::MachineError),
}

/// Per-key FIFO queues are kept (empty) after draining so steady-state
/// traffic over a fixed set of `(src, tag)` pairs never re-allocates.
const LANE_CAPACITY: usize = 16;

/// Per-processor mailbox buffering packets that arrived before the matching
/// `recv` was posted. Held packets are indexed by `(src, tag)` so matching
/// is O(1) regardless of how many unrelated packets are queued; each lane
/// is FIFO, preserving per-source channel order. Cloning (epoch
/// checkpointing) copies the index but shares every payload by refcount.
#[derive(Default, Clone)]
pub struct Mailbox {
    lanes: HashMap<(usize, u64), VecDeque<Packet>>,
    held: usize,
}

impl Mailbox {
    /// An empty mailbox.
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// Take the earliest held packet matching `(src, tag)`, if any.
    pub fn take(&mut self, src: usize, tag: u64) -> Option<Packet> {
        let p = self.lanes.get_mut(&(src, tag))?.pop_front()?;
        self.held -= 1;
        Some(p)
    }

    /// Stash a non-matching packet for a later receive.
    pub fn hold(&mut self, p: Packet) {
        self.held += 1;
        self.lanes
            .entry((p.src, p.tag))
            .or_insert_with(|| VecDeque::with_capacity(LANE_CAPACITY))
            .push_back(p);
    }

    /// Number of held packets (used by the driver to detect leftover traffic).
    pub fn len(&self) -> usize {
        self.held
    }

    /// True iff no packets are held.
    pub fn is_empty(&self) -> bool {
        self.held == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_match_paper_accounting() {
        // A packed element is one word...
        assert_eq!(<i32 as Wire>::WORDS, 1);
        // ...and a (rank, value) pair is two words: the simple-scheme message
        // of E_i elements is 2*E_i words (Section 6.4.1).
        assert_eq!(<(i32, i32) as Wire>::WORDS, 2);
        assert_eq!(<(u32, u32, i32) as Wire>::WORDS, 3);
        assert_eq!(<[i32; 4] as Wire>::WORDS, 4);
    }

    #[test]
    fn vec_payload_words() {
        let v: Vec<(i32, i32)> = vec![(1, 2); 5];
        assert_eq!(v.wire_words(), 10);
        let e: Vec<i32> = vec![];
        assert_eq!(e.wire_words(), 0);
        // An Arc-wrapped payload charges the inner buffer's volume.
        assert_eq!(Arc::new(v).wire_words(), 10);
    }

    fn pkt(src: usize, tag: u64, order: f64) -> Packet {
        Packet {
            src,
            tag,
            arrival_ns: order,
            words: 0,
            data: Arc::new(Vec::<i32>::new()),
            charge: None,
        }
    }

    #[test]
    fn mailbox_matches_src_and_tag_fifo() {
        let mut m = Mailbox::new();
        m.hold(pkt(1, 7, 0.0));
        m.hold(pkt(2, 7, 0.0));
        m.hold(pkt(1, 7, 1.0));
        assert!(m.take(1, 8).is_none());
        assert!(m.take(3, 7).is_none());
        let p = m.take(1, 7).unwrap();
        assert_eq!((p.src, p.tag), (1, 7));
        assert_eq!(m.len(), 2);
        assert!(m.take(2, 7).is_some());
        assert!(m.take(1, 7).is_some());
        assert!(m.is_empty());
    }

    /// Regression test for the O(n) linear-scan `take`: with ~10k
    /// mismatched packets queued ahead, matching must stay keyed (this test
    /// runs in milliseconds on the indexed mailbox, seconds on the scan)
    /// and per-lane FIFO order must be preserved.
    #[test]
    fn deep_mailbox_preserves_per_lane_fifo_order() {
        let mut m = Mailbox::new();
        // 10_000 mismatched packets spread over many (src, tag) lanes.
        for i in 0..10_000usize {
            m.hold(pkt(100 + (i % 97), 1000 + (i % 53) as u64, i as f64));
        }
        // Interleave three lanes we care about, four deep each.
        for round in 0..4 {
            for src in [3usize, 5, 8] {
                m.hold(pkt(src, 42, round as f64));
            }
        }
        assert_eq!(m.len(), 10_012);
        // Each lane drains in hold order despite the noise.
        for src in [3usize, 5, 8] {
            for round in 0..4 {
                let p = m.take(src, 42).expect("lane packet present");
                assert_eq!((p.src, p.tag), (src, 42));
                assert_eq!(p.arrival_ns, round as f64);
            }
            assert!(m.take(src, 42).is_none());
        }
        // The noise lanes also drain FIFO.
        let p1 = m.take(100, 1000).unwrap();
        let p2 = m.take(100, 1000).unwrap();
        assert!(p1.arrival_ns < p2.arrival_ns);
        assert_eq!(m.len(), 9_998);
    }

    proptest::proptest! {
        /// Epoch checkpointing snapshots the mailbox by `Clone`: over an
        /// arbitrary hold/take history, the clone must drain exactly like
        /// the original — same packets, same per-lane FIFO order — while
        /// sharing every payload by refcount.
        #[test]
        fn mailbox_clone_drains_identically(
            ops in proptest::collection::vec(
                (0usize..4, 0u64..3, proptest::arbitrary::any::<bool>()), 0..60),
        ) {
            let mut m = Mailbox::new();
            let mut n = 0u32;
            for (i, &(src, tag, take)) in ops.iter().enumerate() {
                if take {
                    m.take(src, tag);
                } else {
                    n += 1;
                    m.hold(pkt(src, tag, i as f64));
                }
            }
            let mut snap = m.clone();
            proptest::prop_assert_eq!(snap.len(), m.len());
            // Drain both in an identical order and compare every packet.
            for &(src, tag, _) in &ops {
                for _ in 0..n {
                    match (m.take(src, tag), snap.take(src, tag)) {
                        (None, None) => break,
                        (Some(a), Some(b)) => {
                            proptest::prop_assert_eq!(a.src, b.src);
                            proptest::prop_assert_eq!(a.tag, b.tag);
                            proptest::prop_assert_eq!(a.arrival_ns, b.arrival_ns);
                            proptest::prop_assert!(Arc::ptr_eq(&a.data, &b.data),
                                "clone must share payloads, not copy them");
                        }
                        (a, b) => proptest::prop_assert!(
                            false, "drains diverged: {:?} vs {:?}",
                            a.map(|p| (p.src, p.tag)), b.map(|p| (p.src, p.tag))),
                    }
                }
            }
            proptest::prop_assert!(m.is_empty() == snap.is_empty());
        }
    }
}
