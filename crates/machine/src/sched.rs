//! Deterministic cooperative scheduler: virtual processors multiplexed
//! over a bounded worker pool.
//!
//! Each virtual processor keeps its own OS thread as a *stack carrier* (an
//! arbitrary `Fn(&mut Proc) -> R` closure cannot be suspended any other way
//! in stable Rust), but execution is gated by this scheduler: at most
//! `workers` run permits exist, and a carrier may only execute its program
//! while holding one. Every blocking point in [`crate::proc::Proc`] — frame
//! receive, transport flush, clock-sync barrier, buffer-pool back-pressure
//! — releases the permit and parks here; senders wake the destination
//! through [`Scheduler::unpark`].
//!
//! Permits are granted from a ready min-heap keyed on
//! `(simulated time, proc id)` — the lowest simulated clock runs first,
//! ties break to the lowest id — never on OS wake-up order. With one worker
//! the execution order is therefore a pure function of the program; with
//! more workers the grant *order* is still drawn from the same keyed heap,
//! and simulated results are schedule-invariant regardless (message
//! matching is by `(src, tag)` FIFO plus SPMD program order; see
//! DESIGN.md §15).
//!
//! The missed-wakeup race (sender enqueues between a receiver's empty
//! queue probe and its park) is closed by a per-processor wake token:
//! an unpark aimed at a processor that is not parked sets the token, and
//! the next park consumes the token and returns immediately without ever
//! releasing its permit. All state transitions happen under one mutex, so
//! the token handshake needs no memory-ordering subtlety.
//!
//! Parks carry wall-clock deadlines: the existing no-hang guarantees
//! (receive timeouts, reliable-transport retransmissions, pool-checkout
//! stall detection) survive verbatim, re-expressed as scheduler deadlines
//! instead of `Condvar` waits and `yield_now` spins. A timed-out processor
//! re-enters the ready queue and *reacquires a permit before returning*,
//! so the permit invariant (`running ≤ workers`) holds at every instant.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why [`Scheduler::park`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ParkOutcome {
    /// An unpark arrived (or was already pending as a wake token). The
    /// caller should re-probe whatever it was waiting for.
    Woken,
    /// The wall-clock timeout expired first. The processor has already
    /// reacquired a run permit; the caller owns its own deadline logic.
    TimedOut,
}

/// Task lifecycle. `Ready` tasks (and only they) have an entry in the
/// ready heap; `Granted` is the handshake between the grant (made under
/// the lock, possibly by another thread) and the carrier observing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Wants to run; queued in the ready heap awaiting a permit.
    Ready,
    /// Holds a permit; its carrier has not yet resumed.
    Granted,
    /// Holds a permit and is executing on its carrier.
    Running,
    /// Blocked at a park point; holds no permit and no heap entry.
    Parked,
    /// Finished (or crashed); holds nothing. [`Scheduler::enroll`]
    /// re-animates a `Done` task for a crash-recovery respawn.
    Done,
}

struct Inner {
    state: Box<[State]>,
    /// Pending wake per processor: an unpark that arrived while the target
    /// was not parked. Consumed (without sleeping) by the next park.
    token: Box<[bool]>,
    /// Ready processors, keyed by `(simulated-time bits, proc id)`.
    /// Simulated times are finite and non-negative, so the IEEE-754 bit
    /// pattern orders exactly like the float and the heap never sees NaN.
    ready: BinaryHeap<Reverse<(u64, usize)>>,
    /// Each processor's last park key (its simulated clock at the park),
    /// re-used when an unpark or a respawn re-enqueues it.
    key: Box<[u64]>,
    /// Permits currently held (`Granted` + `Running` states).
    running: usize,
}

impl Inner {
    /// Grant permits to the lowest-keyed ready processors while any are
    /// free. Runs under the lock; every state transition that could free a
    /// permit or add a ready task calls this before unlocking.
    fn grant(&mut self, workers: usize, cvs: &[Condvar]) {
        while self.running < workers {
            let Some(Reverse((_, id))) = self.ready.pop() else {
                return;
            };
            debug_assert_eq!(self.state[id], State::Ready, "heap holds only Ready tasks");
            self.state[id] = State::Granted;
            self.running += 1;
            cvs[id].notify_one();
        }
    }
}

/// The worker-pool scheduler shared by one machine run. See the module
/// docs for the protocol.
pub(crate) struct Scheduler {
    inner: Mutex<Inner>,
    /// One condvar per processor: carriers only ever wait on their own.
    cvs: Box<[Condvar]>,
    workers: usize,
}

impl Scheduler {
    /// Build a scheduler for `nprocs` virtual processors over `workers`
    /// permits (clamped to at least one). All processors are pre-enrolled
    /// ready at key `(0, id)` and the first `workers` grants are issued
    /// immediately, so the initial execution order is deterministic no
    /// matter in which order the carrier threads happen to start.
    pub(crate) fn new(nprocs: usize, workers: usize) -> Scheduler {
        let workers = workers.max(1);
        let mut ready = BinaryHeap::with_capacity(nprocs + 1);
        for id in 0..nprocs {
            ready.push(Reverse((0u64, id)));
        }
        let mut inner = Inner {
            state: vec![State::Ready; nprocs].into_boxed_slice(),
            token: vec![false; nprocs].into_boxed_slice(),
            ready,
            key: vec![0u64; nprocs].into_boxed_slice(),
            running: 0,
        };
        let cvs: Box<[Condvar]> = (0..nprocs).map(|_| Condvar::new()).collect();
        inner.grant(workers, &cvs);
        Scheduler {
            inner: Mutex::new(inner),
            cvs,
            workers,
        }
    }

    /// Carrier entry: block until processor `id` is granted a permit, then
    /// mark it running. Called once per carrier thread before the program
    /// closure (and again after [`Scheduler::enroll`] on a respawn).
    pub(crate) fn acquire(&self, id: usize) {
        let mut g = self.inner.lock().unwrap();
        while g.state[id] != State::Granted {
            g = self.cvs[id].wait(g).unwrap();
        }
        g.state[id] = State::Running;
    }

    /// Release the permit and block until woken or `timeout` elapses.
    /// `key_ns` is the processor's current simulated time — the ready-queue
    /// sort key if it must requeue. A pending wake token short-circuits the
    /// park entirely (permit kept, no transition). On timeout the processor
    /// requeues itself ready and *waits for a fresh grant* before
    /// returning, so the caller always holds a permit again.
    pub(crate) fn park(&self, id: usize, key_ns: f64, timeout: Duration) -> ParkOutcome {
        let mut g = self.inner.lock().unwrap();
        debug_assert_eq!(g.state[id], State::Running, "park from a non-running task");
        if std::mem::replace(&mut g.token[id], false) {
            return ParkOutcome::Woken;
        }
        g.state[id] = State::Parked;
        g.key[id] = key_ns.max(0.0).to_bits();
        g.running -= 1;
        g.grant(self.workers, &self.cvs);
        let deadline = Instant::now() + timeout;
        let mut timed_out = false;
        loop {
            if g.state[id] == State::Granted {
                g.state[id] = State::Running;
                return if timed_out {
                    ParkOutcome::TimedOut
                } else {
                    ParkOutcome::Woken
                };
            }
            if timed_out {
                g = self.cvs[id].wait(g).unwrap();
                continue;
            }
            let now = Instant::now();
            if now >= deadline {
                timed_out = true;
                if g.state[id] == State::Parked {
                    // Nobody woke us: requeue ready at our park key. The
                    // grant may well pick us right back (loop top).
                    g.state[id] = State::Ready;
                    let entry = Reverse((g.key[id], id));
                    g.ready.push(entry);
                    g.grant(self.workers, &self.cvs);
                }
                continue;
            }
            g = self.cvs[id].wait_timeout(g, deadline - now).unwrap().0;
        }
    }

    /// Wake processor `id`: senders call this after enqueuing a frame (via
    /// the channel waker), pool slots on `put_back`. Parked targets move to
    /// the ready queue at their park key; any other state records a wake
    /// token so a concurrent or future park cannot miss the signal.
    pub(crate) fn unpark(&self, id: usize) {
        let mut g = self.inner.lock().unwrap();
        match g.state[id] {
            State::Parked => {
                g.state[id] = State::Ready;
                let entry = Reverse((g.key[id], id));
                g.ready.push(entry);
                g.grant(self.workers, &self.cvs);
            }
            State::Done => {}
            _ => g.token[id] = true,
        }
    }

    /// Carrier exit: release the permit for good (program finished,
    /// errored, or crashed). Every carrier calls this exactly once per
    /// (re)spawn, on success and failure paths alike — a leaked permit
    /// would starve the pool.
    pub(crate) fn finish(&self, id: usize) {
        let mut g = self.inner.lock().unwrap();
        debug_assert!(
            matches!(g.state[id], State::Running | State::Granted),
            "finish from a task not holding a permit"
        );
        g.state[id] = State::Done;
        g.token[id] = false;
        g.running -= 1;
        g.grant(self.workers, &self.cvs);
    }

    /// Re-enroll a `Done` processor for a crash-recovery respawn: it
    /// re-enters the ready queue at its last park key and its new carrier
    /// then blocks in [`Scheduler::acquire`] like any other task.
    pub(crate) fn enroll(&self, id: usize) {
        let mut g = self.inner.lock().unwrap();
        debug_assert_eq!(g.state[id], State::Done, "enroll of a live task");
        g.state[id] = State::Ready;
        let entry = Reverse((g.key[id], id));
        g.ready.push(entry);
        g.grant(self.workers, &self.cvs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn initial_grants_go_to_lowest_ids() {
        let s = Scheduler::new(3, 2);
        // Procs 0 and 1 hold the two permits (not 2, despite all three
        // being enrolled ready); acquiring them returns immediately, and a
        // park by one hands the permit to the waiting proc 2.
        s.acquire(0);
        s.acquire(1);
        assert_eq!(s.workers, 2);
        let s = Arc::new(s);
        let s2 = Arc::clone(&s);
        let waiter = std::thread::spawn(move || s2.acquire(2));
        // Parking 0 with a pending token returns immediately instead.
        s.unpark(0);
        assert_eq!(
            s.park(0, 0.0, Duration::from_secs(5)),
            ParkOutcome::Woken,
            "a pending wake token short-circuits the park"
        );
        // A real park releases the permit to proc 2.
        let s3 = Arc::clone(&s);
        let parker = std::thread::spawn(move || s3.park(0, 1.0, Duration::from_secs(5)));
        waiter.join().unwrap();
        // Retiring proc 1 frees a permit; waking 0 claims it.
        s.finish(1);
        s.unpark(0);
        assert_eq!(parker.join().unwrap(), ParkOutcome::Woken);
    }

    #[test]
    fn timeout_reacquires_a_permit() {
        let s = Scheduler::new(2, 1);
        s.acquire(0);
        let t0 = Instant::now();
        // Proc 1 holds no permit yet; proc 0's timed-out park must hand
        // the permit over and then win it back (key 0.0 < proc 1's never
        // being parked means proc 0 requeues behind the grant to 1 — but 1
        // never parks, so 0 only returns once 1 finishes).
        let s = Arc::new(s);
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            s2.acquire(1);
            std::thread::sleep(Duration::from_millis(30));
            s2.finish(1);
        });
        let out = s.park(0, 0.0, Duration::from_millis(5));
        assert_eq!(out, ParkOutcome::TimedOut);
        assert!(t0.elapsed() >= Duration::from_millis(5));
        h.join().unwrap();
        s.finish(0);
    }

    #[test]
    fn unpark_of_done_task_is_a_no_op() {
        let s = Scheduler::new(1, 1);
        s.acquire(0);
        s.finish(0);
        s.unpark(0); // must not panic or grant
        s.enroll(0);
        s.acquire(0);
        s.finish(0);
    }
}
