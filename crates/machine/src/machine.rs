//! The SPMD driver: runs the same program closure on every virtual
//! processor, wiring up the message channels and collecting results and
//! clock reports in processor order.
//!
//! Each virtual processor is a cooperatively scheduled task carried by its
//! own (cheap, mostly-parked) OS thread, and at most
//! [`Machine::with_workers`] of them hold a run permit at any instant (see
//! [`crate::sched`] and DESIGN.md §15). Results, simulated clocks, events,
//! and metrics are identical for every worker-pool size — determinism comes
//! from (src, tag)-FIFO matching plus SPMD program order, never from
//! scheduling — so a single pool carries P=4096 machines a thread-per-proc
//! design could not.
//!
//! Failure handling: each processor thread runs the program closure under
//! `catch_unwind`. When any processor fails — a program panic, a
//! fault-injected crash, a receive timeout, or an unreachable peer — the
//! failing thread broadcasts a poison frame so that peers blocked in
//! receives abort within one poll slice instead of waiting out their own
//! timeouts, and [`Machine::try_run`] returns the originating failure as a
//! structured [`MachineError`]. [`Machine::run`] keeps the panicking
//! interface (propagating program panics verbatim) for callers that treat
//! any failure as fatal.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use crate::chan::{default_capacity, frame_channel_with_capacity, FrameReceiver, FrameSender};

use crate::cost::{CostModel, SimClock};
use crate::error::MachineError;
use crate::fault::FaultPlan;
use crate::message::Frame;
use crate::proc::Proc;
use crate::recovery::{RecoveryState, ResumeCtx};
use crate::report::RunOutput;
use crate::sched::Scheduler;
use crate::topology::ProcGrid;

/// Respawns of one processor before the recovery driver gives up. The crash
/// schedule is disarmed on a respawned processor, so a second respawn of the
/// same processor indicates a recovery bug rather than a second fault; the
/// limit is a backstop against looping, not a tunable.
const MAX_RESPAWNS: u32 = 4;

/// Above this processor count, carrier threads get a reduced stack instead
/// of the platform default (typically 2–8 MiB of reserved address space
/// each): at P=4096 the default would reserve gigabytes for stacks that are
/// mostly parked. SPMD programs here recurse at most logarithmically, so
/// 1 MiB is comfortable.
const LARGE_P: usize = 256;
const CARRIER_STACK_BYTES: usize = 1 << 20;

/// Spawn one carrier thread in `scope`, honouring the large-P stack cap.
fn spawn_carrier<'scope, 'env, F, T>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    nprocs: usize,
    f: F,
) -> std::thread::ScopedJoinHandle<'scope, T>
where
    F: FnOnce() -> T + Send + 'scope,
    T: Send + 'scope,
{
    let mut b = std::thread::Builder::new();
    if nprocs >= LARGE_P {
        b = b.stack_size(CARRIER_STACK_BYTES);
    }
    b.spawn_scoped(scope, f).expect("spawn carrier thread")
}

/// A simulated coarse-grained distributed memory parallel machine: a logical
/// processor grid plus the two-level cost model its clocks charge against.
#[derive(Debug, Clone)]
pub struct Machine {
    grid: ProcGrid,
    cost: CostModel,
    recv_timeout: Duration,
    tracing: bool,
    metrics: bool,
    wall_profiling: bool,
    faults: Option<Arc<FaultPlan>>,
    /// Worker-pool size (run permits); `None` = available parallelism.
    workers: Option<usize>,
    /// Per-processor frame-ring capacity override; `None` = scale-aware
    /// [`default_capacity`].
    chan_capacity: Option<usize>,
}

/// What one processor thread produced besides its result: the original
/// panic payload is kept so [`Machine::run`] can re-raise program panics
/// verbatim.
type Failure = (MachineError, Option<Box<dyn Any + Send>>);

impl Machine {
    /// Build a machine over `grid` with cost constants `cost`.
    pub fn new(grid: ProcGrid, cost: CostModel) -> Self {
        Machine {
            grid,
            cost,
            recv_timeout: Duration::from_secs(120),
            tracing: false,
            metrics: false,
            wall_profiling: false,
            faults: None,
            workers: None,
            chan_capacity: None,
        }
    }

    /// Set the worker-pool size: how many virtual processors may run
    /// simultaneously (clamped to at least 1). Defaults to the host's
    /// available parallelism. A pure wall-clock/throughput knob — results,
    /// simulated clocks, events, and metrics are identical for every value.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// The effective worker-pool size this machine will run with.
    pub fn workers(&self) -> usize {
        self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }

    /// Override the per-processor frame-ring pre-reserve (in frames).
    /// Defaults to the scale-aware [`default_capacity`]; growth past the
    /// ring allocates but never changes results.
    pub fn with_chan_capacity(mut self, frames: usize) -> Self {
        self.chan_capacity = Some(frames.max(1));
        self
    }

    /// The effective per-processor frame-ring capacity.
    pub fn chan_capacity(&self) -> usize {
        self.chan_capacity
            .unwrap_or_else(|| default_capacity(self.nprocs()))
    }

    /// Build the machine's channel set and scheduler: one frame channel per
    /// processor with every receiver's waker attached, ready for carriers.
    fn build_fabric(&self) -> (Vec<FrameSender>, Vec<FrameReceiver>, Arc<Scheduler>) {
        let p = self.nprocs();
        let cap = self.chan_capacity();
        let sched = Arc::new(Scheduler::new(p, self.workers()));
        let mut txs = Vec::with_capacity(p);
        let mut rxs = Vec::with_capacity(p);
        for id in 0..p {
            let (tx, rx) = frame_channel_with_capacity(cap);
            rx.attach_waker(Arc::clone(&sched), id);
            txs.push(tx);
            rxs.push(rx);
        }
        (txs, rxs, sched)
    }

    /// Enable per-processor tracing: the clock's category spans (see
    /// [`crate::trace`]) *and* the structured event log (see [`crate::obs`]),
    /// which together export as Chrome `trace_event` JSON via
    /// [`RunOutput::chrome_trace_json`].
    pub fn with_tracing(mut self, tracing: bool) -> Self {
        self.tracing = tracing;
        self
    }

    /// Enable per-processor metric registries (counters, gauges, log₂
    /// histograms — see [`crate::obs`]), collected into
    /// [`RunOutput::metrics`].
    pub fn with_metrics(mut self, metrics: bool) -> Self {
        self.metrics = metrics;
        self
    }

    /// Enable per-processor wall-clock profiling (see
    /// [`crate::obs::WallProfiler`]), collected into
    /// [`RunOutput::wall_profiles`]. Wall-side only: simulated clocks,
    /// events, and metrics are byte-identical with or without it. Off by
    /// default so the steady-state execute loop stays allocation-free.
    pub fn with_wall_profiling(mut self, wall: bool) -> Self {
        self.wall_profiling = wall;
        self
    }

    /// Convenience: a one-dimensional machine of `p` processors with the
    /// CM-5-flavoured default cost model.
    pub fn line(p: usize) -> Self {
        Self::new(ProcGrid::line(p), CostModel::cm5())
    }

    /// Override the deadlock-detection receive timeout (default 120 s).
    pub fn with_recv_timeout(mut self, t: Duration) -> Self {
        self.recv_timeout = t;
        self
    }

    /// Test-friendly settings: a 5-second receive timeout, so that a
    /// deadlocked or faulted test run fails in seconds instead of minutes.
    pub fn with_test_preset(self) -> Self {
        self.with_recv_timeout(Duration::from_secs(5))
    }

    /// Attach a fault-injection plan. All charged point-to-point traffic is
    /// then routed over the reliable transport, which recovers from every
    /// non-crash fault in the plan (see [`crate::fault`]); a scheduled crash
    /// surfaces as [`MachineError::ProcCrashed`] from [`Machine::try_run`].
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// The attached fault plan, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_deref()
    }

    /// The logical processor grid.
    pub fn grid(&self) -> &ProcGrid {
        &self.grid
    }

    /// The cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Total processor count.
    pub fn nprocs(&self) -> usize {
        self.grid.nprocs()
    }

    /// Run `program` on every virtual processor simultaneously and collect
    /// each processor's return value and clock report, indexed by processor
    /// id.
    ///
    /// The closure receives a [`Proc`] handle carrying the processor's
    /// identity, clock, and message endpoints. Real OS threads give real
    /// parallelism; determinism of results is up to the program (all
    /// algorithms in this workspace are deterministic given their inputs).
    ///
    /// # Panics
    /// Propagates the originating processor's panic verbatim if the program
    /// closure panicked; panics with the [`MachineError`] message for
    /// machine-level failures (receive timeout, fault-injected crash,
    /// unreachable peer, unconsumed messages). Use [`Machine::try_run`] for
    /// a structured error instead.
    pub fn run<R, F>(&self, program: F) -> RunOutput<R>
    where
        R: Send,
        F: Fn(&mut Proc) -> R + Sync,
    {
        match self.run_inner(program) {
            Ok(out) => out,
            Err(failures) => {
                let idx = pick_primary(&failures);
                let mut failures = failures;
                let (err, payload) = failures.swap_remove(idx).1;
                if let Some(p) = payload {
                    resume_unwind(p);
                }
                panic!("{err}");
            }
        }
    }

    /// Like [`Machine::run`], but every failure — including program panics —
    /// comes back as a structured [`MachineError`] naming the processor at
    /// fault. When several processors fail, the originating failure is
    /// returned (poison-aborted bystanders are never selected over a root
    /// cause).
    pub fn try_run<R, F>(&self, program: F) -> Result<RunOutput<R>, MachineError>
    where
        R: Send,
        F: Fn(&mut Proc) -> R + Sync,
    {
        self.run_inner(program).map_err(|failures| {
            let idx = pick_primary(&failures);
            let mut failures = failures;
            failures.swap_remove(idx).1 .0
        })
    }

    /// Like [`Machine::try_run`], but fault-injected processor crashes are
    /// *survived*: the run is divided into epochs by the program's
    /// [`Proc::epoch`] calls, every epoch boundary checkpoints each
    /// processor's recoverable state, and peers keep an `Arc`-backed replay
    /// log of the frames they sent since the receiver's last boundary (see
    /// [`crate::recovery`]). When a processor crashes, the driver respawns
    /// its thread from the last checkpoint, replays the logged frames, and
    /// resumes — the recovered run's results *and* simulated clocks are
    /// bit-identical to a fault-free run of the same program.
    ///
    /// Requirements on `program`: all communication must happen inside
    /// [`Proc::epoch`] bodies (or the program must call `epoch` not at all,
    /// in which case recovery restarts the crashed processor from scratch
    /// and replays everything), and epoch structure must be identical across
    /// processors — each `epoch` ends in a machine-wide barrier.
    ///
    /// Failures other than a scheduled crash (timeouts, panics, unreachable
    /// peers) are not recoverable and come back as `Err`, as in
    /// [`Machine::try_run`]. [`RunOutput::recovery`] carries the recovery
    /// accounting ([`crate::RecoveryStats`]); the modelled recovery cost is
    /// reported there and in the `recovery.*` metrics, never added to the
    /// simulated clocks.
    pub fn run_recoverable<R, F>(&self, program: F) -> Result<RunOutput<R>, MachineError>
    where
        R: Send,
        F: Fn(&mut Proc) -> R + Sync,
    {
        install_quiet_machine_error_hook();
        let p = self.nprocs();
        let rec = Arc::new(RecoveryState::new(p));
        let (txs, rxs, sched) = self.build_fabric();

        type ProcOk<R> = (
            R,
            crate::cost::ClockReport,
            Vec<crate::trace::Span>,
            Vec<u64>,
            Vec<crate::obs::Event>,
            crate::obs::MetricsSnapshot,
            crate::obs::WallProfile,
        );
        let mut out: Vec<Option<Result<ProcOk<R>, Failure>>> = (0..p).map(|_| None).collect();
        let mut failures: Vec<(usize, Failure)> = Vec::new();

        std::thread::scope(|scope| {
            // Unlike `run_inner`, workers report through a channel instead
            // of in-order joins (the driver must react to a crash while the
            // other workers are still parked in receives), and they never
            // poison peers themselves — whether a failure is fatal is the
            // driver's call.
            let (done_tx, done_rx) =
                std::sync::mpsc::channel::<(usize, Result<ProcOk<R>, Failure>, FrameReceiver)>();
            let spawn_worker = |id: usize, rx: FrameReceiver, resume: Option<ResumeCtx>| {
                let txs = &txs;
                let grid = &self.grid;
                let cost = self.cost;
                let program = &program;
                let timeout = self.recv_timeout;
                let tracing = self.tracing;
                let obs = crate::obs::ObsConfig {
                    events: self.tracing,
                    metrics: self.metrics,
                    wall: self.wall_profiling,
                };
                let plan = self.faults.clone();
                let rec = Arc::clone(&rec);
                let done = done_tx.clone();
                let sched = Arc::clone(&sched);
                let respawned = resume.is_some();
                spawn_carrier(scope, p, move || {
                    // A respawned processor re-enters the scheduler: its
                    // previous carrier called `finish` before reporting the
                    // crash (the report the driver acted on), so the Done →
                    // Ready transition here can never race the old carrier.
                    if respawned {
                        sched.enroll(id);
                    }
                    sched.acquire(id);
                    let mut clock = SimClock::new(cost);
                    if tracing {
                        clock.enable_trace();
                    }
                    let mut proc = Proc::new(
                        id,
                        grid,
                        clock,
                        txs,
                        rx,
                        timeout,
                        plan,
                        obs,
                        Arc::clone(&sched),
                    );
                    proc.attach_recovery(rec, resume);
                    let (ac0, ab0) = crate::alloc_counter::thread_totals();
                    let result = catch_unwind(AssertUnwindSafe(|| program(&mut proc)));
                    let (ac1, ab1) = crate::alloc_counter::thread_totals();
                    proc.note_alloc_totals(ac1 - ac0, ab1 - ab0);
                    let outcome: Result<R, Failure> = match result {
                        Ok(r) => match proc.finish_transport() {
                            Ok(()) => {
                                let leftover = proc.leftover_messages();
                                if leftover > 0 {
                                    Err((
                                        MachineError::LeftoverMessages {
                                            proc: id,
                                            count: leftover,
                                        },
                                        None,
                                    ))
                                } else {
                                    Ok(r)
                                }
                            }
                            Err(e) => Err((e, None)),
                        },
                        Err(payload) => match payload.downcast::<MachineError>() {
                            Ok(e) => Err((*e, None)),
                            Err(payload) => {
                                let msg = panic_message(payload.as_ref());
                                Err((MachineError::ProcPanicked { proc: id, msg }, Some(payload)))
                            }
                        },
                    };
                    let (mut clock, comm_row, rx, events, metrics, wall) = proc.into_parts();
                    let trace = clock.take_trace();
                    // Release the run permit strictly before reporting: by
                    // the time the driver sees this message (and possibly
                    // respawns this processor), the scheduler slot is free.
                    sched.finish(id);
                    let _ = done.send((
                        id,
                        outcome
                            .map(|r| (r, clock.report(), trace, comm_row, events, metrics, wall)),
                        rx,
                    ));
                });
            };
            for (id, rx) in rxs.into_iter().enumerate() {
                spawn_worker(id, rx, None);
            }

            let mut respawns = vec![0u32; p];
            let mut poisoned = false;
            let mut parked_rxs = Vec::with_capacity(p);
            let mut pending = p;
            while pending > 0 {
                let (id, outcome, rx) = done_rx.recv().expect("workers outlive the driver loop");
                match outcome {
                    Err((MachineError::ProcCrashed { proc, step }, _))
                        if !poisoned && respawns[proc] < MAX_RESPAWNS =>
                    {
                        respawns[proc] += 1;
                        let resume = ResumeCtx {
                            snapshot: rec.take_snapshot(proc),
                            replay: rec.clone_log(proc),
                        };
                        debug_assert_eq!(proc, id, "a crash fails the crashing processor");
                        let _ = step;
                        // The victim's channel endpoint survives the crash:
                        // frames peers sent meanwhile are still queued in it.
                        spawn_worker(id, rx, Some(resume));
                    }
                    Err(failure) => {
                        if !poisoned {
                            // First fatal failure: abort the survivors.
                            poisoned = true;
                            for (pid, tx) in txs.iter().enumerate() {
                                if pid != id {
                                    tx.send(Frame::Poison(failure.0.clone()));
                                }
                            }
                        }
                        failures.push((id, failure));
                        parked_rxs.push(rx);
                        pending -= 1;
                    }
                    Ok(ok) => {
                        out[id] = Some(Ok(ok));
                        parked_rxs.push(rx);
                        pending -= 1;
                    }
                }
            }
        });

        if !failures.is_empty() {
            let idx = pick_primary(&failures);
            return Err(failures.swap_remove(idx).1 .0);
        }
        let mut results = Vec::with_capacity(p);
        let mut clocks = Vec::with_capacity(p);
        let mut traces = Vec::with_capacity(p);
        let mut comm = Vec::with_capacity(p);
        let mut events = Vec::with_capacity(p);
        let mut metrics = Vec::with_capacity(p);
        let mut wall = Vec::with_capacity(p);
        for slot in out {
            match slot.expect("every processor completed") {
                Ok((r, c, trace, comm_row, evs, snap, wp)) => {
                    results.push(r);
                    clocks.push(c);
                    traces.push(trace);
                    comm.push(comm_row);
                    events.push(evs);
                    metrics.push(snap);
                    wall.push(wp);
                }
                Err(_) => unreachable!("failures were returned above"),
            }
        }
        let mut run = RunOutput::new(results, clocks);
        run.traces = traces;
        run.comm_matrix = comm;
        run.events = events;
        run.metrics = metrics;
        if self.wall_profiling {
            run.wall_profiles = wall;
        }
        run.recovery = Some(rec.stats());
        Ok(run)
    }

    /// Shared driver. On failure returns every failing processor's error
    /// (with original panic payloads where they exist), in processor order.
    fn run_inner<R, F>(&self, program: F) -> Result<RunOutput<R>, Vec<(usize, Failure)>>
    where
        R: Send,
        F: Fn(&mut Proc) -> R + Sync,
    {
        install_quiet_machine_error_hook();
        let p = self.nprocs();
        let (txs, rxs, sched) = self.build_fabric();

        type ProcOk<R> = (
            R,
            crate::cost::ClockReport,
            Vec<crate::trace::Span>,
            Vec<u64>,
            Vec<crate::obs::Event>,
            crate::obs::MetricsSnapshot,
            crate::obs::WallProfile,
        );
        let mut out: Vec<Option<Result<ProcOk<R>, Failure>>> = (0..p).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (id, rx) in rxs.into_iter().enumerate() {
                let txs = &txs;
                let grid = &self.grid;
                let cost = self.cost;
                let program = &program;
                let timeout = self.recv_timeout;
                let tracing = self.tracing;
                let obs = crate::obs::ObsConfig {
                    events: self.tracing,
                    metrics: self.metrics,
                    wall: self.wall_profiling,
                };
                let plan = self.faults.clone();
                let sched = Arc::clone(&sched);
                handles.push(spawn_carrier(scope, p, move || {
                    sched.acquire(id);
                    let mut clock = SimClock::new(cost);
                    if tracing {
                        clock.enable_trace();
                    }
                    let mut proc = Proc::new(
                        id,
                        grid,
                        clock,
                        txs,
                        rx,
                        timeout,
                        plan,
                        obs,
                        Arc::clone(&sched),
                    );
                    let (ac0, ab0) = crate::alloc_counter::thread_totals();
                    let result = catch_unwind(AssertUnwindSafe(|| program(&mut proc)));
                    let (ac1, ab1) = crate::alloc_counter::thread_totals();
                    proc.note_alloc_totals(ac1 - ac0, ab1 - ab0);
                    let outcome: Result<R, Failure> = match result {
                        Ok(r) => match proc.finish_transport() {
                            Ok(()) => {
                                let leftover = proc.leftover_messages();
                                if leftover > 0 {
                                    Err((
                                        MachineError::LeftoverMessages {
                                            proc: id,
                                            count: leftover,
                                        },
                                        None,
                                    ))
                                } else {
                                    Ok(r)
                                }
                            }
                            Err(e) => Err((e, None)),
                        },
                        Err(payload) => match payload.downcast::<MachineError>() {
                            Ok(e) => Err((*e, None)),
                            Err(payload) => {
                                let msg = panic_message(payload.as_ref());
                                Err((MachineError::ProcPanicked { proc: id, msg }, Some(payload)))
                            }
                        },
                    };
                    // Retire from the scheduler on success and failure alike
                    // — a permit leak would wedge every still-running peer.
                    // Before the poison broadcast, so the woken peers find a
                    // free slot to abort on.
                    sched.finish(id);
                    if let Err((e, _)) = &outcome {
                        // Poison broadcast: peers blocked in receives abort
                        // with this error as their cause instead of waiting
                        // out their own timeouts.
                        for (pid, tx) in txs.iter().enumerate() {
                            if pid != id {
                                tx.send(Frame::Poison(e.clone()));
                            }
                        }
                    }
                    let (mut clock, comm_row, rx, events, metrics, wall) = proc.into_parts();
                    let trace = clock.take_trace();
                    (
                        outcome
                            .map(|r| (r, clock.report(), trace, comm_row, events, metrics, wall)),
                        rx,
                    )
                }));
            }
            // Receiver endpoints come back from each joined thread and are
            // parked here until every thread has joined, so a laggard's
            // late sends (e.g. retransmissions) never hit a closed channel.
            let mut parked_rxs = Vec::with_capacity(p);
            for (id, h) in handles.into_iter().enumerate() {
                let (outcome, rx) = h.join().expect("processor threads never panic themselves");
                parked_rxs.push(rx);
                out[id] = Some(outcome);
            }
        });

        let mut results = Vec::with_capacity(p);
        let mut clocks = Vec::with_capacity(p);
        let mut traces = Vec::with_capacity(p);
        let mut comm = Vec::with_capacity(p);
        let mut events = Vec::with_capacity(p);
        let mut metrics = Vec::with_capacity(p);
        let mut wall = Vec::with_capacity(p);
        let mut failures = Vec::new();
        for (id, slot) in out.into_iter().enumerate() {
            match slot.expect("every processor joined") {
                Ok((r, c, trace, comm_row, evs, snap, wp)) => {
                    results.push(r);
                    clocks.push(c);
                    traces.push(trace);
                    comm.push(comm_row);
                    events.push(evs);
                    metrics.push(snap);
                    wall.push(wp);
                }
                Err(failure) => failures.push((id, failure)),
            }
        }
        if !failures.is_empty() {
            return Err(failures);
        }
        let mut run = RunOutput::new(results, clocks);
        run.traces = traces;
        run.comm_matrix = comm;
        run.events = events;
        run.metrics = metrics;
        if self.wall_profiling {
            run.wall_profiles = wall;
        }
        Ok(run)
    }
}

/// Machine-level failures travel as `panic_any(MachineError)` so they can
/// cross `catch_unwind`, but they are expected control flow (the driver
/// converts them into `Err`s), so the default "thread panicked" noise is
/// suppressed for them. Program panics keep the standard hook output.
fn install_quiet_machine_error_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<MachineError>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Render a panic payload for [`MachineError::ProcPanicked`].
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Index of the failure to report: the most root-cause-like one. Poisoned
/// bystanders rank last; active failures (panic/crash) rank before passive
/// ones (unreachable peer, timeout, leftovers); ties break to the lowest
/// processor id (the vector is already in processor order).
fn pick_primary(failures: &[(usize, Failure)]) -> usize {
    fn severity(e: &MachineError) -> u8 {
        match e {
            MachineError::ProcPanicked { .. } | MachineError::ProcCrashed { .. } => 0,
            MachineError::Unreachable { .. } => 1,
            MachineError::RecvTimeout { .. } => 2,
            MachineError::LeftoverMessages { .. } => 3,
            MachineError::Poisoned { .. } => 4,
        }
    }
    failures
        .iter()
        .enumerate()
        .min_by_key(|(_, (_, (e, _)))| severity(e))
        .map(|(i, _)| i)
        .expect("pick_primary called with failures")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Category;
    use crate::proc::tags;

    #[test]
    fn run_returns_results_in_proc_order() {
        let m = Machine::new(ProcGrid::line(8), CostModel::zero());
        let out = m.run(|p| p.id() * 10);
        assert_eq!(out.results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn ring_pass_moves_data_and_charges_time() {
        let m = Machine::new(
            ProcGrid::line(4),
            CostModel {
                delta_ns: 0.0,
                tau_ns: 10.0,
                mu_ns: 1.0,
                ..CostModel::zero()
            },
        );
        let out = m.run(|p| {
            let next = (p.id() + 1) % 4;
            let prev = (p.id() + 3) % 4;
            p.send(next, tags::USER, vec![p.id() as i32]);
            let got: Vec<i32> = p.recv(prev, tags::USER);
            got[0]
        });
        assert_eq!(out.results, vec![3, 0, 1, 2]);
        // Each proc sent one 1-word message: τ + μ = 11 ns of send time, and
        // the received message arrived at its sender's 11 ns mark.
        for c in &out.clocks {
            assert!(c.now_ns >= 11.0);
            assert_eq!(c.words_sent, 1);
            assert_eq!(c.startups, 1);
        }
    }

    #[test]
    fn self_send_is_free() {
        let m = Machine::new(ProcGrid::line(2), CostModel::cm5());
        let out = m.run(|p| {
            p.send(p.id(), tags::USER, vec![7i32, 8, 9]);
            let v: Vec<i32> = p.recv(p.id(), tags::USER);
            v.len()
        });
        assert_eq!(out.results, vec![3, 3]);
        for c in &out.clocks {
            assert_eq!(c.now_ns, 0.0);
            assert_eq!(c.words_sent, 0);
        }
    }

    #[test]
    fn receiver_waits_until_arrival() {
        let m = Machine::new(
            ProcGrid::line(2),
            CostModel {
                delta_ns: 1.0,
                tau_ns: 100.0,
                mu_ns: 0.0,
                ..CostModel::zero()
            },
        );
        let out = m.run(|p| {
            if p.id() == 0 {
                p.charge_ops(50); // sender is busy 50 ns first
                p.send(1, tags::USER, vec![1i32]);
                p.clock_ref().now_ns()
            } else {
                let _: Vec<i32> = p.recv(0, tags::USER);
                p.clock_ref().now_ns()
            }
        });
        assert_eq!(out.results[0], 150.0); // 50 + τ
        assert_eq!(out.results[1], 150.0); // waited until arrival
    }

    #[test]
    fn clock_sync_max_aligns_without_charging() {
        let m = Machine::new(ProcGrid::line(5), CostModel::zero());
        let out = m.run(|p| {
            let t = p.id() as f64 * 10.0;
            p.clock().fast_forward(t);
            let world = p.world();
            p.clock_sync_max(&world);
            p.clock_ref().now_ns()
        });
        for t in out.results {
            assert_eq!(t, 40.0);
        }
        for c in &out.clocks {
            for cat in Category::ALL {
                assert_eq!(c.cat_ns(cat), 0.0, "sync must not charge {cat}");
            }
        }
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let m = Machine::new(ProcGrid::line(2), CostModel::zero());
        let out = m.run(|p| {
            if p.id() == 0 {
                p.send(1, tags::USER + 1, vec![1i32]);
                p.send(1, tags::USER, vec![2i32]);
                0
            } else {
                // Receive in the opposite order of sending.
                let a: Vec<i32> = p.recv(0, tags::USER);
                let b: Vec<i32> = p.recv(0, tags::USER + 1);
                (a[0] * 10 + b[0]) as usize
            }
        });
        assert_eq!(out.results[1], 21);
    }

    #[test]
    #[should_panic(expected = "unconsumed")]
    fn leftover_messages_are_detected() {
        let m = Machine::new(ProcGrid::line(2), CostModel::zero());
        m.run(|p| {
            if p.id() == 0 {
                p.send(1, tags::USER, vec![1i32]);
                p.send(1, tags::USER + 1, vec![2i32]);
            } else {
                // Only consume one of the two; the probe for USER+2 would
                // hang, so consume USER and leave USER+1 in the channel...
                let _: Vec<i32> = p.recv(0, tags::USER + 1);
                // ...which lands in the mailbox while searching.
            }
        });
    }

    #[test]
    fn two_d_grid_axis_groups_communicate_independently() {
        let m = Machine::new(ProcGrid::new(&[2, 2]), CostModel::zero());
        let out = m.run(|p| {
            // Exchange coordinate products along each axis.
            let g0 = p.axis_group(0);
            let partner0 = g0.id_of(1 - g0.my_rank());
            p.send(partner0, tags::USER, vec![p.id() as i32]);
            let from0: Vec<i32> = p.recv(partner0, tags::USER);
            let g1 = p.axis_group(1);
            let partner1 = g1.id_of(1 - g1.my_rank());
            p.send(partner1, tags::USER + 1, vec![p.id() as i32]);
            let from1: Vec<i32> = p.recv(partner1, tags::USER + 1);
            (from0[0], from1[0])
        });
        // Grid [P0=2, P1=2]: id = p0 + 2*p1.
        assert_eq!(out.results[0], (1, 2));
        assert_eq!(out.results[3], (2, 1));
    }

    // ---- failure-path and fault-injection coverage ----------------------

    use crate::fault::FaultPlan;
    use std::time::Duration;

    fn ring_program(p: &mut Proc) -> i32 {
        let n = p.nprocs();
        let next = (p.id() + 1) % n;
        let prev = (p.id() + n - 1) % n;
        p.send(next, tags::USER, vec![p.id() as i32]);
        let got: Vec<i32> = p.recv(prev, tags::USER);
        got[0]
    }

    #[test]
    fn try_run_ok_matches_run() {
        let m = Machine::new(ProcGrid::line(4), CostModel::cm5());
        let a = m.run(ring_program);
        let b = m.try_run(ring_program).expect("fault-free run succeeds");
        assert_eq!(a.results, b.results);
        assert_eq!(a.clocks, b.clocks);
    }

    #[test]
    fn faulty_run_is_bit_identical_to_clean_run() {
        let clean = Machine::new(ProcGrid::line(4), CostModel::cm5());
        let faulty = clean.clone().with_test_preset().with_faults(
            FaultPlan::new(99)
                .with_drop(0.2)
                .with_duplicate(0.2)
                .with_reorder(0.2),
        );
        let a = clean.run(ring_program);
        let b = faulty
            .try_run(ring_program)
            .expect("reliable transport recovers");
        assert_eq!(a.results, b.results);
        // Drop/dup/reorder never change simulated time, only wall time.
        for (ca, cb) in a.clocks.iter().zip(&b.clocks) {
            assert_eq!(ca.now_ns, cb.now_ns);
            assert_eq!(ca.words_sent, cb.words_sent);
        }
    }

    #[test]
    fn injected_delay_slows_simulated_time_deterministically() {
        let plan = FaultPlan::new(5).with_delay(1.0, 1e6);
        let m = Machine::new(
            ProcGrid::line(4),
            CostModel {
                tau_ns: 10.0,
                mu_ns: 1.0,
                ..CostModel::zero()
            },
        )
        .with_test_preset()
        .with_faults(plan);
        let a = m.try_run(ring_program).unwrap();
        let b = m.try_run(ring_program).unwrap();
        assert_eq!(a.results, b.results);
        for (ca, cb) in a.clocks.iter().zip(&b.clocks) {
            assert_eq!(ca.now_ns, cb.now_ns, "delays must be deterministic");
        }
        // At least one receiver waited for a delayed packet.
        assert!(a.clocks.iter().any(|c| c.now_ns > 11.0));
    }

    #[test]
    fn crash_surfaces_as_typed_error_and_poisons_peers() {
        let m = Machine::new(ProcGrid::line(4), CostModel::zero())
            .with_test_preset()
            .with_faults(FaultPlan::new(0).with_crash(2, 1));
        let err = m
            .try_run(ring_program)
            .expect_err("crash must fail the run");
        assert_eq!(err, MachineError::ProcCrashed { proc: 2, step: 1 });
    }

    #[test]
    fn recv_timeout_is_a_typed_error_naming_the_stuck_proc() {
        let m = Machine::new(ProcGrid::line(2), CostModel::zero())
            .with_recv_timeout(Duration::from_millis(50));
        let err = m
            .try_run(|p| {
                if p.id() == 1 {
                    let _: Vec<i32> = p.recv(0, tags::USER + 9);
                }
            })
            .expect_err("nobody sends; proc 1 must time out");
        match err {
            MachineError::RecvTimeout { proc, src, tag, .. } => {
                assert_eq!((proc, src, tag), (1, 0, tags::USER + 9));
            }
            other => panic!("expected RecvTimeout, got {other}"),
        }
    }

    #[test]
    fn program_panic_becomes_proc_panicked() {
        let m = Machine::new(ProcGrid::line(2), CostModel::zero()).with_test_preset();
        let err = m
            .try_run(|p| {
                if p.id() == 0 {
                    panic!("boom on zero");
                }
                let _: Vec<i32> = p.recv(0, tags::USER);
            })
            .expect_err("panic must fail the run");
        assert_eq!(err.root_cause().proc(), 0);
        match err.root_cause() {
            MachineError::ProcPanicked { msg, .. } => assert!(msg.contains("boom"), "{msg}"),
            other => panic!("expected ProcPanicked, got {other}"),
        }
    }

    #[test]
    fn poison_aborts_blocked_peers_quickly() {
        // Without poison, proc 1 would wait out its full 60 s timeout.
        let m = Machine::new(ProcGrid::line(2), CostModel::zero())
            .with_recv_timeout(Duration::from_secs(60))
            .with_faults(FaultPlan::new(0).with_crash(0, 1));
        let t0 = std::time::Instant::now();
        let err = m
            .try_run(|p| {
                if p.id() == 0 {
                    p.send(1, tags::USER, vec![1i32]);
                } else {
                    let _: Vec<i32> = p.recv(0, tags::USER);
                }
            })
            .expect_err("crash must fail the run");
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "poison must beat the timeout"
        );
        assert_eq!(
            *err.root_cause(),
            MachineError::ProcCrashed { proc: 0, step: 1 }
        );
    }

    #[test]
    fn leftover_messages_become_a_typed_error_in_try_run() {
        let m = Machine::new(ProcGrid::line(2), CostModel::zero()).with_test_preset();
        let err = m
            .try_run(|p| {
                if p.id() == 0 {
                    p.send(1, tags::USER, vec![1i32]);
                    p.send(1, tags::USER + 1, vec![2i32]);
                } else {
                    let _: Vec<i32> = p.recv(0, tags::USER + 1);
                }
            })
            .expect_err("leftover traffic must fail the run");
        assert_eq!(
            err.root_cause(),
            &MachineError::LeftoverMessages { proc: 1, count: 1 }
        );
    }

    #[test]
    fn faulty_runs_report_retransmissions() {
        let m = Machine::new(ProcGrid::line(4), CostModel::zero())
            .with_test_preset()
            .with_faults(FaultPlan::new(3).with_drop(0.4));
        let out = m
            .try_run(|p| {
                for round in 0..8u64 {
                    let n = p.nprocs();
                    let next = (p.id() + 1) % n;
                    let prev = (p.id() + n - 1) % n;
                    p.send(next, tags::USER + round, vec![p.id() as i32]);
                    let _: Vec<i32> = p.recv(prev, tags::USER + round);
                }
            })
            .expect("transport recovers from drops");
        assert!(
            out.total_retransmits() > 0,
            "a 40% drop rate over 32 messages must force at least one retry"
        );
    }
}
